#include "base/rng.h"

#include <cmath>

#include "base/check.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  GEODP_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  if (bound == 0) return 0;  // empty range: avoid the modulo-by-zero below
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  uint64_t r = Next();
  while (r < threshold) r = Next();
  return r % bound;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = radius * std::sin(2.0 * kPi * u2);
  has_cached_gaussian_ = true;
  return radius * std::cos(2.0 * kPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  GEODP_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

std::vector<double> Rng::GaussianVector(std::size_t n, double stddev) {
  std::vector<double> samples(n);
  for (auto& s : samples) s = Gaussian(0.0, stddev);
  return samples;
}

double Rng::Laplace(double b) {
  GEODP_CHECK_GT(b, 0.0);
  // Inverse CDF: u in (-1/2, 1/2), x = -b * sign(u) * ln(1 - 2|u|).
  const double u = Uniform() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  double mag = 1.0 - 2.0 * std::fabs(u);
  if (mag <= 1e-300) mag = 1e-300;
  return -b * sign * std::log(mag);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD6E8FEB86659FD93ULL); }

void Rng::Jump() {
  // Jump polynomial from the xoshiro256++ reference implementation
  // (Blackman & Vigna, public domain).
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  has_cached_gaussian_ = false;
}

RngState Rng::ExportState() const {
  RngState snapshot;
  for (int i = 0; i < 4; ++i) snapshot.state[i] = state_[i];
  snapshot.has_cached_gaussian = has_cached_gaussian_;
  snapshot.cached_gaussian = cached_gaussian_;
  return snapshot;
}

void Rng::ImportState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.state[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

Rng Rng::Substream(uint64_t root_seed, uint64_t stream_id) {
  // stream_id + 1 keeps stream 0 distinct from the plain Rng(root_seed);
  // the golden-ratio multiplier decorrelates consecutive ids before the
  // SplitMix64 expansion in the constructor finishes the mixing.
  Rng stream(root_seed ^ ((stream_id + 1) * 0x9E3779B97F4A7C15ULL));
  stream.Jump();
  return stream;
}

}  // namespace geodp
