#include "nn/sequential.h"

#include "base/check.h"

namespace geodp {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  GEODP_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor activation = input;
  for (auto& layer : layers_) activation = layer->Forward(activation);
  return activation;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return grad;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace geodp
