#include "dp/privacy_ledger.h"

#include <sstream>

#include "base/check.h"
#include "dp/rdp_accountant.h"

namespace geodp {

void PrivacyLedger::RecordGaussian(NoiseMultiplier sigma, int64_t count,
                                   std::string note) {
  GEODP_CHECK_GT(sigma.value(), 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(count, 0);  // geodp: check-ok
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kGaussian;
  event.noise_multiplier = sigma.value();
  event.count = count;
  event.note = std::move(note);
  events_.push_back(std::move(event));
}

void PrivacyLedger::RecordSubsampledGaussian(NoiseMultiplier sigma,
                                             SamplingRate sampling_rate,
                                             int64_t count,
                                             std::string note) {
  const double rate = sampling_rate.value();
  GEODP_CHECK_GT(sigma.value(), 0.0);  // geodp: check-ok
  GEODP_CHECK(rate > 0.0 && rate <= 1.0);  // geodp: check-ok
  GEODP_CHECK_GT(count, 0);  // geodp: check-ok
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kSubsampledGaussian;
  event.noise_multiplier = sigma.value();
  event.sampling_rate = rate;
  event.count = count;
  event.note = std::move(note);
  events_.push_back(std::move(event));
}

void PrivacyLedger::RecordLaplace(Epsilon epsilon, int64_t count,
                                  std::string note) {
  GEODP_CHECK_GT(epsilon.value(), 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(count, 0);  // geodp: check-ok
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kLaplace;
  event.epsilon = epsilon.value();
  event.count = count;
  event.note = std::move(note);
  events_.push_back(std::move(event));
}

void PrivacyLedger::RecordSubsampledGaussianCoalesced(
    NoiseMultiplier sigma, SamplingRate sampling_rate, std::string note) {
  if (!events_.empty()) {
    PrivacyEvent& last = events_.back();
    if (last.kind == PrivacyEvent::Kind::kSubsampledGaussian &&
        last.noise_multiplier == sigma.value() &&
        last.sampling_rate == sampling_rate.value() && last.note == note) {
      ++last.count;
      return;
    }
  }
  RecordSubsampledGaussian(sigma, sampling_rate, 1, std::move(note));
}

void PrivacyLedger::RestoreEvents(std::vector<PrivacyEvent> events) {
  events_ = std::move(events);
}

int64_t PrivacyLedger::TotalReleases() const {
  int64_t total = 0;
  for (const PrivacyEvent& event : events_) total += event.count;
  return total;
}

namespace {

// Replays the Gaussian-kind events into `accountant`; returns whether any
// were present. Laplace events are left to the caller (they compose by
// plain epsilon addition, not RDP).
bool ReplayGaussianEvents(const std::vector<PrivacyEvent>& events,
                          RdpAccountant& accountant) {
  bool has_gaussian = false;
  for (const PrivacyEvent& event : events) {
    switch (event.kind) {
      case PrivacyEvent::Kind::kGaussian:
        accountant.AddGaussianSteps(NoiseMultiplier(event.noise_multiplier),
                                    event.count);
        has_gaussian = true;
        break;
      case PrivacyEvent::Kind::kSubsampledGaussian:
        accountant.AddSubsampledGaussianSteps(
            NoiseMultiplier(event.noise_multiplier),
            SamplingRate(event.sampling_rate), event.count);
        has_gaussian = true;
        break;
      case PrivacyEvent::Kind::kLaplace:
        break;
    }
  }
  return has_gaussian;
}

}  // namespace

PrivacyGuarantee PrivacyLedger::ComposedGuarantee(Delta delta) const {
  const double d = delta.value();
  GEODP_CHECK(d > 0.0 && d < 1.0);  // geodp: check-ok
  RdpAccountant accountant;
  const bool has_gaussian = ReplayGaussianEvents(events_, accountant);
  double laplace_epsilon = 0.0;
  for (const PrivacyEvent& event : events_) {
    if (event.kind == PrivacyEvent::Kind::kLaplace) {
      laplace_epsilon += event.epsilon * static_cast<double>(event.count);
    }
  }
  const double gaussian_epsilon =
      has_gaussian ? accountant.GetEpsilon(delta) : 0.0;
  return {gaussian_epsilon + laplace_epsilon, has_gaussian ? d : 0.0};
}

int64_t PrivacyLedger::OptimalOrder(Delta delta) const {
  const double d = delta.value();
  GEODP_CHECK(d > 0.0 && d < 1.0);  // geodp: check-ok
  RdpAccountant accountant;
  const bool has_gaussian = ReplayGaussianEvents(events_, accountant);
  return has_gaussian ? accountant.GetOptimalOrder(delta) : 0;
}

std::string PrivacyLedger::Report(Delta delta) const {
  std::ostringstream out;
  out << "privacy ledger (" << events_.size() << " entries, "
      << TotalReleases() << " releases)\n";
  for (const PrivacyEvent& event : events_) {
    out << "  - ";
    switch (event.kind) {
      case PrivacyEvent::Kind::kGaussian:
        out << "gaussian sigma=" << event.noise_multiplier;
        break;
      case PrivacyEvent::Kind::kSubsampledGaussian:
        out << "subsampled-gaussian sigma=" << event.noise_multiplier
            << " q=" << event.sampling_rate;
        break;
      case PrivacyEvent::Kind::kLaplace:
        out << "laplace eps=" << event.epsilon;
        break;
    }
    out << " x" << event.count;
    if (!event.note.empty()) out << "  (" << event.note << ")";
    out << "\n";
  }
  const PrivacyGuarantee guarantee = ComposedGuarantee(delta);
  // A pure-Laplace ledger composes to (eps, 0)-DP; still echo the delta
  // the caller asked about so the report is unambiguous.
  out << "  => (" << guarantee.epsilon << ", " << guarantee.delta
      << ")-DP at requested delta=" << delta.value();
  const int64_t order = OptimalOrder(delta);
  if (order > 0) out << "\n  => optimal RDP order: " << order;
  return out.str();
}

}  // namespace geodp
