#include "clip/clipping.h"

#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/simd/kernels.h"
#include "base/thread_pool.h"

namespace geodp {
namespace {

// Samples per ParallelFor chunk in AccumulateClipped. The chunk structure
// (not the thread count) fixes the floating-point reduction order.
constexpr int64_t kClipGrain = 4;

}  // namespace

void Clipper::OnStep(int64_t /*step*/) {}

Tensor Clipper::Clip(const Tensor& per_sample_gradient) const {
  const double scale = ClipScale(per_sample_gradient.L2Norm());
  Tensor out = per_sample_gradient;
  out.ScaleInPlace(static_cast<float>(scale));
  return out;
}

FlatClipper::FlatClipper(double clip_threshold)
    : clip_threshold_(clip_threshold) {
  GEODP_CHECK_GT(clip_threshold_, 0.0);  // geodp: check-ok
}

double FlatClipper::ClipScale(double norm) const {
  const double divisor = std::max(1.0, norm / clip_threshold_);
  return 1.0 / divisor;
}

AutoSClipper::AutoSClipper(double clip_threshold, double gamma)
    : clip_threshold_(clip_threshold), gamma_(gamma) {
  GEODP_CHECK_GT(clip_threshold_, 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(gamma_, 0.0);  // geodp: check-ok
}

double AutoSClipper::ClipScale(double norm) const {
  return clip_threshold_ / (norm + gamma_);
}

PsacClipper::PsacClipper(double clip_threshold, double r0, double decay,
                         double gamma)
    : clip_threshold_(clip_threshold),
      r0_(r0),
      decay_(decay),
      gamma_(gamma),
      radius_(r0) {
  GEODP_CHECK_GT(clip_threshold_, 0.0);  // geodp: check-ok
  GEODP_CHECK_GE(r0_, 0.0);  // geodp: check-ok
  GEODP_CHECK(decay_ > 0.0 && decay_ <= 1.0);  // geodp: check-ok
  GEODP_CHECK_GT(gamma_, 0.0);  // geodp: check-ok
}

double PsacClipper::ClipScale(double norm) const {
  return clip_threshold_ / (norm + radius_ / (norm + gamma_));
}

void PsacClipper::OnStep(int64_t step) {
  GEODP_CHECK_GE(step, 0);  // geodp: check-ok
  radius_ = r0_ * std::pow(decay_, static_cast<double>(step));
}

bool IsKnownClipper(const std::string& name) {
  return name == "flat" || name == "AUTO-S" || name == "PSAC";
}

std::unique_ptr<Clipper> MakeClipper(const std::string& name,
                                     ClipThreshold clip_threshold) {
  const double threshold = clip_threshold.value();
  if (name == "flat") return std::make_unique<FlatClipper>(threshold);
  if (name == "AUTO-S") return std::make_unique<AutoSClipper>(threshold);
  if (name == "PSAC") return std::make_unique<PsacClipper>(threshold);
  // Unreachable for validated config: callers gate on IsKnownClipper.
  GEODP_CHECK(false) << "unknown clipper: " << name;  // geodp: check-ok
  return nullptr;
}

void AccumulateClipped(const std::vector<Tensor>& per_sample_gradients,
                       const Clipper& clipper, Tensor& sum) {
  if (per_sample_gradients.empty()) return;
  const int64_t count = static_cast<int64_t>(per_sample_gradients.size());
  const int64_t num_chunks = (count + kClipGrain - 1) / kClipGrain;
  std::vector<Tensor> partials(static_cast<size_t>(num_chunks));
  // Fused clip-accumulate: instead of materializing each clipped gradient
  // and adding it (one full write + read per sample), the kernels scale
  // and accumulate in a single pass. The rounding sequence per element is
  // identical to the historical Clip-then-AddInPlace on the scalar tier.
  ParallelForChunks(
      0, count, kClipGrain, [&](int64_t chunk, int64_t lo, int64_t hi) {
        const Tensor& first = per_sample_gradients[static_cast<size_t>(lo)];
        Tensor partial(first.shape());
        simd::ClipScaleAssign(
            partial.data(), first.data(),
            static_cast<float>(clipper.ClipScale(first.L2Norm())),
            first.numel());
        for (int64_t i = lo + 1; i < hi; ++i) {
          const Tensor& g = per_sample_gradients[static_cast<size_t>(i)];
          GEODP_CHECK(SameShape(partial, g));  // geodp: check-ok
          simd::ClipAxpy(partial.data(), g.data(),
                         static_cast<float>(clipper.ClipScale(g.L2Norm())),
                         g.numel());
        }
        partials[static_cast<size_t>(chunk)] = std::move(partial);
      });
  for (const Tensor& partial : partials) sum.AddInPlace(partial);
}

Tensor ClipAndSum(const std::vector<Tensor>& per_sample_gradients,
                  const Clipper& clipper) {
  // Empty Poisson lots are a normal, counted occurrence: the defined
  // result is an empty tensor (a zero gradient over zero samples), the
  // same "nothing to add" contract as AccumulateClipped's early return.
  if (per_sample_gradients.empty()) return Tensor();
  Tensor sum(per_sample_gradients.front().shape());
  AccumulateClipped(per_sample_gradients, clipper, sum);
  return sum;
}

}  // namespace geodp
