// Spatial pooling layers: 2x2-style max pooling and global average pooling.

#ifndef GEODP_NN_POOLING_H_
#define GEODP_NN_POOLING_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace geodp {

/// Non-overlapping max pooling with square windows; input extents must be
/// divisible by the window size. [B, C, H, W] -> [B, C, H/k, W/k].
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int64_t window);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  int64_t window_;
  std::vector<int64_t> argmax_;       // flat input index of each output max
  std::vector<int64_t> input_shape_;  // for grad_input reconstruction
};

/// Non-overlapping average pooling with square windows; input extents
/// must be divisible by the window size. [B, C, H, W] -> [B, C, H/k, W/k].
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(int64_t window);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "AvgPool2d"; }

 private:
  int64_t window_;
  std::vector<int64_t> input_shape_;
};

/// Global average pooling: [B, C, H, W] -> [B, C].
class GlobalAvgPool : public Layer {
 public:
  GlobalAvgPool() = default;

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<int64_t> input_shape_;
};

}  // namespace geodp

#endif  // GEODP_NN_POOLING_H_
