// Trainable parameter (value + gradient) and flat-vector utilities.
//
// DP-SGD and GeoDP operate on the *flattened* gradient of the whole model
// (one vector per sample), so the framework provides cheap conversion
// between a parameter list and a single flat tensor.

#ifndef GEODP_NN_PARAMETER_H_
#define GEODP_NN_PARAMETER_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace geodp {

/// A named trainable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;  // same shape as value; zero-initialized

  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(Tensor::Zeros(value.shape())) {}
};

/// Total number of scalar parameters.
int64_t TotalParameterCount(const std::vector<Parameter*>& params);

/// Concatenates all parameter values into one 1-D tensor.
Tensor FlattenValues(const std::vector<Parameter*>& params);

/// Concatenates all parameter gradients into one 1-D tensor.
Tensor FlattenGradients(const std::vector<Parameter*>& params);

/// Writes a flat value vector back into the parameters (inverse of
/// FlattenValues).
void SetValuesFromFlat(const std::vector<Parameter*>& params,
                       const Tensor& flat);

/// In-place update value -= lr * flat_direction (flat layout as above).
void ApplyFlatUpdate(const std::vector<Parameter*>& params,
                     const Tensor& flat_direction, double learning_rate);

/// Zeroes every gradient.
void ZeroGradients(const std::vector<Parameter*>& params);

}  // namespace geodp

#endif  // GEODP_NN_PARAMETER_H_
