// Example: the geometric perturbation in isolation. Harvests real CNN
// training gradients, perturbs one averaged batch gradient with DP and
// GeoDP under the same guarantee, and prints what each strategy does to
// the magnitude, the direction, and the cosine similarity — a hands-on
// version of the paper's Figure 1.
//
//   $ ./examples/gradient_perturbation_lab

#include <cstdio>

#include "base/rng.h"
#include "core/perturbation.h"
#include "core/spherical.h"
#include "data/gradient_dataset.h"
#include "stats/summary.h"
#include "tensor/tensor_ops.h"

int main() {
  using namespace geodp;

  // Gradients from batch-1 CNN training (paper Sec. VI-A protocol).
  GradientDatasetOptions harvest;
  harvest.num_gradients = 256;
  harvest.dimension = 512;
  harvest.training_examples = 128;
  harvest.seed = 31;
  const GradientDataset gradients = HarvestGradientDataset(harvest);

  const double kClip = 0.1;
  const int64_t kBatch = 256;
  const double kSigma = 1.0;

  Rng sample_rng(1);
  const Tensor avg = gradients.AverageClipped(kBatch, kClip, sample_rng);
  const SphericalCoordinates original = ToSpherical(avg);

  std::printf("averaged clipped gradient: d=%lld, ||g||=%.5f\n",
              static_cast<long long>(avg.dim(0)), original.magnitude);

  PerturbationOptions base;
  base.clip_threshold = kClip;
  base.batch_size = kBatch;
  base.noise_multiplier = kSigma;
  const DpPerturber dp(base);

  std::printf("\n%-18s %14s %14s %14s\n", "strategy", "cos(g, g*)",
              "|theta err|^2", "||g*||");
  Rng noise_rng(2);
  RunningStat dp_cos, dp_dir;
  double dp_mag = 0.0;
  for (int t = 0; t < 50; ++t) {
    const Tensor noisy = dp.Perturb(avg, noise_rng);
    const SphericalCoordinates dir = ToSpherical(noisy);
    dp_cos.Add(CosineSimilarity(avg, noisy));
    dp_dir.Add(AngleSquaredDistance(original.angles, dir.angles));
    dp_mag = dir.magnitude;
  }
  std::printf("%-18s %14.5f %14.6f %14.5f\n", "DP", dp_cos.mean(),
              dp_dir.mean(), dp_mag);

  for (double beta : {1.0, 0.1, 0.01}) {
    GeoDpOptions geo_options;
    geo_options.base = base;
    geo_options.beta = beta;
    const GeoDpPerturber geo(geo_options);
    RunningStat cos_stat, dir_stat;
    double magnitude = 0.0;
    for (int t = 0; t < 50; ++t) {
      const Tensor noisy = geo.Perturb(avg, noise_rng);
      const SphericalCoordinates dir = ToSpherical(noisy);
      cos_stat.Add(CosineSimilarity(avg, noisy));
      dir_stat.Add(AngleSquaredDistance(original.angles, dir.angles));
      magnitude = dir.magnitude;
    }
    std::printf("%-12s b=%.2f %14.5f %14.6f %14.5f\n", "GeoDP", beta,
                cos_stat.mean(), dir_stat.mean(), magnitude);
  }

  std::printf(
      "\nReading: GeoDP with small beta keeps cos(g, g*) near 1 (descent\n"
      "trend preserved) while DP scatters the direction; both leave the\n"
      "magnitude within the clipped bound's noise.\n");
  return 0;
}
