// Tests for metrics, summary statistics and the table printer.

#include <sstream>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "stats/metrics.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

TEST(MetricsTest, DirectionMse) {
  SphericalCoordinates a, b;
  a.angles = {0.0, 0.0};
  b.angles = {0.3, 0.4};
  // Single pair: squared distance 0.25.
  EXPECT_NEAR(DirectionMse({a}, {b}), 0.25, 1e-12);
  // Two pairs averaged.
  SphericalCoordinates c = a;
  EXPECT_NEAR(DirectionMse({a, a}, {b, c}), 0.125, 1e-12);
}

TEST(MetricsTest, GradientMse) {
  const Tensor a = Tensor::Vector({0, 0});
  const Tensor b = Tensor::Vector({3, 4});
  EXPECT_NEAR(GradientMse({a}, {b}), 25.0, 1e-9);
  EXPECT_NEAR(GradientMse({a, a}, {b, a}), 12.5, 1e-9);
}

TEST(MetricsTest, ModelEfficiency) {
  const Tensor w = Tensor::Vector({1, 1});
  const Tensor opt = Tensor::Vector({0, 0});
  EXPECT_NEAR(ModelEfficiency(w, opt), 2.0, 1e-9);
}

TEST(MetricsTest, AccuracyFromLogits) {
  const Tensor logits = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(AccuracyFromLogits(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_NEAR(stat.mean(), 5.0, 1e-12);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
}

TEST(RunningStatTest, SingleSampleHasZeroVariance) {
  RunningStat stat;
  stat.Add(3.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.stderr_mean(), 0.0);
}

TEST(RunningStatTest, StderrShrinksWithSamples) {
  Rng rng(1);
  RunningStat small, large;
  for (int i = 0; i < 10; ++i) small.Add(rng.Gaussian());
  for (int i = 0; i < 10000; ++i) large.Add(rng.Gaussian());
  EXPECT_LT(large.stderr_mean(), small.stderr_mean());
}

TEST(TablePrinterTest, AlignedOutputContainsCells) {
  TablePrinter table({"method", "mse"});
  table.AddRow({"DP", "0.123"});
  table.AddRow({"GeoDP", "0.045"});
  std::ostringstream out;
  table.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("GeoDP"), std::string::npos);
  EXPECT_NE(s.find("0.045"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FmtSci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace geodp
