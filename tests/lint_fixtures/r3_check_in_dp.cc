// Fixture: seeded R3 violation — GEODP_CHECK in src/dp/ without a
// check-ok annotation; the annotated invariant further down is exempt.
#include "base/check.h"

namespace geodp {

double HalfLife(double sigma) {
  GEODP_CHECK_GT(sigma, 0.0);
  return sigma / 2.0;
}

double AnnotatedInvariant(double sigma) {
  GEODP_CHECK_GT(sigma, 0.0);  // geodp: check-ok validated by caller
  return sigma * 2.0;
}

}  // namespace geodp
