// Bounds-checked binary encoding for checkpoint payloads.
//
// ByteWriter appends fixed-width little-endian primitives to an in-memory
// buffer; ByteReader decodes them with explicit bounds checks, so a
// truncated or bit-flipped payload turns into a failed() reader instead of
// undefined behavior. Doubles and floats are serialized as raw IEEE-754
// bytes: a round-trip is bit-exact, which the resume-determinism guarantee
// depends on.

#ifndef GEODP_CKPT_BYTE_IO_H_
#define GEODP_CKPT_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace geodp {

/// Appends primitives to a growing byte buffer.
class ByteWriter {
 public:
  void WriteU8(uint8_t value) { Append(&value, sizeof(value)); }
  void WriteU32(uint32_t value) { Append(&value, sizeof(value)); }
  void WriteU64(uint64_t value) { Append(&value, sizeof(value)); }
  void WriteI64(int64_t value) { Append(&value, sizeof(value)); }
  void WriteDouble(double value) { Append(&value, sizeof(value)); }
  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }

  void WriteString(const std::string& value) {
    WriteU64(value.size());
    Append(value.data(), value.size());
  }

  void WriteI64Vector(const std::vector<int64_t>& values) {
    WriteU64(values.size());
    Append(values.data(), values.size() * sizeof(int64_t));
  }

  void WriteDoubleVector(const std::vector<double>& values) {
    WriteU64(values.size());
    Append(values.data(), values.size() * sizeof(double));
  }

  /// Shape + raw float32 data (payload-internal format; the enclosing
  /// checkpoint's CRC covers it, so no per-tensor trailer).
  void WriteTensor(const Tensor& tensor) {
    WriteI64Vector(tensor.shape());
    Append(tensor.data(),
           static_cast<size_t>(tensor.numel()) * sizeof(float));
  }

  const std::string& bytes() const { return buffer_; }
  std::string TakeBytes() { return std::move(buffer_); }

 private:
  void Append(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Decodes a buffer written by ByteWriter. Every read is bounds-checked:
/// on underflow the reader latches failed() and returns zero values, so
/// callers can decode a whole struct and check failure once at the end.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit ByteReader(const std::string& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  uint8_t ReadU8() { return ReadPod<uint8_t>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }
  double ReadDouble() { return ReadPod<double>(); }
  bool ReadBool() { return ReadU8() != 0; }

  std::string ReadString() {
    const uint64_t length = ReadU64();
    if (!HasRemaining(length)) return {};
    std::string value(data_ + pos_, static_cast<size_t>(length));
    pos_ += static_cast<size_t>(length);
    return value;
  }

  std::vector<int64_t> ReadI64Vector() {
    return ReadPodVector<int64_t>();
  }

  std::vector<double> ReadDoubleVector() {
    return ReadPodVector<double>();
  }

  Tensor ReadTensor() {
    const std::vector<int64_t> shape = ReadI64Vector();
    // A default-constructed Tensor serializes as an empty shape with no
    // data (numel 0), not as a rank-0 scalar.
    if (shape.empty()) return Tensor();
    int64_t numel = 1;
    for (const int64_t extent : shape) {
      if (extent <= 0 || numel > (int64_t{1} << 34) / extent) {
        Fail();
        return Tensor();
      }
      numel *= extent;
    }
    const size_t bytes = static_cast<size_t>(numel) * sizeof(float);
    if (failed_ || !HasRemaining(bytes)) return Tensor();
    std::vector<float> data(static_cast<size_t>(numel));
    std::memcpy(data.data(), data_ + pos_, bytes);
    pos_ += bytes;
    return Tensor::FromVector(shape, std::move(data));
  }

  /// True once any read ran past the end of the buffer (or hit a malformed
  /// length); all subsequent reads return empty/zero values.
  bool failed() const { return failed_; }

  /// Bytes not yet consumed. A well-formed payload decodes to exactly 0.
  size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T ReadPod() {
    T value{};
    if (!HasRemaining(sizeof(T))) return value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> ReadPodVector() {
    const uint64_t count = ReadU64();
    if (failed_ || count > size_ / sizeof(T) ||
        !HasRemaining(count * sizeof(T))) {
      Fail();
      return {};
    }
    std::vector<T> values(static_cast<size_t>(count));
    std::memcpy(values.data(), data_ + pos_,
                static_cast<size_t>(count) * sizeof(T));
    pos_ += static_cast<size_t>(count) * sizeof(T);
    return values;
  }

  bool HasRemaining(uint64_t bytes) {
    if (failed_ || bytes > size_ - pos_) {
      Fail();
      return false;
    }
    return true;
  }

  void Fail() { failed_ = true; }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace geodp

#endif  // GEODP_CKPT_BYTE_IO_H_
