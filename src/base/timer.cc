#include "base/timer.h"

namespace geodp {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::Reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Timer::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

}  // namespace geodp
