// Gradient perturbation strategies.
//
// `DpPerturber` is traditional DP-SGD noise (paper Eq. 8): i.i.d. Gaussian
// noise of scale C*sigma added to the *sum* of clipped per-sample gradients,
// i.e. scale C*sigma/B on the averaged gradient.
//
// `GeoDpPerturber` is the paper's contribution (Algorithm 1): the averaged
// clipped gradient is converted to hyper-spherical coordinates, the
// magnitude is perturbed with scale C*sigma/B, each angle is perturbed with
// scale sqrt(d+2)*beta*pi*sigma/B, and the result is converted back.
//
// Both operate on the averaged clipped gradient so they can be composed
// with any clipping strategy (src/clip) and any optimizer (src/optim).

#ifndef GEODP_CORE_PERTURBATION_H_
#define GEODP_CORE_PERTURBATION_H_

#include <memory>
#include <string>

#include "base/rng.h"
#include "core/privacy_region.h"
#include "core/spherical.h"
#include "tensor/tensor.h"

namespace geodp {

/// Noise scales of one release on a d-dimensional gradient, for telemetry
/// (obs/step_observer.h). `magnitude` is the stddev on the magnitude (for
/// DP: on each Cartesian coordinate); `direction` is the stddev on each
/// angle for the geometric strategies, 0 otherwise.
struct NoiseStddevs {
  double magnitude = 0.0;
  double direction = 0.0;
};

/// Interface: perturbs an averaged clipped gradient in a DP fashion.
class Perturber {
 public:
  virtual ~Perturber() = default;

  /// Returns the noisy version of `avg_clipped_gradient` (1-D tensor).
  virtual Tensor Perturb(const Tensor& avg_clipped_gradient,
                         Rng& rng) const = 0;

  /// Human-readable strategy name for reports.
  virtual std::string name() const = 0;

  /// Noise stddevs this strategy would apply to a gradient of the given
  /// dimensionality. The noise-free default reports zero.
  virtual NoiseStddevs Stddevs(int64_t dimension) const {
    (void)dimension;
    return {};
  }
};

/// Shared parameters of both strategies.
struct PerturbationOptions {
  double clip_threshold = 0.1;   // C
  int64_t batch_size = 1;        // B
  double noise_multiplier = 1.0; // sigma
};

/// Traditional DP-SGD perturbation (paper Eq. 8).
class DpPerturber : public Perturber {
 public:
  explicit DpPerturber(PerturbationOptions options);

  Tensor Perturb(const Tensor& avg_clipped_gradient, Rng& rng) const override;
  std::string name() const override { return "DP"; }
  NoiseStddevs Stddevs(int64_t dimension) const override;

  /// Per-coordinate noise stddev on the averaged gradient: C*sigma/B.
  double CoordinateNoiseStddev() const;

  const PerturbationOptions& options() const { return options_; }

 private:
  PerturbationOptions options_;
};

/// How perturbed angles are mapped back before the Cartesian conversion.
enum class AngleHandling {
  kNone,   // feed perturbed angles straight to ToCartesian (paper behaviour)
  kWrap,   // wrap into canonical ranges (ablation)
  kClamp,  // clamp into canonical ranges (ablation)
};

/// GeoDP-specific parameters.
struct GeoDpOptions {
  PerturbationOptions base;
  double beta = 0.1;  // bounding factor in (0, 1]
  AngleHandling angle_handling = AngleHandling::kNone;
  // Ablation knobs: scale factors applied to the magnitude / direction noise
  // stddevs (1.0 reproduces Algorithm 1 exactly).
  double magnitude_sigma_scale = 1.0;
  double direction_sigma_scale = 1.0;
  // If true, a negative perturbed magnitude is clamped to 0 instead of
  // flipping the direction (ablation; the paper does not clamp).
  bool clamp_magnitude = false;
};

/// Geometric perturbation, paper Algorithm 1.
class GeoDpPerturber : public Perturber {
 public:
  explicit GeoDpPerturber(GeoDpOptions options);

  Tensor Perturb(const Tensor& avg_clipped_gradient, Rng& rng) const override;
  std::string name() const override { return "GeoDP"; }
  NoiseStddevs Stddevs(int64_t dimension) const override;

  /// Perturbs explicitly in spherical coordinates (useful for measuring
  /// direction error without a second conversion).
  SphericalCoordinates PerturbSpherical(const SphericalCoordinates& coords,
                                        Rng& rng) const;

  /// Noise stddev on the magnitude: C*sigma/B (times the ablation scale).
  double MagnitudeNoiseStddev() const;

  /// Noise stddev on each angle of a d-dimensional gradient:
  /// sqrt(d+2)*beta*pi*sigma/B (times the ablation scale).
  double DirectionNoiseStddev(int64_t dimension) const;

  const GeoDpOptions& options() const { return options_; }

 private:
  GeoDpOptions options_;
};

/// Extension beyond the paper: GeoDP instantiated with the Laplace
/// mechanism, giving *pure* epsilon-DP on the magnitude and a relaxed
/// (epsilon, delta')-style guarantee on the direction. Sensitivities are
/// L1: C for the magnitude, (d-2)*beta*pi + 2*beta*pi = d*beta*pi for the
/// direction.
struct GeoLaplaceOptions {
  double clip_threshold = 0.1;   // C
  int64_t batch_size = 1;        // B
  double magnitude_epsilon = 1.0;
  double direction_epsilon = 1.0;
  double beta = 0.1;
  AngleHandling angle_handling = AngleHandling::kNone;
};

/// Laplace-noise geometric perturbation (pure epsilon-DP variant).
class GeoLaplacePerturber : public Perturber {
 public:
  explicit GeoLaplacePerturber(GeoLaplaceOptions options);

  Tensor Perturb(const Tensor& avg_clipped_gradient, Rng& rng) const override;
  std::string name() const override { return "GeoDP-Laplace"; }
  NoiseStddevs Stddevs(int64_t dimension) const override;

  /// Laplace scale on the magnitude: C / (eps_mag * B).
  double MagnitudeNoiseScale() const;

  /// Laplace scale per angle: d*beta*pi / (eps_dir * B).
  double DirectionNoiseScale(int64_t dimension) const;

  /// Total pure-DP epsilon of one release (basic composition of the two
  /// components).
  double TotalEpsilon() const;

  const GeoLaplaceOptions& options() const { return options_; }

 private:
  GeoLaplaceOptions options_;
};

/// Convenience factory for the two paper strategies.
std::unique_ptr<Perturber> MakeDpPerturber(PerturbationOptions options);
std::unique_ptr<Perturber> MakeGeoDpPerturber(GeoDpOptions options);

}  // namespace geodp

#endif  // GEODP_CORE_PERTURBATION_H_
