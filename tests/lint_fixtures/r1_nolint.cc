// Fixture: R1 violation suppressed with an explicit nolint annotation.
#include <random>

namespace geodp {

unsigned DeliberateLocalEngine() {
  std::mt19937 engine{7};  // geodp: nolint(R1) seeded, test-vector generator
  return engine();
}

}  // namespace geodp
