// Hyper-spherical (d-spherical) coordinate system, paper §V-A.
//
// A d-dimensional vector g is represented as one magnitude ||g|| and d-1
// angles theta = (theta_1, ..., theta_{d-1}):
//
//   theta_z = arctan2( sqrt(g_{z+1}^2 + ... + g_d^2), g_z )   1 <= z <= d-2
//   theta_{d-1} = arctan2( g_d, g_{d-1} )
//
// so theta_1..theta_{d-2} lie in [0, pi] and theta_{d-1} in (-pi, pi]. The
// inverse (paper Eq. 27) is
//
//   g_1 = r cos(theta_1)
//   g_z = r sin(theta_1)...sin(theta_{z-1}) cos(theta_z)   2 <= z <= d-1
//   g_d = r sin(theta_1)...sin(theta_{d-1})
//
// All math is carried out in double precision; tensors hold float32.

#ifndef GEODP_CORE_SPHERICAL_H_
#define GEODP_CORE_SPHERICAL_H_

#include <vector>

#include "tensor/tensor.h"

namespace geodp {

/// Angular position of a vector: magnitude plus d-1 angles.
struct SphericalCoordinates {
  double magnitude = 0.0;
  std::vector<double> angles;  // size d-1

  /// Dimensionality d of the Cartesian vector this represents.
  int64_t CartesianDim() const {
    return static_cast<int64_t>(angles.size()) + 1;
  }
};

/// Converts a 1-D tensor (d >= 2) to hyper-spherical coordinates.
/// The zero vector maps to magnitude 0 with all angles 0.
SphericalCoordinates ToSpherical(const Tensor& g);

/// Inverse of ToSpherical. Any real angles are accepted (sin/cos are
/// periodic); the result has dimension angles.size() + 1.
Tensor ToCartesian(const SphericalCoordinates& coords);

/// Converts a batch of vectors to spherical coordinates in parallel on
/// the global pool. Each element is converted independently, so the
/// result equals element-wise ToSpherical at any thread count.
std::vector<SphericalCoordinates> BatchToSpherical(
    const std::vector<Tensor>& gradients);

/// Parallel inverse of BatchToSpherical.
std::vector<Tensor> BatchToCartesian(
    const std::vector<SphericalCoordinates>& coords);

/// Squared L2 distance between two angle vectors (used by direction MSE,
/// paper Def. 4). Sizes must match.
double AngleSquaredDistance(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Wraps each angle into its canonical range: [0, pi] for the first d-2
/// (by reflecting), (-pi, pi] for the last. Used by the angle-handling
/// ablation; GeoDP's faithful path feeds perturbed angles straight to
/// ToCartesian.
std::vector<double> WrapAngles(std::vector<double> angles);

/// Clamps each angle into its canonical range (saturating). Alternative
/// ablation policy.
std::vector<double> ClampAngles(std::vector<double> angles);

}  // namespace geodp

#endif  // GEODP_CORE_SPHERICAL_H_
