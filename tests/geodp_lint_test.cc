// Tests for tools/geodp_lint: each fixture under tests/lint_fixtures/ seeds
// exactly one violation of one rule (or none, for the allowlisted/annotated
// counterparts); assertions pin the exact rule ID, virtual path and line.
//
// Fixtures are linted under *virtual* repo-relative paths so rule
// applicability (allowlists, src/clip/ boundary, header-only rules) can be
// exercised without planting violations in the real tree. LintTree skips the
// lint_fixtures/ directory, so the seeded files never trip the CI tree scan.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "geodp_lint/lint.h"
#include "geodp_lint/tokenizer.h"

namespace geodp {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(GEODP_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> LintFixture(const std::string& fixture,
                                 const std::string& virtual_path) {
  StatusOr<std::vector<Finding>> result =
      LintFile(FixturePath(fixture), virtual_path);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  return result.value();
}

TEST(GeodpLintR1, RandomDeviceFlaggedWithExactLocation) {
  const std::vector<Finding> findings =
      LintFixture("r1_random_device.cc", "src/core/seed_source.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R1");
  EXPECT_EQ(findings[0].path, "src/core/seed_source.cc");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("random_device"), std::string::npos);
}

TEST(GeodpLintR1, RawClockNowFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r1_clock_now.cc", "src/obs/wallclock.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_EQ(findings[0].path, "src/obs/wallclock.cc");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("now"), std::string::npos);
}

TEST(GeodpLintR1, RngImplementationIsAllowlisted) {
  // The identical engine use is clean under src/base/rng.cc but a finding
  // anywhere else: applicability is decided purely from the path.
  EXPECT_TRUE(LintFixture("r1_allowlisted_rng.cc", "src/base/rng.cc").empty());

  const std::vector<Finding> findings =
      LintFixture("r1_allowlisted_rng.cc", "src/core/alt_rng.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("mt19937"), std::string::npos);
}

TEST(GeodpLintR1, TestsAndBenchesAreExempt) {
  EXPECT_TRUE(
      LintFixture("r1_random_device.cc", "tests/some_test.cc").empty());
  EXPECT_TRUE(LintFixture("r1_clock_now.cc", "bench/bench_util.cc").empty());
}

TEST(GeodpLintR1, NolintSuppressesTheFlaggedLine) {
  EXPECT_TRUE(LintFixture("r1_nolint.cc", "src/core/seeded_tool.cc").empty());
}

TEST(GeodpLintR1, UnannotatedCpuidProbeFlaggedWithExactLocation) {
  const std::vector<Finding> findings = LintFixture(
      "r1_cpuid_feature_detect.cc", "src/core/feature_probe.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R1");
  EXPECT_EQ(findings[0].path, "src/core/feature_probe.cc");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("__builtin_cpu_supports"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("src/base/simd/"), std::string::npos);
}

TEST(GeodpLintR1, CpuidOkEscapeValidOnlyUnderSimdDispatch) {
  // The annotated probe is clean in the dispatch layer...
  EXPECT_TRUE(
      LintFixture("r1_cpuid_ok_in_simd.cc", "src/base/simd/dispatch.cc")
          .empty());

  // ...but the same annotation does not excuse a probe anywhere else.
  const std::vector<Finding> findings =
      LintFixture("r1_cpuid_ok_in_simd.cc", "src/core/feature_probe.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("cpuid-ok"), std::string::npos);
}

TEST(GeodpLintR1, UnannotatedCpuidProbeInSimdDispatchStillFlagged) {
  const std::vector<Finding> findings = LintFixture(
      "r1_cpuid_feature_detect.cc", "src/base/simd/dispatch.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_EQ(findings[0].line, 7);
}

TEST(GeodpLintR2, SimdDispatchLayerIsNotExemptFromPerSampleRule) {
  // src/base/simd/ escapes cpuid R1 findings only — the per-sample privacy
  // boundary applies there like everywhere else outside src/clip/.
  const std::vector<Finding> findings = LintFixture(
      "r2_per_sample_leak.cc", "src/base/simd/kernels_extra.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[1].rule, RuleId::kR2PrivacyBoundary);
}

TEST(GeodpLintR2, UnannotatedPerSampleIdentifierFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r2_per_sample_leak.cc", "src/stats/per_sample_export.cc");
  // Two layers of R2 fire: the name scan on the per-sample identifier, and
  // the taint pass on the return of the local it was folded into.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R2");
  EXPECT_EQ(findings[0].path, "src/stats/per_sample_export.cc");
  EXPECT_EQ(findings[0].line, 10);
  EXPECT_NE(findings[0].message.find("per_sample_gradient"),
            std::string::npos);
  EXPECT_EQ(findings[1].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[1].line, 11);
  EXPECT_NE(findings[1].message.find("escapes via local 'total'"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("per_sample_gradient -> total"),
            std::string::npos);
}

TEST(GeodpLintR2, ClipSubsystemIsExempt) {
  EXPECT_TRUE(
      LintFixture("r2_per_sample_leak.cc", "src/clip/export.cc").empty());
}

TEST(GeodpLintR2, UnannotatedGhostNormIdentifierFlagged) {
  // ghost_norm* identifiers carry per-sample gradient norms even though no
  // per-sample gradient is materialized, so the privacy boundary covers
  // them like the materialized spellings.
  const std::vector<Finding> findings =
      LintFixture("r2_ghost_norm_leak.cc", "src/optim/ghost_export.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[0].line, 11);
  EXPECT_NE(findings[0].message.find("ghost_norm"), std::string::npos);
  EXPECT_EQ(findings[1].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[1].line, 12);
  EXPECT_NE(findings[1].message.find("ghost_norm_sq -> total"),
            std::string::npos);
}

TEST(GeodpLintR2, AnnotatedGhostNormUseIsExempt) {
  EXPECT_TRUE(
      LintFixture("r2_ghost_norm_leak.cc", "src/clip/ghost_export.cc")
          .empty());
}

TEST(GeodpLintR3, CheckMacroInDpFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r3_check_in_dp.cc", "src/dp/new_mechanism.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR3CheckAbort);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R3");
  EXPECT_EQ(findings[0].path, "src/dp/new_mechanism.cc");
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("GEODP_CHECK_GT"), std::string::npos);
}

TEST(GeodpLintR3, CheckMacroOutsideGuardedPathsIsAllowed) {
  EXPECT_TRUE(
      LintFixture("r3_check_in_dp.cc", "src/nn/half_life.cc").empty());
}

TEST(GeodpLintR3, AbortInCkptFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r3_abort_in_ckpt.cc", "src/ckpt/give_up.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR3CheckAbort);
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("abort"), std::string::npos);
}

TEST(GeodpLintR3, CheckMacroInClipFlagged) {
  // src/clip/ joined the R3 surface when ClipAndSum's empty-batch abort
  // was replaced with defined behavior: new hard-stops there must carry a
  // check-ok justification.
  const std::vector<Finding> findings =
      LintFixture("r3_check_in_dp.cc", "src/clip/new_strategy.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR3CheckAbort);
}

TEST(GeodpLintR3, AbortInClipFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r3_abort_in_ckpt.cc", "src/clip/give_up.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR3CheckAbort);
  EXPECT_EQ(findings[0].line, 8);
}

TEST(GeodpLintR4, HeaderWithoutGuardFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r4_missing_guard.h", "src/nn/gadget.h");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR4HeaderHygiene);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R4");
  EXPECT_EQ(findings[0].path, "src/nn/gadget.h");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("guard"), std::string::npos);
}

TEST(GeodpLintR4, UsingNamespaceInHeaderFlagged) {
  const std::vector<Finding> findings =
      LintFixture("r4_using_namespace.h", "src/nn/handy.h");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR4HeaderHygiene);
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("using namespace"), std::string::npos);
}

TEST(GeodpLintR4, IostreamInLibraryFlaggedButAllowedInTools) {
  const std::vector<Finding> findings =
      LintFixture("r4_iostream.cc", "src/tensor/debug_dump.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR4HeaderHygiene);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("<iostream>"), std::string::npos);

  EXPECT_TRUE(LintFixture("r4_iostream.cc", "tools/debug_dump.cc").empty());
}

TEST(GeodpLintR5, RawOfstreamFlaggedWithExactLocation) {
  const std::vector<Finding> findings =
      LintFixture("r5_raw_ofstream.cc", "src/obs/debug_dump.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR5RawIo);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R5");
  EXPECT_EQ(findings[0].path, "src/obs/debug_dump.cc");
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("ofstream"), std::string::npos);
  EXPECT_NE(findings[0].message.find("base/io"), std::string::npos);
}

TEST(GeodpLintR5, IoSubstrateItselfIsExempt) {
  // src/base/io/ is where the raw syscalls are supposed to live.
  EXPECT_TRUE(
      LintFixture("r5_raw_ofstream.cc", "src/base/io/file_io.cc").empty());
}

TEST(GeodpLintR5, ToolsAndTestsAreExempt) {
  EXPECT_TRUE(
      LintFixture("r5_raw_ofstream.cc", "tools/debug_dump.cc").empty());
  EXPECT_TRUE(
      LintFixture("r5_raw_ofstream.cc", "tests/some_test.cc").empty());
}

TEST(GeodpLintR5, RawIoOkAnnotationExcusesTheGuardedLine) {
  EXPECT_TRUE(
      LintFixture("r5_fopen_annotated.cc", "src/core/probe.cc").empty());
}

TEST(GeodpLintR5, UnannotatedFopenCallFlagged) {
  const std::string code = "std::FILE* f = std::fopen(path, \"wb\");\n";
  const std::vector<Finding> findings =
      LintContent("src/core/raw_fopen.cc", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR5RawIo);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("fopen"), std::string::npos);
}

TEST(GeodpLintR5, GlobalOpenCallFlaggedButMethodOpenIsNot) {
  const std::vector<Finding> findings = LintContent(
      "src/core/raw_open.cc", "int fd = ::open(path, O_RDONLY);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR5RawIo);

  // Method calls named Open/open (e.g. RetryingWriter::Open) are not raw
  // I/O, and neither is a qualified call on another class.
  EXPECT_TRUE(LintContent("src/core/method_open.cc",
                          "writer.open(path); RetryingWriter::open(x);\n")
                  .empty());
}

TEST(GeodpLintR5, NolintSuppressesTheFlaggedLine) {
  const std::string code =
      "std::ofstream out(path);  // geodp: nolint(R5) legacy escape\n";
  EXPECT_TRUE(LintContent("src/core/nolint_io.cc", code).empty());
}

TEST(GeodpLintAnn, MisspelledTagIsItselfAFinding) {
  const std::vector<Finding> findings =
      LintFixture("ann_bad_tag.cc", "src/core/answer.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kAnnotation);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "ANN");
  EXPECT_EQ(findings[0].path, "src/core/answer.cc");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_NE(findings[0].message.find("sensitvity-checked"),
            std::string::npos);
}

TEST(GeodpLintClean, BannedTokensInCommentsAndStringsAreIgnored) {
  EXPECT_TRUE(LintFixture("clean_library.cc", "src/core/clean.cc").empty());
}

TEST(GeodpLintEngine, StringLiteralsAndCommentsAreStripped) {
  const std::string code =
      "/* std::random_device in a block comment */\n"
      "const char* kDoc = \"srand(1); std::mt19937 gen;\";\n";
  EXPECT_TRUE(LintContent("src/core/strings.cc", code).empty());
}

TEST(GeodpLintEngine, DigitSeparatorDoesNotOpenCharLiteral) {
  // A naive scanner treats the ' in 1'000 as a char-literal open and eats
  // the rest of the line, hiding the violation that follows it.
  const std::string code = "int n = 1'000'000; std::mt19937 gen;\n";
  const std::vector<Finding> findings =
      LintContent("src/core/digits.cc", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR1Nondeterminism);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(GeodpLintEngine, MultiRuleNolintSuppressesBothRules) {
  const std::string annotation = "// geodp: nolint(R1,R3)\n";
  const std::string code =
      annotation + "GEODP_CHECK(std::time(nullptr) > 0);\n";
  EXPECT_TRUE(LintContent("src/dp/clocked.cc", code).empty());
}

TEST(GeodpLintEngine, NolintWithUnknownRuleIsAnnotationFinding) {
  const std::string code = "int x = 0;  // geodp: nolint(R9)\n";
  const std::vector<Finding> findings =
      LintContent("src/core/bad_nolint.cc", code);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kAnnotation);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(GeodpLintEngine, QualifiedNameProseIsNotAnAnnotation) {
  const std::string code = "// geodp::Rng is the seeded generator type.\n";
  EXPECT_TRUE(LintContent("src/core/prose.cc", code).empty());
}

TEST(GeodpLintEngine, VariableNamedTimeIsNotACall) {
  const std::string code = "double time = 0.0; double t2 = time + 1.0;\n";
  EXPECT_TRUE(LintContent("src/core/named_time.cc", code).empty());
}

TEST(GeodpLintFormat, FindingFormatIsStable) {
  const Finding finding{RuleId::kR1Nondeterminism, "src/a/b.cc", 12,
                        "message text"};
  EXPECT_EQ(FormatFinding(finding), "src/a/b.cc:12: [R1] message text");
}

TEST(GeodpLintR2v2, TaintThroughInnocentLocalFlaggedAtTheEscape) {
  // No per-sample-named identifier appears at the sink — only the taint
  // pass can connect the annotated parameter to the returned aggregate.
  const std::vector<Finding> findings =
      LintFixture("r2v2_taint_via_local.cc", "src/stats/norm_export.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[0].line, 12);
  EXPECT_NE(findings[0].message.find("escapes via local 'acc'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("through return"), std::string::npos);
  EXPECT_NE(findings[0].message.find("norms -> n -> acc"),
            std::string::npos);
}

TEST(GeodpLintR2v2, SensitivityCheckedAnnotationSanitizesTheLocal) {
  EXPECT_TRUE(
      LintFixture("r2v2_sanitized.cc", "src/stats/norm_export.cc").empty());
}

TEST(GeodpLintR2v2, GhostAccumulatorEscapesThroughCallAndReturn) {
  // Mirrors src/optim/ghost_grad.cc with its sensitivity-checked
  // annotation removed: the weights derived from ghost norms escape into
  // the model parameter and out through the return value.
  const std::vector<Finding> findings = LintFixture(
      "r2v2_ghost_accumulator.cc", "src/optim/ghost_accumulate.cc");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[0].line, 22);
  EXPECT_NE(
      findings[0].message.find("call 'Accumulate' on parameter 'model'"),
      std::string::npos);
  EXPECT_NE(findings[0].message.find("ghost_norm_sq -> weights"),
            std::string::npos);
  EXPECT_EQ(findings[1].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[1].line, 23);
  EXPECT_NE(findings[1].message.find("through return"), std::string::npos);
}

TEST(GeodpLintR2v2, FlightRecorderRecordOnALocalIsAReleaseSink) {
  // The fixture pairs two identical shapes: Record() on a local recorder
  // (must report — the ring buffer outlives the step and surfaces on
  // /flightz and in postmortems) and Add() on a local accumulator (must
  // stay a silent store). Exactly one finding proves the sink list, not
  // a broader rule change, is what bites.
  const std::vector<Finding> findings = LintFixture(
      "r2_flight_recorder_sink.cc", "src/optim/flight_note.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR2PrivacyBoundary);
  EXPECT_EQ(findings[0].line, 21);
  EXPECT_NE(findings[0].message.find("observability sink 'Record'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("sample_norm -> scaled"),
            std::string::npos);
}

TEST(GeodpLintR2v2, ClipSubsystemIsExemptFromTaintToo) {
  EXPECT_TRUE(
      LintFixture("r2v2_taint_via_local.cc", "src/clip/norm_export.cc")
          .empty());
  EXPECT_TRUE(
      LintFixture("r2v2_ghost_accumulator.cc", "src/clip/ghost.cc")
          .empty());
}

TEST(GeodpLintR6, RawCastFlaggedAndNolintSuppressed) {
  // The fixture seeds two casts; the second carries nolint(R6).
  const std::vector<Finding> findings =
      LintFixture("r6_reinterpret_cast.cc", "src/tensor/raw_cast.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR6ReinterpretCast);
  EXPECT_STREQ(RuleIdName(findings[0].rule), "R6");
  EXPECT_EQ(findings[0].path, "src/tensor/raw_cast.cc");
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_NE(findings[0].message.find("byte_view.h"), std::string::npos);
}

TEST(GeodpLintR6, ByteViewHeaderIsTheOneExemption) {
  EXPECT_TRUE(
      LintFixture("r6_in_byte_view.h", "src/base/byte_view.h").empty());

  const std::vector<Finding> findings =
      LintFixture("r6_in_byte_view.h", "src/obs/pun_helper.h");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, RuleId::kR6ReinterpretCast);
  EXPECT_EQ(findings[0].line, 11);
}

TEST(GeodpLintR6, TestsAndToolsAreCoveredToo) {
  // Unlike R2/R5, the cast ban has no test/tool exemption: byte_view.h is
  // usable everywhere, so there is no reason to pun around it.
  const std::string code = "char* p = reinterpret_cast<char*>(&x);\n";
  EXPECT_EQ(LintContent("tests/some_test.cc", code).size(), 1u);
  EXPECT_EQ(LintContent("tools/some_tool.cc", code).size(), 1u);
}

TEST(GeodpLintTokenizer, RawStringWithDelimiterIsOneToken) {
  const std::vector<Token> tokens =
      Tokenize("auto s = R\"x(no \"escape\" here)x\";");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "R\"x(no \"escape\" here)x\"");
}

TEST(GeodpLintTokenizer, HexFloatAndDigitSeparatorAreSingleNumbers) {
  const std::vector<Token> tokens = Tokenize("0x1.8p-3 1'000'000ull");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].text, "0x1.8p-3");
  EXPECT_EQ(tokens[1].text, "1'000'000ull");
}

TEST(GeodpLintTokenizer, PunctuatorsMatchLongestFirst) {
  const std::vector<Token> tokens = Tokenize("a <<= b->*c;");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_TRUE(tokens[1].Is("<<="));
  EXPECT_TRUE(tokens[3].Is("->*"));
}

TEST(GeodpLintTokenizer, CommentsArePreservedWithPositions) {
  const std::vector<Token> tokens =
      Tokenize("int x;  // geodp: per-sample\n/* block */ int y;");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[3].text, "// geodp: per-sample");
  EXPECT_EQ(tokens[3].line, 1);
  EXPECT_EQ(tokens[4].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[4].line, 2);
}

TEST(GeodpLintTokenizer, BackslashContinuationExtendsLineComment) {
  // A line comment ending in a backslash swallows the next line — the
  // mt19937 below is commented out and must not be a finding.
  const std::string code = "// hidden \\\nstd::mt19937 gen;\nint x;\n";
  EXPECT_TRUE(LintContent("src/core/cont.cc", code).empty());
}

TEST(GeodpLintFile, MissingFileIsNotFound) {
  StatusOr<std::vector<Finding>> result =
      LintFile(FixturePath("does_not_exist.cc"), "src/x.cc");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace lint
}  // namespace geodp
