// Tests for the membership-inference attack harness and the adaptive-beta
// extension.

#include <gtest/gtest.h>

#include "attack/membership_inference.h"
#include "base/rng.h"
#include "core/spherical.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "optim/adaptive_beta.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(ComputeAuc({3.0, 4.0}, {1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(ComputeAuc({1.0, 2.0}, {3.0, 4.0}), 0.0);
}

TEST(AucTest, IdenticalScoresAreChance) {
  EXPECT_DOUBLE_EQ(ComputeAuc({1.0, 1.0}, {1.0, 1.0}), 0.5);
}

TEST(AucTest, InterleavedScores) {
  // members {1,3}, nonmembers {2,4}: wins = (1>2?0)+(1>4?0)+(3>2?1)+(3>4?0)
  // = 1 of 4.
  EXPECT_DOUBLE_EQ(ComputeAuc({1.0, 3.0}, {2.0, 4.0}), 0.25);
}

TEST(AdvantageTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(ComputeAdvantage({3.0, 4.0}, {1.0, 2.0}), 1.0);
}

TEST(AdvantageTest, NoSeparation) {
  EXPECT_NEAR(ComputeAdvantage({1.0, 2.0}, {1.0, 2.0}), 0.0, 1e-12);
}

TEST(MiaTest, OverfitModelLeaksMembership) {
  // Train a model hard on a tiny member set; the loss-threshold attack
  // should separate members from fresh non-members well above chance.
  SyntheticImageOptions options;
  options.num_examples = 160;
  options.height = 8;
  options.width = 8;
  options.pixel_noise = 0.3;
  options.seed = 5;
  InMemoryDataset members = MakeSyntheticImages(options);
  InMemoryDataset nonmembers = members.SplitTail(80);

  Rng rng(6);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions trainer_options;
  trainer_options.method = PerturbationMethod::kNoiseFree;
  trainer_options.batch_size = 40;
  trainer_options.iterations = 400;
  trainer_options.learning_rate = 3.0;
  trainer_options.clip_threshold = 1.0;
  trainer_options.seed = 7;
  DpTrainer trainer(model.get(), &members, nullptr, trainer_options);
  trainer.Train();

  const MiaResult result = RunLossThresholdAttack(*model, members, nonmembers);
  EXPECT_GT(result.auc, 0.6);
  EXPECT_GT(result.advantage, 0.1);
  EXPECT_LT(result.mean_member_loss, result.mean_nonmember_loss);
  EXPECT_EQ(result.members, 80);
  EXPECT_EQ(result.nonmembers, 80);
}

TEST(MiaTest, DpNoiseReducesAttackSuccess) {
  SyntheticImageOptions options;
  options.num_examples = 160;
  options.height = 8;
  options.width = 8;
  options.pixel_noise = 0.3;
  options.seed = 8;
  InMemoryDataset members = MakeSyntheticImages(options);
  InMemoryDataset nonmembers = members.SplitTail(80);

  auto attack_auc = [&](PerturbationMethod method, double sigma) {
    Rng rng(9);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions trainer_options;
    trainer_options.method = method;
    trainer_options.batch_size = 40;
    trainer_options.iterations = 400;
    trainer_options.learning_rate = 3.0;
    trainer_options.clip_threshold = 1.0;
    trainer_options.noise_multiplier = sigma;
    trainer_options.beta = 0.005;
    trainer_options.seed = 10;
    DpTrainer trainer(model.get(), &members, nullptr, trainer_options);
    trainer.Train();
    return RunLossThresholdAttack(*model, members, nonmembers).auc;
  };

  const double auc_free = attack_auc(PerturbationMethod::kNoiseFree, 0.0);
  const double auc_dp = attack_auc(PerturbationMethod::kDp, 4.0);
  EXPECT_LT(auc_dp, auc_free);
}

TEST(AdaptiveBetaTest, StartsAtCeiling) {
  AdaptiveBetaController controller(0.001, 0.8);
  EXPECT_DOUBLE_EQ(controller.CurrentBeta(), 0.8);
}

TEST(AdaptiveBetaTest, ConcentratedDirectionsGiveSmallBeta) {
  AdaptiveBetaController controller(0.001, 1.0, /*safety_factor=*/1.5);
  Rng rng(11);
  SphericalCoordinates base;
  base.magnitude = 1.0;
  base.angles = {1.5, 1.5, 1.5, 0.2};
  for (int i = 0; i < 50; ++i) {
    SphericalCoordinates jittered = base;
    for (double& a : jittered.angles) a += rng.Gaussian(0.0, 0.01);
    controller.Observe(jittered);
  }
  EXPECT_LT(controller.CurrentBeta(), 0.1);
  EXPECT_GE(controller.CurrentBeta(), 0.001);
}

TEST(AdaptiveBetaTest, WideDirectionsGiveLargeBeta) {
  AdaptiveBetaController controller(0.001, 1.0);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    SphericalCoordinates direction;
    direction.magnitude = 1.0;
    direction.angles = {rng.Uniform(0.0, 3.1), rng.Uniform(0.0, 3.1),
                        rng.Uniform(-3.1, 3.1)};
    controller.Observe(direction);
  }
  EXPECT_GT(controller.CurrentBeta(), 0.5);
}

TEST(AdaptiveBetaTest, FloorIsRespected) {
  AdaptiveBetaController controller(0.05, 1.0);
  SphericalCoordinates constant;
  constant.magnitude = 1.0;
  constant.angles = {1.0, 1.0};
  for (int i = 0; i < 20; ++i) controller.Observe(constant);
  EXPECT_DOUBLE_EQ(controller.CurrentBeta(), 0.05);
}

TEST(AdaptiveBetaTest, TrainerIntegration) {
  SyntheticImageOptions options;
  options.num_examples = 128;
  options.height = 8;
  options.width = 8;
  options.seed = 13;
  InMemoryDataset train = MakeSyntheticImages(options);
  Rng rng(14);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions trainer_options;
  trainer_options.method = PerturbationMethod::kGeoDp;
  trainer_options.adaptive_beta = true;
  trainer_options.adaptive_beta_floor = 0.001;
  trainer_options.batch_size = 32;
  trainer_options.iterations = 30;
  trainer_options.learning_rate = 1.0;
  trainer_options.noise_multiplier = 1.0;
  trainer_options.seed = 15;
  DpTrainer trainer(model.get(), &train, nullptr, trainer_options);
  const TrainingResult result = trainer.Train();
  EXPECT_GT(result.final_beta, 0.0);
  EXPECT_LT(result.final_beta, 1.0);  // adapted below the ceiling
}

}  // namespace
}  // namespace geodp
