#include "models/mlp.h"

#include "base/check.h"
#include "nn/activations.h"
#include "nn/flatten.h"
#include "nn/linear.h"

namespace geodp {

std::unique_ptr<Sequential> MakeMlp(const MlpConfig& config, Rng& rng) {
  GEODP_CHECK_GT(config.input_dim, 0);
  GEODP_CHECK_GT(config.num_classes, 1);
  auto model = std::make_unique<Sequential>("MLP");
  model->Emplace<Flatten>();
  int64_t in_features = config.input_dim;
  for (int64_t hidden : config.hidden_dims) {
    GEODP_CHECK_GT(hidden, 0);
    model->Emplace<Linear>(in_features, hidden, rng);
    model->Emplace<ReLU>();
    in_features = hidden;
  }
  model->Emplace<Linear>(in_features, config.num_classes, rng);
  return model;
}

}  // namespace geodp
