// Tests for the optimizer layer: SGD, DP-Adam, per-sample gradients,
// perturbation-method plumbing and the IS / SUR techniques.

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "clip/clipping.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "nn/sequential.h"
#include "optim/dp_adam.h"
#include "optim/dp_sgd.h"
#include "optim/fast_linear_grad.h"
#include "optim/geodp_sgd.h"
#include "optim/sgd.h"
#include "optim/techniques.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize f(w) = ||w - target||^2 by hand-written gradients.
  Parameter w("w", Tensor::Vector({5.0f, -3.0f}));
  const Tensor target = Tensor::Vector({1.0f, 2.0f});
  Sgd sgd({&w}, {.learning_rate = 0.1});
  for (int step = 0; step < 200; ++step) {
    sgd.ZeroGrad();
    w.grad = Scale(Sub(w.value, target), 2.0f);
    sgd.Step();
  }
  EXPECT_LT(MaxAbsDiff(w.value, target), 1e-3);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  auto run = [](double momentum) {
    Parameter w("w", Tensor::Vector({5.0f}));
    const Tensor target = Tensor::Vector({0.0f});
    Sgd sgd({&w}, {.learning_rate = 0.01, .momentum = momentum});
    for (int step = 0; step < 50; ++step) {
      sgd.ZeroGrad();
      w.grad = Scale(Sub(w.value, target), 2.0f);
      sgd.Step();
    }
    return std::fabs(w.value[0]);
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(FlatAdamTest, ConvergesOnQuadratic) {
  Parameter w("w", Tensor::Vector({5.0f, -3.0f, 2.0f}));
  const Tensor target = Tensor::Vector({1.0f, 2.0f, -1.0f});
  std::vector<Parameter*> params = {&w};
  FlatAdam adam(3, {.learning_rate = 0.1});
  for (int step = 0; step < 500; ++step) {
    const Tensor grad = Scale(Sub(w.value, target), 2.0f);
    adam.Step(params, grad);
  }
  EXPECT_LT(MaxAbsDiff(w.value, target), 1e-2);
  EXPECT_EQ(adam.step_count(), 500);
}

TEST(PerSampleGradientTest, AverageMatchesBatchGradient) {
  // With a no-op clipper (huge C), the average of per-sample gradients must
  // equal the batch gradient of the mean loss.
  Rng rng(1);
  SyntheticImageOptions data_options;
  data_options.num_examples = 8;
  data_options.height = 6;
  data_options.width = 6;
  const InMemoryDataset ds = MakeSyntheticImages(data_options);

  auto model = MakeLogisticRegression(36, 10, rng);
  SoftmaxCrossEntropy loss;
  const FlatClipper no_clip(1e9);
  std::vector<int64_t> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  const PrivateBatchGradient per_sample =
      ComputePerSampleGradients(*model, loss, ds, indices, no_clip);

  // Batch gradient.
  const auto params = model->Parameters();
  ZeroGradients(params);
  const Tensor x = ds.StackImages(indices);
  loss.Forward(model->Forward(x), ds.GatherLabels(indices));
  model->Backward(loss.Backward());
  const Tensor batch_grad = FlattenGradients(params);

  EXPECT_LT(MaxAbsDiff(per_sample.averaged_raw, batch_grad), 1e-4);
  EXPECT_LT(MaxAbsDiff(per_sample.averaged_clipped, batch_grad), 1e-4);
}

TEST(PerSampleGradientTest, ClippingBoundsEachContribution) {
  Rng rng(2);
  SyntheticImageOptions data_options;
  data_options.num_examples = 4;
  data_options.height = 6;
  data_options.width = 6;
  const InMemoryDataset ds = MakeSyntheticImages(data_options);
  auto model = MakeLogisticRegression(36, 10, rng);
  SoftmaxCrossEntropy loss;
  const FlatClipper clipper(0.01);
  const PrivateBatchGradient result =
      ComputePerSampleGradients(*model, loss, ds, {0, 1, 2, 3}, clipper);
  // Averaged clipped gradient norm is at most C.
  EXPECT_LE(result.averaged_clipped.L2Norm(), 0.01 + 1e-6);
  EXPECT_EQ(result.batch_size, 4);
  EXPECT_EQ(result.sample_losses.size(), 4u);
}

TEST(PerSampleGradientTest, MeanLossMatchesSampleLosses) {
  Rng rng(3);
  SyntheticImageOptions data_options;
  data_options.num_examples = 4;
  data_options.height = 6;
  data_options.width = 6;
  const InMemoryDataset ds = MakeSyntheticImages(data_options);
  auto model = MakeLogisticRegression(36, 10, rng);
  SoftmaxCrossEntropy loss;
  const FlatClipper clipper(0.1);
  const PrivateBatchGradient result =
      ComputePerSampleGradients(*model, loss, ds, {0, 1, 2, 3}, clipper);
  double mean = 0.0;
  for (double l : result.sample_losses) mean += l;
  mean /= 4.0;
  EXPECT_NEAR(result.mean_loss, mean, 1e-9);
}

TEST(FastLinearGradTest, MatchesLoopPathExactly) {
  // The batched outer-product path must agree with the per-sample loop for
  // a Flatten+Linear model under flat clipping.
  Rng rng(41);
  SyntheticImageOptions data_options;
  data_options.num_examples = 16;
  data_options.height = 6;
  data_options.width = 6;
  data_options.seed = 42;
  const InMemoryDataset ds = MakeSyntheticImages(data_options);
  auto model = MakeLogisticRegression(36, 10, rng);
  SoftmaxCrossEntropy loss;
  const FlatClipper clipper(0.05);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 16; ++i) indices.push_back(i);

  const PrivateBatchGradient loop =
      ComputePerSampleGradients(*model, loss, ds, indices, clipper);

  const auto params = model->Parameters();
  const Tensor x = ds.StackImages(indices).Reshape({16, 36});
  const PrivateBatchGradient fast = ComputeLinearPerSampleGradients(
      x, ds.GatherLabels(indices), params[0]->value, params[1]->value,
      ClipThreshold(0.05));

  EXPECT_NEAR(loop.mean_loss, fast.mean_loss, 1e-6);
  EXPECT_LT(MaxAbsDiff(loop.averaged_clipped, fast.averaged_clipped), 1e-5);
  EXPECT_LT(MaxAbsDiff(loop.averaged_raw, fast.averaged_raw), 1e-5);
  ASSERT_EQ(loop.sample_losses.size(), fast.sample_losses.size());
  for (size_t i = 0; i < loop.sample_losses.size(); ++i) {
    EXPECT_NEAR(loop.sample_losses[i], fast.sample_losses[i], 1e-6);
  }
}

TEST(FastLinearGradTest, ClipBoundHolds) {
  Rng rng(43);
  const Tensor x = Tensor::Randn({8, 12}, rng, 5.0f);
  const Tensor w = Tensor::Randn({4, 12}, rng);
  const Tensor b = Tensor::Randn({4}, rng);
  const std::vector<int64_t> labels = {0, 1, 2, 3, 0, 1, 2, 3};
  const PrivateBatchGradient result =
      ComputeLinearPerSampleGradients(x, labels, w, b, ClipThreshold(0.02));
  EXPECT_LE(result.averaged_clipped.L2Norm(), 0.02 + 1e-6);
}

TEST(EvaluateTest, LossAndAccuracyAreConsistent) {
  Rng rng(4);
  SyntheticImageOptions data_options;
  data_options.num_examples = 50;
  data_options.height = 6;
  data_options.width = 6;
  const InMemoryDataset ds = MakeSyntheticImages(data_options);
  auto model = MakeLogisticRegression(36, 10, rng);
  const double loss_all = EvaluateMeanLoss(*model, ds);
  const double loss_capped = EvaluateMeanLoss(*model, ds, /*max_examples=*/50);
  EXPECT_NEAR(loss_all, loss_capped, 1e-9);
  const double acc = EvaluateAccuracy(*model, ds);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(PerturbationMethodTest, ParseAndName) {
  EXPECT_EQ(ParsePerturbationMethod("none"), PerturbationMethod::kNoiseFree);
  EXPECT_EQ(ParsePerturbationMethod("dp"), PerturbationMethod::kDp);
  EXPECT_EQ(ParsePerturbationMethod("geodp"), PerturbationMethod::kGeoDp);
  EXPECT_EQ(PerturbationMethodName(PerturbationMethod::kGeoDp), "GeoDP");
}

TEST(PerturbationMethodTest, FactoryBuildsEachKind) {
  PerturbationOptions base;
  base.clip_threshold = 0.1;
  base.batch_size = 4;
  base.noise_multiplier = 1.0;
  EXPECT_EQ(MakePerturberForMethod(PerturbationMethod::kNoiseFree, base, 0.1)
                ->name(),
            "none");
  EXPECT_EQ(MakePerturberForMethod(PerturbationMethod::kDp, base, 0.1)->name(),
            "DP");
  EXPECT_EQ(
      MakePerturberForMethod(PerturbationMethod::kGeoDp, base, 0.1)->name(),
      "GeoDP");
}

TEST(PerturbationMethodTest, IdentityPerturberIsIdentity) {
  IdentityPerturber identity;
  Rng rng(5);
  const Tensor g = Tensor::Vector({1, 2, 3});
  EXPECT_TRUE(AllClose(identity.Perturb(g, rng), g));
}

TEST(ImportanceSamplerTest, PrefersHighLossExamples) {
  ImportanceSampler sampler(4, 1000, /*seed=*/6);
  sampler.UpdateLoss(0, 10.0);
  sampler.UpdateLoss(1, 0.01);
  sampler.UpdateLoss(2, 0.01);
  sampler.UpdateLoss(3, 0.01);
  const auto batch = sampler.NextBatch();
  int count0 = 0;
  for (int64_t i : batch) {
    if (i == 0) ++count0;
  }
  // Example 0 holds ~99.7% of the weight mass.
  EXPECT_GT(count0, 900);
}

TEST(ImportanceSamplerTest, EmaUpdatesWeights) {
  ImportanceSampler sampler(2, 1, /*seed=*/7, /*ema=*/0.5);
  sampler.UpdateLoss(0, 4.0);
  EXPECT_DOUBLE_EQ(sampler.weight(0), 4.0);  // first observation replaces
  sampler.UpdateLoss(0, 2.0);
  EXPECT_DOUBLE_EQ(sampler.weight(0), 3.0);  // 0.5*4 + 0.5*2
}

TEST(ImportanceSamplerTest, AllIndicesReachable) {
  ImportanceSampler sampler(5, 500, /*seed=*/8);
  const auto batch = sampler.NextBatch();
  std::vector<bool> seen(5, false);
  for (int64_t i : batch) seen[static_cast<size_t>(i)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SelectiveUpdaterTest, AcceptsImprovement) {
  SelectiveUpdater updater(0.0);
  EXPECT_TRUE(updater.ShouldAccept(1.0, 0.9));
  EXPECT_FALSE(updater.ShouldAccept(1.0, 1.1));
  EXPECT_EQ(updater.accepted(), 1);
  EXPECT_EQ(updater.rejected(), 1);
}

TEST(SelectiveUpdaterTest, ToleranceAllowsSmallRegressions) {
  SelectiveUpdater updater(0.2);
  EXPECT_TRUE(updater.ShouldAccept(1.0, 1.1));
  EXPECT_FALSE(updater.ShouldAccept(1.0, 1.3));
}

}  // namespace
}  // namespace geodp
