#include "optim/techniques.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace geodp {

ImportanceSampler::ImportanceSampler(int64_t dataset_size, int64_t batch_size,
                                     uint64_t seed, double ema)
    : dataset_size_(dataset_size),
      batch_size_(batch_size),
      ema_(ema),
      rng_(seed),
      weights_(static_cast<size_t>(dataset_size), 1.0),
      seen_(static_cast<size_t>(dataset_size), false) {
  GEODP_CHECK_GT(dataset_size_, 0);
  GEODP_CHECK_GT(batch_size_, 0);
  GEODP_CHECK(ema_ >= 0.0 && ema_ < 1.0);
}

std::vector<int64_t> ImportanceSampler::NextBatch() {
  double total = 0.0;
  for (double w : weights_) total += w;
  GEODP_CHECK_GT(total, 0.0);
  std::vector<int64_t> batch;
  batch.reserve(static_cast<size_t>(batch_size_));
  for (int64_t b = 0; b < batch_size_; ++b) {
    double target = rng_.Uniform() * total;
    int64_t chosen = dataset_size_ - 1;
    for (int64_t i = 0; i < dataset_size_; ++i) {
      target -= weights_[static_cast<size_t>(i)];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    batch.push_back(chosen);
  }
  return batch;
}

void ImportanceSampler::UpdateLoss(int64_t index, double loss) {
  GEODP_CHECK(index >= 0 && index < dataset_size_);
  // A NaN/Inf loss (sample skipped by the non-finite guard) would poison
  // the EMA and make the weight table unusable; ignore it.
  if (!std::isfinite(loss)) return;
  // Floor keeps every example reachable.
  const double value = std::max(loss, 1e-3);
  double& w = weights_[static_cast<size_t>(index)];
  if (seen_[static_cast<size_t>(index)]) {
    w = ema_ * w + (1.0 - ema_) * value;
  } else {
    w = value;
    seen_[static_cast<size_t>(index)] = true;
  }
}

double ImportanceSampler::weight(int64_t index) const {
  GEODP_CHECK(index >= 0 && index < dataset_size_);
  return weights_[static_cast<size_t>(index)];
}

ImportanceSamplerState ImportanceSampler::ExportState() const {
  ImportanceSamplerState state;
  state.rng = rng_.ExportState();
  state.weights = weights_;
  state.seen.assign(seen_.begin(), seen_.end());
  return state;
}

void ImportanceSampler::ImportState(const ImportanceSamplerState& state) {
  GEODP_CHECK_EQ(state.weights.size(), weights_.size());
  GEODP_CHECK_EQ(state.seen.size(), seen_.size());
  rng_.ImportState(state.rng);
  weights_ = state.weights;
  seen_.assign(state.seen.begin(), state.seen.end());
}

SelectiveUpdater::SelectiveUpdater(double tolerance) : tolerance_(tolerance) {
  GEODP_CHECK_GE(tolerance_, 0.0);
}

void SelectiveUpdater::RestoreCounts(int64_t accepted, int64_t rejected) {
  GEODP_CHECK_GE(accepted, 0);
  GEODP_CHECK_GE(rejected, 0);
  accepted_ = accepted;
  rejected_ = rejected;
}

bool SelectiveUpdater::ShouldAccept(double loss_before, double loss_after) {
  const bool accept = loss_after <= loss_before + tolerance_;
  if (accept) {
    ++accepted_;
  } else {
    ++rejected_;
  }
  return accept;
}

}  // namespace geodp
