#include "dp/analytic_gaussian.h"

#include <cmath>
#include <sstream>

#include "base/check.h"

namespace geodp {

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double AnalyticGaussianDelta(double sigma, double epsilon) {
  // Documented preconditions of a pure math helper; the Status-returning
  // entry points validate user input before reaching this.
  GEODP_CHECK_GT(sigma, 0.0);      // geodp: check-ok
  GEODP_CHECK_GT(epsilon, 0.0);    // geodp: check-ok
  const double a = 1.0 / (2.0 * sigma);
  return StandardNormalCdf(a - epsilon * sigma) -
         std::exp(epsilon) * StandardNormalCdf(-a - epsilon * sigma);
}

StatusOr<double> AnalyticGaussianSigma(double epsilon, double delta,
                                       double tolerance) {
  if (!(epsilon > 0.0)) {
    std::ostringstream message;
    message << "epsilon must be > 0, got " << epsilon;
    return Status::InvalidArgument(message.str());
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    std::ostringstream message;
    message << "delta must be in (0, 1), got " << delta;
    return Status::InvalidArgument(message.str());
  }
  if (!(tolerance > 0.0)) {
    std::ostringstream message;
    message << "tolerance must be > 0, got " << tolerance;
    return Status::InvalidArgument(message.str());
  }
  // AnalyticGaussianDelta is decreasing in sigma; bracket then bisect.
  double lo = 1e-6;
  double hi = 1.0;
  while (AnalyticGaussianDelta(hi, epsilon) > delta) {
    hi *= 2.0;
    if (hi >= 1e12) {
      std::ostringstream message;
      message << "failed to bracket sigma for epsilon=" << epsilon
              << " delta=" << delta;
      return Status::OutOfRange(message.str());
    }
  }
  while (hi - lo > 1e-12 * hi) {
    const double mid = 0.5 * (lo + hi);
    const double d = AnalyticGaussianDelta(mid, epsilon);
    if (std::fabs(d - delta) <= tolerance) return mid;
    if (d > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace geodp
