// Theorems 2-3 (modeling of averaged stochastic gradients / directions):
// batch-averaged gradient coordinates and angle coordinates approach a
// Gaussian as B grows, and per-sample directions concentrate in a
// subspace rather than covering the whole sphere — the two facts that
// justify GeoDP's bounded privacy region.

#include "base/rng.h"
#include "common/bench_util.h"
#include "core/spherical.h"
#include "stats/direction_stats.h"
#include "stats/normality.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Theorems 2-3 (CLT modeling of averaged gradients and directions)",
      "averaged per-sample gradients/directions follow a Gaussian whose "
      "spread shrinks with B; directions concentrate",
      "harvested CNN gradients, d=256; skewness/kurtosis/Jarque-Bera of a "
      "fixed angle coordinate across 800 batch draws");

  const GradientDataset data = HarvestedGradients(256, /*count=*/512);

  TablePrinter clt({"B", "angle mean", "angle stddev", "skewness",
                    "excess kurtosis", "Jarque-Bera"});
  for (int64_t batch : {1, 4, 16, 64, 256}) {
    const std::vector<double> samples = SampleAveragedAngleCoordinate(
        data, batch, /*angle_index=*/0, /*trials=*/800, /*seed=*/99);
    const NormalityReport report = AnalyzeNormality(samples);
    clt.AddRow({std::to_string(batch), TablePrinter::Fmt(report.mean),
                TablePrinter::Fmt(report.stddev, 5),
                TablePrinter::Fmt(report.skewness, 3),
                TablePrinter::Fmt(report.excess_kurtosis, 3),
                TablePrinter::Fmt(report.jarque_bera, 1)});
  }
  PrintTable(clt);

  PrintBanner(
      "Direction concentration (Theorem 3 corollary, paper Sec. V-C1)",
      "averaged directions concentrate at a certain direction, so a "
      "bounded privacy region (beta < 1) suffices",
      "cosine alignment to the mean direction and the empirical beta "
      "(mean covered fraction of each angle's range)");

  TablePrinter conc({"dataset", "mean cos to center", "mean angle stddev",
                     "empirical beta"});
  const DirectionConcentration harvested =
      AnalyzeDirectionConcentration(data);
  conc.AddRow({"harvested CNN gradients",
               TablePrinter::Fmt(harvested.mean_cosine_to_center),
               TablePrinter::Fmt(harvested.mean_angle_stddev),
               TablePrinter::Fmt(harvested.empirical_beta, 3)});
  const GradientDataset concentrated =
      MakeConcentratedGradientDataset(512, 256, 0.05, 1.0, 7);
  const DirectionConcentration tight =
      AnalyzeDirectionConcentration(concentrated);
  conc.AddRow({"concentrated synthetic",
               TablePrinter::Fmt(tight.mean_cosine_to_center),
               TablePrinter::Fmt(tight.mean_angle_stddev),
               TablePrinter::Fmt(tight.empirical_beta, 3)});
  const GradientDataset isotropic =
      MakeConcentratedGradientDataset(512, 256, 1e6, 1.0, 8);
  const DirectionConcentration loose =
      AnalyzeDirectionConcentration(isotropic);
  conc.AddRow({"isotropic synthetic",
               TablePrinter::Fmt(loose.mean_cosine_to_center),
               TablePrinter::Fmt(loose.mean_angle_stddev),
               TablePrinter::Fmt(loose.empirical_beta, 3)});
  PrintTable(conc);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
