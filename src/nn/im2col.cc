#include "nn/im2col.h"

#include <algorithm>

#include "base/check.h"
#include "base/simd/kernels.h"
#include "base/thread_pool.h"

namespace geodp {
namespace {

// Column-matrix rows (one per (c, kh, kw) triple) per ParallelFor chunk.
// Each row is written entirely by one chunk, so the unfold is exact at
// any thread count.
constexpr int64_t kIm2ColRowGrain = 4;

}  // namespace

Tensor Im2Col(const Tensor& image, int64_t kernel_size, int64_t padding) {
  GEODP_CHECK_EQ(image.ndim(), 3);
  GEODP_CHECK_GT(kernel_size, 0);
  GEODP_CHECK_GE(padding, 0);
  const int64_t channels = image.dim(0);
  const int64_t height = image.dim(1);
  const int64_t width = image.dim(2);
  const int64_t out_h = height + 2 * padding - kernel_size + 1;
  const int64_t out_w = width + 2 * padding - kernel_size + 1;
  GEODP_CHECK_GT(out_h, 0);
  GEODP_CHECK_GT(out_w, 0);

  Tensor columns({channels * kernel_size * kernel_size, out_h * out_w});
  Im2ColInto(image.data(), channels, height, width, kernel_size, padding,
             columns.data());
  return columns;
}

void Im2ColInto(const float* image, int64_t channels, int64_t height,
                int64_t width, int64_t kernel_size, int64_t padding,
                float* columns) {
  const int64_t out_h = height + 2 * padding - kernel_size + 1;
  const int64_t out_w = width + 2 * padding - kernel_size + 1;
  const float* src = image;
  float* dst = columns;
  const int64_t spatial = out_h * out_w;
  const int64_t num_rows = channels * kernel_size * kernel_size;
  ParallelFor(0, num_rows, kIm2ColRowGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t row = lo; row < hi; ++row) {
      const int64_t c = row / (kernel_size * kernel_size);
      const int64_t kh = (row / kernel_size) % kernel_size;
      const int64_t kw = row % kernel_size;
      float* out_row = dst + row * spatial;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        const int64_t ih = oh + kh - padding;
        if (ih < 0 || ih >= height) {
          // width 0: every read is out of bounds, so the row zero-fills.
          simd::PadCopyRow(out_row + oh * out_w, src, out_w,
                           /*shift=*/0, /*width=*/0);
          continue;
        }
        const float* src_row = src + (c * height + ih) * width;
        simd::PadCopyRow(out_row + oh * out_w, src_row, out_w,
                         /*shift=*/kw - padding, width);
      }
    }
  });
}

Tensor Col2Im(const Tensor& columns, int64_t channels, int64_t height,
              int64_t width, int64_t kernel_size, int64_t padding) {
  GEODP_CHECK_EQ(columns.ndim(), 2);
  const int64_t out_h = height + 2 * padding - kernel_size + 1;
  const int64_t out_w = width + 2 * padding - kernel_size + 1;
  GEODP_CHECK_EQ(columns.dim(0), channels * kernel_size * kernel_size);
  GEODP_CHECK_EQ(columns.dim(1), out_h * out_w);

  Tensor image({channels, height, width});
  Col2ImInto(columns.data(), channels, height, width, kernel_size, padding,
             image.data());
  return image;
}

void Col2ImInto(const float* columns, int64_t channels, int64_t height,
                int64_t width, int64_t kernel_size, int64_t padding,
                float* image) {
  const int64_t out_h = height + 2 * padding - kernel_size + 1;
  const int64_t out_w = width + 2 * padding - kernel_size + 1;
  const float* src = columns;
  float* dst = image;
  const int64_t spatial = out_h * out_w;
  // Overlapping receptive fields of one channel scatter into the same
  // image plane, so the fold parallelizes over channels (disjoint planes);
  // within a channel the kernel loops keep their serial accumulation
  // order, so the result is bit-identical at any thread count.
  ParallelFor(0, channels, /*grain=*/1, [&](int64_t c_begin, int64_t c_end) {
    for (int64_t c = c_begin; c < c_end; ++c) {
      int64_t row = c * kernel_size * kernel_size;
      for (int64_t kh = 0; kh < kernel_size; ++kh) {
        for (int64_t kw = 0; kw < kernel_size; ++kw, ++row) {
          const float* src_row = src + row * spatial;
          // The in-bounds part of each output row is one contiguous span:
          // ow in [ow_lo, ow_hi) maps to iw = ow + kw - padding.
          const int64_t ow_lo = std::max<int64_t>(0, padding - kw);
          const int64_t ow_hi =
              std::min<int64_t>(out_w, width - kw + padding);
          for (int64_t oh = 0; oh < out_h; ++oh) {
            const int64_t ih = oh + kh - padding;
            if (ih < 0 || ih >= height) continue;
            if (ow_hi <= ow_lo) continue;
            float* dst_row = dst + (c * height + ih) * width;
            simd::Add(dst_row + ow_lo + kw - padding,
                      src_row + oh * out_w + ow_lo, ow_hi - ow_lo);
          }
        }
      }
    }
  });
}

}  // namespace geodp
