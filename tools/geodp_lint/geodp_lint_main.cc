// CLI for geodp_lint. Lints the whole tree by default:
//
//   geodp_lint [--root <repo-root>] [files...]
//
// With explicit files, each is linted under its path relative to --root
// (rule applicability depends on the repo-relative path). Exit codes:
// 0 clean, 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "geodp_lint/lint.h"

namespace {

int Usage() {
  std::printf(
      "usage: geodp_lint [--root <repo-root>] [--list-rules] [files...]\n"
      "Lints the GeoDP tree (src/, tools/, examples/, bench/, tests/) for\n"
      "privacy-invariant and determinism violations. See "
      "docs/static_analysis.md.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using geodp::lint::Finding;
  using geodp::lint::FormatFinding;

  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::strlen("--root="));
    } else if (arg == "--list-rules") {
      std::printf(
          "R1   nondeterminism ban (random_device, mt19937, rand, time, "
          "::now, ... outside src/base/rng.* and src/base/timer.*)\n"
          "R2   per-sample gradient data escaping src/clip/ without a "
          "geodp: per-sample / sensitivity-checked annotation (name scan "
          "plus per-function taint dataflow)\n"
          "R3   CHECK/abort in Status-returning library paths (src/ckpt/, "
          "src/dp/, src/optim/trainer*) without geodp: check-ok\n"
          "R4   header hygiene: include guards, no `using namespace` in "
          "headers, no <iostream> in library code\n"
          "R5   raw file I/O (fopen, std::ofstream, ::open) outside "
          "src/base/io/ without geodp: raw-io-ok\n"
          "R6   reinterpret_cast outside the audited src/base/byte_view.h "
          "helper\n"
          "ANN  malformed `// geodp: ...` annotation\n");
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  std::vector<Finding> findings;
  if (files.empty()) {
    geodp::StatusOr<std::vector<Finding>> result =
        geodp::lint::LintTree(root);
    if (!result.ok()) {
      std::fprintf(stderr, "geodp_lint: %s\n",
                   result.status().ToString().c_str());
      return 2;
    }
    findings = std::move(result).value();
  } else {
    for (const std::string& file : files) {
      std::error_code ec;
      std::string rel =
          std::filesystem::relative(file, root, ec).generic_string();
      if (ec || rel.empty() || rel.rfind("..", 0) == 0) rel = file;
      geodp::StatusOr<std::vector<Finding>> result =
          geodp::lint::LintFile(file, rel);
      if (!result.ok()) {
        std::fprintf(stderr, "geodp_lint: %s\n",
                     result.status().ToString().c_str());
        return 2;
      }
      findings.insert(findings.end(), result.value().begin(),
                      result.value().end());
    }
  }

  for (const Finding& finding : findings) {
    std::printf("%s\n", FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::printf("geodp_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
