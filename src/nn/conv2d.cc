#include "nn/conv2d.h"

#include <algorithm>

#include "base/check.h"
#include "base/simd/kernels.h"
#include "nn/im2col.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace geodp {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel_size,
               Rng& rng, int64_t padding, bool with_bias, ConvImpl impl)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      padding_(padding),
      with_bias_(with_bias),
      impl_(impl),
      weight_("weight",
              KaimingUniform({out_channels, in_channels, kernel_size,
                              kernel_size},
                             in_channels * kernel_size * kernel_size, rng)),
      bias_("bias", Tensor::Zeros({out_channels})) {
  GEODP_CHECK_GT(in_channels_, 0);
  GEODP_CHECK_GT(out_channels_, 0);
  GEODP_CHECK_GT(kernel_size_, 0);
  GEODP_CHECK_GE(padding_, 0);
}

Tensor Conv2d::Forward(const Tensor& input) {
  return impl_ == ConvImpl::kIm2Col ? ForwardIm2Col(input)
                                    : ForwardDirect(input);
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  return impl_ == ConvImpl::kIm2Col ? BackwardIm2Col(grad_output)
                                    : BackwardDirect(grad_output);
}

Tensor Conv2d::ForwardIm2Col(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 4);
  GEODP_CHECK_EQ(input.dim(1), in_channels_);
  cached_input_ = input;
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = in_h + 2 * padding_ - kernel_size_ + 1;
  const int64_t out_w = in_w + 2 * padding_ - kernel_size_ + 1;
  GEODP_CHECK_GT(out_h, 0);
  GEODP_CHECK_GT(out_w, 0);

  const Tensor weight_matrix = weight_.value.Reshape(
      {out_channels_, in_channels_ * kernel_size_ * kernel_size_});
  Tensor output({batch, out_channels_, out_h, out_w});
  const int64_t spatial = out_h * out_w;
  const int64_t image_size = in_channels_ * in_h * in_w;
  for (int64_t b = 0; b < batch; ++b) {
    Tensor image({in_channels_, in_h, in_w});
    std::copy(input.data() + b * image_size,
              input.data() + (b + 1) * image_size, image.data());
    const Tensor columns = Im2Col(image, kernel_size_, padding_);
    const Tensor result = Matmul(weight_matrix, columns);  // [OC, OHW]
    float* out = output.data() + b * out_channels_ * spatial;
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float bias = with_bias_ ? bias_.value[oc] : 0.0f;
      for (int64_t i = 0; i < spatial; ++i) {
        out[oc * spatial + i] = result[oc * spatial + i] + bias;
      }
    }
  }
  return output;
}

Tensor Conv2d::BackwardIm2Col(const Tensor& grad_output) {
  GEODP_CHECK_EQ(grad_output.ndim(), 4);
  const Tensor& input = cached_input_;
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);
  GEODP_CHECK_EQ(grad_output.dim(0), batch);
  GEODP_CHECK_EQ(grad_output.dim(1), out_channels_);

  const int64_t kk = in_channels_ * kernel_size_ * kernel_size_;
  const int64_t spatial = out_h * out_w;
  const int64_t image_size = in_channels_ * in_h * in_w;
  const Tensor weight_matrix =
      weight_.value.Reshape({out_channels_, kk});
  Tensor weight_grad_matrix({out_channels_, kk});
  Tensor grad_input(input.shape());

  for (int64_t b = 0; b < batch; ++b) {
    Tensor image({in_channels_, in_h, in_w});
    std::copy(input.data() + b * image_size,
              input.data() + (b + 1) * image_size, image.data());
    const Tensor columns = Im2Col(image, kernel_size_, padding_);

    Tensor gy({out_channels_, spatial});
    std::copy(grad_output.data() + b * out_channels_ * spatial,
              grad_output.data() + (b + 1) * out_channels_ * spatial,
              gy.data());
    // dW += dY @ cols^T; dX_cols = W^T @ dY.
    weight_grad_matrix.AddInPlace(Matmul(gy, Transpose(columns)));
    const Tensor grad_columns = Matmul(Transpose(weight_matrix), gy);
    const Tensor grad_image = Col2Im(grad_columns, in_channels_, in_h, in_w,
                                     kernel_size_, padding_);
    std::copy(grad_image.data(), grad_image.data() + image_size,
              grad_input.data() + b * image_size);
    if (with_bias_) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        double sum = 0.0;
        for (int64_t i = 0; i < spatial; ++i)
          sum += static_cast<double>(gy[oc * spatial + i]);
        bias_.grad[oc] += static_cast<float>(sum);
      }
    }
  }
  weight_.grad.AddInPlace(
      weight_grad_matrix.Reshape(weight_.value.shape()));
  return grad_input;
}

Tensor Conv2d::ForwardDirect(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 4);
  GEODP_CHECK_EQ(input.dim(1), in_channels_);
  cached_input_ = input;
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = in_h + 2 * padding_ - kernel_size_ + 1;
  const int64_t out_w = in_w + 2 * padding_ - kernel_size_ + 1;
  GEODP_CHECK_GT(out_h, 0);
  GEODP_CHECK_GT(out_w, 0);

  Tensor output({batch, out_channels_, out_h, out_w});
  const float* x = input.data();
  const float* w = weight_.value.data();
  float* y = output.data();
  const int64_t k = kernel_size_;

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float bias = with_bias_ ? bias_.value[oc] : 0.0f;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double acc = bias;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            for (int64_t kh = 0; kh < k; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= in_h) continue;
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= in_w) continue;
                acc += static_cast<double>(
                           x[((b * in_channels_ + ic) * in_h + ih) * in_w +
                             iw]) *
                       static_cast<double>(
                           w[((oc * in_channels_ + ic) * k + kh) * k + kw]);
              }
            }
          }
          y[((b * out_channels_ + oc) * out_h + oh) * out_w + ow] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return output;
}

Tensor Conv2d::BackwardDirect(const Tensor& grad_output) {
  GEODP_CHECK_EQ(grad_output.ndim(), 4);
  const Tensor& input = cached_input_;
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);
  GEODP_CHECK_EQ(grad_output.dim(0), batch);
  GEODP_CHECK_EQ(grad_output.dim(1), out_channels_);

  Tensor grad_input(input.shape());
  const float* x = input.data();
  const float* w = weight_.value.data();
  const float* gy = grad_output.data();
  float* gx = grad_input.data();
  float* gw = weight_.grad.data();
  const int64_t k = kernel_size_;

  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float g =
              gy[((b * out_channels_ + oc) * out_h + oh) * out_w + ow];
          if (g == 0.0f) continue;
          if (with_bias_) bias_.grad[oc] += g;
          for (int64_t ic = 0; ic < in_channels_; ++ic) {
            for (int64_t kh = 0; kh < k; ++kh) {
              const int64_t ih = oh + kh - padding_;
              if (ih < 0 || ih >= in_h) continue;
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t iw = ow + kw - padding_;
                if (iw < 0 || iw >= in_w) continue;
                const int64_t xi =
                    ((b * in_channels_ + ic) * in_h + ih) * in_w + iw;
                const int64_t wi = ((oc * in_channels_ + ic) * k + kh) * k + kw;
                gw[wi] += g * x[xi];
                gx[xi] += g * w[wi];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor Conv2d::GhostBackward(
    const Tensor& grad_output,
    std::vector<double>& ghost_norm_sq) {  // geodp: per-sample norms out
  GEODP_CHECK_EQ(grad_output.ndim(), 4);
  const Tensor& input = cached_input_;
  const int64_t batch = input.dim(0);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  const int64_t out_h = grad_output.dim(2), out_w = grad_output.dim(3);
  GEODP_CHECK_EQ(grad_output.dim(0), batch);
  GEODP_CHECK_EQ(grad_output.dim(1), out_channels_);
  GEODP_CHECK_EQ(ghost_norm_sq.size(),  // geodp: per-sample
                 static_cast<size_t>(batch));

  const int64_t kk = in_channels_ * kernel_size_ * kernel_size_;
  const int64_t spatial = out_h * out_w;
  const int64_t image_size = in_channels_ * in_h * in_w;
  const Tensor weight_t =
      Transpose(weight_.value.Reshape({out_channels_, kk}));  // [kk, OC]
  Tensor grad_input(input.shape());
  cached_grad_output_ = grad_output;
  if (cached_columns_t_.numel() != batch * spatial * kk) {
    cached_columns_t_ = Tensor({batch, spatial, kk});
  }

  // Scratch reused across the whole batch: one [kk, S] unfold, one
  // unfolded-basis gradient, one input-gradient column matrix. No
  // per-sample tensors are allocated.
  Tensor cols({kk, spatial});
  Tensor sample_grad({out_channels_, kk});  // geodp: per-sample (transient)
  Tensor grad_cols({kk, spatial});

  for (int64_t b = 0; b < batch; ++b) {
    Im2ColInto(input.data() + b * image_size, in_channels_, in_h, in_w,
               kernel_size_, padding_, cols.data());
    // Cache cols_b^T so GhostAccumulate can replay the weighted matmul
    // without re-unfolding the input.
    float* cols_t = cached_columns_t_.data() + b * spatial * kk;
    for (int64_t r = 0; r < kk; ++r) {
      const float* col_row = cols.data() + r * spatial;
      for (int64_t s = 0; s < spatial; ++s) cols_t[s * kk + r] = col_row[s];
    }

    const float* gy = grad_output.data() + b * out_channels_ * spatial;
    // Sample b's weight gradient in the unfolded basis: G_b = gy_b cols^T
    // ([OC, kk], a few kB at this library's shapes). Its squared norm is
    // all that survives; the scratch is overwritten by the next sample.
    std::fill(sample_grad.data(),                       // geodp: per-sample
              sample_grad.data() + out_channels_ * kk,  // geodp: per-sample
              0.0f);
    simd::MatmulRowBlock(gy, cols_t,
                         sample_grad.data(),  // geodp: per-sample
                         0, out_channels_, spatial, kk);
    double norm_sq = simd::SumSquares(
        sample_grad.data(),    // geodp: per-sample
        out_channels_ * kk);   // geodp: per-sample norm squared
    if (with_bias_) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        double sum = 0.0;
        for (int64_t i = 0; i < spatial; ++i)
          sum += static_cast<double>(gy[oc * spatial + i]);
        norm_sq += sum * sum;
      }
    }
    ghost_norm_sq[static_cast<size_t>(b)] += norm_sq;  // geodp: per-sample

    // dL/dinput exactly as BackwardIm2Col computes it (no parameter
    // gradients are touched in this pass).
    std::fill(grad_cols.data(), grad_cols.data() + kk * spatial, 0.0f);
    simd::MatmulRowBlock(weight_t.data(), gy, grad_cols.data(), 0, kk,
                         out_channels_, spatial);
    Col2ImInto(grad_cols.data(), in_channels_, in_h, in_w, kernel_size_,
               padding_, grad_input.data() + b * image_size);
  }
  return grad_input;
}

void Conv2d::GhostAccumulate(const std::vector<double>& weights) {
  GEODP_CHECK(!cached_grad_output_.empty())
      << "GhostAccumulate before GhostBackward";
  const int64_t batch = cached_grad_output_.dim(0);
  GEODP_CHECK_EQ(static_cast<int64_t>(weights.size()), batch);
  const int64_t out_h = cached_grad_output_.dim(2);
  const int64_t out_w = cached_grad_output_.dim(3);

  const int64_t kk = in_channels_ * kernel_size_ * kernel_size_;
  const int64_t spatial = out_h * out_w;
  GEODP_CHECK_EQ(cached_columns_t_.numel(), batch * spatial * kk);
  Tensor weight_grad_matrix({out_channels_, kk});
  Tensor sample_grad({out_channels_, kk});  // geodp: per-sample (transient)

  for (int64_t b = 0; b < batch; ++b) {
    // Zero-weight samples (non-finite exclusions) are skipped outright —
    // never multiplied, so 0 * inf cannot poison the accumulation.
    const double scale = weights[static_cast<size_t>(b)];
    if (scale == 0.0) continue;
    const float* gy =
        cached_grad_output_.data() + b * out_channels_ * spatial;
    const float* cols_t = cached_columns_t_.data() + b * spatial * kk;
    // Replay G_b = gy_b cols^T from the cached unfold, then fold it into
    // the batch sum under the clip weight.
    std::fill(sample_grad.data(),                       // geodp: per-sample
              sample_grad.data() + out_channels_ * kk,  // geodp: per-sample
              0.0f);
    simd::MatmulRowBlock(gy, cols_t,
                         sample_grad.data(),  // geodp: per-sample
                         0, out_channels_, spatial, kk);
    simd::ClipAxpy(weight_grad_matrix.data(),
                   sample_grad.data(),  // geodp: per-sample
                   static_cast<float>(scale), out_channels_ * kk);
    if (with_bias_) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        double sum = 0.0;
        for (int64_t i = 0; i < spatial; ++i)
          sum += static_cast<double>(gy[oc * spatial + i]);
        bias_.grad[oc] += static_cast<float>(scale * sum);
      }
    }
  }
  weight_.grad.AddInPlace(weight_grad_matrix.Reshape(weight_.value.shape()));
}

std::vector<Parameter*> Conv2d::Parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace geodp
