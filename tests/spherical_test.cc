// Tests for the hyper-spherical coordinate system (paper Eq. 24-27),
// including parameterized round-trip property sweeps across dimensions.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/simd/dispatch.h"
#include "core/spherical.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(SphericalTest, TwoDimensionalKnownAngles) {
  // Paper Example 1: g = (1, sqrt(3)) has theta = pi/3, ||g|| = 2.
  const Tensor g = Tensor::Vector({1.0f, static_cast<float>(std::sqrt(3.0))});
  const SphericalCoordinates c = ToSpherical(g);
  EXPECT_NEAR(c.magnitude, 2.0, 1e-6);
  ASSERT_EQ(c.angles.size(), 1u);
  EXPECT_NEAR(c.angles[0], kPi / 3.0, 1e-6);
}

TEST(SphericalTest, TwoDimensionalQuadrants) {
  EXPECT_NEAR(ToSpherical(Tensor::Vector({1, 0})).angles[0], 0.0, 1e-9);
  EXPECT_NEAR(ToSpherical(Tensor::Vector({0, 1})).angles[0], kPi / 2, 1e-9);
  EXPECT_NEAR(ToSpherical(Tensor::Vector({-1, 0})).angles[0], kPi, 1e-9);
  EXPECT_NEAR(ToSpherical(Tensor::Vector({0, -1})).angles[0], -kPi / 2, 1e-9);
  EXPECT_NEAR(ToSpherical(Tensor::Vector({-1, -1})).angles[0],
              -3.0 * kPi / 4.0, 1e-6);
}

TEST(SphericalTest, ThreeDimensionalKnownConversion) {
  // (1, 1, sqrt(2)): magnitude 2, theta1 = arctan2(sqrt(1+2), 1) = pi/3,
  // theta2 = arctan2(sqrt(2), 1).
  const float s2 = static_cast<float>(std::sqrt(2.0));
  const Tensor g = Tensor::Vector({1.0f, 1.0f, s2});
  const SphericalCoordinates c = ToSpherical(g);
  EXPECT_NEAR(c.magnitude, 2.0, 1e-6);
  ASSERT_EQ(c.angles.size(), 2u);
  EXPECT_NEAR(c.angles[0], std::atan2(std::sqrt(3.0), 1.0), 1e-6);
  EXPECT_NEAR(c.angles[1], std::atan2(std::sqrt(2.0), 1.0), 1e-6);
}

TEST(SphericalTest, ZeroVectorMapsToZero) {
  const SphericalCoordinates c = ToSpherical(Tensor::Vector({0, 0, 0, 0}));
  EXPECT_EQ(c.magnitude, 0.0);
  for (double a : c.angles) EXPECT_EQ(a, 0.0);
  const Tensor back = ToCartesian(c);
  for (int64_t i = 0; i < back.numel(); ++i) EXPECT_EQ(back[i], 0.0f);
}

TEST(SphericalTest, MagnitudeMatchesL2Norm) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Tensor g = Tensor::Randn({16}, rng);
    EXPECT_NEAR(ToSpherical(g).magnitude, g.L2Norm(), 1e-5);
  }
}

TEST(SphericalTest, AngleRanges) {
  Rng rng(102);
  for (int trial = 0; trial < 50; ++trial) {
    const Tensor g = Tensor::Randn({8}, rng);
    const SphericalCoordinates c = ToSpherical(g);
    for (size_t z = 0; z + 1 < c.angles.size(); ++z) {
      EXPECT_GE(c.angles[z], 0.0);
      EXPECT_LE(c.angles[z], kPi);
    }
    EXPECT_GE(c.angles.back(), -kPi);
    EXPECT_LE(c.angles.back(), kPi);
  }
}

TEST(SphericalTest, ScalingPreservesDirection) {
  Rng rng(103);
  const Tensor g = Tensor::Randn({10}, rng);
  const SphericalCoordinates a = ToSpherical(g);
  const SphericalCoordinates b = ToSpherical(Scale(g, 3.5f));
  ASSERT_EQ(a.angles.size(), b.angles.size());
  for (size_t z = 0; z < a.angles.size(); ++z) {
    EXPECT_NEAR(a.angles[z], b.angles[z], 1e-5);
  }
  EXPECT_NEAR(b.magnitude, 3.5 * a.magnitude, 1e-4);
}

// Property sweep: round-trip ToCartesian(ToSpherical(g)) == g across
// dimensions.
class SphericalRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SphericalRoundTripTest, RoundTripRecoversVector) {
  const int64_t d = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(d));
  for (int trial = 0; trial < 10; ++trial) {
    const Tensor g = Tensor::Randn({d}, rng);
    const Tensor back = ToCartesian(ToSpherical(g));
    EXPECT_LT(MaxAbsDiff(g, back), 1e-4)
        << "dim=" << d << " trial=" << trial;
  }
}

TEST_P(SphericalRoundTripTest, RoundTripWithAxisAlignedVectors) {
  const int64_t d = GetParam();
  for (int64_t axis = 0; axis < d; ++axis) {
    Tensor g({d});
    g[axis] = 2.0f;
    const Tensor back = ToCartesian(ToSpherical(g));
    EXPECT_LT(MaxAbsDiff(g, back), 1e-5) << "dim=" << d << " axis=" << axis;
  }
}

TEST_P(SphericalRoundTripTest, RoundTripWithNegativeComponents) {
  const int64_t d = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(d));
  Tensor g = Tensor::Randn({d}, rng);
  for (int64_t i = 0; i < d; ++i) g[i] = -std::fabs(g[i]);
  const Tensor back = ToCartesian(ToSpherical(g));
  EXPECT_LT(MaxAbsDiff(g, back), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Dims, SphericalRoundTripTest,
                         ::testing::Values<int64_t>(2, 3, 4, 5, 8, 16, 64,
                                                    256, 1024));

TEST(SphericalTest, AngleSquaredDistance) {
  EXPECT_DOUBLE_EQ(AngleSquaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(AngleSquaredDistance({1.0}, {1.0}), 0.0);
}

TEST(SphericalTest, WrapAnglesCanonicalRanges) {
  // First angles reflect into [0, pi]; last wraps into (-pi, pi].
  const auto wrapped = WrapAngles({-0.5, kPi + 0.5, 3.0 * kPi});
  EXPECT_NEAR(wrapped[0], 0.5, 1e-9);
  EXPECT_NEAR(wrapped[1], kPi - 0.5, 1e-9);
  EXPECT_NEAR(wrapped[2], kPi, 1e-9);
  const auto wrapped2 = WrapAngles({0.3, -kPi - 0.2});
  EXPECT_NEAR(wrapped2[0], 0.3, 1e-9);
  EXPECT_NEAR(wrapped2[1], kPi - 0.2, 1e-9);
}

TEST(SphericalTest, WrapAnglesBoundaryValuesStayInRangeOnEveryTier) {
  // Boundary and extreme inputs for both wrap conventions, checked on
  // every available SIMD tier: the AVX2 tier range-reduces with a
  // floor-based division instead of fmod, and the per-tier contract is
  // that results still land inside the canonical ranges even at inputs
  // like 1e9*pi, where one rounding step of the reduction is larger
  // than the whole output range.
  const SimdTier entry_tier = ActiveSimdTier();
  const std::vector<double> boundary = {-kPi, 0.0, kPi, 2.0 * kPi, 1e9 * kPi};
  for (const SimdTier tier : AvailableSimdTiers()) {
    SetSimdTier(tier);
    SCOPED_TRACE(std::string("tier ") + SimdTierName(tier));
    for (const double theta : boundary) {
      SCOPED_TRACE("theta " + std::to_string(theta));
      // Both positions: as a non-final angle (reflects into [0, pi]) and
      // as the final angle (wraps into (-pi, pi]).
      const auto wrapped = WrapAngles({theta, theta});
      EXPECT_GE(wrapped[0], 0.0);
      EXPECT_LE(wrapped[0], kPi);
      EXPECT_GT(wrapped[1], -kPi);
      EXPECT_LE(wrapped[1], kPi);
    }
    // Exact boundary semantics at moderate angles are tier-independent.
    const auto exact = WrapAngles({-kPi, 2.0 * kPi});
    EXPECT_NEAR(exact[0], kPi, 1e-9);
    EXPECT_NEAR(exact[1], 0.0, 1e-9);
    const auto zero = WrapAngles({0.0, kPi});
    EXPECT_NEAR(zero[0], 0.0, 1e-12);
    EXPECT_NEAR(zero[1], kPi, 1e-9);
  }
  SetSimdTier(entry_tier);
}

TEST(SphericalTest, WrapAnglesScalarAndAvx2TiersAgreeClosely) {
  // The tiers may differ in the last bits (different range-reduction
  // algorithms) but must agree to high relative accuracy for angles of
  // ordinary magnitude.
  if (!SimdTierAvailable(SimdTier::kAvx2)) GTEST_SKIP() << "no AVX2 host";
  const SimdTier entry_tier = ActiveSimdTier();
  std::vector<double> angles;
  for (int i = -40; i <= 40; ++i) angles.push_back(0.37 * i);
  angles.push_back(kPi);  // final-angle slot below

  SetSimdTier(SimdTier::kScalar);
  const auto scalar = WrapAngles(angles);
  SetSimdTier(SimdTier::kAvx2);
  const auto avx2 = WrapAngles(angles);
  SetSimdTier(entry_tier);

  ASSERT_EQ(scalar.size(), avx2.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_NEAR(scalar[i], avx2[i], 1e-9) << "angle " << i;
  }
}

TEST(SphericalTest, ClampAnglesSaturates) {
  const auto clamped = ClampAngles({-0.5, 4.0, -4.0});
  EXPECT_EQ(clamped[0], 0.0);
  EXPECT_NEAR(clamped[1], kPi, 1e-9);
  EXPECT_NEAR(clamped[2], -kPi, 1e-9);
}

TEST(SphericalTest, WrapIsIdentityInsideRange) {
  const std::vector<double> angles = {0.5, 2.0, -1.5};
  const auto wrapped = WrapAngles(angles);
  for (size_t i = 0; i < angles.size(); ++i) {
    EXPECT_NEAR(wrapped[i], angles[i], 1e-12);
  }
}

TEST(SphericalTest, CartesianFromExplicitAngles) {
  // magnitude 2, angles (pi/2, 0) -> (0, 2, 0).
  SphericalCoordinates c;
  c.magnitude = 2.0;
  c.angles = {kPi / 2.0, 0.0};
  const Tensor g = ToCartesian(c);
  EXPECT_NEAR(g[0], 0.0, 1e-6);
  EXPECT_NEAR(g[1], 2.0, 1e-6);
  EXPECT_NEAR(g[2], 0.0, 1e-6);
}

}  // namespace
}  // namespace geodp
