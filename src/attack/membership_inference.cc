#include "attack/membership_inference.h"

#include <algorithm>

#include "base/check.h"
#include "nn/loss.h"

namespace geodp {

std::vector<double> PerExampleLosses(Sequential& model,
                                     const InMemoryDataset& dataset,
                                     int64_t max_examples) {
  GEODP_CHECK_GT(dataset.size(), 0);
  const int64_t limit = (max_examples > 0)
                            ? std::min(max_examples, dataset.size())
                            : dataset.size();
  SoftmaxCrossEntropy loss;
  std::vector<double> losses;
  losses.reserve(static_cast<size_t>(limit));
  for (int64_t i = 0; i < limit; ++i) {
    const Tensor x = dataset.StackImages({i});
    losses.push_back(loss.Forward(model.Forward(x), {dataset.label(i)}));
  }
  return losses;
}

double ComputeAuc(const std::vector<double>& member_scores,
                  const std::vector<double>& nonmember_scores) {
  GEODP_CHECK(!member_scores.empty());
  GEODP_CHECK(!nonmember_scores.empty());
  // O(n*m) rank comparison with tie handling; sample sizes here are small.
  double wins = 0.0;
  for (double m : member_scores) {
    for (double n : nonmember_scores) {
      if (m > n) {
        wins += 1.0;
      } else if (m == n) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(member_scores.size()) *
                 static_cast<double>(nonmember_scores.size()));
}

double ComputeAdvantage(const std::vector<double>& member_scores,
                        const std::vector<double>& nonmember_scores) {
  GEODP_CHECK(!member_scores.empty());
  GEODP_CHECK(!nonmember_scores.empty());
  // Sweep thresholds at every distinct score; predict "member" when
  // score >= threshold.
  std::vector<double> thresholds = member_scores;
  thresholds.insert(thresholds.end(), nonmember_scores.begin(),
                    nonmember_scores.end());
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  double best = 0.0;
  for (double threshold : thresholds) {
    double tpr = 0.0, fpr = 0.0;
    for (double m : member_scores) {
      if (m >= threshold) tpr += 1.0;
    }
    for (double n : nonmember_scores) {
      if (n >= threshold) fpr += 1.0;
    }
    tpr /= static_cast<double>(member_scores.size());
    fpr /= static_cast<double>(nonmember_scores.size());
    best = std::max(best, tpr - fpr);
  }
  return best;
}

MiaResult RunLossThresholdAttack(Sequential& model,
                                 const InMemoryDataset& members,
                                 const InMemoryDataset& nonmembers,
                                 int64_t max_examples_per_side) {
  const std::vector<double> member_losses =
      PerExampleLosses(model, members, max_examples_per_side);
  const std::vector<double> nonmember_losses =
      PerExampleLosses(model, nonmembers, max_examples_per_side);

  // Score = -loss: members are expected to have lower loss.
  std::vector<double> member_scores, nonmember_scores;
  member_scores.reserve(member_losses.size());
  nonmember_scores.reserve(nonmember_losses.size());
  double member_mean = 0.0, nonmember_mean = 0.0;
  for (double l : member_losses) {
    member_scores.push_back(-l);
    member_mean += l;
  }
  for (double l : nonmember_losses) {
    nonmember_scores.push_back(-l);
    nonmember_mean += l;
  }

  MiaResult result;
  result.members = static_cast<int64_t>(member_losses.size());
  result.nonmembers = static_cast<int64_t>(nonmember_losses.size());
  result.mean_member_loss =
      member_mean / static_cast<double>(member_losses.size());
  result.mean_nonmember_loss =
      nonmember_mean / static_cast<double>(nonmember_losses.size());
  result.auc = ComputeAuc(member_scores, nonmember_scores);
  result.advantage = ComputeAdvantage(member_scores, nonmember_scores);
  return result;
}

}  // namespace geodp
