// Integration tests for the end-to-end DpTrainer: convergence, method
// equivalences at sigma = 0, privacy accounting, and the IS / SUR / Adam
// code paths.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/rng.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/parameter.h"
#include "obs/step_observer.h"
#include "optim/dp_sgd.h"
#include "optim/trainer.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

// Small, fairly easy dataset shared by the trainer tests.
InMemoryDataset MakeTrainSet(int64_t n, uint64_t seed) {
  SyntheticImageOptions options;
  options.num_examples = n;
  options.height = 8;
  options.width = 8;
  options.pixel_noise = 0.15;
  options.max_shift = 1;
  options.label_noise = 0.0;
  options.seed = seed;
  return MakeSyntheticImages(options);
}

std::unique_ptr<Sequential> MakeModel(uint64_t seed) {
  Rng rng(seed);
  return MakeLogisticRegression(64, 10, rng);
}

TEST(DpTrainerTest, NoiseFreeTrainingConverges) {
  const InMemoryDataset train = MakeTrainSet(200, 1);
  auto model = MakeModel(2);
  const double before = EvaluateMeanLoss(*model, train);

  TrainerOptions options;
  options.method = PerturbationMethod::kNoiseFree;
  options.batch_size = 32;
  options.iterations = 120;
  options.learning_rate = 2.0;
  options.clip_threshold = 0.5;
  options.seed = 3;
  DpTrainer trainer(model.get(), &train, &train, options);
  const TrainingResult result = trainer.Train();

  EXPECT_LT(result.final_train_loss, before * 0.7);
  EXPECT_GT(result.test_accuracy, 0.5);
  EXPECT_EQ(result.epsilon, 0.0);  // no privacy spend without noise
}

TEST(DpTrainerTest, DpAndGeoDpMatchNoiseFreeAtSigmaZero) {
  const InMemoryDataset train = MakeTrainSet(64, 4);

  auto run = [&](PerturbationMethod method) {
    auto model = MakeModel(5);  // identical init via same seed
    TrainerOptions options;
    options.method = method;
    options.batch_size = 16;
    options.iterations = 20;
    options.learning_rate = 1.0;
    options.noise_multiplier = 0.0;
    options.seed = 6;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    trainer.Train();
    return FlattenValues(model->Parameters());
  };

  const Tensor w_none = run(PerturbationMethod::kNoiseFree);
  const Tensor w_dp = run(PerturbationMethod::kDp);
  const Tensor w_geo = run(PerturbationMethod::kGeoDp);
  EXPECT_LT(MaxAbsDiff(w_none, w_dp), 1e-5);
  // GeoDP round-trips through spherical coordinates: equal up to the
  // float32 conversion error.
  EXPECT_LT(MaxAbsDiff(w_none, w_geo), 1e-3);
}

TEST(DpTrainerTest, AccountantReportsPositiveEpsilon) {
  const InMemoryDataset train = MakeTrainSet(100, 7);
  auto model = MakeModel(8);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.batch_size = 20;
  options.iterations = 30;
  options.learning_rate = 1.0;
  options.noise_multiplier = 1.0;
  options.seed = 9;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();
  EXPECT_GT(result.epsilon, 0.0);

  // More iterations -> more epsilon.
  auto model2 = MakeModel(8);
  options.iterations = 60;
  DpTrainer trainer2(model2.get(), &train, nullptr, options);
  EXPECT_GT(trainer2.Train().epsilon, result.epsilon);
}

TEST(DpTrainerTest, GeoDpWithSmallBetaBeatsDpUnderHeavyNoise) {
  // The paper's headline claim at training level: under identical noise,
  // GeoDP with a small bounding factor achieves lower loss than DP.
  const InMemoryDataset train = MakeTrainSet(300, 10);

  auto run = [&](PerturbationMethod method, double beta) {
    auto model = MakeModel(11);
    TrainerOptions options;
    options.method = method;
    options.beta = beta;
    options.batch_size = 64;
    options.iterations = 80;
    options.learning_rate = 2.0;
    options.clip_threshold = 0.1;
    options.noise_multiplier = 4.0;
    options.seed = 12;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    return trainer.Train().final_train_loss;
  };

  const double loss_dp = run(PerturbationMethod::kDp, 0.1);
  const double loss_geo = run(PerturbationMethod::kGeoDp, 0.002);
  EXPECT_LT(loss_geo, loss_dp);
}

TEST(DpTrainerTest, LossHistoryRecorded) {
  const InMemoryDataset train = MakeTrainSet(64, 13);
  auto model = MakeModel(14);
  TrainerOptions options;
  options.method = PerturbationMethod::kNoiseFree;
  options.batch_size = 16;
  options.iterations = 25;
  options.learning_rate = 0.5;
  options.record_loss_every = 5;
  options.seed = 15;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();
  ASSERT_EQ(result.loss_history.size(), result.loss_iterations.size());
  EXPECT_GE(result.loss_history.size(), 5u);
  EXPECT_EQ(result.loss_iterations.front(), 0);
  EXPECT_EQ(result.loss_iterations.back(), 24);
}

TEST(DpTrainerTest, ImportanceSamplingPathRuns) {
  const InMemoryDataset train = MakeTrainSet(80, 16);
  auto model = MakeModel(17);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.importance_sampling = true;
  options.batch_size = 16;
  options.iterations = 15;
  options.learning_rate = 0.5;
  options.noise_multiplier = 0.5;
  options.seed = 18;
  DpTrainer trainer(model.get(), &train, &train, options);
  const TrainingResult result = trainer.Train();
  EXPECT_GE(result.test_accuracy, 0.0);
}

TEST(DpTrainerTest, SelectiveUpdateRejectsBadSteps) {
  const InMemoryDataset train = MakeTrainSet(80, 19);
  auto model = MakeModel(20);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.selective_update = true;
  options.batch_size = 16;
  options.iterations = 20;
  options.learning_rate = 5.0;       // deliberately unstable
  options.noise_multiplier = 5.0;    // heavy noise -> many rejections
  options.sur_tolerance = 0.0;       // strict test to force rejections
  options.seed = 21;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();
  // DPSUR semantics: rejected attempts are retried up to 3x the iteration
  // budget; accepted updates never exceed the requested iterations.
  EXPECT_LE(result.sur_accepted, 20);
  EXPECT_LE(result.sur_accepted + result.sur_rejected, 60);
  EXPECT_GT(result.sur_rejected, 0);
}

TEST(DpTrainerTest, SelectiveUpdateHelpsUnderHeavyNoise) {
  const InMemoryDataset train = MakeTrainSet(150, 22);
  auto run = [&](bool sur) {
    auto model = MakeModel(23);
    TrainerOptions options;
    options.method = PerturbationMethod::kDp;
    options.selective_update = sur;
    options.batch_size = 32;
    options.iterations = 40;
    options.learning_rate = 2.0;
    options.noise_multiplier = 4.0;
    options.seed = 24;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    return trainer.Train().final_train_loss;
  };
  EXPECT_LE(run(true), run(false) * 1.05);
}

TEST(DpTrainerTest, AdamPathRuns) {
  const InMemoryDataset train = MakeTrainSet(64, 25);
  auto model = MakeModel(26);
  const double before = EvaluateMeanLoss(*model, train);
  TrainerOptions options;
  options.method = PerturbationMethod::kGeoDp;
  options.beta = 0.05;
  options.use_adam = true;
  options.batch_size = 16;
  options.iterations = 40;
  options.learning_rate = 0.05;
  options.noise_multiplier = 0.5;
  options.seed = 27;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();
  EXPECT_LT(result.final_train_loss, before);
}

TEST(DpTrainerTest, PoissonSamplingPathTrains) {
  const InMemoryDataset train = MakeTrainSet(200, 31);
  auto model = MakeModel(32);
  const double before = EvaluateMeanLoss(*model, train);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.poisson_sampling = true;
  options.batch_size = 32;  // expected lot size; realized sizes vary
  options.iterations = 60;
  options.learning_rate = 1.0;
  options.noise_multiplier = 0.5;
  options.seed = 33;
  DpTrainer trainer(model.get(), &train, &train, options);
  const TrainingResult result = trainer.Train();
  EXPECT_LT(result.final_train_loss, before);
  EXPECT_GT(result.epsilon, 0.0);
}

TEST(DpTrainerTest, PoissonMatchesFixedBatchRoughly) {
  // Same noise and budget: Poisson and fixed-batch training should land in
  // the same loss ballpark (they differ only in sampling realization).
  const InMemoryDataset train = MakeTrainSet(200, 34);
  auto run = [&](bool poisson) {
    auto model = MakeModel(35);
    TrainerOptions options;
    options.method = PerturbationMethod::kDp;
    options.poisson_sampling = poisson;
    options.batch_size = 32;
    options.iterations = 80;
    options.learning_rate = 1.0;
    options.noise_multiplier = 0.5;
    options.seed = 36;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    return trainer.Train().final_train_loss;
  };
  const double fixed = run(false);
  const double poisson = run(true);
  EXPECT_LT(poisson, fixed * 1.3);
  EXPECT_GT(poisson, fixed * 0.7);
}

TEST(DpTrainerTest, EmptyPoissonLotsAreCountedNotRecorded) {
  // Tiny dataset and lot size: sampling rate 1/8 gives P(empty lot) =
  // (7/8)^8 ~ 0.34, so a 60-step run is all but guaranteed to draw empty
  // lots. They used to push a spurious 0.0 into loss_history; now they are
  // counted in empty_lots and excluded from the loss record.
  const InMemoryDataset train = MakeTrainSet(8, 37);
  auto model = MakeModel(38);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.poisson_sampling = true;
  options.batch_size = 1;
  options.iterations = 60;
  options.learning_rate = 0.1;
  options.noise_multiplier = 1.0;
  options.record_loss_every = 1;  // record every non-empty step
  options.seed = 39;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();

  EXPECT_GT(result.empty_lots, 0);
  // Cross-entropy is strictly positive, so any 0.0 entry could only be the
  // old empty-lot placeholder.
  for (const double loss : result.loss_history) EXPECT_GT(loss, 0.0);
  EXPECT_LT(result.loss_history.size(),
            static_cast<size_t>(options.iterations));
}

TEST(DpTrainerTest, AdaptiveBetaIgnoresEmptyPoissonLots) {
  // A zero-magnitude gradient has no direction; feeding its spherical form
  // to the adaptive-beta controller used to poison the direction envelope.
  // The controller must now see only non-empty lots and keep beta in (0, 1].
  const InMemoryDataset train = MakeTrainSet(8, 40);
  auto model = MakeModel(41);
  TrainerOptions options;
  options.method = PerturbationMethod::kGeoDp;
  options.adaptive_beta = true;
  options.poisson_sampling = true;
  options.batch_size = 1;
  options.iterations = 40;
  options.learning_rate = 0.1;
  options.noise_multiplier = 0.5;
  options.beta = 0.1;
  options.seed = 42;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();

  EXPECT_GT(result.empty_lots, 0);
  EXPECT_GT(result.final_beta, 0.0);
  EXPECT_LE(result.final_beta, 1.0);
  EXPECT_TRUE(std::isfinite(result.final_train_loss));
}

TEST(DpTrainerTest, DeterministicGivenSeed) {
  const InMemoryDataset train = MakeTrainSet(64, 28);
  auto run = [&]() {
    auto model = MakeModel(29);
    TrainerOptions options;
    options.method = PerturbationMethod::kGeoDp;
    options.beta = 0.1;
    options.batch_size = 16;
    options.iterations = 10;
    options.learning_rate = 0.5;
    options.noise_multiplier = 1.0;
    options.seed = 30;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    trainer.Train();
    return FlattenValues(model->Parameters());
  };
  EXPECT_TRUE(AllClose(run(), run()));
}

// Expects Run() to fail with the given code and a message mentioning
// `needle`, without aborting the process.
void ExpectInvalid(const InMemoryDataset& train, TrainerOptions options,
                   const std::string& needle) {
  auto model = MakeModel(2);
  DpTrainer trainer(model.get(), &train, nullptr, options);
  StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_FALSE(run.ok()) << "expected rejection for: " << needle;
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find(needle), std::string::npos)
      << "message was: " << run.status().message();
}

TEST(DpTrainerTest, InvalidOptionsReturnDescriptiveStatus) {
  const InMemoryDataset train = MakeTrainSet(32, 1);
  TrainerOptions good;
  good.batch_size = 16;
  good.iterations = 5;

  TrainerOptions options = good;
  options.batch_size = 0;
  ExpectInvalid(train, options, "batch_size");

  options = good;
  options.batch_size = 1000;  // exceeds dataset size
  ExpectInvalid(train, options, "batch_size");

  options = good;
  options.iterations = 0;
  ExpectInvalid(train, options, "iterations");

  options = good;
  options.learning_rate = -1.0;
  ExpectInvalid(train, options, "learning_rate");

  options = good;
  options.noise_multiplier = -0.5;
  ExpectInvalid(train, options, "noise_multiplier");

  options = good;
  options.clip_threshold = 0.0;
  ExpectInvalid(train, options, "clip_threshold");

  options = good;
  options.beta = 1.5;
  ExpectInvalid(train, options, "beta");

  options = good;
  options.checkpoint_every = 4;  // no checkpoint_dir
  ExpectInvalid(train, options, "checkpoint_dir");
}

TEST(DpTrainerTest, EmptyDatasetIsRejectedNotCrashed) {
  const InMemoryDataset empty;
  auto model = MakeModel(2);
  TrainerOptions options;
  options.batch_size = 16;
  options.iterations = 5;
  DpTrainer trainer(model.get(), &empty, nullptr, options);
  StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(DpTrainerTest, NonFiniteSamplesAreSkippedNotPropagated) {
  // Rig the dataset: one example with an Inf pixel (blows up the loss) and
  // one with a NaN pixel (poisons its gradient). With batch == dataset
  // size both appear in every lot; the guard must drop them while the
  // remaining samples keep training, and the model must stay finite.
  InMemoryDataset train;
  Rng rng(11);
  for (int i = 0; i < 24; ++i) {
    Tensor image = Tensor::Randn({1, 8, 8}, rng);
    if (i == 3) image[5] = std::numeric_limits<float>::infinity();
    if (i == 7) image[9] = std::numeric_limits<float>::quiet_NaN();
    train.Add(std::move(image), i % 10);
  }

  auto model = MakeModel(2);
  CollectingStepObserver observer;
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.batch_size = 24;
  options.iterations = 8;
  options.learning_rate = 0.5;
  options.noise_multiplier = 0.5;
  options.seed = 13;
  options.step_observer = &observer;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Both poisoned samples are skipped on every one of the 8 steps.
  EXPECT_EQ(run.value().nonfinite_skipped, 16);
  int64_t observed = 0;
  for (const StepRecord& record : observer.records()) {
    observed += record.nonfinite_skipped;
  }
  EXPECT_EQ(observed, run.value().nonfinite_skipped);

  // Every weight is still finite, and the clean samples actually trained.
  const Tensor weights = FlattenValues(model->Parameters());
  for (int64_t i = 0; i < weights.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(weights[i])) << "weight " << i;
  }
  for (const double loss : run.value().loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

}  // namespace
}  // namespace geodp
