#include "dp/rdp_accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.h"

namespace geodp {
namespace {

// log(exp(a) + exp(b)) without overflow.
double LogAdd(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

// log of the binomial coefficient C(n, k).
double LogBinomial(int64_t n, int64_t k) {
  return std::lgamma(static_cast<double>(n + 1)) -
         std::lgamma(static_cast<double>(k + 1)) -
         std::lgamma(static_cast<double>(n - k + 1));
}

}  // namespace

double GaussianRdp(double noise_multiplier, double alpha) {
  GEODP_CHECK_GT(noise_multiplier, 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(alpha, 1.0);  // geodp: check-ok
  return alpha / (2.0 * noise_multiplier * noise_multiplier);
}

double SubsampledGaussianRdp(double noise_multiplier, double sampling_rate,
                             int64_t alpha) {
  GEODP_CHECK_GT(noise_multiplier, 0.0);  // geodp: check-ok
  GEODP_CHECK_GE(alpha, 2);  // geodp: check-ok
  GEODP_CHECK(sampling_rate >= 0.0 && sampling_rate <= 1.0);  // geodp: check-ok
  if (sampling_rate == 0.0) return 0.0;
  if (sampling_rate == 1.0) {
    return GaussianRdp(noise_multiplier, static_cast<double>(alpha));
  }
  const double log_q = std::log(sampling_rate);
  const double log_1mq = std::log1p(-sampling_rate);
  const double sigma_sq = noise_multiplier * noise_multiplier;
  double log_a = -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i <= alpha; ++i) {
    const double term = LogBinomial(alpha, i) +
                        static_cast<double>(i) * log_q +
                        static_cast<double>(alpha - i) * log_1mq +
                        static_cast<double>(i * (i - 1)) / (2.0 * sigma_sq);
    log_a = LogAdd(log_a, term);
  }
  return std::max(0.0, log_a / (static_cast<double>(alpha) - 1.0));
}

RdpAccountant::RdpAccountant(std::vector<int64_t> orders)
    : orders_(orders.empty() ? DefaultOrders() : std::move(orders)) {
  for (int64_t order : orders_) GEODP_CHECK_GE(order, 2);  // geodp: check-ok
  rdp_.assign(orders_.size(), 0.0);
}

std::vector<int64_t> RdpAccountant::DefaultOrders() {
  std::vector<int64_t> orders;
  for (int64_t a = 2; a <= 64; ++a) orders.push_back(a);
  for (int64_t a : {128, 256, 512, 1024}) orders.push_back(a);
  return orders;
}

void RdpAccountant::AddGaussianSteps(NoiseMultiplier sigma, int64_t steps) {
  GEODP_CHECK_GE(steps, 0);  // geodp: check-ok
  for (size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(steps) *
               GaussianRdp(sigma.value(), static_cast<double>(orders_[i]));
  }
  total_steps_ += steps;
}

void RdpAccountant::AddSubsampledGaussianSteps(NoiseMultiplier sigma,
                                               SamplingRate sampling_rate,
                                               int64_t steps) {
  GEODP_CHECK_GE(steps, 0);  // geodp: check-ok
  for (size_t i = 0; i < orders_.size(); ++i) {
    rdp_[i] += static_cast<double>(steps) *
               SubsampledGaussianRdp(sigma.value(), sampling_rate.value(),
                                     orders_[i]);
  }
  total_steps_ += steps;
}

double RdpAccountant::GetEpsilon(Delta delta) const {
  const double d = delta.value();
  GEODP_CHECK(d > 0.0 && d < 1.0);  // geodp: check-ok
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < orders_.size(); ++i) {
    const double alpha = static_cast<double>(orders_[i]);
    best = std::min(best, rdp_[i] + std::log(1.0 / d) / (alpha - 1.0));
  }
  return best;
}

int64_t RdpAccountant::GetOptimalOrder(Delta delta) const {
  const double d = delta.value();
  GEODP_CHECK(d > 0.0 && d < 1.0);  // geodp: check-ok
  double best = std::numeric_limits<double>::infinity();
  int64_t best_order = orders_.front();
  for (size_t i = 0; i < orders_.size(); ++i) {
    const double alpha = static_cast<double>(orders_[i]);
    const double eps = rdp_[i] + std::log(1.0 / d) / (alpha - 1.0);
    if (eps < best) {
      best = eps;
      best_order = orders_[i];
    }
  }
  return best_order;
}

Status RdpAccountant::RestoreState(const std::vector<int64_t>& orders,
                                   const std::vector<double>& cumulative_rdp,
                                   int64_t total_steps) {
  if (orders != orders_) {
    return Status::FailedPrecondition(
        "accountant order grid mismatch: cannot restore RDP snapshot");
  }
  if (cumulative_rdp.size() != orders_.size()) {
    return Status::InvalidArgument("RDP value count does not match orders");
  }
  if (total_steps < 0) {
    return Status::InvalidArgument("negative accounted step count");
  }
  for (const double value : cumulative_rdp) {
    if (!(value >= 0.0) || !std::isfinite(value)) {
      return Status::InvalidArgument("RDP values must be finite and >= 0");
    }
  }
  rdp_ = cumulative_rdp;
  total_steps_ = total_steps;
  return Status::Ok();
}

RdpSnapshot RdpAccountant::Snapshot(Delta delta) const {
  RdpSnapshot snapshot;
  snapshot.total_steps = total_steps_;
  if (total_steps_ == 0) return snapshot;
  snapshot.epsilon = GetEpsilon(delta);
  snapshot.optimal_order = GetOptimalOrder(delta);
  return snapshot;
}

}  // namespace geodp
