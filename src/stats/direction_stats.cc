#include "stats/direction_stats.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "core/spherical.h"
#include "stats/summary.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

DirectionConcentration AnalyzeDirectionConcentration(
    const GradientDataset& data, int64_t max_gradients) {
  GEODP_CHECK_GT(data.size(), 1);
  const int64_t count = std::min(max_gradients, data.size());
  const int64_t d = data.dimension();

  // Mean direction (normalized mean of unit vectors).
  Tensor center({d});
  for (int64_t i = 0; i < count; ++i) {
    const Tensor& g = data.gradient(i);
    const double norm = g.L2Norm();
    if (norm > 0) center.AxpyInPlace(static_cast<float>(1.0 / norm), g);
  }
  const double center_norm = center.L2Norm();
  GEODP_CHECK_GT(center_norm, 0.0);
  center.ScaleInPlace(static_cast<float>(1.0 / center_norm));

  DirectionConcentration result;
  result.count = count;

  RunningStat cosine;
  std::vector<RunningStat> angle_stats(static_cast<size_t>(d - 1));
  for (int64_t i = 0; i < count; ++i) {
    const Tensor& g = data.gradient(i);
    cosine.Add(CosineSimilarity(g, center));
    const SphericalCoordinates coords = ToSpherical(g);
    for (size_t z = 0; z < coords.angles.size(); ++z) {
      angle_stats[z].Add(coords.angles[z]);
    }
  }
  result.mean_cosine_to_center = cosine.mean();

  RunningStat spreads;
  double max_stddev = 0.0;
  double mean_range_ratio = 0.0;
  for (size_t z = 0; z < angle_stats.size(); ++z) {
    const RunningStat& stat = angle_stats[z];
    spreads.Add(stat.stddev());
    max_stddev = std::max(max_stddev, stat.stddev());
    // Each angle's full range is pi except the last one's 2*pi.
    const double full_range = (z + 1 < angle_stats.size()) ? kPi : 2.0 * kPi;
    mean_range_ratio += (stat.max() - stat.min()) / full_range;
  }
  result.mean_angle_stddev = spreads.mean();
  result.max_angle_stddev = max_stddev;
  result.empirical_beta = std::min(
      1.0, mean_range_ratio / static_cast<double>(angle_stats.size()));
  return result;
}

std::vector<double> SampleAveragedAngleCoordinate(
    const GradientDataset& data, int64_t batch, int64_t angle_index,
    int64_t trials, uint64_t seed) {
  GEODP_CHECK_GT(batch, 0);
  GEODP_CHECK_GT(trials, 0);
  GEODP_CHECK(angle_index >= 0 && angle_index < data.dimension() - 1);
  Rng rng(seed);
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(trials));
  for (int64_t t = 0; t < trials; ++t) {
    double sum = 0.0;
    for (int64_t j = 0; j < batch; ++j) {
      const Tensor& g = data.gradient(static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(data.size()))));
      const SphericalCoordinates coords = ToSpherical(g);
      sum += coords.angles[static_cast<size_t>(angle_index)];
    }
    samples.push_back(sum / static_cast<double>(batch));
  }
  return samples;
}

}  // namespace geodp
