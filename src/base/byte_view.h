// The audited home of every type pun in the codebase (geodp_lint R6).
//
// Serialization and the codecs need to view trivially-copyable objects as
// bytes and back; POSIX socket calls need the sockaddr pun. Scattered
// reinterpret_casts make those sites impossible to audit, so R6 bans the
// keyword everywhere except this header, and the helpers below carry the
// safety argument once:
//
//   AsBytes / AsWritableBytes — object (or element range) as a byte span;
//       static_asserts that the source type is trivially copyable, so the
//       byte view is its value representation and reading it is defined.
//   FromBytes<T>              — reassemble a T from a byte span via
//       std::memcpy (the blessed way to type-pun in C++17), length-checked
//       with GEODP_CHECK.
//   PunCast<To>(From*)        — pointer pun for C APIs that traffic in
//       differently-typed pointers to the same storage (the BSD sockaddr
//       idiom). The cast itself is always safe; the *dereference* contract
//       belongs to the called C API, which is exactly the situation the
//       audit wants confined here.
//
// Adding a new reinterpret_cast to this file extends the audit surface:
// justify it in a comment the way the helpers above do.

#ifndef GEODP_BASE_BYTE_VIEW_H_
#define GEODP_BASE_BYTE_VIEW_H_

#include <cstddef>
#include <cstring>
#include <type_traits>

#include "base/check.h"

namespace geodp {

/// A non-owning view of raw bytes: {data, size} with no container
/// semantics. Deliberately minimal — it exists so codec code can pass
/// byte ranges around without char* arithmetic at every call site.
struct ByteSpan {
  const char* data = nullptr;
  size_t size = 0;
};

struct MutableByteSpan {
  char* data = nullptr;
  size_t size = 0;
};

/// Byte view of one trivially-copyable object.
template <typename T>
ByteSpan AsBytes(const T& value) {
  static_assert(std::is_trivially_copyable<T>::value,
                "AsBytes requires a trivially copyable type: the byte view "
                "of anything else is not its value representation");
  return {reinterpret_cast<const char*>(&value), sizeof(T)};
}

/// Byte view of `count` contiguous trivially-copyable elements.
template <typename T>
ByteSpan AsBytes(const T* first, size_t count) {
  static_assert(std::is_trivially_copyable<T>::value,
                "AsBytes requires a trivially copyable element type");
  return {reinterpret_cast<const char*>(first), count * sizeof(T)};
}

template <typename T>
MutableByteSpan AsWritableBytes(T& value) {
  static_assert(std::is_trivially_copyable<T>::value,
                "AsWritableBytes requires a trivially copyable type: "
                "writing the bytes of anything else is undefined");
  return {reinterpret_cast<char*>(&value), sizeof(T)};
}

template <typename T>
MutableByteSpan AsWritableBytes(T* first, size_t count) {
  static_assert(std::is_trivially_copyable<T>::value,
                "AsWritableBytes requires a trivially copyable element type");
  return {reinterpret_cast<char*>(first), count * sizeof(T)};
}

/// Reassembles a T from exactly sizeof(T) bytes. memcpy-based, so the
/// result is well-defined for any bit pattern that is a valid T value.
template <typename T>
T FromBytes(ByteSpan bytes) {
  static_assert(std::is_trivially_copyable<T>::value,
                "FromBytes requires a trivially copyable type");
  GEODP_CHECK_EQ(bytes.size, sizeof(T));
  T value;
  std::memcpy(&value, bytes.data, sizeof(T));
  return value;
}

/// Pointer pun for C APIs (sockaddr et al.). Both sides must be object
/// pointer types; constness must not be casted away.
template <typename To, typename From>
To* PunCast(From* from) {
  static_assert(std::is_object<To>::value && std::is_object<From>::value,
                "PunCast converts between object pointer types only");
  static_assert(std::is_const<To>::value || !std::is_const<From>::value,
                "PunCast must not cast away constness");
  return reinterpret_cast<To*>(from);
}

}  // namespace geodp

#endif  // GEODP_BASE_BYTE_VIEW_H_
