#include "nn/activations.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

Tensor ReLU::Forward(const Tensor& input) {
  mask_ = Tensor(input.shape());
  Tensor output = input;
  for (int64_t i = 0; i < output.numel(); ++i) {
    if (output[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      output[i] = 0.0f;
    }
  }
  return output;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  GEODP_CHECK(SameShape(grad_output, mask_));
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

Tensor Tanh::Forward(const Tensor& input) {
  output_ = input;
  for (int64_t i = 0; i < output_.numel(); ++i) {
    output_[i] = std::tanh(output_[i]);
  }
  return output_;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  GEODP_CHECK(SameShape(grad_output, output_));
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    grad_input[i] *= 1.0f - output_[i] * output_[i];
  }
  return grad_input;
}

Tensor Sigmoid::Forward(const Tensor& input) {
  output_ = input;
  for (int64_t i = 0; i < output_.numel(); ++i) {
    output_[i] = static_cast<float>(
        1.0 / (1.0 + std::exp(-static_cast<double>(output_[i]))));
  }
  return output_;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  GEODP_CHECK(SameShape(grad_output, output_));
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    grad_input[i] *= output_[i] * (1.0f - output_[i]);
  }
  return grad_input;
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {
  GEODP_CHECK_GE(slope_, 0.0f);
  GEODP_CHECK_LT(slope_, 1.0f);
}

Tensor LeakyReLU::Forward(const Tensor& input) {
  mask_ = Tensor(input.shape());
  Tensor output = input;
  for (int64_t i = 0; i < output.numel(); ++i) {
    if (output[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      mask_[i] = slope_;
      output[i] *= slope_;
    }
  }
  return output;
}

Tensor LeakyReLU::Backward(const Tensor& grad_output) {
  GEODP_CHECK(SameShape(grad_output, mask_));
  Tensor grad_input = grad_output;
  for (int64_t i = 0; i < grad_input.numel(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

}  // namespace geodp
