// Facade: tokenize -> resolve annotations -> token rules (R1-R6) ->
// per-sample taint pass (R2v2). The heavy lifting lives in tokenizer.cc,
// rules.cc and dataflow.cc; this file owns file/tree traversal, finding
// formatting and ordering.

#include "geodp_lint/lint.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "geodp_lint/dataflow.h"
#include "geodp_lint/rules.h"
#include "geodp_lint/tokenizer.h"

namespace geodp {
namespace lint {
namespace {

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace

const char* RuleIdName(RuleId rule) {
  switch (rule) {
    case RuleId::kR1Nondeterminism:
      return "R1";
    case RuleId::kR2PrivacyBoundary:
      return "R2";
    case RuleId::kR3CheckAbort:
      return "R3";
    case RuleId::kR4HeaderHygiene:
      return "R4";
    case RuleId::kR5RawIo:
      return "R5";
    case RuleId::kR6ReinterpretCast:
      return "R6";
    case RuleId::kAnnotation:
      return "ANN";
  }
  return "?";
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": ["
      << RuleIdName(finding.rule) << "] " << finding.message;
  return out.str();
}

std::vector<Finding> LintContent(const std::string& path,
                                 std::string_view content) {
  const std::vector<Token> tokens = Tokenize(content);
  const AnnotatedSource source = BuildAnnotatedSource(path, tokens);
  const PathInfo info = ClassifyPath(path);

  std::vector<Finding> findings = source.annotation_findings;
  CheckTokenRules(path, info, source, findings);
  CheckPerSampleTaint(path, info, source, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return std::string_view(RuleIdName(a.rule)) <
                     std::string_view(RuleIdName(b.rule));
            });
  return findings;
}

StatusOr<std::vector<Finding>> LintFile(const std::string& disk_path,
                                        const std::string& path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + disk_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintContent(path, buffer.str());
}

StatusOr<std::vector<Finding>> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  static constexpr std::array<std::string_view, 5> kTopDirs = {
      "src", "tools", "examples", "bench", "tests"};

  std::vector<Finding> all;
  std::error_code ec;
  for (std::string_view top : kTopDirs) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, ec), end;
    if (ec) return Status::Internal("cannot scan " + dir.string());
    for (; it != end; it.increment(ec)) {
      if (ec) return Status::Internal("scan failed under " + dir.string());
      const fs::path& entry = it->path();
      const std::string name = entry.filename().string();
      if (it->is_directory()) {
        if (name == "lint_fixtures" || StartsWith(name, "build") ||
            StartsWith(name, ".")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!EndsWith(name, ".h") && !EndsWith(name, ".cc")) continue;
      const std::string rel =
          fs::relative(entry, root, ec).generic_string();
      if (ec) return Status::Internal("relative path failed: " +
                                      entry.string());
      StatusOr<std::vector<Finding>> findings =
          LintFile(entry.string(), rel);
      if (!findings.ok()) return findings.status();
      all.insert(all.end(), findings.value().begin(),
                 findings.value().end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return std::string_view(RuleIdName(a.rule)) <
           std::string_view(RuleIdName(b.rule));
  });
  return all;
}

}  // namespace lint
}  // namespace geodp
