// Synthetic gradient dataset (paper §VI-A): per-sample gradients harvested
// from non-DP training of a CNN on the CIFAR-like dataset with batch size 1.
// The paper merges several gradients into one higher-dimensional vector to
// sweep dimensionality; we do the same (see DESIGN.md substitutions).

#ifndef GEODP_DATA_GRADIENT_DATASET_H_
#define GEODP_DATA_GRADIENT_DATASET_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace geodp {

/// A list of equally-sized 1-D gradient vectors.
class GradientDataset {
 public:
  GradientDataset() = default;

  void Add(Tensor gradient);

  int64_t size() const { return static_cast<int64_t>(gradients_.size()); }
  int64_t dimension() const;
  const Tensor& gradient(int64_t i) const;

  /// Samples `count` gradients (with replacement) and returns the average
  /// of their flat-clipped versions at threshold C — the quantity both DP
  /// and GeoDP perturb.
  Tensor AverageClipped(int64_t count, double clip_threshold, Rng& rng) const;

 private:
  std::vector<Tensor> gradients_;
};

/// Harvest parameters.
struct GradientDatasetOptions {
  int64_t num_gradients = 2000;
  int64_t dimension = 512;       // output dimension after merge/truncation
  int64_t training_examples = 512;  // size of the underlying image dataset
  double learning_rate = 0.05;
  uint64_t seed = 7;
};

/// Trains a small CNN on a CIFAR-like synthetic dataset with batch size 1
/// (plain SGD, no DP) and records each step's flattened gradient; gradients
/// are concatenated/truncated to the requested dimension.
GradientDataset HarvestGradientDataset(const GradientDatasetOptions& options);

/// Fast alternative for unit tests and quick sweeps: gradients whose
/// directions concentrate around a shared mean direction (Theorem 3's
/// model). `spread` is the per-coordinate stddev around the mean direction
/// and magnitudes are log-normal around `mean_magnitude`.
GradientDataset MakeConcentratedGradientDataset(int64_t num_gradients,
                                                int64_t dimension,
                                                double spread,
                                                double mean_magnitude,
                                                uint64_t seed);

}  // namespace geodp

#endif  // GEODP_DATA_GRADIENT_DATASET_H_
