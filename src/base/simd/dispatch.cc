#include "base/simd/dispatch.h"

#include <cstdlib>

#include "base/check.h"

namespace geodp {
namespace {

// Whether the running cpu can execute the AVX2/FMA kernels this binary may
// contain. Feature detection is machine-dependent by construction — this is
// the one audited place (geodp_lint R1 `cpuid-ok` escape, valid only under
// src/base/simd/) where the library may ask the hardware what it supports.
bool CpuSupportsAvx2Fma() {
#if defined(GEODP_SIMD_AVX2_BUILD) && \
    (defined(__x86_64__) || defined(__i386__))
  // geodp: cpuid-ok dispatch-time feature probe, result is fixed per host
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdTier InitialTier() {
  // Mirrors GEODP_NUM_THREADS handling in thread_pool.cc: the environment
  // can override the default, and an unparsable value falls back to the
  // default rather than aborting library initialization.
  const char* env = std::getenv("GEODP_SIMD");
  if (env != nullptr) {
    const std::string value(env);
    if (value == "scalar") return SimdTier::kScalar;
    if (value == "avx2" && SimdTierAvailable(SimdTier::kAvx2)) {
      return SimdTier::kAvx2;
    }
  }
  return DetectSimdTier();
}

SimdTier& ActiveTierRef() {
  static SimdTier tier = InitialTier();
  return tier;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "?";
}

bool SimdTierAvailable(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kAvx2:
      return CpuSupportsAvx2Fma();
  }
  return false;
}

std::vector<SimdTier> AvailableSimdTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (SimdTierAvailable(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

SimdTier DetectSimdTier() {
  return SimdTierAvailable(SimdTier::kAvx2) ? SimdTier::kAvx2
                                            : SimdTier::kScalar;
}

SimdTier ActiveSimdTier() { return ActiveTierRef(); }

void SetSimdTier(SimdTier tier) {
  GEODP_CHECK(SimdTierAvailable(tier))
      << "SIMD tier " << SimdTierName(tier)
      << " is not available on this binary + host";
  ActiveTierRef() = tier;
}

Status SetSimdTierFromString(const std::string& name) {
  if (name == "auto") {
    ActiveTierRef() = DetectSimdTier();
    return Status::Ok();
  }
  SimdTier tier;
  if (name == "scalar") {
    tier = SimdTier::kScalar;
  } else if (name == "avx2") {
    tier = SimdTier::kAvx2;
  } else {
    return Status::InvalidArgument(
        "unknown SIMD tier '" + name + "' (expected scalar, avx2 or auto)");
  }
  if (!SimdTierAvailable(tier)) {
    return Status::FailedPrecondition(
        "SIMD tier '" + name + "' is not available on this binary + host");
  }
  ActiveTierRef() = tier;
  return Status::Ok();
}

}  // namespace geodp
