// Minimal Status / StatusOr for recoverable errors, modeled after
// absl::Status. Most of the library asserts invariants with GEODP_CHECK;
// Status is used where the caller can reasonably handle failure (e.g. I/O,
// configuration validation).

#ifndef GEODP_BASE_STATUS_H_
#define GEODP_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace geodp {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kInternal = 4,
  kNotFound = 5,
  // A transient failure (EINTR/EAGAIN/EIO class): the operation may
  // succeed if retried. The retry layer in base/io/ returns this after
  // exhausting its policy, so callers can distinguish "kept failing
  // transiently" from a permanent error.
  kUnavailable = 6,
  // A resource is permanently exhausted (ENOSPC/EDQUOT class); retrying
  // cannot help until an operator intervenes.
  kResourceExhausted = 7,
  // Cooperative cancellation (e.g. the trainer's stall watchdog): the
  // operation stopped cleanly before completing.
  kCancelled = 8,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error carrier. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // like absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    GEODP_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GEODP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    GEODP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    GEODP_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace geodp

#endif  // GEODP_BASE_STATUS_H_
