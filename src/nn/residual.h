// Residual block: out = ReLU(F(x) + x) with F = Conv -> ReLU -> Conv.
// Channel counts and spatial extents are preserved (3x3 kernels, padding 1),
// matching the paper's "3 residual blocks, each containing 2 convolutional
// layers and 1 ReLU" description of its ResNet.

#ifndef GEODP_NN_RESIDUAL_H_
#define GEODP_NN_RESIDUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/module.h"

namespace geodp {

/// Identity-skip residual block over [B, C, H, W] activations.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int64_t channels, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string name() const override { return "ResidualBlock"; }

 private:
  Conv2d conv1_;
  ReLU relu1_;
  Conv2d conv2_;
  ReLU relu_out_;
};

}  // namespace geodp

#endif  // GEODP_NN_RESIDUAL_H_
