// Fixture: seeded R6 violation — a raw reinterpret_cast outside the
// audited src/base/byte_view.h helper. The second function carries a
// nolint(R6) suppression, so exactly one finding remains.
#include <cstdint>

namespace geodp {

const char* RawBytes(const std::uint64_t& value) {
  return reinterpret_cast<const char*>(&value);
}

const char* SuppressedBytes(const std::uint64_t& value) {
  return reinterpret_cast<const char*>(&value);  // geodp: nolint(R6)
}

}  // namespace geodp
