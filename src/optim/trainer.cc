#include "optim/trainer.h"

#include <memory>

#include "base/check.h"
#include "base/rng.h"
#include "clip/clipping.h"
#include "data/dataloader.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/adaptive_beta.h"
#include "optim/dp_sgd.h"
#include "optim/techniques.h"

namespace geodp {
namespace {

// Fills one StepRecord from the step's intermediates and hands it to the
// observer, mirroring into the global metrics registry. Only called when
// an observer is attached, so none of this costs the plain training path.
void EmitStepTelemetry(StepObserver& observer,
                       const PrivateBatchGradient& grads,
                       const Perturber& perturber, const Clipper& clipper,
                       const RdpAccountant& accountant,
                       const TrainerOptions& options, int64_t step,
                       int64_t attempt, double current_beta,
                       bool step_accepted, const SelectiveUpdater& selective,
                       int64_t flat_dim) {
  StepRecord record;
  record.step = step;
  record.attempt = attempt;
  record.batch_size = grads.batch_size;
  record.empty_lot = grads.batch_size == 0;
  record.mean_loss = record.empty_lot ? 0.0 : grads.mean_loss;
  record.raw_grad_norm = grads.averaged_raw.L2Norm();
  record.clipped_grad_norm = grads.averaged_clipped.L2Norm();
  if (!grads.sample_grad_norms.empty()) {
    int64_t clipped = 0;
    for (const double norm : grads.sample_grad_norms) {
      if (norm > clipper.clip_threshold()) ++clipped;
    }
    record.clip_fraction =
        static_cast<double>(clipped) /
        static_cast<double>(grads.sample_grad_norms.size());
  }
  const NoiseStddevs stddevs = perturber.Stddevs(flat_dim);
  record.magnitude_noise_stddev = stddevs.magnitude;
  record.direction_noise_stddev = stddevs.direction;
  record.beta = current_beta;
  record.sur_enabled = options.selective_update;
  record.sur_accepted = step_accepted;
  record.sur_accepted_total = selective.accepted();
  record.sur_rejected_total = selective.rejected();
  const RdpSnapshot snapshot = accountant.Snapshot(options.delta);
  record.epsilon = snapshot.epsilon;
  record.rdp_order = snapshot.optimal_order;
  record.accounted_steps = snapshot.total_steps;
  observer.OnStep(record);

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.IncrementCounter("trainer.steps");
  if (record.empty_lot) registry.IncrementCounter("trainer.empty_lots");
  if (options.selective_update) {
    registry.IncrementCounter(step_accepted ? "trainer.sur_accepted"
                                            : "trainer.sur_rejected");
  }
  if (!record.empty_lot) {
    registry.ObserveHistogram("trainer.clip_fraction",
                              {0.1, 0.25, 0.5, 0.75, 0.9, 1.0},
                              record.clip_fraction);
  }
  registry.SetGauge("trainer.epsilon", record.epsilon);
}

}  // namespace

DpTrainer::DpTrainer(Sequential* model, const InMemoryDataset* train,
                     const InMemoryDataset* test, TrainerOptions options)
    : model_(model), train_(train), test_(test), options_(options) {
  GEODP_CHECK(model_ != nullptr);
  GEODP_CHECK(train_ != nullptr);
  GEODP_CHECK_GT(train_->size(), 0);
  GEODP_CHECK_GT(options_.batch_size, 0);
  GEODP_CHECK_LE(options_.batch_size, train_->size());
  GEODP_CHECK_GT(options_.iterations, 0);
  GEODP_CHECK_GT(options_.learning_rate, 0.0);
}

TrainingResult DpTrainer::Train() {
  Rng rng(options_.seed);
  Rng noise_rng = rng.Fork();

  const std::vector<Parameter*> params = model_->Parameters();
  const int64_t flat_dim = TotalParameterCount(params);

  PerturbationOptions base;
  base.clip_threshold = options_.clip_threshold;
  base.batch_size = options_.batch_size;
  base.noise_multiplier = options_.noise_multiplier;
  std::unique_ptr<Perturber> perturber = MakePerturberForMethod(
      options_.method, base, options_.beta, options_.angle_handling);
  AdaptiveBetaController beta_controller(options_.adaptive_beta_floor, 1.0);
  const bool adapt_beta =
      options_.adaptive_beta && options_.method == PerturbationMethod::kGeoDp;
  double current_beta = options_.beta;

  const std::unique_ptr<Clipper> clipper =
      MakeClipper(options_.clipper, options_.clip_threshold);

  BatchSampler uniform_sampler(train_->size(), options_.batch_size,
                               rng.Next());
  PoissonSampler poisson_sampler(train_->size(),
                                 static_cast<double>(options_.batch_size) /
                                     static_cast<double>(train_->size()),
                                 rng.Next());
  ImportanceSampler importance_sampler(train_->size(), options_.batch_size,
                                       rng.Next());
  SelectiveUpdater selective(options_.sur_tolerance);
  FlatAdam adam(flat_dim, AdamOptions{.learning_rate =
                                          options_.learning_rate});
  SoftmaxCrossEntropy loss;
  RdpAccountant accountant;
  const double sampling_rate = static_cast<double>(options_.batch_size) /
                               static_cast<double>(train_->size());

  TrainingResult result;
  // SUR (DPSUR semantics): a rejected update does not count as a training
  // iteration — the loop keeps drawing fresh noisy updates (each spending
  // privacy budget) until one is accepted, up to an attempt cap.
  const int64_t max_attempts = options_.selective_update
                                   ? 3 * options_.iterations
                                   : options_.iterations;
  StepObserver* const observer = options_.step_observer;
  const bool observing = observer != nullptr;

  int64_t accepted_updates = 0;
  for (int64_t attempt = 0;
       attempt < max_attempts && accepted_updates < options_.iterations;
       ++attempt) {
    const TraceSpan step_span("step");
    const int64_t t = accepted_updates;
    clipper->OnStep(t);
    const std::vector<int64_t> batch =
        options_.poisson_sampling
            ? poisson_sampler.NextBatch()
            : (options_.importance_sampling ? importance_sampler.NextBatch()
                                            : uniform_sampler.NextBatch());
    PrivateBatchGradient grads;
    if (batch.empty()) {
      // A Poisson draw can be empty: the "lot" contributes zero gradient
      // and the step is pure noise. Its loss is undefined and its
      // direction carries no signal, so it is excluded from loss_history
      // and from the adaptive-beta envelope below; the step telemetry
      // counts it instead.
      grads.averaged_clipped = Tensor({flat_dim});
      grads.averaged_raw = Tensor({flat_dim});
      grads.batch_size = 0;
      ++result.empty_lots;
    } else {
      grads = ComputePerSampleGradients(*model_, loss, *train_, batch,
                                        *clipper,
                                        /*record_sample_norms=*/observing);
    }
    if (options_.poisson_sampling && !batch.empty()) {
      // Renormalize: divide the clipped sum by the nominal lot size B
      // rather than the realized batch size.
      const float rescale = static_cast<float>(batch.size()) /
                            static_cast<float>(options_.batch_size);
      grads.averaged_clipped.ScaleInPlace(rescale);
      grads.averaged_raw.ScaleInPlace(rescale);
    }
    if (options_.importance_sampling && !options_.poisson_sampling) {
      for (size_t j = 0; j < batch.size(); ++j) {
        importance_sampler.UpdateLoss(batch[j], grads.sample_losses[j]);
      }
    }

    if (adapt_beta && !batch.empty()) {
      beta_controller.Observe(ToSpherical(grads.averaged_clipped));
      current_beta = beta_controller.CurrentBeta();
      perturber = MakePerturberForMethod(options_.method, base, current_beta,
                                         options_.angle_handling);
    }
    const Tensor noisy = perturber->Perturb(grads.averaged_clipped, noise_rng);
    if (options_.method != PerturbationMethod::kNoiseFree &&
        options_.noise_multiplier > 0.0) {
      accountant.AddSubsampledGaussianSteps(options_.noise_multiplier,
                                            sampling_rate, 1);
    }

    bool step_accepted = true;
    if (options_.selective_update) {
      // Snapshot, apply, test, revert on failure.
      const TraceSpan sur_span("step.sur_eval");
      const Tensor snapshot = FlattenValues(params);
      const double loss_before = EvaluateMeanLoss(
          *model_, *train_, options_.sur_eval_examples);
      if (options_.use_adam) {
        adam.Step(params, noisy);
      } else {
        ApplyFlatUpdate(params, noisy, options_.learning_rate);
      }
      const double loss_after = EvaluateMeanLoss(
          *model_, *train_, options_.sur_eval_examples);
      if (selective.ShouldAccept(loss_before, loss_after)) {
        ++accepted_updates;
      } else {
        SetValuesFromFlat(params, snapshot);
        step_accepted = false;  // rejected attempts do not advance training
      }
    } else {
      const TraceSpan apply_span("step.optimizer_apply");
      if (options_.use_adam) {
        adam.Step(params, noisy);
      } else {
        ApplyFlatUpdate(params, noisy, options_.learning_rate);
      }
      ++accepted_updates;
    }

    if (step_accepted && !batch.empty() && options_.record_loss_every > 0 &&
        (t % options_.record_loss_every == 0 ||
         t == options_.iterations - 1)) {
      result.loss_iterations.push_back(t);
      result.loss_history.push_back(grads.mean_loss);
    }

    if (observing) {
      EmitStepTelemetry(*observer, grads, *perturber, *clipper, accountant,
                        options_, t, attempt, current_beta, step_accepted,
                        selective, flat_dim);
    }
  }

  result.final_train_loss =
      EvaluateMeanLoss(*model_, *train_, /*max_examples=*/0);
  if (test_ != nullptr && test_->size() > 0) {
    result.test_accuracy = EvaluateAccuracy(*model_, *test_);
  }
  if (options_.method != PerturbationMethod::kNoiseFree &&
      options_.noise_multiplier > 0.0) {
    result.epsilon = accountant.GetEpsilon(options_.delta);
  }
  result.sur_accepted = selective.accepted();
  result.sur_rejected = selective.rejected();
  result.final_beta = adapt_beta ? current_beta : options_.beta;
  return result;
}

}  // namespace geodp
