// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Every bench prints a banner describing the
// scale-down mapping (see EXPERIMENTS.md), an aligned table, and a CSV
// block for plotting.

#ifndef GEODP_BENCH_COMMON_BENCH_UTIL_H_
#define GEODP_BENCH_COMMON_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/perturbation.h"
#include "data/dataset.h"
#include "data/gradient_dataset.h"
#include "data/synthetic_images.h"
#include "optim/trainer.h"
#include "stats/table.h"

namespace geodp {
namespace bench {

/// Parses the library-wide --geodp_* flags (threads, metrics, trace) from
/// a bench binary's argv and applies them: resizes the thread pool,
/// enables tracing, and opens the bench-wide step writer when
/// --geodp_metrics_out is set. Exits the process on a malformed flag.
/// Call first thing in main().
void InitBenchObservability(int argc, const char* const* argv);

/// Points `options.step_observer` at the bench-wide step writer opened by
/// InitBenchObservability (no-op when --geodp_metrics_out was not given).
void AttachObserver(TrainerOptions& options);

/// Prints the experiment header: id (e.g. "Figure 3(a)"), what the paper
/// measured, and this repo's reduced-scale setup.
void PrintBanner(const std::string& id, const std::string& paper_setup,
                 const std::string& repro_setup);

/// Prints the aligned table followed by a CSV block.
void PrintTable(const TablePrinter& table);

/// Direction and gradient MSE of one perturbation strategy.
struct MseResult {
  double direction_mse = 0.0;
  double gradient_mse = 0.0;
};

/// Measures MSEs over `trials` averaged clipped gradients sampled from the
/// dataset (paper Def. 4 protocol).
MseResult MeasurePerturbationMse(const GradientDataset& data,
                                 const Perturber& perturber, int64_t batch,
                                 double clip_threshold, int trials,
                                 uint64_t seed);

/// DP perturber with the paper's defaults (C from the argument).
std::unique_ptr<Perturber> MakeDp(double clip_threshold, int64_t batch,
                                  double sigma);

/// GeoDP perturber with the paper's defaults.
std::unique_ptr<Perturber> MakeGeo(double clip_threshold, int64_t batch,
                                   double sigma, double beta);

/// Gradient dataset harvested from CNN training at the given dimension
/// (paper §VI-A synthetic gradient dataset, reduced scale).
GradientDataset HarvestedGradients(int64_t dimension, int64_t count = 512);

/// Standard train/test split of the MNIST-like dataset.
struct SplitDataset {
  InMemoryDataset train;
  InMemoryDataset test;
};
SplitDataset MnistLikeSplit(int64_t train_size, int64_t test_size,
                            uint64_t seed);
SplitDataset CifarLikeSplit(int64_t train_size, int64_t test_size,
                            uint64_t seed);

}  // namespace bench
}  // namespace geodp

#endif  // GEODP_BENCH_COMMON_BENCH_UTIL_H_
