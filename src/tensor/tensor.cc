#include "tensor/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "base/simd/kernels.h"

namespace geodp {
namespace {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t extent : shape) {
    GEODP_CHECK_GT(extent, 0) << "tensor extents must be positive";
    n *= extent;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(ShapeNumel(shape_)), 0.0f);
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> data) {
  const int64_t n = ShapeNumel(shape);
  GEODP_CHECK_EQ(n, static_cast<int64_t>(data.size()))
      << "data size does not match shape";
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::Vector(std::vector<float> data) {
  const int64_t n = static_cast<int64_t>(data.size());
  return FromVector({n}, std::move(data));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, Rng& rng, float lo,
                           float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

int64_t Tensor::dim(int i) const {
  GEODP_CHECK(i >= 0 && i < ndim()) << "dim index " << i << " out of range";
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> index) const {
  GEODP_CHECK_EQ(static_cast<int>(index.size()), ndim());
  int64_t flat = 0;
  int axis = 0;
  for (int64_t i : index) {
    GEODP_DCHECK(i >= 0 && i < shape_[static_cast<size_t>(axis)]);
    flat = flat * shape_[static_cast<size_t>(axis)] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  return data_[static_cast<size_t>(FlatIndex(index))];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return data_[static_cast<size_t>(FlatIndex(index))];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  int64_t known = 1;
  int infer_axis = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      GEODP_CHECK_EQ(infer_axis, -1) << "at most one -1 extent";
      infer_axis = static_cast<int>(i);
    } else {
      GEODP_CHECK_GT(new_shape[i], 0);
      known *= new_shape[i];
    }
  }
  if (infer_axis >= 0) {
    GEODP_CHECK_EQ(numel() % known, 0) << "cannot infer extent";
    new_shape[static_cast<size_t>(infer_axis)] = numel() / known;
    known *= new_shape[static_cast<size_t>(infer_axis)];
  }
  GEODP_CHECK_EQ(known, numel()) << "reshape changes element count";
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::Fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  GEODP_CHECK(SameShape(*this, other));
  simd::Add(data_.data(), other.data(), numel());
}

void Tensor::SubInPlace(const Tensor& other) {
  GEODP_CHECK(SameShape(*this, other));
  for (int64_t i = 0; i < numel(); ++i) data_[static_cast<size_t>(i)] -= other[i];
}

void Tensor::ScaleInPlace(float factor) {
  simd::Scale(data_.data(), factor, numel());
}

void Tensor::AxpyInPlace(float alpha, const Tensor& x) {
  GEODP_CHECK(SameShape(*this, x));
  simd::Axpy(data_.data(), x.data(), alpha, numel());
}

double Tensor::L2Norm() const {
  return std::sqrt(simd::SumSquares(data_.data(), numel()));
}

double Tensor::Sum() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v);
  return sum;
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor([";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << "], [";
  const int64_t n = std::min<int64_t>(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i) out << ", ";
    out << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) out << ", ...";
  out << "])";
  return out.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace geodp
