// Tests for the live introspection server: exposition golden text (exact
// bytes, no networking), request routing, the budget/stall watchdogs, the
// socket layer (malformed and oversize requests), concurrent scrapes
// during a real training run (exercised under TSan in CI), and the
// 1-vs-8-thread byte-identity of /metrics at a fixed step.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/byte_view.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "base/timer.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

// Sends `raw` to the server and returns the full response (read to EOF).
std::string RawRequest(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, geodp::PunCast<const sockaddr>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& target) {
  return RawRequest(port, "GET " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

std::string ResponseBody(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(PrometheusNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(PrometheusMetricName("trainer.steps"), "geodp_trainer_steps");
  EXPECT_EQ(PrometheusMetricName("obs.jsonl-errors"),
            "geodp_obs_jsonl_errors");
  EXPECT_EQ(PrometheusMetricName("plain"), "geodp_plain");
}

TEST(PrometheusTextTest, GoldenBytes) {
  MetricsRegistry registry;
  registry.IncrementCounter("trainer.steps", 3);
  registry.SetGauge("trainer.epsilon", 0.5);
  registry.ObserveHistogram("trainer.clip_fraction", {0.5, 1.0}, 0.25);
  registry.ObserveHistogram("trainer.clip_fraction", {0.5, 1.0}, 0.75);
  EXPECT_EQ(
      PrometheusText(registry.Snapshot()),
      "# HELP geodp_trainer_steps_total trainer.steps\n"
      "# TYPE geodp_trainer_steps_total counter\n"
      "geodp_trainer_steps_total 3\n"
      "# HELP geodp_trainer_epsilon trainer.epsilon\n"
      "# TYPE geodp_trainer_epsilon gauge\n"
      "geodp_trainer_epsilon 0.5\n"
      "# HELP geodp_trainer_clip_fraction trainer.clip_fraction\n"
      "# TYPE geodp_trainer_clip_fraction histogram\n"
      "geodp_trainer_clip_fraction_bucket{le=\"0.5\"} 1\n"
      "geodp_trainer_clip_fraction_bucket{le=\"1\"} 2\n"
      "geodp_trainer_clip_fraction_bucket{le=\"+Inf\"} 2\n"
      "geodp_trainer_clip_fraction_sum 1\n"
      "geodp_trainer_clip_fraction_count 2\n"
      "# HELP geodp_trainer_clip_fraction_p50 p50 of trainer.clip_fraction\n"
      "# TYPE geodp_trainer_clip_fraction_p50 gauge\n"
      "geodp_trainer_clip_fraction_p50 0.5\n"
      "# HELP geodp_trainer_clip_fraction_p95 p95 of trainer.clip_fraction\n"
      "# TYPE geodp_trainer_clip_fraction_p95 gauge\n"
      "geodp_trainer_clip_fraction_p95 0.95\n"
      "# HELP geodp_trainer_clip_fraction_p99 p99 of trainer.clip_fraction\n"
      "# TYPE geodp_trainer_clip_fraction_p99 gauge\n"
      "geodp_trainer_clip_fraction_p99 0.99\n");
}

TEST(PrometheusTextTest, EmptyRegistryIsEmptyText) {
  MetricsRegistry registry;
  EXPECT_EQ(PrometheusText(registry.Snapshot()), "");
}

TEST(StatusPublisherTest, LatestIsNullBeforeFirstPublishAndSequences) {
  TrainingStatusPublisher publisher;
  EXPECT_EQ(publisher.Latest(), nullptr);
  EXPECT_EQ(publisher.publish_count(), 0);

  TrainingStatusSnapshot snapshot;
  snapshot.run_state = "training";
  snapshot.step = 1;
  publisher.Publish(snapshot);
  snapshot.step = 2;
  publisher.Publish(snapshot);

  const auto latest = publisher.Latest();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->step, 2);
  EXPECT_EQ(latest->publish_sequence, 2);
  EXPECT_EQ(publisher.publish_count(), 2);
  // A reader holding an old snapshot keeps it alive across publishes.
  snapshot.step = 3;
  publisher.Publish(snapshot);
  EXPECT_EQ(latest->step, 2);
}

TEST(StatuszTest, JsonGoldenBytes) {
  TrainingStatusSnapshot s;
  s.run_state = "training";
  s.options_fingerprint = "v1|seed=1";
  s.step = 5;
  s.attempt = 6;
  s.iterations = 10;
  s.epsilon_spent = 0.5;
  s.epsilon_budget = 2.0;
  s.delta = 1e-5;
  s.checkpoint_dir = "/tmp/ckpt";
  s.latest_checkpoint = "/tmp/ckpt/ckpt_000006.geockpt";
  s.publish_sequence = 7;
  s.publish_micros = 123;
  EXPECT_EQ(StatuszJson(s),
            "{\"run_state\":\"training\",\"options_fingerprint\":\"v1|seed=1\","
            "\"step\":5,\"attempt\":6,\"iterations\":10,\"last_record\":null,"
            "\"epsilon_spent\":0.5,\"epsilon_budget\":2,\"delta\":1e-05,"
            "\"degraded\":false,\"eps_burn_rate\":0,"
            "\"eps_steps_to_exhaustion\":-1,"
            "\"checkpoint_dir\":\"/tmp/ckpt\","
            "\"latest_checkpoint\":"
            "\"/tmp/ckpt/ckpt_000006.geockpt\",\"publish_sequence\":7,"
            "\"publish_micros\":123}");
  const std::string html = StatuszHtml(s);
  EXPECT_NE(html.find("<title>geodp /statusz</title>"), std::string::npos);
  EXPECT_NE(html.find("v1|seed=1"), std::string::npos);
  EXPECT_NE(html.find("<tr><td>degraded</td><td>false</td></tr>"),
            std::string::npos);

  s.degraded = true;
  EXPECT_NE(StatuszJson(s).find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(StatuszHtml(s).find("<tr><td>degraded</td><td>true</td></tr>"),
            std::string::npos);
}

TEST(StatuszTest, LastRecordEmbedsStepRecordJson) {
  TrainingStatusSnapshot s;
  s.run_state = "finished";
  s.has_last_record = true;
  s.last_record.step = 9;
  s.last_record.epsilon = 0.25;
  const std::string json = StatuszJson(s);
  EXPECT_NE(json.find("\"last_record\":{\"step\":9,"), std::string::npos);
  EXPECT_NE(json.find(StepRecordToJson(s.last_record)), std::string::npos);
}

TEST(VarzTest, NullStatusAndMetricsSections) {
  MetricsRegistry registry;
  registry.IncrementCounter("c", 2);
  registry.SetGauge("g", 1.5);
  const std::string json = VarzJson(registry.Snapshot(), nullptr);
  EXPECT_EQ(json,
            "{\"metrics\":{\"counters\":{\"c\":2},\"gauges\":{\"g\":1.5},"
            "\"histograms\":{}},\"status\":null}");
}

TEST(RouteTest, MethodAndPathHandling) {
  MetricsRegistry registry;
  const IntrospectionServerOptions options;
  EXPECT_EQ(RouteIntrospectionRequest("POST", "/metrics", &registry, nullptr,
                                      options)
                .status,
            405);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/nope", &registry, nullptr,
                                      options)
                .status,
            404);
  const IntrospectionResponse index =
      RouteIntrospectionRequest("GET", "/", &registry, nullptr, options);
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  const IntrospectionResponse metrics = RouteIntrospectionRequest(
      "GET", "/metrics", &registry, nullptr, options);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  // Null registry and publisher must not crash any endpoint.
  for (const char* target :
       {"/metrics", "/healthz", "/readyz", "/statusz", "/varz"}) {
    RouteIntrospectionRequest("GET", target, nullptr, nullptr, options);
  }
}

TEST(RouteTest, HealthzFlipsOnExceededBudgetOnly) {
  const IntrospectionServerOptions options;
  TrainingStatusPublisher publisher;
  // Liveness holds before any snapshot; readiness does not.
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                      options)
                .status,
            200);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/readyz", nullptr, &publisher,
                                      options)
                .status,
            503);

  TrainingStatusSnapshot snapshot;
  snapshot.run_state = "training";
  snapshot.epsilon_spent = 1.0;
  snapshot.epsilon_budget = 2.0;
  publisher.Publish(snapshot);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                      options)
                .status,
            200);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/readyz", nullptr, &publisher,
                                      options)
                .status,
            200);

  snapshot.epsilon_spent = 2.5;  // over budget
  publisher.Publish(snapshot);
  const IntrospectionResponse health = RouteIntrospectionRequest(
      "GET", "/healthz", nullptr, &publisher, options);
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("privacy budget exceeded"), std::string::npos);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/readyz", nullptr, &publisher,
                                      options)
                .status,
            503);

  snapshot.epsilon_budget = 0.0;  // unbounded: watchdog off
  publisher.Publish(snapshot);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                      options)
                .status,
            200);
}

TEST(RouteTest, HealthzWarnsWithinTheBurnRateHorizon) {
  IntrospectionServerOptions options;
  options.epsilon_warn_steps = 100;
  TrainingStatusPublisher publisher;
  TrainingStatusSnapshot snapshot;
  snapshot.run_state = "training";
  snapshot.epsilon_spent = 1.0;
  snapshot.epsilon_budget = 2.0;
  snapshot.eps_burn_rate = 0.004;

  // Projected exhaustion beyond the horizon: plain ok.
  snapshot.eps_steps_to_exhaustion = 250.0;
  publisher.Publish(snapshot);
  IntrospectionResponse health = RouteIntrospectionRequest(
      "GET", "/healthz", nullptr, &publisher, options);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  // Inside the horizon: still 200 (the run is healthy) but the body
  // carries the early warning monitors alert on before the 503 flip.
  snapshot.eps_steps_to_exhaustion = 80.0;
  publisher.Publish(snapshot);
  health = RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                     options);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body,
            "warn: epsilon budget exhausted in ~80 steps at the current "
            "burn rate\n");

  // Unknown trend (-1) or a disabled horizon never warns.
  snapshot.eps_steps_to_exhaustion = -1.0;
  publisher.Publish(snapshot);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                      options)
                .body,
            "ok\n");
  options.epsilon_warn_steps = 0;
  snapshot.eps_steps_to_exhaustion = 80.0;
  publisher.Publish(snapshot);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                      options)
                .body,
            "ok\n");
}

TEST(RouteTest, ProfilezServesHtmlJsonAndFoldedText) {
  const IntrospectionServerOptions options;
  DisableProfiling();
  ResetProfile();
  const IntrospectionResponse html = RouteIntrospectionRequest(
      "GET", "/profilez", nullptr, nullptr, options);
  EXPECT_EQ(html.status, 200);
  EXPECT_EQ(html.content_type, "text/html; charset=utf-8");
  EXPECT_NE(html.body.find("<title>geodp /profilez</title>"),
            std::string::npos);
  const IntrospectionResponse json = RouteIntrospectionRequest(
      "GET", "/profilez?format=json", nullptr, nullptr, options);
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_EQ(json.body, "{\"enabled\":false,\"threads\":0,\"phases\":[]}");
  const IntrospectionResponse folded = RouteIntrospectionRequest(
      "GET", "/profilez?format=folded", nullptr, nullptr, options);
  EXPECT_EQ(folded.status, 200);
  EXPECT_EQ(folded.body, "");
}

TEST(RouteTest, FlightzServesTheGlobalRecorder) {
  const IntrospectionServerOptions options;
  FlightRecorder::Global().Reset();
  FlightRecorder::Global().Record(FlightEventKind::kNote, 7, "route test");
  const IntrospectionResponse flight = RouteIntrospectionRequest(
      "GET", "/flightz", nullptr, nullptr, options);
  EXPECT_EQ(flight.status, 200);
  EXPECT_EQ(flight.content_type, "application/json");
  EXPECT_EQ(flight.body.find("{\"enabled\":true,\"total_recorded\":1,"), 0u);
  EXPECT_NE(flight.body.find("\"kind\":\"note\",\"step\":7"),
            std::string::npos);
  EXPECT_NE(flight.body.find("\"detail\":\"route test\""),
            std::string::npos);
  FlightRecorder::Global().Reset();

  const IntrospectionResponse index =
      RouteIntrospectionRequest("GET", "/", nullptr, nullptr, options);
  EXPECT_NE(index.body.find("/profilez"), std::string::npos);
  EXPECT_NE(index.body.find("/flightz"), std::string::npos);
}

TEST(RouteTest, DegradedRunStaysHealthyWithMarkerBody) {
  // Telemetry loss must not get the run killed by an orchestrator: the
  // epsilon already spent is unrecoverable. /healthz stays 200 but the
  // body carries the "degraded" marker monitors alert on.
  const IntrospectionServerOptions options;
  TrainingStatusPublisher publisher;
  TrainingStatusSnapshot snapshot;
  snapshot.run_state = "training";
  snapshot.degraded = true;
  publisher.Publish(snapshot);
  const IntrospectionResponse health = RouteIntrospectionRequest(
      "GET", "/healthz", nullptr, &publisher, options);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "degraded\n");
}

TEST(PrometheusTextTest, ResilienceCountersGoldenBytes) {
  // The counters the trainer mirrors from the I/O substrate and the
  // checkpoint miss/prune paths, in Prometheus exposition form.
  MetricsRegistry registry;
  registry.IncrementCounter("io.retries", 4);
  registry.IncrementCounter("io.giveups", 1);
  registry.IncrementCounter("ckpt.missed", 2);
  registry.IncrementCounter("ckpt.prune_errors", 1);
  EXPECT_EQ(PrometheusText(registry.Snapshot()),
            "# HELP geodp_ckpt_missed_total ckpt.missed\n"
            "# TYPE geodp_ckpt_missed_total counter\n"
            "geodp_ckpt_missed_total 2\n"
            "# HELP geodp_ckpt_prune_errors_total ckpt.prune_errors\n"
            "# TYPE geodp_ckpt_prune_errors_total counter\n"
            "geodp_ckpt_prune_errors_total 1\n"
            "# HELP geodp_io_giveups_total io.giveups\n"
            "# TYPE geodp_io_giveups_total counter\n"
            "geodp_io_giveups_total 1\n"
            "# HELP geodp_io_retries_total io.retries\n"
            "# TYPE geodp_io_retries_total counter\n"
            "geodp_io_retries_total 4\n");
}

TEST(RouteTest, ReadyzStallWatchdog) {
  IntrospectionServerOptions options;
  options.stall_timeout_ms = 1;
  TrainingStatusPublisher publisher;
  TrainingStatusSnapshot snapshot;
  snapshot.run_state = "training";
  publisher.Publish(snapshot);
  // Burn process time until the snapshot is definitely older than the
  // stall timeout (ProcessMicros is CPU time, so this is deterministic).
  const int64_t start = Timer::ProcessMicros();
  while (Timer::ProcessMicros() - start < 5000) {
  }
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/readyz", nullptr, &publisher,
                                      options)
                .status,
            503);
  // A finished run is never "stalled"; /healthz ignores staleness.
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/healthz", nullptr, &publisher,
                                      options)
                .status,
            200);
  snapshot.run_state = "finished";
  publisher.Publish(snapshot);
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/readyz", nullptr, &publisher,
                                      options)
                .status,
            200);
}

TEST(RouteTest, StatuszFormatsJsonAndHtml) {
  const IntrospectionServerOptions options;
  TrainingStatusPublisher publisher;
  EXPECT_EQ(RouteIntrospectionRequest("GET", "/statusz", nullptr, &publisher,
                                      options)
                .status,
            503);
  TrainingStatusSnapshot snapshot;
  snapshot.run_state = "training";
  publisher.Publish(snapshot);
  const IntrospectionResponse html = RouteIntrospectionRequest(
      "GET", "/statusz", nullptr, &publisher, options);
  EXPECT_EQ(html.status, 200);
  EXPECT_EQ(html.content_type, "text/html; charset=utf-8");
  const IntrospectionResponse json = RouteIntrospectionRequest(
      "GET", "/statusz?format=json", nullptr, &publisher, options);
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_EQ(json.body, StatuszJson(*publisher.Latest()));
}

TEST(SerializeTest, WireFormat) {
  IntrospectionResponse response;
  response.status = 200;
  response.content_type = "text/plain; charset=utf-8";
  response.body = "hi\n";
  EXPECT_EQ(SerializeHttpResponse(response),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; charset=utf-8\r\n"
            "Content-Length: 3\r\n"
            "Connection: close\r\n\r\nhi\n");
}

TEST(ServerTest, ServesMetricsOverSocket) {
  MetricsRegistry registry;
  registry.IncrementCounter("requests", 2);
  IntrospectionServer server(&registry, nullptr,
                             IntrospectionServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  const std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(ResponseBody(response), PrometheusText(registry.Snapshot()));
  EXPECT_GE(server.requests_served(), 1);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(ServerTest, RejectsMalformedAndOversizeRequests) {
  MetricsRegistry registry;
  IntrospectionServerOptions options;
  options.max_request_bytes = 512;
  IntrospectionServer server(&registry, nullptr, options);
  ASSERT_TRUE(server.Start().ok());

  EXPECT_NE(RawRequest(server.port(), "garbage\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
  EXPECT_NE(RawRequest(server.port(), "GET /metrics\r\n\r\n")
                .find("HTTP/1.1 400 Bad Request"),
            std::string::npos);
  EXPECT_NE(RawRequest(server.port(),
                       "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  const std::string oversize =
      "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(1024, 'a') +
      "\r\n\r\n";
  EXPECT_NE(RawRequest(server.port(), oversize).find("HTTP/1.1 431"),
            std::string::npos);
  // The server survives all of the above and still serves.
  EXPECT_NE(HttpGet(server.port(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
}

TEST(ServerTest, EphemeralPortsAreIndependent) {
  MetricsRegistry registry;
  IntrospectionServer a(&registry, nullptr, IntrospectionServerOptions{});
  IntrospectionServer b(&registry, nullptr, IntrospectionServerOptions{});
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), b.port());
}

InMemoryDataset SmallDataset(uint64_t seed) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 96;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = seed;
  return MakeSyntheticImages(data_options);
}

TrainerOptions SmallTrainerOptions() {
  TrainerOptions options;
  options.method = PerturbationMethod::kGeoDp;
  options.beta = 0.05;
  options.batch_size = 16;
  options.iterations = 8;
  options.learning_rate = 0.5;
  options.noise_multiplier = 1.0;
  options.seed = 43;
  return options;
}

// Live scrape while training runs: clients hammer every endpoint from
// other threads while the trainer publishes. TSan (CI) verifies the
// publisher/registry synchronization; the assertions here pin behavior.
TEST(ServerTest, ConcurrentScrapesDuringTraining) {
  MetricsRegistry::Global().Reset();
  const InMemoryDataset train = SmallDataset(41);
  TrainingStatusPublisher publisher;
  IntrospectionServer server(&MetricsRegistry::Global(), &publisher,
                             IntrospectionServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<int64_t> scrapes{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&server, &done, &scrapes] {
      const char* targets[] = {"/metrics", "/readyz", "/statusz?format=json",
                               "/varz"};
      int cursor = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::string response =
            HttpGet(server.port(), targets[cursor % 4]);
        if (!response.empty()) scrapes.fetch_add(1);
        ++cursor;
      }
    });
  }

  Rng rng(42);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions options = SmallTrainerOptions();
  options.status_publisher = &publisher;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const StatusOr<TrainingResult> result = trainer.Run();
  // Under machine load the short run can outpace the clients; keep the
  // server up until at least one scrape has landed so the count below is
  // deterministic, not a race against the trainer.
  while (scrapes.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  server.Stop();

  ASSERT_TRUE(result.ok());
  EXPECT_GT(scrapes.load(), 0);
  const auto latest = publisher.Latest();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->run_state, "finished");
  EXPECT_EQ(latest->step, 8);
  EXPECT_DOUBLE_EQ(latest->epsilon_spent, result.value().epsilon);
  MetricsRegistry::Global().Reset();
}

// The introspection channel must not perturb training: the same run with
// and without a publisher produces bit-identical telemetry.
TEST(ServerTest, PublisherDoesNotChangeTelemetry) {
  const InMemoryDataset train = SmallDataset(41);
  auto run = [&](bool with_publisher) {
    Rng rng(42);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions options = SmallTrainerOptions();
    CollectingStepObserver observer;
    options.step_observer = &observer;
    TrainingStatusPublisher publisher;
    if (with_publisher) options.status_publisher = &publisher;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    trainer.Train();
    std::string serialized;
    for (const StepRecord& record : observer.records()) {
      serialized += StepRecordToJson(record) + "\n";
    }
    return serialized;
  };
  const std::string without = run(false);
  const std::string with = run(true);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

// /metrics at a fixed step is byte-identical whether the run used 1 or 8
// threads: values are bit-identical by the ParallelFor contract and the
// exposition is a pure function of them.
TEST(ServerTest, MetricsBytesIdenticalAcrossThreadCounts) {
  const InMemoryDataset train = SmallDataset(41);
  auto run = [&](int threads) {
    MetricsRegistry::Global().Reset();
    SetGlobalThreadCount(threads);
    Rng rng(42);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions options = SmallTrainerOptions();
    TrainingStatusPublisher publisher;
    options.status_publisher = &publisher;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    trainer.Train();
    SetGlobalThreadCount(0);
    const IntrospectionResponse response = RouteIntrospectionRequest(
        "GET", "/metrics", &MetricsRegistry::Global(), &publisher,
        IntrospectionServerOptions{});
    MetricsRegistry::Global().Reset();
    return response.body;
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("geodp_trainer_steps_total 8\n"), std::string::npos);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace geodp
