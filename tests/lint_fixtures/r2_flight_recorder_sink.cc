// Fixture: seeded R2v2 violation — a per-sample value is handed to a
// LOCAL flight recorder through Record(). A method call on a local
// object is normally just a store (the taint pass taints the object
// and stays silent, as NoteSum shows), but the recorder's ring buffer
// outlives the step — snapshots surface on /flightz and in crash
// postmortems — so Record() is a release sink whatever the receiver.

namespace geodp {

struct ScratchRecorder {
  void Record(double value);
};

struct ScratchAccumulator {
  void Add(double value);
};

void NoteNorm(const double& sample_norm) {  // geodp: per-sample
  double scaled = sample_norm * 0.5;
  ScratchRecorder recorder;
  recorder.Record(scaled);
}

void NoteSum(const double& sample_norm) {  // geodp: per-sample
  ScratchAccumulator acc;
  acc.Add(sample_norm);
}

}  // namespace geodp
