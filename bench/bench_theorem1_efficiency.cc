// Theorem 1 (impact of DP noise on model efficiency): the efficiency
// difference between a noisy and a noise-free step decomposes as
//   ED = eta^2 (||g~*||^2 - ||g~||^2)   [Item A, magnitude effect]
//      + 2 eta <g~* - g~, w* - w_t>      [Item B, direction effect]
// Fine-tuning (lr, clipping, B) can shrink Item A but not Item B
// (Corollary 2); GeoDP attacks Item B directly. This bench measures both
// items along a real LR training run for DP and GeoDP.
// Expected shape: comparable Item A magnitudes, but GeoDP's |Item B| far
// below DP's at small beta; DP-SGD also never rests at the optimum
// (Corollary 1: ED > 0 when w_t == w*).

#include <cmath>

#include "base/rng.h"
#include "clip/clipping.h"
#include "common/bench_util.h"
#include "models/logistic_regression.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "optim/dp_sgd.h"
#include "optim/trainer.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace bench {
namespace {

constexpr double kLr = 2.0;
constexpr double kClip = 0.1;
constexpr int64_t kBatch = 128;
constexpr double kSigma = 4.0;
constexpr int kSteps = 100;

struct EdDecomposition {
  double mean_item_a = 0.0;
  double mean_abs_item_b = 0.0;
  double mean_ed = 0.0;
};

EdDecomposition MeasureDecomposition(const InMemoryDataset& train,
                                     const Tensor& optimum,
                                     const Perturber& perturber,
                                     uint64_t seed) {
  Rng init_rng(5);
  auto model = MakeLogisticRegression(196, 10, init_rng);
  const auto params = model->Parameters();
  SoftmaxCrossEntropy loss;
  const FlatClipper clipper(kClip);
  Rng rng(seed);
  Rng noise_rng(seed + 1);

  RunningStat item_a, item_b_abs, ed;
  for (int t = 0; t < kSteps; ++t) {
    std::vector<int64_t> batch;
    for (int64_t j = 0; j < kBatch; ++j) {
      batch.push_back(static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(train.size()))));
    }
    const PrivateBatchGradient grads =
        ComputePerSampleGradients(*model, loss, train, batch, clipper);
    const Tensor noisy = perturber.Perturb(grads.averaged_clipped, noise_rng);

    const Tensor w = FlattenValues(params);
    const Tensor to_optimum = Sub(optimum, w);
    const double clean_norm = grads.averaged_clipped.L2Norm();
    const double noisy_norm = noisy.L2Norm();
    const double a =
        kLr * kLr * (noisy_norm * noisy_norm - clean_norm * clean_norm);
    const Tensor noise = Sub(noisy, grads.averaged_clipped);
    const double b = 2.0 * kLr * Dot(noise, to_optimum);
    item_a.Add(a);
    item_b_abs.Add(std::fabs(b));
    ed.Add(a + b);

    // Descend on the noisy gradient, as DP-SGD would.
    ApplyFlatUpdate(params, noisy, kLr);
  }
  return {item_a.mean(), item_b_abs.mean(), ed.mean()};
}

void Run() {
  PrintBanner(
      "Theorem 1 / Corollaries 1-2 (efficiency-difference decomposition)",
      "ED = eta^2*ItemA + 2*eta*ItemB; tuning shrinks ItemA only; GeoDP "
      "shrinks ItemB",
      "LR on 14x14 synthetic MNIST; w* = 600-iteration noise-free run; "
      "sigma=4, B=128, C=0.1, 100 measured steps");

  const SplitDataset data = MnistLikeSplit(1024, 128, /*seed=*/41);

  // Reference optimum: long noise-free training from the same init.
  Rng init_rng(5);
  auto reference = MakeLogisticRegression(196, 10, init_rng);
  TrainerOptions reference_options;
  reference_options.method = PerturbationMethod::kNoiseFree;
  reference_options.batch_size = 128;
  reference_options.iterations = 600;
  reference_options.learning_rate = kLr;
  reference_options.clip_threshold = kClip;
  reference_options.seed = 43;
  DpTrainer reference_trainer(reference.get(), &data.train, nullptr,
                              reference_options);
  reference_trainer.Train();
  const Tensor optimum = FlattenValues(reference->Parameters());

  TablePrinter table({"strategy", "mean Item A", "mean |Item B|",
                      "mean ED"});
  {
    PerturbationOptions base;
    base.clip_threshold = kClip;
    base.batch_size = kBatch;
    base.noise_multiplier = kSigma;
    const DpPerturber dp(base);
    const EdDecomposition d =
        MeasureDecomposition(data.train, optimum, dp, 47);
    table.AddRow({"DP", TablePrinter::FmtSci(d.mean_item_a),
                  TablePrinter::FmtSci(d.mean_abs_item_b),
                  TablePrinter::FmtSci(d.mean_ed)});
  }
  for (double beta : {0.01, 0.001}) {
    GeoDpOptions options;
    options.base.clip_threshold = kClip;
    options.base.batch_size = kBatch;
    options.base.noise_multiplier = kSigma;
    options.beta = beta;
    const GeoDpPerturber geo(options);
    const EdDecomposition d =
        MeasureDecomposition(data.train, optimum, geo, 47);
    table.AddRow({"GeoDP beta=" + TablePrinter::Fmt(beta, 3),
                  TablePrinter::FmtSci(d.mean_item_a),
                  TablePrinter::FmtSci(d.mean_abs_item_b),
                  TablePrinter::FmtSci(d.mean_ed)});
  }
  PrintTable(table);

  // Corollary 1: even *at* the optimum, one DP step strictly increases the
  // distance (ED > 0 in expectation because Item B vanishes and Item A is
  // positive).
  PrintBanner("Corollary 1 (DP-SGD cannot stay at the optimum)",
              "at w_t = w*, Item B = 0 in expectation but Item A > 0",
              "model set exactly to w*; measure ED of one DP step, 200 "
              "repeats");
  Rng init_rng2(5);
  auto at_optimum = MakeLogisticRegression(196, 10, init_rng2);
  SetValuesFromFlat(at_optimum->Parameters(), optimum);
  SoftmaxCrossEntropy loss;
  const FlatClipper clipper(kClip);
  PerturbationOptions base;
  base.clip_threshold = kClip;
  base.batch_size = kBatch;
  base.noise_multiplier = kSigma;
  const DpPerturber dp(base);
  Rng rng(51), noise_rng(53);
  RunningStat departure;
  for (int t = 0; t < 200; ++t) {
    std::vector<int64_t> batch;
    for (int64_t j = 0; j < kBatch; ++j) {
      batch.push_back(static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(data.train.size()))));
    }
    const PrivateBatchGradient grads = ComputePerSampleGradients(
        *at_optimum, loss, data.train, batch, clipper);
    const Tensor noisy = dp.Perturb(grads.averaged_clipped, noise_rng);
    // ||w* - lr*g~* - w*||^2 - ||w* - lr*g~ - w*||^2.
    const double noisy_norm = noisy.L2Norm();
    const double clean_norm = grads.averaged_clipped.L2Norm();
    departure.Add(kLr * kLr *
                  (noisy_norm * noisy_norm - clean_norm * clean_norm));
  }
  TablePrinter corollary({"quantity", "value"});
  corollary.AddRow({"mean ED at optimum (Item A only)",
                    TablePrinter::FmtSci(departure.mean())});
  corollary.AddRow({"stderr", TablePrinter::FmtSci(departure.stderr_mean())});
  PrintTable(corollary);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
