// Privacy calibration check (paper Fig. 3 caption / §V-C2): the sigma <->
// epsilon mapping at delta = 1e-5, the RDP-accounted epsilon of a full
// training run, and GeoDP's relaxed direction guarantee
// (epsilon, delta + delta') with delta' <= 1 - beta.

#include "common/bench_util.h"
#include "core/privacy_region.h"
#include "dp/composition.h"
#include "dp/gaussian_mechanism.h"
#include "dp/rdp_accountant.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Privacy calibration (sigma <-> epsilon at delta=1e-5)",
      "sigma in {1e-4..10} labeled epsilon {484.5, 153.2, 48.5, 15.3, 4.9, "
      "1.5}; RDP for the cumulative loss",
      "classic single-release Gaussian calibration plus RDP accounting of "
      "a T=1000-step run at q=0.01");

  const double delta = 1e-5;

  TablePrinter calibration(
      {"sigma", "single-release eps", "RDP eps (T=1000, q=0.01)"});
  for (double sigma : {1e-2, 1e-1, 0.5, 1.0, 2.0, 4.0, 10.0}) {
    RdpAccountant accountant;
    accountant.AddSubsampledGaussianSteps(NoiseMultiplier(sigma),
                                          SamplingRate(0.01), 1000);
    calibration.AddRow({TablePrinter::Fmt(sigma, 2),
                        TablePrinter::Fmt(GaussianEpsilonForSigma(sigma,
                                          delta), 2),
                        TablePrinter::Fmt(accountant.GetEpsilon(Delta(delta)),
                                          2)});
  }
  PrintTable(calibration);

  PrintBanner("GeoDP direction guarantee (Theorem 5 / Lemma 2)",
              "direction satisfies (eps, delta + delta')-DP, delta' <= 1-beta",
              "report for sigma=1, delta=1e-5 across beta");
  TablePrinter geo({"beta", "epsilon", "delta", "delta' upper",
                    "total delta upper"});
  for (double beta : {1.0, 0.8, 0.5, 0.2, 0.1, 0.01}) {
    const GeoDpPrivacyReport report = AnalyzeGeoDpPrivacy(1.0, delta, beta);
    geo.AddRow({TablePrinter::Fmt(beta, 2),
                TablePrinter::Fmt(report.epsilon, 3),
                TablePrinter::FmtSci(report.delta, 1),
                TablePrinter::Fmt(report.delta_prime_upper_bound, 2),
                TablePrinter::Fmt(report.total_delta_upper_bound, 5)});
  }
  PrintTable(geo);

  PrintBanner("Composition cross-check",
              "RDP should dominate basic and advanced composition",
              "per-step eps from classic calibration at sigma=2, T=500");
  const double sigma = 2.0;
  const double per_step_eps = GaussianEpsilonForSigma(sigma, 1e-7);
  const PrivacyGuarantee basic = BasicComposition({per_step_eps, 1e-7}, 500);
  const PrivacyGuarantee advanced =
      AdvancedComposition({per_step_eps, 1e-7}, 500, 1e-6);
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(NoiseMultiplier(sigma),
                                        SamplingRate(0.01), 500);
  TablePrinter comp({"accounting", "epsilon"});
  comp.AddRow({"basic composition", TablePrinter::Fmt(basic.epsilon, 2)});
  comp.AddRow({"advanced composition",
               TablePrinter::Fmt(advanced.epsilon, 2)});
  comp.AddRow({"RDP (subsampled)",
               TablePrinter::Fmt(accountant.GetEpsilon(Delta(delta)), 2)});
  PrintTable(comp);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
