// Statistical quality tests for the deterministic RNG: chi-square
// uniformity, normality of the Gaussian sampler, tail behaviour of the
// Laplace sampler, lag autocorrelation and stream independence. These are
// load-bearing for the DP mechanisms, whose guarantees assume the noise
// actually has the stated distribution.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "stats/normality.h"
#include "stats/summary.h"

namespace geodp {
namespace {

TEST(RngStatisticalTest, UniformChiSquare) {
  Rng rng(1001);
  constexpr int kBins = 32;
  constexpr int kSamples = 64000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<size_t>(rng.Uniform() * kBins)];
  }
  const double expected = static_cast<double>(kSamples) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // chi^2(31): mean 31, stddev ~7.9; 70 is far beyond the 0.999 quantile.
  EXPECT_LT(chi2, 70.0);
}

TEST(RngStatisticalTest, UniformIntChiSquare) {
  Rng rng(1002);
  constexpr int kBins = 10;
  constexpr int kSamples = 50000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformInt(kBins)];
  }
  const double expected = static_cast<double>(kSamples) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 35.0);  // chi^2(9) 0.999 quantile ~27.9 + margin
}

TEST(RngStatisticalTest, GaussianPassesMomentTests) {
  Rng rng(1003);
  std::vector<double> samples;
  samples.reserve(40000);
  for (int i = 0; i < 40000; ++i) samples.push_back(rng.Gaussian());
  const NormalityReport report = AnalyzeNormality(samples);
  EXPECT_TRUE(LooksGaussian(report, 0.12));
  EXPECT_NEAR(report.mean, 0.0, 0.02);
  EXPECT_NEAR(report.stddev, 1.0, 0.02);
}

TEST(RngStatisticalTest, GaussianTailFractions) {
  Rng rng(1004);
  constexpr int kSamples = 100000;
  int beyond_1 = 0, beyond_2 = 0, beyond_3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = std::fabs(rng.Gaussian());
    if (g > 1.0) ++beyond_1;
    if (g > 2.0) ++beyond_2;
    if (g > 3.0) ++beyond_3;
  }
  EXPECT_NEAR(beyond_1 / static_cast<double>(kSamples), 0.3173, 0.01);
  EXPECT_NEAR(beyond_2 / static_cast<double>(kSamples), 0.0455, 0.004);
  EXPECT_NEAR(beyond_3 / static_cast<double>(kSamples), 0.0027, 0.001);
}

TEST(RngStatisticalTest, LaplaceTailHeavierThanGaussian) {
  Rng rng(1005);
  constexpr int kSamples = 100000;
  int laplace_beyond_3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    // Unit-variance Laplace has b = 1/sqrt(2).
    if (std::fabs(rng.Laplace(1.0 / std::sqrt(2.0))) > 3.0) {
      ++laplace_beyond_3;
    }
  }
  // P(|X|>3) = exp(-3*sqrt(2)) ~ 1.44% >> Gaussian's 0.27%.
  EXPECT_NEAR(laplace_beyond_3 / static_cast<double>(kSamples), 0.0144,
              0.004);
}

TEST(RngStatisticalTest, LagOneAutocorrelationNearZero) {
  Rng rng(1006);
  constexpr int kSamples = 50000;
  std::vector<double> samples(kSamples);
  for (auto& s : samples) s = rng.Uniform();
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= kSamples;
  double num = 0.0, den = 0.0;
  for (int i = 0; i + 1 < kSamples; ++i) {
    num += (samples[static_cast<size_t>(i)] - mean) *
           (samples[static_cast<size_t>(i) + 1] - mean);
  }
  for (double s : samples) den += (s - mean) * (s - mean);
  EXPECT_LT(std::fabs(num / den), 0.02);
}

TEST(RngStatisticalTest, ForkedStreamsUncorrelated) {
  Rng parent(1007);
  Rng child = parent.Fork();
  constexpr int kSamples = 20000;
  double cross = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    cross += (parent.Uniform() - 0.5) * (child.Uniform() - 0.5);
  }
  // Cov estimate has stderr ~ (1/12)/sqrt(n) ~ 6e-4.
  EXPECT_LT(std::fabs(cross / kSamples), 0.004);
}

TEST(RngStatisticalTest, BoxMullerPairsAreIndependentEnough) {
  // Consecutive Gaussian draws come from the same Box-Muller pair; their
  // correlation must still vanish (sin/cos of the same angle are
  // uncorrelated over the uniform angle).
  Rng rng(1008);
  constexpr int kSamples = 50000;
  double cross = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double a = rng.Gaussian();
    const double b = rng.Gaussian();
    cross += a * b;
  }
  EXPECT_LT(std::fabs(cross / kSamples), 0.02);
}

TEST(RngStatisticalTest, GaussianVectorMatchesScalarPath) {
  Rng a(1009), b(1009);
  const auto vec = a.GaussianVector(64, 2.5);
  for (double v : vec) {
    EXPECT_DOUBLE_EQ(v, b.Gaussian(0.0, 2.5));
  }
}

}  // namespace
}  // namespace geodp
