// Ablation: clipping strategy (flat vs AUTO-S vs PSAC) under both DP and
// GeoDP on logistic regression. Confirms the paper's claim that clipping
// optimizations help the magnitude but cannot rescue DP's direction error
// (Corollary 2), while they compose with GeoDP additively.

#include "base/rng.h"
#include "common/bench_util.h"
#include "models/logistic_regression.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Ablation: clipping strategy x perturbation method (LR)",
      "(supports Corollary 2; Table II/III columns AUTO-S and PSAC)",
      "14x14 synthetic MNIST, B=128, sigma=1, beta=0.01, 120 iterations");

  const SplitDataset split = MnistLikeSplit(768, 192, /*seed=*/14);

  TablePrinter table({"clipper", "method", "final train loss", "test acc"});
  for (const std::string clipper : {"flat", "AUTO-S", "PSAC"}) {
    for (PerturbationMethod method :
         {PerturbationMethod::kDp, PerturbationMethod::kGeoDp}) {
      Rng rng(88);
      auto model = MakeLogisticRegression(196, 10, rng);
      TrainerOptions options;
      options.method = method;
      options.batch_size = 128;
      options.iterations = 120;
      options.learning_rate = 2.0;
      options.clip_threshold = 0.1;
      options.noise_multiplier = 1.0;
      options.beta = 0.01;
      options.clipper = clipper;
      options.seed = 23;
      DpTrainer trainer(model.get(), &split.train, &split.test, options);
      const TrainingResult result = trainer.Train();
      table.AddRow({clipper, PerturbationMethodName(method),
                    TablePrinter::Fmt(result.final_train_loss),
                    TablePrinter::Fmt(result.test_accuracy * 100, 2) + "%"});
    }
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
