// Per-thread hierarchical wall-time profiler keyed by TraceSpan names.
//
// EnableProfiling() makes every TraceSpan (obs/trace.h) additionally feed
// a per-thread tree of phase accumulators: each node is one span name
// under its enclosing span ("step" > "step.forward_backward" >
// "pool.part"), holding a count, a total, and a power-of-two duration
// histogram. Aggregation happens on demand: SnapshotProfile() merges the
// per-thread trees into per-path totals, self time (total minus direct
// children), and interpolated p50/p95/p99 — the /profilez endpoint
// (obs/http_server.h) and the folded-stack export (speedscope /
// flamegraph.pl compatible) are pure formats of that snapshot.
//
// Cost model: a span on a profiled run takes one short uncontended lock
// on its own thread's tree; a span on an unprofiled run costs one relaxed
// atomic load (the same contract as tracing). The profiler never feeds
// back into training — training and telemetry bytes are identical with
// it on or off (CI proves this at 1 and 8 threads).

#ifndef GEODP_OBS_PHASE_PROFILER_H_
#define GEODP_OBS_PHASE_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace geodp {

/// Aggregated statistics for one phase path. `path` joins span names from
/// the outermost enclosing span with ';' (folded-stack convention), e.g.
/// "step;step.forward_backward;pool.part".
struct PhaseStats {
  std::string path;
  std::string name;         // last path component
  int64_t count = 0;        // completed spans
  int64_t total_micros = 0; // wall time including nested spans
  int64_t self_micros = 0;  // total minus direct children (>= 0)
  double p50_micros = 0.0;  // interpolated from the duration histogram
  double p95_micros = 0.0;
  double p99_micros = 0.0;
};

/// Point-in-time merge of every thread's accumulators.
struct ProfileSnapshot {
  std::vector<PhaseStats> phases;  // sorted by path
  int threads = 0;                 // threads that recorded at least one span
};

/// Starts profiling. `folded_out_path` (may be empty) is where
/// FlushProfile() writes the folded-stack export; the first call with a
/// path registers an atexit flush. Counters from a previous session are
/// reset.
void EnableProfiling(const std::string& folded_out_path);

/// Flushes (if a path is configured) and stops profiling.
void DisableProfiling();

/// True between EnableProfiling and DisableProfiling.
bool ProfilingEnabled();

/// Zeroes every accumulator without touching enablement.
void ResetProfile();

/// Merges the per-thread trees. Safe to call concurrently with recording.
ProfileSnapshot SnapshotProfile();

/// Folded-stack text: one "path self_micros" line per phase with nonzero
/// self time, sorted by path — `flamegraph.pl profile.folded` or
/// speedscope render it directly.
std::string FoldedStacks(const ProfileSnapshot& snapshot);

/// Writes FoldedStacks(SnapshotProfile()) to the configured path
/// atomically (fail point "obs.profile"). Ok no-op when profiling was
/// never given a path.
Status FlushProfile();

namespace internal {

/// TraceSpan integration (obs/trace.cc): push a span onto the calling
/// thread's stack / record its duration and pop. Exit tolerates a
/// mismatched or empty stack (spans that straddle Enable/Disable).
void ProfilerEnterSpan(const char* name);
void ProfilerExitSpan(const char* name, int64_t duration_micros);

/// Records a completed child without an enter/exit pair (thread-pool part
/// slices, which only report a duration after the fact).
void ProfilerRecordLeaf(const char* name, int64_t duration_micros);

}  // namespace internal

}  // namespace geodp

#endif  // GEODP_OBS_PHASE_PROFILER_H_
