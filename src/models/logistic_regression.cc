#include "models/logistic_regression.h"

#include "nn/flatten.h"
#include "nn/linear.h"

namespace geodp {

std::unique_ptr<Sequential> MakeLogisticRegression(int64_t input_dim,
                                                   int64_t num_classes,
                                                   Rng& rng) {
  auto model = std::make_unique<Sequential>("LogisticRegression");
  model->Emplace<Flatten>();
  model->Emplace<Linear>(input_dim, num_classes, rng);
  return model;
}

}  // namespace geodp
