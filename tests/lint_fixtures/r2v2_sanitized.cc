// Fixture: the same flow as r2v2_taint_via_local.cc, but the aggregate
// is declared sensitivity-checked before it escapes — the annotation
// sanitizes the local, so the taint pass reports nothing.
#include <vector>

namespace geodp {

double SumNorms(const std::vector<double>& norms) {  // geodp: per-sample
  double acc = 0.0;
  for (double n : norms) acc += n;
  // geodp: sensitivity-checked aggregate released after clipping upstream
  return acc;
}

}  // namespace geodp
