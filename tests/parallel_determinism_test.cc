// Thread-count invariance: every parallelized hot path must produce
// bit-identical results at 1 thread and at 8 threads. The chunk structure
// of ParallelFor (not the scheduling) fixes the floating-point reduction
// order, and noise comes from per-chunk RNG substreams, so nothing may
// depend on how many workers executed the chunks.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "clip/clipping.h"
#include "core/perturbation.h"
#include "core/spherical.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/im2col.h"
#include "nn/parameter.h"
#include "optim/dp_sgd.h"
#include "optim/geodp_sgd.h"
#include "optim/trainer.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

// Runs `fn` at 1 thread and at 8 threads and returns both results.
template <typename Fn>
auto AtThreadCounts(Fn fn) {
  SetGlobalThreadCount(1);
  auto serial = fn();
  SetGlobalThreadCount(8);
  auto parallel = fn();
  SetGlobalThreadCount(0);
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST(ParallelDeterminismTest, MatmulBitIdentical) {
  const auto [serial, parallel] = AtThreadCounts([] {
    Rng rng(3);
    const Tensor a = Tensor::Randn({37, 53}, rng);
    const Tensor b = Tensor::Randn({53, 29}, rng);
    return Matmul(a, b);
  });
  EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
}

TEST(ParallelDeterminismTest, Im2ColAndCol2ImBitIdentical) {
  const auto [serial, parallel] = AtThreadCounts([] {
    Rng rng(5);
    const Tensor image = Tensor::Randn({3, 16, 16}, rng);
    const Tensor columns = Im2Col(image, 3, 1);
    return std::make_pair(columns, Col2Im(columns, 3, 16, 16, 3, 1));
  });
  EXPECT_EQ(MaxAbsDiff(serial.first, parallel.first), 0.0);
  EXPECT_EQ(MaxAbsDiff(serial.second, parallel.second), 0.0);
}

TEST(ParallelDeterminismTest, ClipAndSumBitIdentical) {
  const auto [serial, parallel] = AtThreadCounts([] {
    Rng rng(7);
    std::vector<Tensor> grads;
    for (int i = 0; i < 67; ++i) grads.push_back(Tensor::Randn({129}, rng));
    const FlatClipper clipper(0.1);
    return ClipAndSum(grads, clipper);
  });
  EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
}

TEST(ParallelDeterminismTest, DpPerturbBitIdentical) {
  const auto [serial, parallel] = AtThreadCounts([] {
    PerturbationOptions options;
    options.clip_threshold = 0.1;
    options.batch_size = 16;
    options.noise_multiplier = 1.0;
    const DpPerturber perturber(options);
    Rng data_rng(11), noise_rng(13);
    const Tensor g = Tensor::Randn({10000}, data_rng);
    return perturber.Perturb(g, noise_rng);
  });
  EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
}

TEST(ParallelDeterminismTest, GeoDpPerturbBitIdentical) {
  const auto [serial, parallel] = AtThreadCounts([] {
    GeoDpOptions options;
    options.base.clip_threshold = 0.1;
    options.base.batch_size = 16;
    options.base.noise_multiplier = 1.0;
    options.beta = 0.1;
    const GeoDpPerturber perturber(options);
    Rng data_rng(17), noise_rng(19);
    const Tensor g = Tensor::Randn({10000}, data_rng);
    return perturber.Perturb(g, noise_rng);
  });
  EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
}

TEST(ParallelDeterminismTest, BatchPerturbBitIdentical) {
  const auto [serial, parallel] = AtThreadCounts([] {
    PerturbationOptions options;
    options.clip_threshold = 0.1;
    options.batch_size = 8;
    options.noise_multiplier = 1.0;
    const DpPerturber perturber(options);
    Rng data_rng(23), noise_rng(29);
    std::vector<Tensor> grads;
    for (int i = 0; i < 9; ++i) grads.push_back(Tensor::Randn({512}, data_rng));
    return BatchPerturb(perturber, grads, noise_rng);
  });
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(serial[i], parallel[i]), 0.0) << "release " << i;
  }
}

TEST(ParallelDeterminismTest, BatchSphericalMatchesElementwise) {
  SetGlobalThreadCount(8);
  Rng rng(31);
  std::vector<Tensor> grads;
  for (int i = 0; i < 13; ++i) grads.push_back(Tensor::Randn({77}, rng));
  const std::vector<SphericalCoordinates> coords = BatchToSpherical(grads);
  const std::vector<Tensor> back = BatchToCartesian(coords);
  ASSERT_EQ(coords.size(), grads.size());
  for (size_t i = 0; i < grads.size(); ++i) {
    const SphericalCoordinates individual = ToSpherical(grads[i]);
    EXPECT_EQ(coords[i].magnitude, individual.magnitude);
    EXPECT_EQ(coords[i].angles, individual.angles);
    EXPECT_EQ(MaxAbsDiff(back[i], ToCartesian(individual)), 0.0);
  }
  SetGlobalThreadCount(0);
}

TEST(ParallelDeterminismTest, PerSampleGradientsBitIdentical) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 70;  // not a multiple of the pipeline block
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = 37;
  const InMemoryDataset train = MakeSyntheticImages(data_options);
  std::vector<int64_t> indices(static_cast<size_t>(train.size()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }

  const auto [serial, parallel] = AtThreadCounts([&] {
    Rng rng(41);
    auto model = MakeLogisticRegression(64, 10, rng);
    SoftmaxCrossEntropy loss;
    const FlatClipper clipper(0.1);
    return ComputePerSampleGradients(*model, loss, train, indices, clipper);
  });
  EXPECT_EQ(MaxAbsDiff(serial.averaged_clipped, parallel.averaged_clipped),
            0.0);
  EXPECT_EQ(MaxAbsDiff(serial.averaged_raw, parallel.averaged_raw), 0.0);
  EXPECT_EQ(serial.sample_losses, parallel.sample_losses);
}

// The headline guarantee: a full private training run — per-sample
// clipping, GeoDP (and DP) perturbation, accounting — lands on exactly
// the same weights with --geodp_num_threads=1 and =8.
TEST(ParallelDeterminismTest, TrainedWeightsBitIdenticalAcrossThreadCounts) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 96;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = 43;
  const InMemoryDataset train = MakeSyntheticImages(data_options);

  for (PerturbationMethod method :
       {PerturbationMethod::kDp, PerturbationMethod::kGeoDp}) {
    const auto [serial, parallel] = AtThreadCounts([&] {
      Rng rng(47);
      auto model = MakeLogisticRegression(64, 10, rng);
      TrainerOptions options;
      options.method = method;
      options.batch_size = 24;
      options.iterations = 8;
      options.learning_rate = 0.5;
      options.noise_multiplier = 1.0;
      options.seed = 53;
      DpTrainer trainer(model.get(), &train, nullptr, options);
      trainer.Train();
      return FlattenValues(model->Parameters());
    });
    EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0)
        << PerturbationMethodName(method);
  }
}

}  // namespace
}  // namespace geodp
