// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms with deterministic JSONL export. Components record into the
// process-wide registry (MetricsRegistry::Global()); the export walks the
// metrics in name order and formats every number with a shortest
// round-trip representation, so two runs that produce bit-identical
// values produce byte-identical JSONL — the property the thread-count
// determinism tests assert.

#ifndef GEODP_OBS_METRICS_H_
#define GEODP_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/status.h"

namespace geodp {

/// Formats a double with the shortest decimal representation that parses
/// back to the same bits ("%.15g" widened to "%.17g" as needed). Used by
/// every JSON emitter in the observability layer so output is a pure
/// function of the value.
std::string FormatDouble(double value);

/// Snapshot of one histogram: cumulative-free bucket counts plus the
/// running count/sum for mean recovery and interpolated quantiles.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;  // bucket b covers (bound[b-1], bound[b]]
  std::vector<int64_t> counts;       // size upper_bounds.size() + 1 (overflow)
  int64_t count = 0;
  double sum = 0.0;
  // HistogramQuantile(*this, q) for q = 0.5 / 0.95 / 0.99, filled at
  // snapshot time. Shared by the JSONL export and the /metrics exposition.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Interpolated quantile of a bucketed histogram, Prometheus
/// histogram_quantile semantics: the target rank q*count is located in the
/// cumulative bucket counts and linearly interpolated inside the bucket
/// (the first bucket's lower edge is 0 unless its bound is negative; ranks
/// past the last finite bound clamp to it). A pure function of the
/// snapshot, so two snapshots with identical counts give identical bytes.
/// Returns 0 for an empty histogram; `q` outside [0, 1] is clamped.
double HistogramQuantile(const HistogramSnapshot& snapshot, double q);

/// Point-in-time copy of every metric in a registry. std::map keys make
/// iteration order (and thus every serialization) deterministic.
struct RegistrySnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named counters / gauges / histograms behind one mutex. All methods are
/// safe to call concurrently; histogram bucket bounds are fixed at first
/// observation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to a (creating-on-first-use) monotone counter.
  void IncrementCounter(const std::string& name, int64_t delta = 1);

  /// Sets a last-value-wins gauge.
  void SetGauge(const std::string& name, double value);

  /// Records `value` into the histogram `name`. The first observation
  /// fixes the (sorted, strictly increasing) bucket upper bounds; later
  /// observations ignore `upper_bounds`. Values above the last bound land
  /// in the overflow bucket.
  void ObserveHistogram(const std::string& name,
                        const std::vector<double>& upper_bounds, double value);

  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  HistogramSnapshot histogram(const std::string& name) const;

  /// Copies every metric out under the lock. The introspection server
  /// formats from snapshots so exposition never holds the registry mutex
  /// while rendering.
  RegistrySnapshot Snapshot() const;

  /// One JSON object per line, metrics sorted by (type, name):
  ///   {"type":"counter","name":...,"value":...}
  ///   {"type":"gauge","name":...,"value":...}
  ///   {"type":"histogram","name":...,"bounds":[...],"counts":[...],
  ///    "count":...,"sum":...,"p50":...,"p95":...,"p99":...}
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path` (overwriting).
  Status WriteJsonl(const std::string& path) const;

  /// Drops every metric (tests and between-experiment hygiene).
  void Reset();

  /// Process-wide registry shared by the trainer and the CLI.
  static MetricsRegistry& Global();

 private:
  struct Histogram {
    std::vector<double> upper_bounds;
    std::vector<int64_t> counts;
    int64_t count = 0;
    double sum = 0.0;
  };

  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace geodp

#endif  // GEODP_OBS_METRICS_H_
