#include "models/cnn.h"

#include "base/check.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace geodp {

std::unique_ptr<Sequential> MakeCnn(const CnnConfig& config, Rng& rng) {
  GEODP_CHECK_GE(config.image_size, 8);
  GEODP_CHECK_EQ(config.image_size % 2, 0)
      << "image_size must be even for the 2x2 max-pool";
  auto model = std::make_unique<Sequential>("CNN");
  // Conv(pad 1) keeps the spatial size; pool halves it; the second conv
  // (no padding) shrinks it by 2.
  model->Emplace<Conv2d>(config.in_channels, config.conv1_channels,
                         /*kernel_size=*/3, rng, /*padding=*/1);
  model->Emplace<ReLU>();
  model->Emplace<MaxPool2d>(2);
  model->Emplace<Conv2d>(config.conv1_channels, config.conv2_channels,
                         /*kernel_size=*/3, rng, /*padding=*/0);
  model->Emplace<ReLU>();
  model->Emplace<Flatten>();
  const int64_t pooled = config.image_size / 2;
  const int64_t feature_size = pooled - 2;  // valid 3x3 conv
  GEODP_CHECK_GT(feature_size, 0);
  model->Emplace<Linear>(config.conv2_channels * feature_size * feature_size,
                         config.num_classes, rng);
  return model;
}

}  // namespace geodp
