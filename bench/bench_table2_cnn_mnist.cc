// Table II: CNN test accuracy on the MNIST-like dataset under DP vs GeoDP,
// composed with the optimization techniques IS, SUR, AUTO-S and PSAC, at
// two noise levels and two batch sizes, plus GeoDP's large-beta failure
// case.
//
// Scale-down note (see EXPERIMENTS.md): the paper runs d=21840 parameters
// with B up to 16384 and sigma in {10, 1}. DP's per-step noise-to-signal
// ratio scales as sigma*sqrt(d)/B and GeoDP's per-angle direction noise as
// sqrt(d)*beta*pi*sigma/B, so at this repo's scale (d~3.7k, B<=128) the
// equivalent regime is sigma in {8, 2} with bounding factors beta =
// 0.001 (good) / 0.01 (failure case analogous to the paper's beta=0.5).
// Expected shape: GeoDP(beta good) > every DP variant; each technique adds
// a little on top of either method; GeoDP(beta bad) collapses.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/simd/dispatch.h"
#include "base/thread_pool.h"
#include "base/timer.h"
#include "common/bench_util.h"
#include "common/peak_rss.h"
#include "models/cnn.h"
#include "models/mlp.h"
#include "stats/table.h"

#ifndef GEODP_GIT_REV
#define GEODP_GIT_REV "unknown"
#endif

namespace geodp {
namespace bench {
namespace {

struct Config {
  std::string label;
  PerturbationMethod method = PerturbationMethod::kDp;
  int64_t batch = 128;
  double beta = 0.05;
  std::string clipper = "flat";
  bool is = false;
  bool sur = false;
};

constexpr int64_t kIterations = 100;
constexpr double kClip = 0.1;
constexpr double kLr = 3.0;
constexpr double kBetaGood = 0.001;
constexpr double kBetaBad = 0.01;

double RunAccuracy(const SplitDataset& data, const Config& config,
                   double sigma) {
  Rng rng(55);
  CnnConfig cnn;
  auto model = MakeCnn(cnn, rng);
  TrainerOptions options;
  options.method = config.method;
  options.batch_size = config.batch;
  options.iterations = kIterations;
  options.learning_rate = kLr;
  options.clip_threshold = kClip;
  options.noise_multiplier = sigma;
  options.beta = config.beta;
  options.clipper = config.clipper;
  options.importance_sampling = config.is;
  options.selective_update = config.sur;
  options.seed = 99;
  DpTrainer trainer(model.get(), &data.train, &data.test, options);
  return trainer.Train().test_accuracy;
}

void Run() {
  PrintBanner(
      "Table II (CNN on MNIST: test accuracy of DP vs GeoDP x techniques)",
      "sigma in {10, 1}, B in {8192, 16384}, beta in {0.1, 0.5}, 20 epochs",
      "sigma in {8, 2} (iteration-averaged noise-to-signal matched), B in "
      "{64, 128}, beta in {0.001, 0.01}, 100 iterations, 14x14 synthetic "
      "MNIST");

  const SplitDataset data = MnistLikeSplit(1024, 256, /*seed=*/8);

  // Noise-free reference.
  Config noise_free;
  noise_free.label = "noise-free";
  noise_free.method = PerturbationMethod::kNoiseFree;
  const double reference = RunAccuracy(data, noise_free, 0.0);

  const std::vector<Config> configs = {
      {"DP (B=64)", PerturbationMethod::kDp, 64, kBetaGood, "flat", false,
       false},
      {"DP (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "flat", false,
       false},
      {"DP+IS (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "flat",
       true, false},
      {"DP+SUR (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "flat",
       false, true},
      {"DP+AUTO-S (B=128)", PerturbationMethod::kDp, 128, kBetaGood,
       "AUTO-S", false, false},
      {"DP+PSAC (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "PSAC",
       false, false},
      {"DP+SUR+PSAC (B=128)", PerturbationMethod::kDp, 128, kBetaGood,
       "PSAC", false, true},
      {"GeoDP (B=64, beta=0.001)", PerturbationMethod::kGeoDp, 64, kBetaGood,
       "flat", false, false},
      {"GeoDP (B=128, beta=0.001)", PerturbationMethod::kGeoDp, 128,
       kBetaGood, "flat", false, false},
      {"GeoDP (B=64, beta=0.01)", PerturbationMethod::kGeoDp, 64, kBetaBad,
       "flat", false, false},
      {"GeoDP+IS (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "flat", true, false},
      {"GeoDP+SUR (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "flat", false, true},
      {"GeoDP+AUTO-S (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "AUTO-S", false, false},
      {"GeoDP+PSAC (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "PSAC", false, false},
      {"GeoDP+SUR+PSAC (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "PSAC", false, true},
  };

  TablePrinter table({"method", "acc @ sigma=8", "acc @ sigma=2"});
  table.AddRow({"noise-free", TablePrinter::Fmt(reference * 100, 2) + "%",
                TablePrinter::Fmt(reference * 100, 2) + "%"});
  for (const Config& config : configs) {
    const double hi = RunAccuracy(data, config, 8.0);
    const double lo = RunAccuracy(data, config, 2.0);
    table.AddRow({config.label, TablePrinter::Fmt(hi * 100, 2) + "%",
                  TablePrinter::Fmt(lo * 100, 2) + "%"});
  }
  PrintTable(table);
}

// ---- Clip-mode timing (ghost vs materialize) ---------------------------
//
// Measures the training-loop throughput and memory footprint of the two
// per-sample clipping paths. The materialized path stages
// O(batch x params) per-sample gradients; ghost clipping stages
// O(batch + activations), so the contrast scales with the parameter
// count. The Table II CNN above is deliberately tiny (~3.7k parameters;
// see the scale-down note), far below where the asymptotics separate, so
// the timing rows run the same training pipeline on an MLP sized to the
// paper's parameter regime (196 -> 768 -> 10, ~158k parameters). There
// the Goodfellow factorization gives per-sample norms from two SumSquares
// per layer — no per-sample gradient is ever formed — while the
// materialized path must write, clip and sum 256 gradients of 158k
// floats each step. Rows land in the --bench_json_out record (schema of
// common/bench_json.h plus peak_rss_mb), which
// scripts/check_bench_regression.py --clip-mode-gate gates in CI.

struct ClipTimingRow {
  std::string name;
  double wall_ms = 0.0;     // per training step
  double steps_per_s = 0.0;
  double peak_rss_mb = 0.0;
};

ClipTimingRow TimeClipMode(const SplitDataset& data,
                           const std::string& clip_mode, int64_t batch,
                           int64_t iterations) {
  Rng rng(55);
  MlpConfig mlp;
  mlp.hidden_dims = {768};
  auto model = MakeMlp(mlp, rng);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.clip_mode = clip_mode;
  options.batch_size = batch;
  options.iterations = iterations;
  options.learning_rate = kLr;
  options.clip_threshold = kClip;
  options.noise_multiplier = 2.0;
  options.record_loss_every = 0;
  options.seed = 99;
  DpTrainer trainer(model.get(), &data.train, nullptr, options);
  const Timer timer;
  trainer.Train();
  const double seconds = timer.ElapsedSeconds();
  ClipTimingRow row;
  row.name =
      "BM_ClipMode/" + clip_mode + "/mlp768/B" + std::to_string(batch);
  row.wall_ms = seconds * 1e3 / static_cast<double>(iterations);
  row.steps_per_s = static_cast<double>(iterations) / seconds;
  row.peak_rss_mb = PeakRssMb();
  return row;
}

std::vector<ClipTimingRow> RunClipTiming() {
  // A training split large enough for the batch-256 acceptance point.
  const SplitDataset data = MnistLikeSplit(512, 64, /*seed=*/8);
  std::vector<ClipTimingRow> rows;
  TablePrinter table(
      {"config", "ms/step", "steps/s", "peak RSS (MB)"});
  // All ghost rows run before any materialized row: peak RSS is monotone
  // over the process lifetime, so the path expected to use less memory
  // must record every one of its peaks before the materialized path
  // inflates the high-water mark (see common/peak_rss.h).
  for (const char* mode : {"ghost", "materialize"}) {
    for (const int64_t batch : {int64_t{128}, int64_t{256}}) {
      const ClipTimingRow row =
          TimeClipMode(data, mode, batch, /*iterations=*/8);
      table.AddRow({row.name, TablePrinter::Fmt(row.wall_ms, 2),
                    TablePrinter::Fmt(row.steps_per_s, 2),
                    TablePrinter::Fmt(row.peak_rss_mb, 1)});
      rows.push_back(row);
    }
  }
  PrintBanner("Table II addendum (clip-mode throughput: ghost vs "
              "materialized per-sample clipping)",
              "not in the paper; DP-SGD engineering baseline",
              "paper-scale MLP (196->768->10, ~158k params), B in "
              "{128, 256}, 8 DP steps per row, all ghost rows measured "
              "before any materialized row (monotone peak RSS)");
  PrintTable(table);
  return rows;
}

bool WriteClipTimingJson(const std::string& path,
                         const std::vector<ClipTimingRow>& rows) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(file,
               "{\"bench\":\"bench_table2_cnn_mnist\",\"git_rev\":\"%s\","
               "\"simd\":\"%s\",\"results\":[",
               GEODP_GIT_REV, SimdTierName(ActiveSimdTier()));
  bool first = true;
  for (const ClipTimingRow& row : rows) {
    std::fprintf(file,
                 "%s{\"name\":\"%s\",\"wall_ms\":%.9g,\"steps_per_s\":%.9g,"
                 "\"threads\":%d,\"peak_rss_mb\":%.9g}",
                 first ? "" : ",", row.name.c_str(), row.wall_ms,
                 row.steps_per_s, GetGlobalThreadCount(), row.peak_rss_mb);
    first = false;
  }
  const bool body_ok = std::fprintf(file, "]}\n") >= 0;
  const bool close_ok = std::fclose(file) == 0;
  if (!body_ok || !close_ok) {
    std::fprintf(stderr, "bench_json: write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main(int argc, char** argv) {
  std::string json_out;
  bool timing_only = false;
  const std::string json_prefix = "--bench_json_out=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(json_prefix, 0) == 0) {
      json_out = arg.substr(json_prefix.size());
    } else if (arg == "--geodp_clip_timing_only") {
      timing_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_table2_cnn_mnist "
                   "[--bench_json_out=<path>] [--geodp_clip_timing_only]\n");
      return 1;
    }
  }
  if (!timing_only) geodp::bench::Run();
  // The clip-mode comparison runs whenever machine-readable output was
  // requested (CI's gate) or the accuracy table was skipped.
  if (!json_out.empty() || timing_only) {
    const auto rows = geodp::bench::RunClipTiming();
    if (!json_out.empty() &&
        !geodp::bench::WriteClipTimingJson(json_out, rows)) {
      return 1;
    }
  }
  return 0;
}
