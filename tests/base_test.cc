// Tests for base utilities: Rng, Status, Timer.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/status.h"
#include "base/timer.h"

namespace geodp {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianScaledMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(2.0, 3.0);
    sum += g;
    sum_sq += (g - 2.0) * (g - 2.0);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 9.0, 0.2);
}

TEST(RngTest, GaussianZeroStddevIsConstant) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.Gaussian(4.0, 0.0), 4.0);
}

TEST(RngTest, GaussianVectorSizeAndSpread) {
  Rng rng(23);
  const auto v = rng.GaussianVector(50000, 2.0);
  ASSERT_EQ(v.size(), 50000u);
  double sum_sq = 0.0;
  for (double x : v) sum_sq += x * x;
  EXPECT_NEAR(sum_sq / static_cast<double>(v.size()), 4.0, 0.15);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0, sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(1.5);
    sum += x;
    sum_abs += std::fabs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  // E|X| = b for Laplace(b).
  EXPECT_NEAR(sum_abs / n, 1.5, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntZeroBoundReturnsZero) {
  // Sampling from an empty range (e.g. a zero-size dataset) must not
  // divide by zero; the defined result is 0.
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(0), 0u);
  // The generator still works afterwards.
  EXPECT_LT(rng.UniformInt(10), 10u);
}

TEST(RngTest, ExportImportStateResumesStreamExactly) {
  Rng original(77);
  for (int i = 0; i < 37; ++i) original.Next();
  // Draw one Gaussian so the Box-Muller spare sample is cached: the
  // snapshot must carry it, or the resumed stream drifts by one draw.
  original.Gaussian();
  const RngState snapshot = original.ExportState();

  Rng resumed(123456);  // unrelated seed — all state comes from the import
  resumed.ImportState(snapshot);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(resumed.Next(), original.Next());
  }
  EXPECT_EQ(resumed.Gaussian(), original.Gaussian());
  EXPECT_EQ(resumed.Uniform(), original.Uniform());
}

TEST(RngTest, ExportedStateCarriesGaussianCache) {
  Rng rng(9);
  rng.Gaussian();  // leaves a cached spare sample
  const RngState state = rng.ExportState();
  EXPECT_TRUE(state.has_cached_gaussian);

  Rng other(10);
  other.ImportState(state);
  EXPECT_EQ(other.Gaussian(), rng.Gaussian());
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad beta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad beta");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad beta");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i)
    sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());  // ms >= s
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i)
    sink = sink + std::sqrt(static_cast<double>(i));
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace geodp
