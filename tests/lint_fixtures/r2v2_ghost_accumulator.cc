// Fixture: seeded R2v2 violations mirroring an unsanitized ghost-clipping
// accumulation pass — ghost norms flow into batch weights, which then
// escape twice: through a method call on a reference parameter (writing
// into caller-visible model state) and through the return value. The
// per-sample annotations on the transport lines suppress the name-scan
// findings but deliberately keep the taint alive.
#include <vector>

namespace geodp {

class Model;
struct BatchWeights {
  std::vector<double> clipped;
};
BatchWeights ComputeWeights(const std::vector<double>& norms);

BatchWeights AccumulateUnclipped(Model& model,
                                 const std::vector<double>& values) {
  std::vector<double> ghost_norm_sq = values;  // geodp: per-sample
  const BatchWeights weights =
      ComputeWeights(ghost_norm_sq);  // geodp: per-sample
  model.Accumulate(weights.clipped);
  return weights;
}

}  // namespace geodp
