// Free-function tensor operations: elementwise arithmetic, linear algebra,
// reductions, and comparison helpers used throughout the library and tests.

#ifndef GEODP_TENSOR_TENSOR_OPS_H_
#define GEODP_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace geodp {

/// Elementwise a + b. Shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b. Shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (Hadamard product). Shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * factor.
Tensor Scale(const Tensor& a, float factor);

/// Dot product of flattened tensors. Shapes must match.
double Dot(const Tensor& a, const Tensor& b);

/// Matrix product of a [m, k] and b [k, n] -> [m, n].
Tensor Matmul(const Tensor& a, const Tensor& b);

/// Matrix-vector product of a [m, k] and x [k] -> [m].
Tensor MatVec(const Tensor& a, const Tensor& x);

/// Transpose of a 2-D tensor.
Tensor Transpose(const Tensor& a);

/// Index of the maximum element in each row of a [m, n] tensor.
std::vector<int64_t> ArgMaxRows(const Tensor& a);

/// Mean of all elements.
double Mean(const Tensor& a);

/// Maximum absolute elementwise difference; shapes must match.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

/// True if shapes match and every element pair differs by at most
/// `atol + rtol * |b|`.
bool AllClose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-6);

/// Concatenates 1-D tensors into one 1-D tensor.
Tensor Concat1D(const std::vector<Tensor>& parts);

/// Adds every tensor into `sum` (shapes must match). Runs in parallel on
/// the global pool with a fixed chunk structure, so the result is
/// bit-identical at any thread count.
void AccumulateSum(const std::vector<Tensor>& tensors, Tensor& sum);

/// Sum of a non-empty batch of same-shaped tensors (parallel,
/// thread-count invariant).
Tensor SumTensors(const std::vector<Tensor>& tensors);

/// Cosine similarity of flattened tensors; returns 0 if either is zero.
double CosineSimilarity(const Tensor& a, const Tensor& b);

}  // namespace geodp

#endif  // GEODP_TENSOR_TENSOR_OPS_H_
