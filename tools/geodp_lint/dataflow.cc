#include "geodp_lint/dataflow.h"

#include <array>
#include <cstddef>
#include <map>
#include <set>

namespace geodp {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

// Calls whose return value (or out-parameter) is per-sample data even when
// every argument is clean: the batched ghost-clipping backward entry
// points. Row b of BackwardSum is the gradient of sample b's own loss.
constexpr std::array<std::string_view, 2> kPerSampleSourceCalls = {
    "GhostBackward", "BackwardSum"};

// Free functions that only read a value: feeding them a tainted argument
// computes with it but does not release it. Everything not listed is
// treated as crossing out of the function.
constexpr std::array<std::string_view, 16> kValueReaders = {
    "min",  "max",  "clamp",    "abs",   "fabs", "sqrt",
    "pow",  "exp",  "log",      "log2",  "isfinite", "isnan",
    "move", "swap", "fill",     "accumulate"};

// Observability sinks: the flight recorder and phase profiler persist
// their arguments beyond the training step (ring buffer snapshots,
// /flightz, postmortem dumps, folded-stack exports), so handing them
// per-sample data is a release even when the receiver is a local object
// — never just a store into it.
constexpr std::array<std::string_view, 4> kObservabilitySinkCalls = {
    "Record", "ProfilerEnterSpan", "ProfilerExitSpan", "ProfilerRecordLeaf"};

// `keyword (...)` is control flow, not a call. Branching on a tainted
// value is out of scope for this pass (no implicit-flow tracking).
constexpr std::array<std::string_view, 10> kControlKeywords = {
    "if",      "while",    "for",   "switch", "return",
    "alignof", "decltype", "catch", "sizeof", "static_assert"};

// Tokens allowed between the signature's ')' and the body's '{'.
constexpr std::array<std::string_view, 6> kSignatureSuffixes = {
    "const", "noexcept", "override", "final", "try", "mutable"};

constexpr std::array<std::string_view, 11> kAssignOps = {
    "=",  "+=", "-=", "*=",  "/=", "%=",
    "&=", "|=", "^=", "<<=", ">>="};

template <typename Container>
bool Contains(const Container& container, std::string_view value) {
  for (const auto& element : container) {
    if (element == value) return true;
  }
  return false;
}

bool IsMemberName(std::string_view name) {
  return name == "this" || (!name.empty() && name.back() == '_');
}

class TaintPass {
 public:
  TaintPass(const std::string& path, const AnnotatedSource& source,
            std::vector<Finding>& findings)
      : path_(path),
        source_(source),
        code_(source.code),
        findings_(findings) {}

  void Run() {
    size_t i = 0;
    while (i < code_.size()) {
      if (!code_[i].Is("{")) {
        ++i;
        continue;
      }
      // Walk back over `const`/`noexcept`/... to see whether this brace
      // opens a function body (preceded by a parameter list) rather than
      // a class, namespace, enum or initializer.
      size_t k = i;
      while (k > 0 && code_[k - 1].kind == TokenKind::kIdentifier &&
             Contains(kSignatureSuffixes, code_[k - 1].text)) {
        --k;
      }
      if (k == 0 || !code_[k - 1].Is(")")) {
        ++i;
        continue;
      }
      const size_t sig_close = k - 1;
      const size_t sig_open = MatchBackward(sig_close);
      const size_t body_close = MatchForward(i);
      if (sig_open == kNpos || body_close == kNpos) {
        ++i;
        continue;
      }
      AnalyzeFunction(sig_open, sig_close, i, body_close);
      i = body_close + 1;
    }
  }

 private:
  // ---- token-span helpers ------------------------------------------------

  size_t MatchForward(size_t open) const {
    const std::string_view open_text = code_[open].text;
    const std::string_view close_text = open_text == "(" ? ")" : "}";
    int depth = 0;
    for (size_t i = open; i < code_.size(); ++i) {
      if (code_[i].Is(open_text)) ++depth;
      else if (code_[i].Is(close_text) && --depth == 0) return i;
    }
    return kNpos;
  }

  size_t MatchBackward(size_t close) const {
    const std::string_view close_text = code_[close].text;
    const std::string_view open_text = close_text == ")" ? "(" : "[";
    int depth = 0;
    for (size_t i = close + 1; i > 0; --i) {
      const Token& token = code_[i - 1];
      if (token.Is(close_text)) ++depth;
      else if (token.Is(open_text) && --depth == 0) return i - 1;
    }
    return kNpos;
  }

  /// Given the last token of an lvalue chain (`result.x[i]` -> the `]`,
  /// `weight_.grad` -> `grad`), walks left through `.`/`->`/`::`
  /// connectors and subscript/call groups and returns the index of the
  /// base identifier (`result`, `weight_`), or kNpos.
  size_t WalkChainBase(size_t j) const {
    while (true) {
      while (code_[j].Is("]") || code_[j].Is(")")) {
        const size_t open = MatchBackward(j);
        if (open == kNpos || open == 0) return kNpos;
        j = open - 1;
      }
      if (code_[j].kind != TokenKind::kIdentifier) return kNpos;
      if (j >= 2 && (code_[j - 1].Is(".") || code_[j - 1].Is("->") ||
                     code_[j - 1].Is("::"))) {
        j -= 2;
        continue;
      }
      return j;
    }
  }

  // ---- taint bookkeeping -------------------------------------------------

  void Taint(const std::string& var, const std::string& parent) {
    if (var.empty() || tainted_.count(var) != 0) return;
    std::vector<std::string> chain;
    const auto it = tainted_.find(parent);
    if (it != tainted_.end()) chain = it->second;
    else chain.push_back(parent);
    if (chain.empty() || chain.back() != var) chain.push_back(var);
    tainted_[var] = std::move(chain);
  }

  /// First identifier in [from, to) that carries or produces per-sample
  /// data: a tainted local, a per-sample-named identifier, or a source
  /// call. Used for propagation.
  std::string FirstTaintSource(size_t from, size_t to) const {
    for (size_t i = from; i < to && i < code_.size(); ++i) {
      const Token& token = code_[i];
      if (token.kind != TokenKind::kIdentifier) continue;
      if (tainted_.count(token.text) != 0) return token.text;
      if (IsPerSampleIdentifier(token.text)) return token.text;
      if (Contains(kPerSampleSourceCalls, token.text) && i + 1 < to &&
          code_[i + 1].Is("(")) {
        return token.text;
      }
    }
    return std::string();
  }

  /// First *tainted local* in [from, to). Sinks trigger only on these:
  /// per-sample-named identifiers at a sink are already flagged by the
  /// name rule in rules.cc, so reporting them here would double up.
  std::string FirstTaintedLocal(size_t from, size_t to) const {
    for (size_t i = from; i < to && i < code_.size(); ++i) {
      if (code_[i].kind == TokenKind::kIdentifier &&
          tainted_.count(code_[i].text) != 0) {
        return code_[i].text;
      }
    }
    return std::string();
  }

  void Report(int line, const std::string& via, const std::string& how,
              bool suppressed) {
    if (suppressed || line == last_report_line_) return;
    last_report_line_ = line;
    std::string chain_text;
    const auto it = tainted_.find(via);
    if (it != tainted_.end()) {
      for (const std::string& link : it->second) {
        if (!chain_text.empty()) chain_text += " -> ";
        chain_text += link;
      }
    } else {
      chain_text = via;
    }
    findings_.push_back(
        {RuleId::kR2PrivacyBoundary, path_, line,
         "per-sample value escapes via local '" + via + "' through " + how +
             " (taint chain: " + chain_text +
             ") — clip before release inside src/clip/, annotate "
             "`// geodp: sensitivity-checked` once the sensitivity bound "
             "is applied, or `// geodp: per-sample` for authorized "
             "transport"});
  }

  // ---- per-function analysis ---------------------------------------------

  void AnalyzeFunction(size_t sig_open, size_t sig_close, size_t body_open,
                       size_t body_close) {
    tainted_.clear();
    ref_params_.clear();
    last_report_line_ = 0;
    MarkParameters(sig_open, sig_close);

    // Statements end at `;` outside parens and at braces outside parens
    // (block structure is flattened: each fragment is analyzed on its
    // own, which over-approximates but never loses a statement).
    size_t start = body_open + 1;
    int paren_depth = 0;
    for (size_t i = body_open + 1; i < body_close; ++i) {
      const Token& token = code_[i];
      if (token.Is("(") || token.Is("[")) ++paren_depth;
      else if (token.Is(")") || token.Is("]")) --paren_depth;
      if (paren_depth > 0) continue;
      if (token.Is(";") || token.Is("{") || token.Is("}")) {
        if (i > start) ProcessStatement(start, i);
        start = i + 1;
      }
    }
    if (body_close > start) ProcessStatement(start, body_close);
  }

  void MarkParameters(size_t sig_open, size_t sig_close) {
    size_t part_start = sig_open + 1;
    int paren_depth = 0;
    int angle_depth = 0;
    for (size_t i = sig_open + 1; i <= sig_close; ++i) {
      const Token& token = code_[i];
      const bool splits = i == sig_close ||
                          (token.Is(",") && paren_depth == 0 &&
                           angle_depth == 0);
      if (splits) {
        MarkOneParameter(part_start, i);
        part_start = i + 1;
        continue;
      }
      if (token.Is("(") || token.Is("[")) ++paren_depth;
      else if (token.Is(")") || token.Is("]")) --paren_depth;
      else if (token.Is("<")) ++angle_depth;
      else if (token.Is(">") && angle_depth > 0) --angle_depth;
      else if (token.Is(">>") && angle_depth > 0) angle_depth -= 2;
      if (angle_depth < 0) angle_depth = 0;
    }
  }

  void MarkOneParameter(size_t from, size_t to) {
    size_t name_idx = kNpos;
    bool by_reference = false;
    for (size_t i = from; i < to; ++i) {
      const Token& token = code_[i];
      if (token.Is("=")) break;  // default argument
      if (token.kind == TokenKind::kIdentifier) name_idx = i;
      if (token.Is("&") || token.Is("&&") || token.Is("*")) {
        by_reference = true;
      }
    }
    if (name_idx == kNpos) return;
    const Token& name = code_[name_idx];
    if (by_reference) ref_params_.insert(name.text);
    if (IsPerSampleIdentifier(name.text) ||
        LineHasTag(source_, name.line, "per-sample")) {
      tainted_[name.text] = {name.text};
    }
  }

  void ProcessStatement(size_t s, size_t e) {
    bool sanitized = false;
    bool suppressed = false;
    int last_line = 0;
    for (size_t i = s; i < e; ++i) {
      const int line = code_[i].line;
      if (line == last_line) continue;
      last_line = line;
      if (LineHasTag(source_, line, "sensitivity-checked")) sanitized = true;
      if (LineHasTag(source_, line, "per-sample") ||
          LineSuppressed(source_, line, RuleId::kR2PrivacyBoundary)) {
        suppressed = true;
      }
    }
    if (sanitized) {
      // The sensitivity bound has been applied: every variable this
      // statement mentions is clean from here on.
      for (size_t i = s; i < e; ++i) {
        if (code_[i].kind == TokenKind::kIdentifier) {
          tainted_.erase(code_[i].text);
        }
      }
      return;
    }
    HandleRangeFor(s, e);
    HandleAssignments(s, e, suppressed);
    HandleCalls(s, e, suppressed);
    HandleReturn(s, e, suppressed);
  }

  // `for (T var : range)` — a tainted range taints the loop variable.
  void HandleRangeFor(size_t s, size_t e) {
    if (!code_[s].IsIdent("for") || s + 1 >= e || !code_[s + 1].Is("(")) {
      return;
    }
    int depth = 0;
    size_t colon = kNpos;
    size_t close = e;
    for (size_t i = s + 1; i < e; ++i) {
      if (code_[i].Is("(") || code_[i].Is("[")) ++depth;
      else if (code_[i].Is(")") || code_[i].Is("]")) {
        if (--depth == 0) {
          close = i;
          break;
        }
      } else if (code_[i].Is(":") && depth == 1 && colon == kNpos) {
        colon = i;
      }
    }
    if (colon == kNpos) return;
    size_t var_idx = kNpos;
    for (size_t i = s + 2; i < colon; ++i) {
      if (code_[i].kind == TokenKind::kIdentifier) var_idx = i;
    }
    if (var_idx == kNpos) return;
    const std::string parent = FirstTaintSource(colon + 1, close);
    if (!parent.empty()) Taint(code_[var_idx].text, parent);
  }

  void HandleAssignments(size_t s, size_t e, bool suppressed) {
    for (size_t i = s + 1; i < e; ++i) {
      if (code_[i].kind != TokenKind::kPunct ||
          !Contains(kAssignOps, code_[i].text)) {
        continue;
      }
      const size_t base_idx = WalkChainBase(i - 1);
      if (base_idx == kNpos) continue;
      const std::string base = code_[base_idx].text;
      const size_t rhs_end = RhsEnd(i + 1, e);
      const std::string parent = FirstTaintSource(i + 1, rhs_end);
      const bool member = IsMemberName(base);
      const bool param_escape = ref_params_.count(base) != 0;
      if (parent.empty()) {
        // Plain reassignment from clean data is a strong update.
        if (code_[i].Is("=") && !member && !param_escape) {
          tainted_.erase(base);
        }
        continue;
      }
      if (member || param_escape) {
        const std::string via = FirstTaintedLocal(i + 1, rhs_end);
        if (!via.empty()) {
          Report(code_[i].line, via,
                 std::string("write to ") +
                     (member ? "member '" : "parameter '") + base + "'",
                 suppressed);
        }
        continue;
      }
      Taint(base, parent);
    }
  }

  size_t RhsEnd(size_t from, size_t e) const {
    int depth = 0;
    for (size_t i = from; i < e; ++i) {
      const Token& token = code_[i];
      if (token.Is("(") || token.Is("[") || token.Is("{")) ++depth;
      else if (token.Is(")") || token.Is("]") || token.Is("}")) {
        if (depth == 0) return i;
        --depth;
      } else if ((token.Is(",") || token.Is(";")) && depth == 0) {
        return i;
      }
    }
    return e;
  }

  void HandleCalls(size_t s, size_t e, bool suppressed) {
    for (size_t i = s; i + 1 < e; ++i) {
      if (code_[i].kind != TokenKind::kIdentifier || !code_[i + 1].Is("(")) {
        continue;
      }
      const std::string& callee = code_[i].text;
      if (Contains(kControlKeywords, callee)) continue;
      const size_t close = MatchForward(i + 1);
      const size_t args_end = close == kNpos ? e : close;
      const std::string via = FirstTaintedLocal(i + 2, args_end);
      if (via.empty()) continue;

      const Token* prev = i > s ? &code_[i - 1] : nullptr;
      if (prev != nullptr && (prev->Is(".") || prev->Is("->"))) {
        // Method call: where does the tainted argument land?
        const size_t base_idx = WalkChainBase(i);
        const std::string base =
            base_idx == kNpos ? std::string() : code_[base_idx].text;
        const bool base_is_call = base_idx != kNpos &&
                                  base_idx + 1 < code_.size() &&
                                  code_[base_idx + 1].Is("(");
        if (Contains(kObservabilitySinkCalls, callee)) {
          Report(code_[i].line, via,
                 "observability sink '" + callee + "'", suppressed);
        } else if (base_idx == kNpos || base_is_call || IsMemberName(base)) {
          Report(code_[i].line, via, "call '" + callee + "'", suppressed);
        } else if (ref_params_.count(base) != 0) {
          Report(code_[i].line, via,
                 "call '" + callee + "' on parameter '" + base + "'",
                 suppressed);
        } else {
          Taint(base, via);  // tainted value stored into a local object
        }
        continue;
      }
      if (prev != nullptr &&
          (prev->Is(">") || prev->Is("&") || prev->Is("*") ||
           (prev->kind == TokenKind::kIdentifier &&
            !prev->IsIdent("return")))) {
        // `Tensor scaled(tainted)` — construction from tainted data.
        Taint(callee, via);
        continue;
      }
      if (Contains(kValueReaders, callee) ||
          callee.compare(0, 6, "GEODP_") == 0) {
        continue;
      }
      Report(code_[i].line, via, "call '" + callee + "'", suppressed);
    }
  }

  void HandleReturn(size_t s, size_t e, bool suppressed) {
    for (size_t i = s; i < e; ++i) {
      if (!code_[i].IsIdent("return") && !code_[i].IsIdent("co_return")) {
        continue;
      }
      const std::string via = FirstTaintedLocal(i + 1, e);
      if (!via.empty()) Report(code_[i].line, via, "return", suppressed);
      return;
    }
  }

  const std::string& path_;
  const AnnotatedSource& source_;
  const std::vector<Token>& code_;
  std::vector<Finding>& findings_;

  std::map<std::string, std::vector<std::string>> tainted_;
  std::set<std::string> ref_params_;
  int last_report_line_ = 0;
};

}  // namespace

void CheckPerSampleTaint(const std::string& path, const PathInfo& info,
                         const AnnotatedSource& source,
                         std::vector<Finding>& findings) {
  if (!info.r2_applies) return;
  TaintPass(path, source, findings).Run();
}

}  // namespace lint
}  // namespace geodp
