#include "dp/calibration.h"

#include <sstream>

#include "dp/rdp_accountant.h"

namespace geodp {
namespace {

Status ValidateRunShape(double sampling_rate, int64_t steps, double delta) {
  if (!(sampling_rate > 0.0 && sampling_rate <= 1.0)) {
    std::ostringstream message;
    message << "sampling rate must be in (0, 1], got " << sampling_rate;
    return Status::InvalidArgument(message.str());
  }
  if (steps < 0) {
    std::ostringstream message;
    message << "steps must be >= 0, got " << steps;
    return Status::InvalidArgument(message.str());
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    std::ostringstream message;
    message << "delta must be in (0, 1), got " << delta;
    return Status::InvalidArgument(message.str());
  }
  return Status::Ok();
}

// Core accounting step shared by the public entry points, called only with
// already-validated arguments so the bisection loop stays Status-free.
double RunEpsilon(double sigma, double sampling_rate, int64_t steps,
                  double delta) {
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(NoiseMultiplier(sigma),
                                        SamplingRate(sampling_rate), steps);
  return accountant.GetEpsilon(Delta(delta));
}

}  // namespace

StatusOr<double> TrainingRunEpsilon(NoiseMultiplier sigma,
                                    SamplingRate sampling_rate,
                                    int64_t steps, Delta delta_in) {
  const double delta = delta_in.value();
  if (!(sigma.value() > 0.0)) {
    std::ostringstream message;
    message << "noise multiplier sigma must be > 0, got " << sigma.value();
    return Status::InvalidArgument(message.str());
  }
  const Status shape = ValidateRunShape(sampling_rate.value(), steps, delta);
  if (!shape.ok()) return shape;
  return RunEpsilon(sigma.value(), sampling_rate.value(), steps, delta);
}

StatusOr<double> NoiseMultiplierForTargetEpsilon(Epsilon target,
                                                 Delta delta_in,
                                                 SamplingRate rate,
                                                 int64_t steps,
                                                 double precision) {
  const double target_epsilon = target.value();
  const double delta = delta_in.value();
  const double sampling_rate = rate.value();
  if (!(target_epsilon > 0.0)) {
    std::ostringstream message;
    message << "target epsilon must be > 0, got " << target_epsilon;
    return Status::InvalidArgument(message.str());
  }
  if (steps <= 0) {
    std::ostringstream message;
    message << "steps must be > 0, got " << steps;
    return Status::InvalidArgument(message.str());
  }
  if (!(precision > 0.0)) {
    std::ostringstream message;
    message << "precision must be > 0, got " << precision;
    return Status::InvalidArgument(message.str());
  }
  const Status shape = ValidateRunShape(sampling_rate, steps, delta);
  if (!shape.ok()) return shape;

  double lo = 1e-3;
  double hi = 1.0;
  // Grow the bracket until hi satisfies the budget.
  while (RunEpsilon(hi, sampling_rate, steps, delta) > target_epsilon) {
    hi *= 2.0;
    if (hi >= 1e9) {
      std::ostringstream message;
      message << "target epsilon " << target_epsilon
              << " unreachable at q=" << sampling_rate << " steps=" << steps
              << " delta=" << delta;
      return Status::OutOfRange(message.str());
    }
  }
  // Shrink lo until it violates the budget (so the root is bracketed).
  while (RunEpsilon(lo, sampling_rate, steps, delta) <= target_epsilon) {
    lo /= 2.0;
    if (lo < 1e-9) return lo;  // effectively no noise needed
  }
  while ((hi - lo) / hi > precision) {
    const double mid = 0.5 * (lo + hi);
    if (RunEpsilon(mid, sampling_rate, steps, delta) > target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace geodp
