// Fixture: clean file. Banned tokens appear only inside comments and
// string literals, which the scanner must strip: std::random_device,
// rand(), time(nullptr), GEODP_CHECK(x), using namespace std.
#include <string>

namespace geodp {

inline std::string ScannerDocs() {
  return "std::mt19937 and abort() and steady_clock::now() are banned";
}

inline int DigitSeparators() { return 1'000'000; }

}  // namespace geodp
