#include "data/mnist_idx.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <vector>

#include "base/byte_view.h"
#include "base/io/file_io.h"

namespace geodp {
namespace {

// Reads a whole IDX file through the resilient substrate, preserving the
// historical "cannot open <path>" NotFound message for missing files.
StatusOr<std::string> ReadIdxFile(const std::string& path) {
  StatusOr<std::string> read =
      ReadFileWithRetry(path, RetryPolicy{}, "data.idx_read");
  if (!read.ok() && read.status().code() == StatusCode::kNotFound) {
    return Status::NotFound("cannot open " + path);
  }
  return read;
}

constexpr uint32_t kImageMagic = 2051;  // IDX3: unsigned byte, 3 dims
constexpr uint32_t kLabelMagic = 2049;  // IDX1: unsigned byte, 1 dim

bool ReadBigEndian32(std::istream& in, uint32_t* value) {
  std::array<unsigned char, 4> bytes;
  in.read(AsWritableBytes(bytes).data, 4);
  if (!in.good()) return false;
  *value = (static_cast<uint32_t>(bytes[0]) << 24) |
           (static_cast<uint32_t>(bytes[1]) << 16) |
           (static_cast<uint32_t>(bytes[2]) << 8) |
           static_cast<uint32_t>(bytes[3]);
  return true;
}

void WriteBigEndian32(std::ostream& out, uint32_t value) {
  const std::array<unsigned char, 4> bytes = {
      static_cast<unsigned char>(value >> 24),
      static_cast<unsigned char>(value >> 16),
      static_cast<unsigned char>(value >> 8),
      static_cast<unsigned char>(value)};
  out.write(AsBytes(bytes).data, 4);
}

}  // namespace

StatusOr<InMemoryDataset> LoadMnistIdx(const std::string& images_path,
                                       const std::string& labels_path,
                                       int64_t max_examples) {
  StatusOr<std::string> image_bytes = ReadIdxFile(images_path);
  if (!image_bytes.ok()) return image_bytes.status();
  StatusOr<std::string> label_bytes = ReadIdxFile(labels_path);
  if (!label_bytes.ok()) return label_bytes.status();
  std::istringstream images(std::move(image_bytes).value(),
                            std::ios::binary);
  std::istringstream labels(std::move(label_bytes).value(),
                            std::ios::binary);

  uint32_t magic = 0, image_count = 0, rows = 0, cols = 0;
  if (!ReadBigEndian32(images, &magic) || magic != kImageMagic) {
    return Status::InvalidArgument("bad image magic in " + images_path);
  }
  if (!ReadBigEndian32(images, &image_count) ||
      !ReadBigEndian32(images, &rows) || !ReadBigEndian32(images, &cols)) {
    return Status::InvalidArgument("truncated image header");
  }
  if (rows == 0 || cols == 0 || rows > 4096 || cols > 4096) {
    return Status::InvalidArgument("implausible image dimensions");
  }

  uint32_t label_magic = 0, label_count = 0;
  if (!ReadBigEndian32(labels, &label_magic) || label_magic != kLabelMagic) {
    return Status::InvalidArgument("bad label magic in " + labels_path);
  }
  if (!ReadBigEndian32(labels, &label_count)) {
    return Status::InvalidArgument("truncated label header");
  }
  if (label_count != image_count) {
    return Status::FailedPrecondition("image/label count mismatch");
  }

  int64_t count = static_cast<int64_t>(image_count);
  if (max_examples > 0) count = std::min<int64_t>(count, max_examples);

  const int64_t pixels = static_cast<int64_t>(rows) * cols;
  std::vector<unsigned char> image_buffer(static_cast<size_t>(pixels));
  InMemoryDataset dataset;
  for (int64_t i = 0; i < count; ++i) {
    images.read(AsWritableBytes(image_buffer.data(),
                                image_buffer.size()).data,
                static_cast<std::streamsize>(pixels));
    char label_byte = 0;
    labels.read(&label_byte, 1);
    if (!images.good() || !labels.good()) {
      return Status::InvalidArgument("truncated IDX data at example " +
                                     std::to_string(i));
    }
    Tensor image({1, static_cast<int64_t>(rows), static_cast<int64_t>(cols)});
    for (int64_t p = 0; p < pixels; ++p) {
      image[p] = static_cast<float>(image_buffer[static_cast<size_t>(p)]) /
                 255.0f;
    }
    dataset.Add(std::move(image),
                static_cast<int64_t>(static_cast<unsigned char>(label_byte)));
  }
  return dataset;
}

Status SaveMnistIdx(const InMemoryDataset& dataset,
                    const std::string& images_path,
                    const std::string& labels_path) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  const Tensor& first = dataset.image(0);
  if (first.ndim() != 3 || first.dim(0) != 1) {
    return Status::InvalidArgument("IDX export needs [1, rows, cols] images");
  }
  const int64_t rows = first.dim(1), cols = first.dim(2);

  std::ostringstream images(std::ios::binary);
  std::ostringstream labels(std::ios::binary);

  WriteBigEndian32(images, kImageMagic);
  WriteBigEndian32(images, static_cast<uint32_t>(dataset.size()));
  WriteBigEndian32(images, static_cast<uint32_t>(rows));
  WriteBigEndian32(images, static_cast<uint32_t>(cols));
  WriteBigEndian32(labels, kLabelMagic);
  WriteBigEndian32(labels, static_cast<uint32_t>(dataset.size()));

  for (int64_t i = 0; i < dataset.size(); ++i) {
    const Tensor& image = dataset.image(i);
    for (int64_t p = 0; p < image.numel(); ++p) {
      const float clamped = std::clamp(image[p], 0.0f, 1.0f);
      const unsigned char byte =
          static_cast<unsigned char>(clamped * 255.0f + 0.5f);
      images.write(AsBytes(byte).data, 1);
    }
    const char label_byte = static_cast<char>(dataset.label(i));
    labels.write(&label_byte, 1);
  }
  if (!images.good() || !labels.good()) {
    return Status::Internal("IDX write failed");
  }
  const Status images_written = AtomicWriteFile(
      images_path, images.str(), RetryPolicy{}, "data.idx_write");
  if (!images_written.ok()) return images_written;
  return AtomicWriteFile(labels_path, labels.str(), RetryPolicy{},
                         "data.idx_write");
}

}  // namespace geodp
