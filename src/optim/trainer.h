// End-to-end private training loop: per-sample clipping, perturbation
// (none / DP / GeoDP), optional importance sampling, selective update,
// Adam post-processing, and RDP privacy accounting.

#ifndef GEODP_OPTIM_TRAINER_H_
#define GEODP_OPTIM_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/perturbation.h"
#include "data/dataset.h"
#include "dp/rdp_accountant.h"
#include "nn/sequential.h"
#include "obs/step_observer.h"
#include "optim/dp_adam.h"
#include "optim/geodp_sgd.h"

namespace geodp {

/// Everything a training run needs.
struct TrainerOptions {
  PerturbationMethod method = PerturbationMethod::kDp;
  int64_t batch_size = 64;
  int64_t iterations = 200;
  double learning_rate = 0.5;
  double clip_threshold = 0.1;  // paper fixes C = 0.1
  double noise_multiplier = 1.0;
  double beta = 0.1;                       // GeoDP bounding factor
  // Extension: adapt beta to the observed direction concentration
  // (optim/adaptive_beta.h). Heuristic — see the privacy caveat there.
  bool adaptive_beta = false;
  double adaptive_beta_floor = 1e-4;
  AngleHandling angle_handling = AngleHandling::kNone;
  std::string clipper = "flat";            // "flat" | "AUTO-S" | "PSAC"
  // Poisson subsampling (each example included independently with rate
  // B/N) — the sampling model the RDP accountant assumes. When false, the
  // trainer uses epoch-shuffled fixed-size batches (common practice; the
  // accountant is then an approximation, as in mainstream DP-SGD
  // frameworks). With Poisson sampling the gradient sum is divided by the
  // nominal batch size B, matching Abadi et al.'s lot semantics.
  bool poisson_sampling = false;
  bool importance_sampling = false;        // IS
  bool selective_update = false;           // SUR
  double sur_tolerance = 0.03;  // accept if after <= before + tolerance
  int64_t sur_eval_examples = 256;         // validation slice for SUR
  bool use_adam = false;                   // DP-Adam post-processing
  double delta = 1e-5;                     // accounting target delta
  uint64_t seed = 1;
  int64_t record_loss_every = 10;          // 0 = never
  // Per-step telemetry sink (obs/step_observer.h). Borrowed, may be null;
  // when null the trainer skips every telemetry computation (per-sample
  // norm recording, accountant snapshots, metrics counters) so the hot
  // path pays nothing.
  StepObserver* step_observer = nullptr;
};

/// Everything a training run reports.
struct TrainingResult {
  std::vector<int64_t> loss_iterations;  // iteration index per loss sample
  std::vector<double> loss_history;      // batch mean loss before update
  double final_train_loss = 0.0;
  double test_accuracy = -1.0;  // -1 when no test set was provided
  double epsilon = 0.0;         // RDP-accounted epsilon at options.delta
  int64_t sur_accepted = 0;
  int64_t sur_rejected = 0;
  double final_beta = 0.0;      // last beta used (varies with adaptive_beta)
  // Poisson lots that drew no examples (pure-noise steps). Their loss is
  // undefined, so they are excluded from loss_history and from the
  // adaptive-beta direction envelope.
  int64_t empty_lots = 0;
};

/// Trains a model privately on a dataset. The model is mutated in place.
class DpTrainer {
 public:
  /// `test` may be null (accuracy is then not evaluated).
  DpTrainer(Sequential* model, const InMemoryDataset* train,
            const InMemoryDataset* test, TrainerOptions options);

  /// Runs the full loop and returns the report.
  TrainingResult Train();

  const TrainerOptions& options() const { return options_; }

 private:
  Sequential* model_;
  const InMemoryDataset* train_;
  const InMemoryDataset* test_;
  TrainerOptions options_;
};

}  // namespace geodp

#endif  // GEODP_OPTIM_TRAINER_H_
