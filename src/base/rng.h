// Deterministic random number generation for the whole library.
//
// Every randomized component (noise mechanisms, data generators, parameter
// init, shuffling) takes an explicit Rng so experiments and tests are
// reproducible bit-for-bit across platforms. The core generator is
// xoshiro256++ (public-domain algorithm by Blackman & Vigna); Gaussian
// variates come from a Box-Muller transform rather than std::
// distributions, whose output is implementation-defined.

#ifndef GEODP_BASE_RNG_H_
#define GEODP_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace geodp {

/// Complete serializable state of an Rng: the xoshiro256++ words plus the
/// Box-Muller spare-sample cache. Restoring this state resumes the stream
/// bit-for-bit, which is what lets a checkpointed training run reproduce
/// the exact noise draws it would have made uninterrupted.
struct RngState {
  uint64_t state[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// Deterministic pseudo-random generator (xoshiro256++, not crypto-secure;
/// a production DP deployment would swap in a CSPRNG behind this interface).
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound). A bound of 0 (e.g. sampling from an
  /// empty dataset) returns 0 instead of dividing by zero.
  uint64_t UniformInt(uint64_t bound);

  /// Standard normal variate (mean 0, stddev 1) via Box-Muller.
  double Gaussian();

  /// Normal variate with the given mean and stddev.
  double Gaussian(double mean, double stddev);

  /// Vector of n i.i.d. N(0, stddev^2) samples.
  std::vector<double> GaussianVector(std::size_t n, double stddev);

  /// Standard Laplace variate scaled by b (density exp(-|x|/b) / 2b).
  double Laplace(double b);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; use to give each component its
  /// own stream from one experiment seed.
  Rng Fork();

  /// Advances the state by 2^128 steps (the standard xoshiro256++ jump),
  /// equivalent to 2^128 calls to Next(). Used to separate substreams.
  void Jump();

  /// Member `stream_id` of a deterministic family of generators rooted at
  /// `root_seed`: the id is mixed into the seed via SplitMix64 and the
  /// stream is jumped once, so distinct ids give statistically independent
  /// streams and the same (root_seed, stream_id) pair always gives the
  /// same stream. This is the substream scheme parallel noise sampling
  /// relies on: one root draw from the parent generator, one substream per
  /// fixed-size chunk, so results are invariant to the thread count.
  static Rng Substream(uint64_t root_seed, uint64_t stream_id);

  /// Snapshot of the full generator state (xoshiro words + Box-Muller
  /// cache) for checkpointing.
  RngState ExportState() const;

  /// Restores a snapshot taken with ExportState; the stream continues
  /// exactly where the exporting generator left off.
  void ImportState(const RngState& state);

 private:
  uint64_t state_[4];
  // Box-Muller produces pairs; the spare sample is cached here.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace geodp

#endif  // GEODP_BASE_RNG_H_
