#include "nn/init.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng& rng) {
  GEODP_CHECK_GT(fan_in, 0);
  const float bound =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(fan_in)));
  return Tensor::RandUniform(std::move(shape), rng, -bound, bound);
}

Tensor XavierUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng& rng) {
  GEODP_CHECK_GT(fan_in + fan_out, 0);
  const float bound = static_cast<float>(
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out)));
  return Tensor::RandUniform(std::move(shape), rng, -bound, bound);
}

}  // namespace geodp
