// Small convolutional network (paper's "2-layer CNN"): two conv layers with
// ReLU, one max-pool, and a dense softmax head.

#ifndef GEODP_MODELS_CNN_H_
#define GEODP_MODELS_CNN_H_

#include <cstdint>
#include <memory>

#include "base/rng.h"
#include "nn/sequential.h"

namespace geodp {

/// Architecture description of the small CNN.
struct CnnConfig {
  int64_t in_channels = 1;
  int64_t image_size = 14;  // square input
  int64_t num_classes = 10;
  int64_t conv1_channels = 6;
  int64_t conv2_channels = 12;
};

/// Builds Conv(k3, pad1) -> ReLU -> MaxPool(2) -> Conv(k3) -> ReLU ->
/// Flatten -> Linear. Requires image_size even and >= 8.
std::unique_ptr<Sequential> MakeCnn(const CnnConfig& config, Rng& rng);

}  // namespace geodp

#endif  // GEODP_MODELS_CNN_H_
