// Fixture: seeded R5 violation — std::ofstream bypassing the I/O
// substrate (no retry, no errno classification, no fault injection).
#include <fstream>

namespace geodp {

void DumpDebug(const char* path) {
  std::ofstream out(path);
  out << "x";
}

}  // namespace geodp
