// Batched per-sample gradient computation for softmax-linear models
// (Flatten -> Linear), using the outer-product factorization that
// production DP-SGD frameworks (e.g. Opacus) rely on:
//
//   per-sample dW_i = e_i x_i^T,  db_i = e_i,   e_i = softmax(z_i) - y_i
//   ||(dW_i, db_i)||^2 = ||e_i||^2 (||x_i||^2 + 1)
//
// so per-sample norms and the clipped average need ONE batched forward
// pass plus two matmuls, instead of B single-example forward/backward
// passes. The result is numerically identical to the loop path
// (ComputePerSampleGradients) for flat clipping; the tests assert it.

#ifndef GEODP_OPTIM_FAST_LINEAR_GRAD_H_
#define GEODP_OPTIM_FAST_LINEAR_GRAD_H_

#include <cstdint>
#include <vector>

#include "base/units.h"
#include "optim/dp_sgd.h"
#include "tensor/tensor.h"

namespace geodp {

/// Batched private gradient of mean softmax cross-entropy for the linear
/// model logits = x W^T + b.
///
/// `inputs` is the flattened batch [B, D]; `weight` [K, D]; `bias` [K];
/// labels in [0, K). Per-sample gradients are flat-clipped to
/// `clip_threshold` (strongly typed: this is the sensitivity bound C, not
/// a noise multiplier). The returned flat layout is [W row-major, then b]
/// — the same order FlattenGradients produces for a Linear layer.
PrivateBatchGradient ComputeLinearPerSampleGradients(
    const Tensor& inputs, const std::vector<int64_t>& labels,
    const Tensor& weight, const Tensor& bias, ClipThreshold clip_threshold);

}  // namespace geodp

#endif  // GEODP_OPTIM_FAST_LINEAR_GRAD_H_
