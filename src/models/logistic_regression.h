// Multinomial logistic regression (paper's "LR" model): a single dense
// layer over flattened pixels, trained with softmax cross-entropy.

#ifndef GEODP_MODELS_LOGISTIC_REGRESSION_H_
#define GEODP_MODELS_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <memory>

#include "base/rng.h"
#include "nn/sequential.h"

namespace geodp {

/// Builds Flatten -> Linear(input_dim, num_classes). `input_dim` is the
/// flattened pixel count (e.g. 196 for the 14x14 MNIST-like dataset).
std::unique_ptr<Sequential> MakeLogisticRegression(int64_t input_dim,
                                                   int64_t num_classes,
                                                   Rng& rng);

}  // namespace geodp

#endif  // GEODP_MODELS_LOGISTIC_REGRESSION_H_
