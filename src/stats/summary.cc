#include "stats/summary.h"

#include <algorithm>
#include <cmath>

namespace geodp {

void RunningStat::Add(double value) {
  ++count_;
  if (count_ == 1) {
    mean_ = value;
    min_ = value;
    max_ = value;
    m2_ = 0.0;
    return;
  }
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStat::mean() const { return mean_; }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace geodp
