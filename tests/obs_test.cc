// Tests for the observability layer: deterministic number formatting, the
// metrics registry, trace spans, step records, and the end-to-end
// guarantee that per-step telemetry is bit-identical across thread counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "obs/metrics.h"
#include "obs/step_observer.h"
#include "obs/trace.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FormatDoubleTest, RoundTripsExactly) {
  const double values[] = {0.0,   1.0,        -1.0,       0.1,
                           1.0 / 3.0,         1e-300,     1e300,
                           3.141592653589793, -2.5e-8,    123456789.123456789};
  for (const double v : values) {
    const std::string text = FormatDouble(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

TEST(FormatDoubleTest, PrefersShortRepresentation) {
  EXPECT_EQ(FormatDouble(0.1), "0.1");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(-0.5), "-0.5");
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.IncrementCounter("steps");
  registry.IncrementCounter("steps", 4);
  EXPECT_EQ(registry.counter("steps"), 5);
  EXPECT_EQ(registry.counter("missing"), 0);

  registry.SetGauge("epsilon", 1.25);
  registry.SetGauge("epsilon", 2.5);
  EXPECT_EQ(registry.gauge("epsilon"), 2.5);

  registry.ObserveHistogram("clip", {0.5, 1.0}, 0.25);
  registry.ObserveHistogram("clip", {0.5, 1.0}, 0.75);
  registry.ObserveHistogram("clip", {0.5, 1.0}, 9.0);  // overflow bucket
  const HistogramSnapshot snapshot = registry.histogram("clip");
  ASSERT_EQ(snapshot.upper_bounds.size(), 2u);
  ASSERT_EQ(snapshot.counts.size(), 3u);
  EXPECT_EQ(snapshot.counts[0], 1);
  EXPECT_EQ(snapshot.counts[1], 1);
  EXPECT_EQ(snapshot.counts[2], 1);
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.sum, 10.0);
}

TEST(HistogramQuantileTest, PinsInterpolatedValues) {
  MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  for (const double v : {0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0}) {
    registry.ObserveHistogram("h", bounds, v);
  }
  const HistogramSnapshot snapshot = registry.histogram("h");
  ASSERT_EQ(snapshot.count, 7);
  // rank 3.5 lands in bucket (2, 4] holding ranks 4..6 cumulatively 3..6:
  // fraction (3.5 - 3) / 3 of the way from 2 to 4.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.5),
                   2.0 + 2.0 * (0.5 / 3.0));
  EXPECT_DOUBLE_EQ(snapshot.p50, 2.0 + 2.0 * (0.5 / 3.0));
  // Ranks past the last finite bound clamp to it (the overflow bucket has
  // no upper edge to interpolate toward).
  EXPECT_DOUBLE_EQ(snapshot.p95, 4.0);
  EXPECT_DOUBLE_EQ(snapshot.p99, 4.0);
  // q=0 resolves to the lower edge of the first non-empty bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), 4.0);
}

TEST(HistogramQuantileTest, EmptyAndSingleBucket) {
  const HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(HistogramQuantile(empty, 0.5), 0.0);

  MetricsRegistry registry;
  registry.ObserveHistogram("one", {2.0}, 1.0);
  const HistogramSnapshot snapshot = registry.histogram("one");
  // One observation in (0, 2]: the median interpolates to the midpoint.
  EXPECT_DOUBLE_EQ(snapshot.p50, 1.0);
}

TEST(MetricsRegistryTest, ToJsonlIncludesQuantiles) {
  MetricsRegistry registry;
  for (const double v : {0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 5.0}) {
    registry.ObserveHistogram("h", {1.0, 2.0, 4.0}, v);
  }
  EXPECT_EQ(registry.ToJsonl(),
            "{\"type\":\"histogram\",\"name\":\"h\",\"bounds\":[1,2,4],"
            "\"counts\":[1,2,3,1],\"count\":7,\"sum\":17.5,"
            "\"p50\":2.3333333333333335,\"p95\":4,\"p99\":4}\n");
}

TEST(MetricsRegistryTest, ToJsonlIsSortedAndInsertionOrderFree) {
  MetricsRegistry a;
  a.IncrementCounter("zebra");
  a.IncrementCounter("alpha", 2);
  a.SetGauge("mid", 0.5);

  MetricsRegistry b;
  b.SetGauge("mid", 0.5);
  b.IncrementCounter("alpha", 2);
  b.IncrementCounter("zebra");

  EXPECT_EQ(a.ToJsonl(), b.ToJsonl());
  EXPECT_EQ(a.ToJsonl(),
            "{\"type\":\"counter\",\"name\":\"alpha\",\"value\":2}\n"
            "{\"type\":\"counter\",\"name\":\"zebra\",\"value\":1}\n"
            "{\"type\":\"gauge\",\"name\":\"mid\",\"value\":0.5}\n");
}

TEST(MetricsRegistryTest, WriteJsonlMatchesToJsonl) {
  MetricsRegistry registry;
  registry.IncrementCounter("steps", 7);
  registry.ObserveHistogram("h", {1.0}, 0.5);
  const std::string path = TempPath("metrics_registry.jsonl");
  ASSERT_TRUE(registry.WriteJsonl(path).ok());
  EXPECT_EQ(ReadFile(path), registry.ToJsonl());
}

TEST(MetricsRegistryTest, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.IncrementCounter("c");
  registry.SetGauge("g", 1.0);
  registry.Reset();
  EXPECT_EQ(registry.ToJsonl(), "");
}

TEST(TraceTest, SpanIsFreeWhenDisabled) {
  ASSERT_FALSE(TracingEnabled());
  const int64_t before = BufferedTraceEventCount();
  {
    TraceSpan span("never.recorded");
  }
  EXPECT_EQ(BufferedTraceEventCount(), before);
}

TEST(TraceTest, SpansBufferAndFlushAsTraceJson) {
  const std::string path = TempPath("trace.json");
  EnableTracing(path);
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  EXPECT_GE(BufferedTraceEventCount(), 2);
  ASSERT_TRUE(FlushTrace().ok());
  DisableTracing();

  const std::string trace = ReadFile(path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, RepeatedFlushNeverTruncates) {
  const std::string path = TempPath("trace_reflush.json");
  EnableTracing(path);
  {
    TraceSpan span("first");
  }
  ASSERT_TRUE(FlushTrace().ok());
  // A later flush (e.g. the atexit one) must still contain earlier events.
  ASSERT_TRUE(FlushTrace().ok());
  DisableTracing();
  EXPECT_NE(ReadFile(path).find("\"name\":\"first\""), std::string::npos);
}

TEST(TraceTest, ThreadPoolPartsShowUpAsPoolSlices) {
  const std::string path = TempPath("trace_pool.json");
  SetGlobalThreadCount(4);
  EnableTracing(path);
  ParallelFor(0, 1 << 14, 256, [](int64_t, int64_t) {});
  SetGlobalThreadCount(0);
  ASSERT_TRUE(FlushTrace().ok());
  DisableTracing();
  EXPECT_NE(ReadFile(path).find("\"name\":\"pool.part\""), std::string::npos);
}

TEST(StepObserverTest, StepRecordToJsonHasFixedKeyOrder) {
  StepRecord record;
  record.step = 3;
  record.attempt = 4;
  record.batch_size = 32;
  record.mean_loss = 2.5;
  record.raw_grad_norm = 1.5;
  record.clipped_grad_norm = 0.5;
  record.clip_fraction = 0.25;
  record.magnitude_noise_stddev = 0.125;
  record.direction_noise_stddev = 0.0625;
  record.beta = 0.01;
  record.sur_enabled = true;
  record.sur_accepted = false;
  record.sur_accepted_total = 2;
  record.sur_rejected_total = 1;
  record.epsilon = 0.75;
  record.rdp_order = 16;
  record.accounted_steps = 5;
  EXPECT_EQ(
      StepRecordToJson(record),
      "{\"step\":3,\"attempt\":4,\"batch_size\":32,\"empty_lot\":false,"
      "\"nonfinite_skipped\":0,"
      "\"mean_loss\":2.5,\"raw_grad_norm\":1.5,\"clipped_grad_norm\":0.5,"
      "\"clip_fraction\":0.25,\"magnitude_noise_stddev\":0.125,"
      "\"direction_noise_stddev\":0.0625,\"beta\":0.01,\"sur_enabled\":true,"
      "\"sur_accepted\":false,\"sur_accepted_total\":2,"
      "\"sur_rejected_total\":1,\"epsilon\":0.75,\"rdp_order\":16,"
      "\"accounted_steps\":5}");
}

TEST(StepObserverTest, JsonlWriterWritesOneLinePerRecord) {
  const std::string path = TempPath("steps.jsonl");
  JsonlStepWriter writer(path);
  ASSERT_TRUE(writer.status().ok());
  StepRecord record;
  for (int i = 0; i < 3; ++i) {
    record.step = i;
    writer.OnStep(record);
  }
  EXPECT_EQ(writer.records_written(), 3);

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"step\":" + std::to_string(lines)),
              std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(StepObserverTest, WriterReportsUnopenablePath) {
  MetricsRegistry::Global().Reset();
  JsonlStepWriter writer("/nonexistent-dir/steps.jsonl");
  EXPECT_FALSE(writer.status().ok());
  EXPECT_EQ(MetricsRegistry::Global().counter("obs.jsonl_open_errors"), 1);
  StepRecord record;
  writer.OnStep(record);  // must not crash
  EXPECT_EQ(writer.records_written(), 0);
  EXPECT_EQ(writer.dropped_records(), 1);
  EXPECT_EQ(MetricsRegistry::Global().counter("obs.jsonl_write_errors"), 1);
  MetricsRegistry::Global().Reset();
}

TEST(StepObserverTest, WriterSurfacesDiskFullAsErrorStatus) {
  // /dev/full accepts the open but fails every flush with ENOSPC — the
  // classic silent-telemetry-loss scenario this counter exists for.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";

  MetricsRegistry::Global().Reset();
  JsonlStepWriter writer("/dev/full");
  ASSERT_TRUE(writer.status().ok());
  StepRecord record;
  writer.OnStep(record);
  writer.OnStep(record);
  EXPECT_EQ(writer.records_written(), 0);
  EXPECT_EQ(writer.dropped_records(), 2);
  EXPECT_EQ(MetricsRegistry::Global().counter("obs.jsonl_write_errors"), 2);
  const Status status = writer.Close();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("write failed"), std::string::npos);
  // Close is idempotent and sticky.
  EXPECT_FALSE(writer.Close().ok());
  MetricsRegistry::Global().Reset();
}

TEST(StepObserverTest, CloseReportsDroppedRecords) {
  // A writer whose stream recovered (status OK) but that dropped records
  // must still fail Close(): the JSONL file is incomplete.
  MetricsRegistry::Global().Reset();
  JsonlStepWriter writer("/nonexistent-dir/steps.jsonl");
  StepRecord record;
  writer.OnStep(record);
  // Open itself failed here, so Close reports that first error.
  EXPECT_FALSE(writer.Close().ok());
  MetricsRegistry::Global().Reset();
}

// End-to-end determinism: the same training run observed at 1 and 8
// threads must serialize to byte-identical telemetry (the ParallelFor
// chunk contract makes the values bit-identical; FormatDouble makes the
// serialization a pure function of the values).
TEST(StepObserverTest, TelemetryByteIdenticalAcrossThreadCounts) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 96;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = 41;
  const InMemoryDataset train = MakeSyntheticImages(data_options);

  auto run = [&](int threads) {
    SetGlobalThreadCount(threads);
    Rng rng(42);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions options;
    options.method = PerturbationMethod::kGeoDp;
    options.beta = 0.05;
    options.batch_size = 16;
    options.iterations = 8;
    options.learning_rate = 0.5;
    options.noise_multiplier = 1.0;
    options.seed = 43;
    CollectingStepObserver observer;
    options.step_observer = &observer;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    trainer.Train();
    std::string serialized;
    for (const StepRecord& record : observer.records()) {
      serialized += StepRecordToJson(record) + "\n";
    }
    SetGlobalThreadCount(0);
    return serialized;
  };

  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(StepObserverTest, TrainerFillsRecordsWithConsistentTelemetry) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 64;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = 51;
  const InMemoryDataset train = MakeSyntheticImages(data_options);

  Rng rng(52);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.batch_size = 16;
  options.iterations = 6;
  options.learning_rate = 0.5;
  options.noise_multiplier = 1.0;
  options.clip_threshold = 0.1;
  options.seed = 53;
  CollectingStepObserver observer;
  options.step_observer = &observer;
  MetricsRegistry::Global().Reset();
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();

  ASSERT_EQ(observer.records().size(), 6u);
  double last_epsilon = 0.0;
  for (size_t i = 0; i < observer.records().size(); ++i) {
    const StepRecord& record = observer.records()[i];
    EXPECT_EQ(record.step, static_cast<int64_t>(i));
    EXPECT_EQ(record.batch_size, 16);
    EXPECT_FALSE(record.empty_lot);
    EXPECT_GT(record.mean_loss, 0.0);
    EXPECT_GT(record.raw_grad_norm, 0.0);
    // DP noise stddev is C * sigma / B; no direction noise for plain DP.
    EXPECT_DOUBLE_EQ(record.magnitude_noise_stddev, 0.1 * 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(record.direction_noise_stddev, 0.0);
    EXPECT_GE(record.clip_fraction, 0.0);
    EXPECT_LE(record.clip_fraction, 1.0);
    // Epsilon-so-far is monotone in accounted steps.
    EXPECT_GE(record.epsilon, last_epsilon);
    EXPECT_GT(record.epsilon, 0.0);
    EXPECT_GT(record.rdp_order, 0);
    EXPECT_EQ(record.accounted_steps, static_cast<int64_t>(i) + 1);
    last_epsilon = record.epsilon;
  }
  // The last record's epsilon matches the final report.
  EXPECT_DOUBLE_EQ(observer.records().back().epsilon, result.epsilon);
  // The global registry mirrored the run.
  EXPECT_EQ(MetricsRegistry::Global().counter("trainer.steps"), 6);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Global().gauge("trainer.epsilon"),
                   result.epsilon);
  MetricsRegistry::Global().Reset();
}

}  // namespace
}  // namespace geodp
