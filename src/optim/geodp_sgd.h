// Perturbation-method selection shared by the trainer and the benches.

#ifndef GEODP_OPTIM_GEODP_SGD_H_
#define GEODP_OPTIM_GEODP_SGD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/perturbation.h"

namespace geodp {

/// Which noise is applied to the averaged clipped gradient.
enum class PerturbationMethod {
  kNoiseFree,  // no noise (non-private SGD on clipped gradients)
  kDp,         // traditional DP-SGD (paper Eq. 8)
  kGeoDp,      // geometric perturbation (paper Algorithm 1)
};

/// Parses "none" / "dp" / "geodp" (case-sensitive).
PerturbationMethod ParsePerturbationMethod(const std::string& name);

/// Display name of a method.
std::string PerturbationMethodName(PerturbationMethod method);

/// Pass-through perturber used for the noise-free baseline.
class IdentityPerturber : public Perturber {
 public:
  IdentityPerturber() = default;

  Tensor Perturb(const Tensor& avg_clipped_gradient,
                 Rng& rng) const override;
  std::string name() const override { return "none"; }
};

/// Builds the perturber for a method. `beta` and `angle_handling` only
/// apply to GeoDP.
std::unique_ptr<Perturber> MakePerturberForMethod(
    PerturbationMethod method, const PerturbationOptions& base, double beta,
    AngleHandling angle_handling = AngleHandling::kNone);

/// Perturbs a batch of averaged clipped gradients (one release each) in
/// parallel on the global pool. One root value is drawn from `rng` and
/// release i uses the i-th substream of that root, so the output is
/// reproducible from the parent seed and invariant to the thread count.
/// Used by the Monte-Carlo benches and the federated aggregation path.
std::vector<Tensor> BatchPerturb(const Perturber& perturber,
                                 const std::vector<Tensor>& gradients,
                                 Rng& rng);

}  // namespace geodp

#endif  // GEODP_OPTIM_GEODP_SGD_H_
