#include "clip/ghost_clipping.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

GhostBatchWeights GhostClipper::Weights(
    const std::vector<double>& ghost_norm_sq,
    const std::vector<double>& sample_losses) const {
  GEODP_CHECK_EQ(ghost_norm_sq.size(),  // geodp: check-ok
                 sample_losses.size());
  const size_t batch = ghost_norm_sq.size();
  GhostBatchWeights out;
  out.clipped.assign(batch, 0.0);
  out.raw.assign(batch, 0.0);
  out.norms.assign(batch, 0.0);
  for (size_t b = 0; b < batch; ++b) {
    const double norm = std::sqrt(ghost_norm_sq[b]);
    out.norms[b] = norm;
    if (!(std::isfinite(sample_losses[b]) && std::isfinite(norm))) {
      // Excluded samples keep weight exactly 0.0 in both passes; the
      // accumulators skip them structurally instead of multiplying, so a
      // non-finite gradient can never reach the sums.
      ++out.nonfinite_skipped;
      continue;
    }
    out.clipped[b] = clipper_.ClipScale(norm);
    out.raw[b] = 1.0;
    ++out.included;
    out.included_loss_sum += sample_losses[b];
  }
  return out;
}

}  // namespace geodp
