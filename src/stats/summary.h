// Streaming summary statistics (Welford) for aggregating repeated trials.

#ifndef GEODP_STATS_SUMMARY_H_
#define GEODP_STATS_SUMMARY_H_

#include <cstdint>

namespace geodp {

/// Online mean / variance accumulator.
class RunningStat {
 public:
  RunningStat() = default;

  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (0 when fewer than 2 samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean (0 when fewer than 2 samples).
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace geodp

#endif  // GEODP_STATS_SUMMARY_H_
