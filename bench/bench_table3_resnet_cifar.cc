// Table III: ResNet test accuracy on the CIFAR-like dataset under DP vs
// GeoDP x techniques. The paper's sigma in {0.1, 0.01} maps to {4, 1} at
// this repo's batch sizes and model dimension (see the noise-to-signal
// note in bench_table2 and EXPERIMENTS.md); its beta in {1, 0.1} maps to
// {0.002, 0.0005}.
// Expected shape: GeoDP beats DP at both betas, the smaller beta widens
// the gap, techniques add small increments, and every method converges
// toward the noise-free reference as sigma shrinks.

#include <cstdint>
#include <string>

#include "base/rng.h"
#include "common/bench_util.h"
#include "models/resnet.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

struct Config {
  std::string label;
  PerturbationMethod method = PerturbationMethod::kDp;
  int64_t batch = 96;
  double beta = 1.0;
  std::string clipper = "flat";
  bool is = false;
  bool sur = false;
};

constexpr int64_t kIterations = 80;
constexpr double kClip = 0.1;
constexpr double kLr = 3.0;

double RunAccuracy(const SplitDataset& data, const Config& config,
                   double sigma) {
  Rng rng(66);
  ResNetConfig resnet;
  resnet.width = 4;
  auto model = MakeResNet(resnet, rng);
  TrainerOptions options;
  options.method = config.method;
  options.batch_size = config.batch;
  options.iterations = kIterations;
  options.learning_rate = kLr;
  options.clip_threshold = kClip;
  options.noise_multiplier = sigma;
  options.beta = config.beta;
  options.clipper = config.clipper;
  options.importance_sampling = config.is;
  options.selective_update = config.sur;
  options.seed = 111;
  DpTrainer trainer(model.get(), &data.train, &data.test, options);
  return trainer.Train().test_accuracy;
}

void Run() {
  PrintBanner(
      "Table III (ResNet on CIFAR-10: test accuracy of DP vs GeoDP)",
      "sigma in {0.1, 0.01}, B in {8192, 16384}, beta in {1, 0.1}",
      "sigma in {4, 1} (iteration-averaged noise-to-signal matched), B in "
      "{48, 96}, beta in {0.002, 0.0005}, width-4 ResNet with 3 residual "
      "blocks, 16x16 synthetic CIFAR, 80 iterations");

  const SplitDataset data = CifarLikeSplit(768, 192, /*seed=*/9);

  Config noise_free;
  noise_free.label = "noise-free";
  noise_free.method = PerturbationMethod::kNoiseFree;
  const double reference = RunAccuracy(data, noise_free, 0.0);

  const std::vector<Config> configs = {
      {"DP (B=48)", PerturbationMethod::kDp, 48, 1.0, "flat", false, false},
      {"DP (B=96)", PerturbationMethod::kDp, 96, 1.0, "flat", false, false},
      {"DP+IS (B=96)", PerturbationMethod::kDp, 96, 1.0, "flat", true,
       false},
      {"DP+SUR (B=96)", PerturbationMethod::kDp, 96, 1.0, "flat", false,
       true},
      {"DP+AUTO-S (B=96)", PerturbationMethod::kDp, 96, 1.0, "AUTO-S",
       false, false},
      {"DP+PSAC (B=96)", PerturbationMethod::kDp, 96, 1.0, "PSAC", false,
       false},
      {"DP+SUR+PSAC (B=96)", PerturbationMethod::kDp, 96, 1.0, "PSAC",
       false, true},
      {"GeoDP (B=48, beta=0.002)", PerturbationMethod::kGeoDp, 48, 0.002,
       "flat", false, false},
      {"GeoDP (B=96, beta=0.002)", PerturbationMethod::kGeoDp, 96, 0.002,
       "flat", false, false},
      {"GeoDP (B=96, beta=0.0005)", PerturbationMethod::kGeoDp, 96, 0.0005,
       "flat", false, false},
      {"GeoDP+IS (B=96)", PerturbationMethod::kGeoDp, 96, 0.0005, "flat",
       true, false},
      {"GeoDP+SUR (B=96)", PerturbationMethod::kGeoDp, 96, 0.0005, "flat",
       false, true},
      {"GeoDP+AUTO-S (B=96)", PerturbationMethod::kGeoDp, 96, 0.0005,
       "AUTO-S", false, false},
      {"GeoDP+PSAC (B=96)", PerturbationMethod::kGeoDp, 96, 0.0005, "PSAC",
       false, false},
      {"GeoDP+SUR+PSAC (B=96)", PerturbationMethod::kGeoDp, 96, 0.0005,
       "PSAC", false, true},
  };

  TablePrinter table({"method", "acc @ sigma=4", "acc @ sigma=1"});
  table.AddRow({"noise-free", TablePrinter::Fmt(reference * 100, 2) + "%",
                TablePrinter::Fmt(reference * 100, 2) + "%"});
  for (const Config& config : configs) {
    const double hi = RunAccuracy(data, config, 4.0);
    const double lo = RunAccuracy(data, config, 1.0);
    table.AddRow({config.label, TablePrinter::Fmt(hi * 100, 2) + "%",
                  TablePrinter::Fmt(lo * 100, 2) + "%"});
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
