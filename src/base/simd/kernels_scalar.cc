// Scalar reference tier. Each kernel reproduces the element loop it
// replaced (tensor.cc, tensor_ops.cc, im2col.cc, spherical.cc,
// perturbation.cc) bit-for-bit: same expression shapes, same accumulation
// order, same libm calls. This TU is compiled with the project's default
// flags — no -mavx2/-mfma — so no FMA contraction can change roundings
// relative to the historical code.

#include <cmath>

#include "base/simd/kernels_impl.h"

namespace geodp {
namespace simd {
namespace {

constexpr double kPi = 3.14159265358979323846;

void AddScalar(float* y, const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void AxpyScalar(float* y, const float* x, float alpha, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(float* x, float factor, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] *= factor;
}

void ScaleAssignScalar(float* dst, const float* src, float scale, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[i] * scale;
}

double SumSquaresScalar(const float* x, int64_t n) {
  double sum_sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum_sq += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return sum_sq;
}

double DotScalar(const float* a, const float* b, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

void MatmulRowBlockScalar(const float* a, const float* b, float* out,
                          int64_t row_begin, int64_t row_end, int64_t k,
                          int64_t n) {
  for (int64_t k0 = 0; k0 < k; k0 += kMatmulKTile) {
    const int64_t k1 = k0 + kMatmulKTile < k ? k0 + kMatmulKTile : k;
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* orow = out + i * n;
      for (int64_t kk = k0; kk < k1; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  }
}

void PadCopyRowScalar(float* dst, const float* src, int64_t out_w,
                      int64_t shift, int64_t width) {
  for (int64_t ow = 0; ow < out_w; ++ow) {
    const int64_t iw = ow + shift;
    dst[ow] = (iw >= 0 && iw < width) ? src[iw] : 0.0f;
  }
}

void SqrtArrayScalar(const double* x, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::sqrt(x[i]);
}

void SinCosScalar(const double* angles, double* sin_out, double* cos_out,
                  int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    sin_out[i] = std::sin(angles[i]);
    cos_out[i] = std::cos(angles[i]);
  }
}

void Atan2Scalar(const double* y, const double* x, double* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::atan2(y[i], x[i]);
}

void WrapReflectScalar(double* angles, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    double theta = std::fmod(angles[i], 2.0 * kPi);
    if (theta < 0) theta += 2.0 * kPi;
    if (theta > kPi) theta = 2.0 * kPi - theta;
    angles[i] = theta;
  }
}

void GaussianAddF32Scalar(Rng& stream, double stddev, float* dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] += static_cast<float>(stream.Gaussian(0.0, stddev));
  }
}

void GaussianAddF64Scalar(Rng& stream, double stddev, double* dst,
                          int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] += stream.Gaussian(0.0, stddev);
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      .add = AddScalar,
      .axpy = AxpyScalar,
      .scale = ScaleScalar,
      .scale_assign = ScaleAssignScalar,
      .sum_squares = SumSquaresScalar,
      .dot = DotScalar,
      .matmul_row_block = MatmulRowBlockScalar,
      .pad_copy_row = PadCopyRowScalar,
      .sqrt_array = SqrtArrayScalar,
      .sincos = SinCosScalar,
      .atan2 = Atan2Scalar,
      .wrap_reflect = WrapReflectScalar,
      .gaussian_add_f32 = GaussianAddF32Scalar,
      .gaussian_add_f64 = GaussianAddF64Scalar,
  };
  return table;
}

}  // namespace simd
}  // namespace geodp
