#include "nn/loss.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

double SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                    const std::vector<int64_t>& labels) {
  GEODP_CHECK_EQ(logits.ndim(), 2);
  const int64_t batch = logits.dim(0), classes = logits.dim(1);
  GEODP_CHECK_EQ(static_cast<int64_t>(labels.size()), batch);

  probabilities_ = Tensor({batch, classes});
  labels_ = labels;
  sample_losses_.clear();
  sample_losses_.reserve(static_cast<size_t>(batch));
  double total_loss = 0.0;
  for (int64_t b = 0; b < batch; ++b) {
    GEODP_CHECK(labels[static_cast<size_t>(b)] >= 0 &&
                labels[static_cast<size_t>(b)] < classes);
    // Stabilize with the row max before exponentiating.
    float row_max = logits[b * classes];
    for (int64_t k = 1; k < classes; ++k) {
      row_max = std::max(row_max, logits[b * classes + k]);
    }
    double denom = 0.0;
    for (int64_t k = 0; k < classes; ++k) {
      const double e = std::exp(static_cast<double>(logits[b * classes + k]) -
                                static_cast<double>(row_max));
      probabilities_[b * classes + k] = static_cast<float>(e);
      denom += e;
    }
    for (int64_t k = 0; k < classes; ++k) {
      probabilities_[b * classes + k] = static_cast<float>(
          static_cast<double>(probabilities_[b * classes + k]) / denom);
    }
    const double p_true = std::max(
        static_cast<double>(
            probabilities_[b * classes + labels[static_cast<size_t>(b)]]),
        1e-12);
    sample_losses_.push_back(-std::log(p_true));
    total_loss -= std::log(p_true);
  }
  return total_loss / static_cast<double>(batch);
}

Tensor SoftmaxCrossEntropy::Backward() const {
  GEODP_CHECK(!probabilities_.empty()) << "Backward before Forward";
  const int64_t batch = probabilities_.dim(0);
  const int64_t classes = probabilities_.dim(1);
  Tensor grad = probabilities_;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int64_t b = 0; b < batch; ++b) {
    grad[b * classes + labels_[static_cast<size_t>(b)]] -= 1.0f;
    for (int64_t k = 0; k < classes; ++k) grad[b * classes + k] *= inv_batch;
  }
  return grad;
}

Tensor SoftmaxCrossEntropy::BackwardSum() const {
  GEODP_CHECK(!probabilities_.empty()) << "BackwardSum before Forward";
  const int64_t batch = probabilities_.dim(0);
  const int64_t classes = probabilities_.dim(1);
  Tensor grad = probabilities_;
  for (int64_t b = 0; b < batch; ++b) {
    grad[b * classes + labels_[static_cast<size_t>(b)]] -= 1.0f;
  }
  return grad;
}

double MeanSquaredError::Forward(const Tensor& predictions,
                                 const Tensor& targets) {
  GEODP_CHECK(SameShape(predictions, targets));
  predictions_ = predictions;
  targets_ = targets;
  double sum = 0.0;
  for (int64_t i = 0; i < predictions.numel(); ++i) {
    const double diff =
        static_cast<double>(predictions[i]) - static_cast<double>(targets[i]);
    sum += diff * diff;
  }
  return sum / static_cast<double>(predictions.numel());
}

Tensor MeanSquaredError::Backward() const {
  GEODP_CHECK(!predictions_.empty()) << "Backward before Forward";
  Tensor grad = predictions_;
  grad.SubInPlace(targets_);
  grad.ScaleInPlace(2.0f / static_cast<float>(grad.numel()));
  return grad;
}

}  // namespace geodp
