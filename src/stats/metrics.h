// Experiment metrics: direction / gradient MSE (paper Def. 4), model
// efficiency (Def. 3) and classification accuracy.

#ifndef GEODP_STATS_METRICS_H_
#define GEODP_STATS_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/spherical.h"
#include "tensor/tensor.h"

namespace geodp {

/// Mean squared L2 distance between perturbed and original angle vectors
/// over a set of trials (paper Def. 4).
double DirectionMse(const std::vector<SphericalCoordinates>& original,
                    const std::vector<SphericalCoordinates>& perturbed);

/// Mean squared L2 distance between perturbed and original gradients.
double GradientMse(const std::vector<Tensor>& original,
                   const std::vector<Tensor>& perturbed);

/// Model efficiency (Def. 3): squared distance of a model to a reference
/// optimum in flat parameter space.
double ModelEfficiency(const Tensor& model_flat, const Tensor& optimum_flat);

/// Fraction of correct argmax predictions given logits [B, K] and labels.
double AccuracyFromLogits(const Tensor& logits,
                          const std::vector<int64_t>& labels);

}  // namespace geodp

#endif  // GEODP_STATS_METRICS_H_
