// Model checkpointing: saves and restores a layer's parameters (by name
// and shape) using the tensor serialization format.

#ifndef GEODP_NN_CHECKPOINT_H_
#define GEODP_NN_CHECKPOINT_H_

#include <string>

#include "base/status.h"
#include "nn/module.h"

namespace geodp {

/// Writes all parameters of `model` to `path`. The file records each
/// parameter's name, so restoring into a structurally identical model is
/// verified by name and shape.
Status SaveCheckpoint(Layer& model, const std::string& path);

/// Restores parameters saved by SaveCheckpoint. Fails (without partial
/// mutation of values already validated) if names, order, count or shapes
/// do not match.
Status LoadCheckpoint(Layer& model, const std::string& path);

}  // namespace geodp

#endif  // GEODP_NN_CHECKPOINT_H_
