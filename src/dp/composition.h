// Composition theorems for (epsilon, delta)-DP: basic and advanced (strong)
// composition. Used to account for multi-iteration training when the RDP
// accountant is not in play, and as a cross-check against it.

#ifndef GEODP_DP_COMPOSITION_H_
#define GEODP_DP_COMPOSITION_H_

#include <cstdint>

namespace geodp {

/// A single (epsilon, delta)-DP guarantee.
struct PrivacyGuarantee {
  double epsilon = 0.0;
  double delta = 0.0;
};

/// Basic (sequential) composition of k identical releases:
/// (k*eps, k*delta)-DP.
PrivacyGuarantee BasicComposition(const PrivacyGuarantee& per_step,
                                  int64_t steps);

/// Advanced composition (Dwork, Rothblum, Vadhan): k releases of
/// (eps, delta)-DP satisfy (eps', k*delta + delta_slack)-DP with
///   eps' = sqrt(2 k ln(1/delta_slack)) * eps + k * eps * (e^eps - 1).
PrivacyGuarantee AdvancedComposition(const PrivacyGuarantee& per_step,
                                     int64_t steps, double delta_slack);

/// The tighter of basic and advanced composition at the same total delta
/// budget (advanced pays delta_slack extra).
PrivacyGuarantee BestComposition(const PrivacyGuarantee& per_step,
                                 int64_t steps, double delta_slack);

}  // namespace geodp

#endif  // GEODP_DP_COMPOSITION_H_
