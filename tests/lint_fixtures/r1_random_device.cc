// Fixture: seeded R1 violation — std::random_device in library code.
#include <random>

namespace geodp {

int NondeterministicSeed() {
  std::random_device device;
  return static_cast<int>(device());
}

}  // namespace geodp
