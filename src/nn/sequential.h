// Container chaining layers, plus the Model alias the rest of the library
// trains against.

#ifndef GEODP_NN_SEQUENTIAL_H_
#define GEODP_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace geodp {

/// Runs layers in order on Forward and in reverse on Backward.
class Sequential : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer);

  /// Constructs and appends a layer in place.
  template <typename LayerT, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<LayerT>(std::forward<Args>(args)...));
  }

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string name() const override { return name_.empty() ? "Sequential"
                                                           : name_; }

  size_t size() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_.at(i); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace geodp

#endif  // GEODP_NN_SEQUENTIAL_H_
