// Analytic Gaussian mechanism (Balle & Wang, ICML 2018): the *exact*
// calibration of Gaussian noise to (epsilon, delta)-DP, valid for every
// epsilon > 0 (the classic sqrt(2 ln(1.25/delta))/epsilon bound requires
// epsilon <= 1 and is loose). Used by the calibration utilities to squeeze
// more utility out of the same budget.

#ifndef GEODP_DP_ANALYTIC_GAUSSIAN_H_
#define GEODP_DP_ANALYTIC_GAUSSIAN_H_

#include "base/status.h"

namespace geodp {

/// Standard normal CDF Phi(x).
double StandardNormalCdf(double x);

/// The exact delta achieved by a Gaussian mechanism with noise multiplier
/// sigma (sensitivity 1) at privacy parameter epsilon:
///   delta = Phi(1/(2 sigma) - eps*sigma) - e^eps * Phi(-1/(2 sigma) - eps*sigma).
/// Precondition (checked): sigma > 0 and epsilon > 0.
double AnalyticGaussianDelta(double sigma, double epsilon);

/// Smallest noise multiplier sigma such that the Gaussian mechanism is
/// (epsilon, delta)-DP, found by bisection on AnalyticGaussianDelta
/// (monotone decreasing in sigma). Exact up to `tolerance` on delta.
/// Returns InvalidArgument on bad inputs and OutOfRange if no sigma below
/// the bracket ceiling satisfies the budget.
StatusOr<double> AnalyticGaussianSigma(double epsilon, double delta,
                                       double tolerance = 1e-12);

}  // namespace geodp

#endif  // GEODP_DP_ANALYTIC_GAUSSIAN_H_
