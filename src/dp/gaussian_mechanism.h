// Classic Gaussian mechanism (Dwork & Roth, Appendix A) and its
// (epsilon, delta) <-> sigma calibration, used by both DP-SGD and GeoDP.

#ifndef GEODP_DP_GAUSSIAN_MECHANISM_H_
#define GEODP_DP_GAUSSIAN_MECHANISM_H_

#include "base/rng.h"
#include "base/units.h"
#include "tensor/tensor.h"

namespace geodp {

/// Noise multiplier sigma such that adding N(0, (sigma * sensitivity)^2)
/// noise satisfies (epsilon, delta)-DP for epsilon <= 1:
///   sigma = sqrt(2 ln(1.25/delta)) / epsilon.
/// (The classic bound; used by the paper's sigma <-> epsilon table.)
double GaussianSigmaForEpsilonDelta(double epsilon, double delta);

/// Inverse of the calibration above: the epsilon obtained from a given
/// noise multiplier at a given delta.
double GaussianEpsilonForSigma(double sigma, double delta);

/// Parameters of a single Gaussian-mechanism release. Both fields are
/// strongly typed: swapping sensitivity for sigma is a silent privacy bug
/// a bare pair of doubles cannot catch.
struct GaussianMechanismOptions {
  Sensitivity l2_sensitivity{1.0};
  NoiseMultiplier noise_multiplier{1.0};  // sigma
};

/// Adds i.i.d. N(0, (sigma * sensitivity)^2) noise to scalars or vectors.
class GaussianMechanism {
 public:
  explicit GaussianMechanism(GaussianMechanismOptions options);

  /// Noise standard deviation sigma * sensitivity.
  double NoiseStddev() const;

  /// value + N(0, NoiseStddev()^2).
  double Perturb(double value, Rng& rng) const;

  /// Elementwise perturbation of a tensor.
  Tensor Perturb(const Tensor& value, Rng& rng) const;

  const GaussianMechanismOptions& options() const { return options_; }

 private:
  GaussianMechanismOptions options_;
};

}  // namespace geodp

#endif  // GEODP_DP_GAUSSIAN_MECHANISM_H_
