// Extension (not in the paper): adapt GeoDP's bounding factor beta to the
// observed concentration of clipped-gradient directions. The paper shows
// beta must be re-tuned per (d, B, sigma); this controller estimates the
// empirical angular range from a decayed min/max envelope of recent
// directions and sets beta = safety_factor * (covered range / full range),
// clamped to [floor, ceiling].
//
// CAVEAT: the envelope is computed from non-privatized directions, so a
// strict deployment must either allocate extra budget for it or tune beta
// on public data. The trainer documents this when the option is enabled;
// the benches use it only for the ablation study.

#ifndef GEODP_OPTIM_ADAPTIVE_BETA_H_
#define GEODP_OPTIM_ADAPTIVE_BETA_H_

#include <cstdint>
#include <vector>

#include "core/spherical.h"

namespace geodp {

/// Serializable snapshot of the adaptive-beta direction envelope.
struct AdaptiveBetaState {
  int64_t observations = 0;
  std::vector<double> min_angle;
  std::vector<double> max_angle;
};

/// Streaming beta estimator.
class AdaptiveBetaController {
 public:
  /// `decay` < 1 shrinks the envelope toward the mean each observation so
  /// stale extremes age out.
  AdaptiveBetaController(double floor, double ceiling,
                         double safety_factor = 1.5, double decay = 0.99);

  /// Feeds one observed direction (angles of the averaged clipped
  /// gradient).
  void Observe(const SphericalCoordinates& direction);

  /// Current bounding factor; returns the ceiling until the first
  /// observation.
  double CurrentBeta() const;

  int64_t observations() const { return observations_; }

  /// Checkpoint support: snapshot / restore the decayed envelope.
  AdaptiveBetaState ExportState() const;
  void ImportState(const AdaptiveBetaState& state);

 private:
  double floor_;
  double ceiling_;
  double safety_factor_;
  double decay_;
  int64_t observations_ = 0;
  std::vector<double> min_angle_;
  std::vector<double> max_angle_;
};

}  // namespace geodp

#endif  // GEODP_OPTIM_ADAPTIVE_BETA_H_
