// Group normalization (Wu & He, 2018). Unlike batch normalization it has
// no cross-sample dependence, so per-sample gradients stay well-defined —
// the standard normalization choice in DP-SGD practice.

#ifndef GEODP_NN_GROUP_NORM_H_
#define GEODP_NN_GROUP_NORM_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace geodp {

/// Normalizes [B, C, H, W] activations within per-sample channel groups,
/// then applies a learnable per-channel affine transform:
///   y = gamma * (x - mu_group) / sqrt(var_group + eps) + beta.
class GroupNorm : public Layer {
 public:
  /// `num_groups` must divide `channels`.
  GroupNorm(int64_t channels, int64_t num_groups, double epsilon = 1e-5);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string name() const override { return "GroupNorm"; }

  int64_t channels() const { return channels_; }
  int64_t num_groups() const { return num_groups_; }

 private:
  int64_t channels_;
  int64_t num_groups_;
  double epsilon_;
  Parameter gamma_;  // [C], init 1
  Parameter beta_;   // [C], init 0
  // Cached forward state.
  Tensor normalized_;           // x-hat, input shape
  std::vector<double> inv_std_;  // per (sample, group)
  std::vector<int64_t> input_shape_;
};

}  // namespace geodp

#endif  // GEODP_NN_GROUP_NORM_H_
