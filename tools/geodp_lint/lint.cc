#include "geodp_lint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace geodp {
namespace lint {
namespace {

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// One source line after comment/string stripping, plus the geodp annotations
// that apply to it.
struct Line {
  std::string code;                // literals replaced by "", comments removed
  std::vector<std::string> tags;   // "per-sample", "check-ok", "nolint:R1", ...
};

struct ParsedFile {
  std::vector<Line> lines;          // index 0 == line 1
  std::vector<Finding> annotation_findings;
};

// Parses the text of one `// geodp: ...` comment into tags; malformed
// annotations become ANN findings so a typo never silently disables a rule.
void ParseAnnotation(std::string_view text, const std::string& path,
                     int line_number, std::vector<std::string>& tags,
                     std::vector<Finding>& findings) {
  // First whitespace-delimited token is the tag; anything after it is a
  // free-text rationale.
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string_view::npos) begin = text.size();
  size_t end = text.find_first_of(" \t", begin);
  if (end == std::string_view::npos) end = text.size();
  const std::string token(text.substr(begin, end - begin));

  if (token == "per-sample" || token == "sensitivity-checked" ||
      token == "check-ok" || token == "cpuid-ok" || token == "raw-io-ok") {
    tags.push_back(token);
    return;
  }
  if (StartsWith(token, "nolint(") && EndsWith(token, ")")) {
    const std::string list = token.substr(7, token.size() - 8);
    std::istringstream stream(list);
    std::string rule;
    bool any = false;
    bool ok = true;
    while (std::getline(stream, rule, ',')) {
      if (rule == "R1" || rule == "R2" || rule == "R3" || rule == "R4" ||
          rule == "R5") {
        tags.push_back("nolint:" + rule);
        any = true;
      } else {
        ok = false;
      }
    }
    if (ok && any) return;
  }
  findings.push_back(
      {RuleId::kAnnotation, path, line_number,
       "unrecognized geodp annotation '" + token +
           "' (expected per-sample, sensitivity-checked, check-ok, "
           "cpuid-ok, raw-io-ok, or nolint(R1[,R2,...]))"});
}

// Strips comments and literals, collecting `// geodp:` annotations. An
// annotation on a pure-comment line applies to the next line.
ParsedFile ParseContent(const std::string& path, std::string_view content) {
  ParsedFile parsed;
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_terminator;  // ")delim\"" of the active raw string

  size_t pos = 0;
  int line_number = 0;
  while (pos <= content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    std::string_view raw = content.substr(pos, eol - pos);
    ++line_number;

    Line line;
    std::string& code = line.code;
    size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        const size_t close = raw.find("*/", i);
        if (close == std::string_view::npos) {
          i = raw.size();
        } else {
          i = close + 2;
          in_block_comment = false;
        }
        continue;
      }
      if (in_raw_string) {
        const size_t close = raw.find(raw_terminator, i);
        if (close == std::string_view::npos) {
          i = raw.size();
        } else {
          i = close + raw_terminator.size();
          in_raw_string = false;
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        std::string_view comment = raw.substr(i + 2);
        const size_t tag = comment.find("geodp:");
        // Prose mentioning qualified names ("geodp::Rng") is not an
        // annotation; require `geodp:` followed by a non-colon.
        if (tag != std::string_view::npos &&
            comment.find_first_not_of(" \t") == tag &&
            (tag + 6 >= comment.size() || comment[tag + 6] != ':')) {
          ParseAnnotation(comment.substr(tag + 6), path, line_number,
                          line.tags, parsed.annotation_findings);
        }
        break;  // rest of the line is comment
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < raw.size() && raw[i + 1] == '"' &&
          (i == 0 || !IsIdentChar(raw[i - 1]))) {
        const size_t open = raw.find('(', i + 2);
        if (open != std::string_view::npos) {
          raw_terminator.clear();
          raw_terminator += ')';
          raw_terminator.append(raw.substr(i + 2, open - i - 2));
          raw_terminator += '"';
          in_raw_string = true;
          i = open + 1;
          continue;
        }
      }
      // A ' directly after an identifier/digit is a C++14 digit separator
      // (1'000'000), not a character literal.
      if (c == '\'' && i > 0 && IsIdentChar(raw[i - 1])) {
        code += c;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < raw.size()) {
          if (raw[i] == '\\') {
            i += 2;
          } else if (raw[i] == quote) {
            ++i;
            break;
          } else {
            ++i;
          }
        }
        code += ' ';  // keep token boundaries intact
        continue;
      }
      code += c;
      ++i;
    }

    parsed.lines.push_back(std::move(line));
    pos = eol + 1;
    if (eol == content.size()) break;
  }

  // Move annotations on pure-comment lines down to the line they guard.
  for (size_t k = 0; k + 1 < parsed.lines.size(); ++k) {
    Line& current = parsed.lines[k];
    if (current.tags.empty()) continue;
    if (current.code.find_first_not_of(" \t") != std::string::npos) continue;
    Line& next = parsed.lines[k + 1];
    next.tags.insert(next.tags.end(), current.tags.begin(),
                     current.tags.end());
    current.tags.clear();
  }
  return parsed;
}

bool HasTag(const Line& line, std::string_view tag) {
  return std::find(line.tags.begin(), line.tags.end(), tag) !=
         line.tags.end();
}

bool Suppressed(const Line& line, RuleId rule) {
  return HasTag(line, std::string("nolint:") + RuleIdName(rule));
}

// Calls `visit(identifier, index_past_end)` for each identifier token.
template <typename Visitor>
void ForEachIdentifier(std::string_view code, Visitor&& visit) {
  size_t i = 0;
  while (i < code.size()) {
    if (IsIdentChar(code[i]) &&
        std::isdigit(static_cast<unsigned char>(code[i])) == 0) {
      size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      visit(code.substr(i, j - i), j);
      i = j;
    } else {
      ++i;
    }
  }
}

bool NextNonSpaceIsCall(std::string_view code, size_t from) {
  while (from < code.size() &&
         std::isspace(static_cast<unsigned char>(code[from])) != 0) {
    ++from;
  }
  return from < code.size() && code[from] == '(';
}

struct PathInfo {
  bool is_header = false;
  bool in_src = false;
  // R1: every deterministic-contract surface (library, CLIs, examples);
  // tests and benches may use local clocks and ad-hoc randomness.
  bool r1_applies = false;
  bool r2_applies = false;  // src/ outside src/clip/
  bool r3_applies = false;  // src/ckpt/, src/dp/, src/clip/, trainer*
  // The one place `// geodp: cpuid-ok` may authorize a cpu feature probe.
  bool in_simd_dispatch = false;  // src/base/simd/
  bool iostream_banned = false;
  // R5: raw file I/O is confined to src/base/io/ so every filesystem
  // touch gets retry, errno classification and fault-injection coverage.
  bool r5_applies = false;  // src/ outside src/base/io/
};

PathInfo ClassifyPath(const std::string& path) {
  PathInfo info;
  info.is_header = EndsWith(path, ".h");
  info.in_src = StartsWith(path, "src/");

  static constexpr std::array<std::string_view, 4> kR1Allowlist = {
      "src/base/rng.h", "src/base/rng.cc", "src/base/timer.h",
      "src/base/timer.cc"};
  const bool allowlisted =
      std::find(kR1Allowlist.begin(), kR1Allowlist.end(), path) !=
      kR1Allowlist.end();
  info.r1_applies = (info.in_src || StartsWith(path, "tools/") ||
                     StartsWith(path, "examples/")) &&
                    !allowlisted;

  info.r2_applies = info.in_src && !StartsWith(path, "src/clip/");
  info.in_simd_dispatch = StartsWith(path, "src/base/simd/");
  // src/clip/ joined R3 when ClipAndSum gained defined empty-lot behavior:
  // the clipping boundary sits on the trainer's Status path, so residual
  // aborts there must be annotated internal invariants.
  info.r3_applies = StartsWith(path, "src/ckpt/") ||
                    StartsWith(path, "src/dp/") ||
                    StartsWith(path, "src/clip/") ||
                    StartsWith(path, "src/optim/trainer");
  info.iostream_banned = info.in_src && path != "src/base/check.h";
  info.r5_applies = info.in_src && !StartsWith(path, "src/base/io/");
  return info;
}

// R1: identifiers that are nondeterministic by construction. The *_call
// set additionally requires a call so e.g. a variable named `time` in a
// declaration does not trip the rule.
constexpr std::array<std::string_view, 11> kNondetIdentifiers = {
    "random_device",  "mt19937",        "mt19937_64",
    "minstd_rand",    "minstd_rand0",   "default_random_engine",
    "knuth_b",        "ranlux24",       "ranlux24_base",
    "ranlux48",       "ranlux48_base"};
constexpr std::array<std::string_view, 5> kNondetCalls = {
    "rand", "srand", "time", "clock", "gettimeofday"};

// R1: cpu feature probes make behavior machine-dependent (a different host
// dispatches different kernels). Allowed only in the SIMD dispatch layer
// under an explicit `// geodp: cpuid-ok` annotation, so every probe stays
// auditable.
constexpr std::array<std::string_view, 8> kCpuidIdentifiers = {
    "__builtin_cpu_supports", "__builtin_cpu_init",
    "__get_cpuid",            "__get_cpuid_count",
    "__cpuid",                "__cpuid_count",
    "_xgetbv",                "_may_i_use_cpu_feature"};

// "ghost_norm" covers the ghost-clipping bookkeeping (per-sample squared
// gradient norms computed without materializing the gradient): the values
// are exactly as privacy-sensitive as the gradients they summarize.
constexpr std::array<std::string_view, 4> kPerSamplePatterns = {
    "per_sample", "per_example", "sample_grad", "ghost_norm"};

constexpr std::array<std::string_view, 4> kAbortCalls = {"abort", "_Exit",
                                                         "quick_exit", "exit"};

// R5: direct file-opening entry points. The stream types trip on any
// mention (a member declaration is already a bypass of the I/O substrate);
// the C functions must be calls; bare `open` must be a global-namespace
// call (`::open`) so methods like `writer.Open()` stay legal.
constexpr std::array<std::string_view, 3> kRawIoStreamTypes = {
    "ofstream", "ifstream", "fstream"};
constexpr std::array<std::string_view, 2> kRawIoCalls = {"fopen", "freopen"};

void CheckLine(const std::string& path, const PathInfo& info, const Line& line,
               int line_number, std::vector<Finding>& findings) {
  const std::string_view code = line.code;
  bool r1_hit = false, r2_hit = false, r3_hit = false, r5_hit = false;

  ForEachIdentifier(code, [&](std::string_view ident, size_t past_end) {
    if (info.r1_applies && !r1_hit &&
        !Suppressed(line, RuleId::kR1Nondeterminism)) {
      const bool named = std::find(kNondetIdentifiers.begin(),
                                   kNondetIdentifiers.end(),
                                   ident) != kNondetIdentifiers.end();
      const bool called =
          std::find(kNondetCalls.begin(), kNondetCalls.end(), ident) !=
              kNondetCalls.end() &&
          NextNonSpaceIsCall(code, past_end);
      const size_t start = past_end - ident.size();
      const bool clock_now = ident == "now" &&
                             NextNonSpaceIsCall(code, past_end) && start >= 2 &&
                             code[start - 1] == ':' && code[start - 2] == ':';
      const bool cpuid =
          std::find(kCpuidIdentifiers.begin(), kCpuidIdentifiers.end(),
                    ident) != kCpuidIdentifiers.end() &&
          !(info.in_simd_dispatch && HasTag(line, "cpuid-ok"));
      if (named || called || clock_now || cpuid) {
        r1_hit = true;
        findings.push_back(
            {RuleId::kR1Nondeterminism, path, line_number,
             cpuid ? "cpu feature probe '" + std::string(ident) +
                         "' — hardware dispatch is only allowed in "
                         "src/base/simd/ under `// geodp: cpuid-ok`"
                   : "nondeterministic source '" + std::string(ident) +
                         "' — use the seeded xoshiro256++ substreams in "
                         "src/base/rng.h (or geodp::Timer for wall-clock)"});
      }
    }
    if (info.r2_applies && !r2_hit &&
        !Suppressed(line, RuleId::kR2PrivacyBoundary) &&
        !HasTag(line, "per-sample") && !HasTag(line, "sensitivity-checked")) {
      for (std::string_view pattern : kPerSamplePatterns) {
        if (ident.find(pattern) != std::string_view::npos) {
          r2_hit = true;
          findings.push_back(
              {RuleId::kR2PrivacyBoundary, path, line_number,
               "per-sample gradient identifier '" + std::string(ident) +
                   "' outside src/clip/ — clip before aggregation and "
                   "annotate `// geodp: per-sample` (transport) or "
                   "`// geodp: sensitivity-checked` (post-clip use)"});
          break;
        }
      }
    }
    if (info.r3_applies && !r3_hit &&
        !Suppressed(line, RuleId::kR3CheckAbort) &&
        !HasTag(line, "check-ok")) {
      const bool check = StartsWith(ident, "GEODP_CHECK");
      const bool aborts =
          std::find(kAbortCalls.begin(), kAbortCalls.end(), ident) !=
              kAbortCalls.end() &&
          NextNonSpaceIsCall(code, past_end);
      if (check || aborts) {
        r3_hit = true;
        findings.push_back(
            {RuleId::kR3CheckAbort, path, line_number,
             "'" + std::string(ident) +
                 "' in a Status-returning library path — return "
                 "geodp::Status, or annotate a true internal invariant "
                 "with `// geodp: check-ok`"});
      }
    }
    // Preprocessor lines are exempt: `#include <fstream>` mentions the
    // type without opening anything — only uses are findings.
    const bool preprocessor =
        code.find_first_not_of(" \t") != std::string_view::npos &&
        code[code.find_first_not_of(" \t")] == '#';
    if (info.r5_applies && !r5_hit && !preprocessor &&
        !Suppressed(line, RuleId::kR5RawIo) && !HasTag(line, "raw-io-ok")) {
      const bool stream_type =
          std::find(kRawIoStreamTypes.begin(), kRawIoStreamTypes.end(),
                    ident) != kRawIoStreamTypes.end();
      const bool c_call =
          std::find(kRawIoCalls.begin(), kRawIoCalls.end(), ident) !=
              kRawIoCalls.end() &&
          NextNonSpaceIsCall(code, past_end);
      const size_t start = past_end - ident.size();
      const bool global_open =
          ident == "open" && NextNonSpaceIsCall(code, past_end) &&
          start >= 2 && code[start - 1] == ':' && code[start - 2] == ':' &&
          (start < 3 || !IsIdentChar(code[start - 3]));
      if (stream_type || c_call || global_open) {
        r5_hit = true;
        findings.push_back(
            {RuleId::kR5RawIo, path, line_number,
             "raw file I/O '" + std::string(ident) +
                 "' outside src/base/io/ — use ReadFileWithRetry / "
                 "AtomicWriteFile / RetryingWriter (base/io/file_io.h) "
                 "so the write gets retry, errno classification and "
                 "fault-injection coverage, or annotate "
                 "`// geodp: raw-io-ok` with a rationale"});
      }
    }
  });

  // R4b: using-directives in headers leak into every includer.
  if (info.is_header && !Suppressed(line, RuleId::kR4HeaderHygiene)) {
    ForEachIdentifier(code, [&](std::string_view ident, size_t past_end) {
      if (ident != "using") return;
      size_t from = past_end;
      while (from < code.size() &&
             std::isspace(static_cast<unsigned char>(code[from])) != 0) {
        ++from;
      }
      if (StartsWith(code.substr(from), "namespace")) {
        findings.push_back({RuleId::kR4HeaderHygiene, path, line_number,
                            "`using namespace` in a header leaks into every "
                            "translation unit that includes it"});
      }
    });
  }

  // R4c: <iostream> drags static initializers into library code.
  if (info.iostream_banned && !Suppressed(line, RuleId::kR4HeaderHygiene)) {
    const size_t hash = code.find('#');
    if (hash != std::string::npos &&
        code.find("include", hash) != std::string::npos &&
        code.find("<iostream>", hash) != std::string::npos) {
      findings.push_back({RuleId::kR4HeaderHygiene, path, line_number,
                          "<iostream> outside logging/CLI/tools — library "
                          "code logs via base/check.h or returns Status"});
    }
  }
}

void CheckHeaderGuard(const std::string& path, const ParsedFile& parsed,
                      std::vector<Finding>& findings) {
  for (const Line& line : parsed.lines) {
    const size_t hash = line.code.find('#');
    if (hash == std::string::npos) continue;
    const std::string_view directive =
        std::string_view(line.code).substr(hash);
    if (directive.find("pragma") != std::string_view::npos &&
        directive.find("once") != std::string_view::npos) {
      return;
    }
    if (directive.find("ifndef") != std::string_view::npos) return;
  }
  findings.push_back({RuleId::kR4HeaderHygiene, path, 1,
                      "header has neither an include guard (#ifndef) nor "
                      "#pragma once"});
}

}  // namespace

const char* RuleIdName(RuleId rule) {
  switch (rule) {
    case RuleId::kR1Nondeterminism:
      return "R1";
    case RuleId::kR2PrivacyBoundary:
      return "R2";
    case RuleId::kR3CheckAbort:
      return "R3";
    case RuleId::kR4HeaderHygiene:
      return "R4";
    case RuleId::kR5RawIo:
      return "R5";
    case RuleId::kAnnotation:
      return "ANN";
  }
  return "?";
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": ["
      << RuleIdName(finding.rule) << "] " << finding.message;
  return out.str();
}

std::vector<Finding> LintContent(const std::string& path,
                                 std::string_view content) {
  const ParsedFile parsed = ParseContent(path, content);
  const PathInfo info = ClassifyPath(path);

  std::vector<Finding> findings = parsed.annotation_findings;
  if (info.is_header) CheckHeaderGuard(path, parsed, findings);
  for (size_t k = 0; k < parsed.lines.size(); ++k) {
    CheckLine(path, info, parsed.lines[k], static_cast<int>(k) + 1, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return RuleIdName(a.rule) < RuleIdName(b.rule);
            });
  return findings;
}

StatusOr<std::vector<Finding>> LintFile(const std::string& disk_path,
                                        const std::string& path) {
  std::ifstream in(disk_path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + disk_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintContent(path, buffer.str());
}

StatusOr<std::vector<Finding>> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  static constexpr std::array<std::string_view, 5> kTopDirs = {
      "src", "tools", "examples", "bench", "tests"};

  std::vector<Finding> all;
  std::error_code ec;
  for (std::string_view top : kTopDirs) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, ec), end;
    if (ec) return Status::Internal("cannot scan " + dir.string());
    for (; it != end; it.increment(ec)) {
      if (ec) return Status::Internal("scan failed under " + dir.string());
      const fs::path& entry = it->path();
      const std::string name = entry.filename().string();
      if (it->is_directory()) {
        if (name == "lint_fixtures" || StartsWith(name, "build") ||
            StartsWith(name, ".")) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!EndsWith(name, ".h") && !EndsWith(name, ".cc")) continue;
      const std::string rel =
          fs::relative(entry, root, ec).generic_string();
      if (ec) return Status::Internal("relative path failed: " +
                                      entry.string());
      StatusOr<std::vector<Finding>> findings =
          LintFile(entry.string(), rel);
      if (!findings.ok()) return findings.status();
      all.insert(all.end(), findings.value().begin(),
                 findings.value().end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return RuleIdName(a.rule) < RuleIdName(b.rule);
  });
  return all;
}

}  // namespace lint
}  // namespace geodp
