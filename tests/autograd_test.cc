// Tests for the autograd tape: finite-difference checks on every op and
// cross-validation of the hand-written nn:: backward passes against the
// mechanically differentiated graph.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/graph.h"
#include "base/rng.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "nn/sequential.h"
#include "nn/activations.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace autograd {
namespace {

// Finite-difference check of d(build(g, param))/d(param) at `point`.
// `build` must construct the graph from a parameter Var and return a
// scalar output Var.
template <typename BuildFn>
void CheckParameterGradient(const Tensor& point, BuildFn build,
                            double tolerance = 2e-2, double eps = 1e-3) {
  Graph g;
  Var p = g.Parameter(point);
  Var out = build(g, p);
  g.Backward(out);
  const Tensor analytic = g.grad(p);

  for (int64_t i = 0; i < point.numel(); ++i) {
    Tensor up = point, down = point;
    up[i] += static_cast<float>(eps);
    down[i] -= static_cast<float>(eps);
    Graph gu, gd;
    const double fu =
        gu.value(build(gu, gu.Parameter(up)))[0];
    const double fd =
        gd.value(build(gd, gd.Parameter(down)))[0];
    const double numeric = (fu - fd) / (2.0 * eps);
    EXPECT_NEAR(numeric, analytic[i], tolerance) << "coordinate " << i;
  }
}

TEST(AutogradTest, SumOfParameterIsOnes) {
  Graph g;
  Var p = g.Parameter(Tensor::Vector({1, 2, 3}));
  g.Backward(Sum(g, p));
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(g.grad(p)[i], 1.0f);
}

TEST(AutogradTest, AddSubGradients) {
  Rng rng(1);
  const Tensor x = Tensor::Randn({4}, rng);
  CheckParameterGradient(x, [](Graph& g, Var p) {
    Var c = g.Input(Tensor::Vector({0.5f, -1.0f, 2.0f, 0.0f}));
    return Sum(g, Sub(g, Add(g, p, c), p));  // == Sum(c): zero gradient
  });
  CheckParameterGradient(x, [](Graph& g, Var p) {
    Var c = g.Input(Tensor::Vector({0.5f, -1.0f, 2.0f, 0.0f}));
    return Sum(g, Add(g, p, c));
  });
}

TEST(AutogradTest, MulGradient) {
  Rng rng(2);
  const Tensor x = Tensor::Randn({5}, rng);
  CheckParameterGradient(x, [](Graph& g, Var p) {
    return Sum(g, Mul(g, p, p));  // d/dx sum(x^2) = 2x
  });
}

TEST(AutogradTest, ScaleAndMeanGradient) {
  Rng rng(3);
  const Tensor x = Tensor::Randn({6}, rng);
  CheckParameterGradient(x, [](Graph& g, Var p) {
    return MeanOp(g, Scale(g, p, 3.0f));
  });
}

TEST(AutogradTest, MatmulGradient) {
  Rng rng(4);
  const Tensor w = Tensor::Randn({3, 4}, rng);
  const Tensor x_value = Tensor::Randn({2, 3}, rng);
  CheckParameterGradient(w, [&](Graph& g, Var p) {
    Var x = g.Input(x_value);
    return Sum(g, Matmul(g, x, p));
  });
}

TEST(AutogradTest, MatmulNTMatchesMatmulTranspose) {
  Rng rng(5);
  Graph g;
  Var a = g.Parameter(Tensor::Randn({2, 3}, rng));
  Var b = g.Parameter(Tensor::Randn({4, 3}, rng));
  Var nt = MatmulNT(g, a, b);
  EXPECT_EQ(g.value(nt).dim(0), 2);
  EXPECT_EQ(g.value(nt).dim(1), 4);
  const Tensor direct = Matmul(g.value(a), Transpose(g.value(b)));
  EXPECT_TRUE(AllClose(g.value(nt), direct));
}

TEST(AutogradTest, MatmulNTGradient) {
  Rng rng(6);
  const Tensor w = Tensor::Randn({4, 3}, rng);
  const Tensor x_value = Tensor::Randn({2, 3}, rng);
  CheckParameterGradient(w, [&](Graph& g, Var p) {
    Var x = g.Input(x_value);
    return Sum(g, MatmulNT(g, x, p));
  });
}

TEST(AutogradTest, AddRowBiasGradient) {
  Rng rng(7);
  const Tensor bias = Tensor::Randn({3}, rng);
  const Tensor m_value = Tensor::Randn({4, 3}, rng);
  CheckParameterGradient(bias, [&](Graph& g, Var p) {
    Var m = g.Input(m_value);
    return Sum(g, AddRowBias(g, m, p));
  });
}

TEST(AutogradTest, ActivationGradients) {
  Rng rng(8);
  Tensor x = Tensor::Randn({5}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.3f;  // keep off the ReLU kink
  }
  CheckParameterGradient(x, [](Graph& g, Var p) {
    return Sum(g, Relu(g, p));
  });
  CheckParameterGradient(x, [](Graph& g, Var p) {
    return Sum(g, TanhOp(g, p));
  });
  CheckParameterGradient(x, [](Graph& g, Var p) {
    return Sum(g, SigmoidOp(g, p));
  });
}

TEST(AutogradTest, SoftmaxCrossEntropyGradient) {
  Rng rng(9);
  const Tensor logits = Tensor::Randn({3, 4}, rng);
  const std::vector<int64_t> labels = {0, 2, 3};
  CheckParameterGradient(
      logits,
      [&](Graph& g, Var p) { return SoftmaxCrossEntropyOp(g, p, labels); },
      /*tolerance=*/5e-3);
}

TEST(AutogradTest, ReusedVariableAccumulatesGradient) {
  // f(x) = sum(x*x) + sum(x): grad = 2x + 1.
  Graph g;
  const Tensor x = Tensor::Vector({1.0f, -2.0f});
  Var p = g.Parameter(x);
  Var out = Add(g, Sum(g, Mul(g, p, p)), Sum(g, p));
  g.Backward(out);
  EXPECT_NEAR(g.grad(p)[0], 3.0f, 1e-5);
  EXPECT_NEAR(g.grad(p)[1], -3.0f, 1e-5);
}

TEST(AutogradTest, InputsGetNoGradient) {
  Graph g;
  Var x = g.Input(Tensor::Vector({5.0f}));
  Var p = g.Parameter(Tensor::Vector({2.0f}));
  g.Backward(Sum(g, Mul(g, x, p)));
  EXPECT_EQ(g.grad(x)[0], 0.0f);  // untouched
  EXPECT_NEAR(g.grad(p)[0], 5.0f, 1e-6);
}

// --- Cross-validation against the hand-written nn:: layers ---

TEST(AutogradCrossCheckTest, LinearLayerMatchesGraph) {
  Rng rng(10);
  Linear layer(5, 3, rng);
  const Tensor x = Tensor::Randn({4, 5}, rng);
  const std::vector<int64_t> labels = {0, 1, 2, 0};

  // Hand-written path.
  SoftmaxCrossEntropy loss;
  const auto params = layer.Parameters();
  ZeroGradients(params);
  const double manual_loss = loss.Forward(layer.Forward(x), labels);
  layer.Backward(loss.Backward());
  const Tensor manual_dw = params[0]->grad;
  const Tensor manual_db = params[1]->grad;

  // Autograd path with identical weights.
  Graph g;
  Var gx = g.Input(x);
  Var gw = g.Parameter(params[0]->value);
  Var gb = g.Parameter(params[1]->value);
  Var logits = AddRowBias(g, MatmulNT(g, gx, gw), gb);
  Var out = SoftmaxCrossEntropyOp(g, logits, labels);
  const double graph_loss = g.value(out)[0];
  g.Backward(out);

  EXPECT_NEAR(manual_loss, graph_loss, 1e-5);
  EXPECT_LT(MaxAbsDiff(manual_dw, g.grad(gw)), 1e-5);
  EXPECT_LT(MaxAbsDiff(manual_db, g.grad(gb)), 1e-5);
}

TEST(AutogradCrossCheckTest, TwoLayerMlpMatchesGraph) {
  Rng rng(11);
  Sequential net;
  net.Emplace<Linear>(6, 5, rng);
  net.Emplace<Tanh>();
  net.Emplace<Linear>(5, 3, rng);
  const Tensor x = Tensor::Randn({3, 6}, rng);
  const std::vector<int64_t> labels = {2, 0, 1};

  SoftmaxCrossEntropy loss;
  const auto params = net.Parameters();
  ZeroGradients(params);
  const double manual_loss = loss.Forward(net.Forward(x), labels);
  net.Backward(loss.Backward());
  const Tensor manual_grads = FlattenGradients(params);

  Graph g;
  Var gx = g.Input(x);
  Var w1 = g.Parameter(params[0]->value);
  Var b1 = g.Parameter(params[1]->value);
  Var w2 = g.Parameter(params[2]->value);
  Var b2 = g.Parameter(params[3]->value);
  Var hidden = TanhOp(g, AddRowBias(g, MatmulNT(g, gx, w1), b1));
  Var logits = AddRowBias(g, MatmulNT(g, hidden, w2), b2);
  Var out = SoftmaxCrossEntropyOp(g, logits, labels);
  const double graph_loss = g.value(out)[0];
  g.Backward(out);

  EXPECT_NEAR(manual_loss, graph_loss, 1e-5);
  std::vector<Tensor> graph_grads = {g.grad(w1), g.grad(b1), g.grad(w2),
                                     g.grad(b2)};
  int64_t offset = 0;
  for (size_t i = 0; i < graph_grads.size(); ++i) {
    for (int64_t j = 0; j < graph_grads[i].numel(); ++j) {
      EXPECT_NEAR(manual_grads[offset + j], graph_grads[i][j], 1e-5)
          << "param " << i << " index " << j;
    }
    offset += graph_grads[i].numel();
  }
}

}  // namespace
}  // namespace autograd
}  // namespace geodp
