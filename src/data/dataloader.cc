#include "data/dataloader.h"

#include <numeric>

#include "base/check.h"

namespace geodp {

BatchSampler::BatchSampler(int64_t dataset_size, int64_t batch_size,
                           uint64_t seed, bool shuffle)
    : dataset_size_(dataset_size),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  GEODP_CHECK_GT(dataset_size_, 0);
  GEODP_CHECK_GT(batch_size_, 0);
  order_.resize(static_cast<size_t>(dataset_size_));
  std::iota(order_.begin(), order_.end(), 0);
  StartEpoch();
}

void BatchSampler::StartEpoch() {
  if (shuffle_) rng_.Shuffle(order_);
  cursor_ = 0;
}

std::vector<int64_t> BatchSampler::NextBatch() {
  // Reshuffle only at batch boundaries: crossing an epoch edge mid-batch
  // would reshuffle the permutation while part of it is already in the
  // batch, so an example could be drawn twice. A duplicated example
  // contributes its clipped gradient twice, breaking the sensitivity-C
  // bound the noise is calibrated to. If fewer than batch_size indices
  // remain, the epoch tail is dropped (batches stay exactly batch_size,
  // matching the sensitivity analysis; the tail rejoins the next shuffle).
  if (cursor_ + batch_size_ > dataset_size_) StartEpoch();
  const auto first = order_.begin() + static_cast<int64_t>(cursor_);
  std::vector<int64_t> batch(first, first + batch_size_);
  cursor_ += batch_size_;
  return batch;
}

PoissonSampler::PoissonSampler(int64_t dataset_size, double sampling_rate,
                               uint64_t seed)
    : dataset_size_(dataset_size), sampling_rate_(sampling_rate), rng_(seed) {
  GEODP_CHECK_GT(dataset_size_, 0);
  GEODP_CHECK(sampling_rate_ > 0.0 && sampling_rate_ <= 1.0);
}

std::vector<int64_t> PoissonSampler::NextBatch() {
  std::vector<int64_t> batch;
  for (int64_t i = 0; i < dataset_size_; ++i) {
    if (rng_.Uniform() < sampling_rate_) batch.push_back(i);
  }
  return batch;
}

}  // namespace geodp
