#include "optim/adaptive_beta.h"

#include <algorithm>

#include "base/check.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

AdaptiveBetaController::AdaptiveBetaController(double floor, double ceiling,
                                               double safety_factor,
                                               double decay)
    : floor_(floor),
      ceiling_(ceiling),
      safety_factor_(safety_factor),
      decay_(decay) {
  GEODP_CHECK_GT(floor_, 0.0);
  GEODP_CHECK_GE(ceiling_, floor_);
  GEODP_CHECK_LE(ceiling_, 1.0);
  GEODP_CHECK_GT(safety_factor_, 0.0);
  GEODP_CHECK(decay_ > 0.0 && decay_ <= 1.0);
}

void AdaptiveBetaController::Observe(const SphericalCoordinates& direction) {
  const size_t n = direction.angles.size();
  GEODP_CHECK_GT(n, 0u);
  if (min_angle_.empty()) {
    min_angle_ = direction.angles;
    max_angle_ = direction.angles;
  }
  GEODP_CHECK_EQ(min_angle_.size(), n);
  for (size_t z = 0; z < n; ++z) {
    const double a = direction.angles[z];
    // Shrink the envelope toward its center, then extend to cover `a`.
    const double center = 0.5 * (min_angle_[z] + max_angle_[z]);
    min_angle_[z] = center + decay_ * (min_angle_[z] - center);
    max_angle_[z] = center + decay_ * (max_angle_[z] - center);
    min_angle_[z] = std::min(min_angle_[z], a);
    max_angle_[z] = std::max(max_angle_[z], a);
  }
  ++observations_;
}

AdaptiveBetaState AdaptiveBetaController::ExportState() const {
  AdaptiveBetaState state;
  state.observations = observations_;
  state.min_angle = min_angle_;
  state.max_angle = max_angle_;
  return state;
}

void AdaptiveBetaController::ImportState(const AdaptiveBetaState& state) {
  GEODP_CHECK_GE(state.observations, 0);
  GEODP_CHECK_EQ(state.min_angle.size(), state.max_angle.size());
  observations_ = state.observations;
  min_angle_ = state.min_angle;
  max_angle_ = state.max_angle;
}

double AdaptiveBetaController::CurrentBeta() const {
  if (observations_ == 0) return ceiling_;
  double mean_ratio = 0.0;
  const size_t n = min_angle_.size();
  for (size_t z = 0; z < n; ++z) {
    const double full_range = (z + 1 < n) ? kPi : 2.0 * kPi;
    mean_ratio += (max_angle_[z] - min_angle_[z]) / full_range;
  }
  mean_ratio /= static_cast<double>(n);
  return std::clamp(safety_factor_ * mean_ratio, floor_, ceiling_);
}

}  // namespace geodp
