// Tests for the DP substrate: Gaussian/Laplace mechanisms, composition
// theorems and the RDP accountant.

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "dp/composition.h"
#include "dp/gaussian_mechanism.h"
#include "dp/laplace_mechanism.h"
#include "dp/rdp_accountant.h"
#include "stats/summary.h"

namespace geodp {
namespace {

TEST(GaussianCalibrationTest, SigmaFormula) {
  const double sigma = GaussianSigmaForEpsilonDelta(1.0, 1e-5);
  EXPECT_NEAR(sigma, std::sqrt(2.0 * std::log(1.25e5)), 1e-9);
}

TEST(GaussianCalibrationTest, RoundTrip) {
  for (double eps : {0.1, 1.0, 4.9, 15.3}) {
    const double sigma = GaussianSigmaForEpsilonDelta(eps, 1e-5);
    EXPECT_NEAR(GaussianEpsilonForSigma(sigma, 1e-5), eps, 1e-9);
  }
}

TEST(GaussianCalibrationTest, PaperSigmaEpsilonTable) {
  // Paper Fig. 3 caption: sigma in {1e-4,...,10} corresponds to epsilon in
  // {484.5, 153.2, 48.5, 15.3, 4.9, 1.5} at delta=1e-5 — i.e. the classic
  // calibration evaluated at sigma in {1e-2, ..., 10} after the paper's
  // sensitivity conventions. We check the monotone mapping and two anchors.
  EXPECT_NEAR(GaussianEpsilonForSigma(1.0, 1e-5), 4.85, 0.05);
  EXPECT_NEAR(GaussianEpsilonForSigma(10.0, 1e-5), 0.485, 0.005);
  EXPECT_GT(GaussianEpsilonForSigma(0.1, 1e-5),
            GaussianEpsilonForSigma(1.0, 1e-5));
}

TEST(GaussianMechanismTest, StddevAndMoments) {
  GaussianMechanism mech({.l2_sensitivity = Sensitivity(2.0),
                          .noise_multiplier = NoiseMultiplier(1.5)});
  EXPECT_DOUBLE_EQ(mech.NoiseStddev(), 3.0);
  Rng rng(1);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(mech.Perturb(10.0, rng));
  EXPECT_NEAR(stat.mean(), 10.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.05);
}

TEST(GaussianMechanismTest, TensorPerturbShape) {
  GaussianMechanism mech({.l2_sensitivity = Sensitivity(1.0),
                          .noise_multiplier = NoiseMultiplier(0.0)});
  Rng rng(2);
  const Tensor t = Tensor::Vector({1, 2, 3});
  const Tensor noisy = mech.Perturb(t, rng);
  EXPECT_EQ(noisy.numel(), 3);
  EXPECT_EQ(noisy[1], 2.0f);  // sigma 0 -> unchanged
}

TEST(LaplaceMechanismTest, ScaleAndMoments) {
  LaplaceMechanism mech({.l1_sensitivity = 2.0, .epsilon = 0.5});
  EXPECT_DOUBLE_EQ(mech.Scale(), 4.0);
  Rng rng(3);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(mech.Perturb(0.0, rng));
  EXPECT_NEAR(stat.mean(), 0.0, 0.1);
  // Var of Laplace(b) is 2 b^2 = 32.
  EXPECT_NEAR(stat.variance(), 32.0, 1.5);
}

TEST(LaplaceMechanismTest, TensorPerturb) {
  LaplaceMechanism mech({.l1_sensitivity = 1.0, .epsilon = 1.0});
  Rng rng(4);
  const Tensor t({100});
  const Tensor noisy = mech.Perturb(t, rng);
  EXPECT_GT(noisy.L2Norm(), 0.0);
}

TEST(CompositionTest, BasicComposition) {
  const PrivacyGuarantee total = BasicComposition({0.1, 1e-6}, 100);
  EXPECT_NEAR(total.epsilon, 10.0, 1e-9);
  EXPECT_NEAR(total.delta, 1e-4, 1e-12);
}

TEST(CompositionTest, AdvancedBeatsBasicForManySteps) {
  const PrivacyGuarantee per_step{0.01, 0.0};
  const PrivacyGuarantee basic = BasicComposition(per_step, 10000);
  const PrivacyGuarantee advanced =
      AdvancedComposition(per_step, 10000, 1e-5);
  EXPECT_LT(advanced.epsilon, basic.epsilon);
}

TEST(CompositionTest, BasicBeatsAdvancedForFewSteps) {
  const PrivacyGuarantee per_step{0.01, 0.0};
  const PrivacyGuarantee best = BestComposition(per_step, 2, 1e-5);
  EXPECT_NEAR(best.epsilon, 0.02, 1e-12);  // basic wins
}

TEST(CompositionTest, AdvancedFormula) {
  const PrivacyGuarantee per_step{0.1, 1e-7};
  const PrivacyGuarantee total = AdvancedComposition(per_step, 100, 1e-5);
  const double expected =
      std::sqrt(2.0 * 100.0 * std::log(1e5)) * 0.1 +
      100.0 * 0.1 * (std::exp(0.1) - 1.0);
  EXPECT_NEAR(total.epsilon, expected, 1e-9);
  EXPECT_NEAR(total.delta, 100.0 * 1e-7 + 1e-5, 1e-15);
}

TEST(RdpTest, GaussianRdpFormula) {
  EXPECT_DOUBLE_EQ(GaussianRdp(2.0, 8.0), 1.0);
  EXPECT_DOUBLE_EQ(GaussianRdp(1.0, 2.0), 1.0);
}

TEST(RdpTest, SubsampledZeroRateIsFree) {
  EXPECT_DOUBLE_EQ(SubsampledGaussianRdp(1.0, 0.0, 8), 0.0);
}

TEST(RdpTest, SubsampledFullRateEqualsGaussian) {
  EXPECT_DOUBLE_EQ(SubsampledGaussianRdp(1.5, 1.0, 8),
                   GaussianRdp(1.5, 8.0));
}

TEST(RdpTest, SubsamplingAmplifiesPrivacy) {
  for (int64_t alpha : {2, 4, 16, 64}) {
    const double subsampled = SubsampledGaussianRdp(1.0, 0.01, alpha);
    const double full = GaussianRdp(1.0, static_cast<double>(alpha));
    EXPECT_LT(subsampled, full) << "alpha=" << alpha;
  }
}

TEST(RdpTest, SubsampledRdpIncreasesWithRate) {
  const double lo = SubsampledGaussianRdp(1.0, 0.01, 8);
  const double hi = SubsampledGaussianRdp(1.0, 0.1, 8);
  EXPECT_LT(lo, hi);
}

TEST(RdpTest, SubsampledRdpDecreasesWithSigma) {
  const double noisy = SubsampledGaussianRdp(4.0, 0.05, 8);
  const double less_noisy = SubsampledGaussianRdp(0.5, 0.05, 8);
  EXPECT_LT(noisy, less_noisy);
}

TEST(RdpAccountantTest, DefaultOrdersStartAtTwo) {
  const auto orders = RdpAccountant::DefaultOrders();
  EXPECT_EQ(orders.front(), 2);
  EXPECT_EQ(orders.back(), 1024);
}

TEST(RdpAccountantTest, EpsilonGrowsWithSteps) {
  RdpAccountant a, b;
  a.AddSubsampledGaussianSteps(NoiseMultiplier(1.0), SamplingRate(0.01), 100);
  b.AddSubsampledGaussianSteps(NoiseMultiplier(1.0), SamplingRate(0.01), 1000);
  EXPECT_LT(a.GetEpsilon(Delta(1e-5)), b.GetEpsilon(Delta(1e-5)));
}

TEST(RdpAccountantTest, EpsilonShrinksWithSigma) {
  RdpAccountant a, b;
  a.AddSubsampledGaussianSteps(NoiseMultiplier(0.5), SamplingRate(0.01), 100);
  b.AddSubsampledGaussianSteps(NoiseMultiplier(4.0), SamplingRate(0.01), 100);
  EXPECT_GT(a.GetEpsilon(Delta(1e-5)), b.GetEpsilon(Delta(1e-5)));
}

TEST(RdpAccountantTest, StepsCompose) {
  RdpAccountant once, twice;
  once.AddSubsampledGaussianSteps(NoiseMultiplier(1.0), SamplingRate(0.02),
                                  200);
  twice.AddSubsampledGaussianSteps(NoiseMultiplier(1.0), SamplingRate(0.02),
                                   100);
  twice.AddSubsampledGaussianSteps(NoiseMultiplier(1.0), SamplingRate(0.02),
                                   100);
  EXPECT_NEAR(once.GetEpsilon(Delta(1e-5)), twice.GetEpsilon(Delta(1e-5)),
              1e-9);
}

TEST(RdpAccountantTest, FullGaussianMatchesClosedFormConversion) {
  // For the un-subsampled Gaussian, eps(alpha) = T*alpha/(2 sigma^2) +
  // log(1/delta)/(alpha-1); the accountant must find the min over orders.
  const double sigma = 2.0;
  const int64_t steps = 10;
  RdpAccountant accountant;
  accountant.AddGaussianSteps(NoiseMultiplier(sigma), steps);
  double expected = 1e300;
  for (int64_t alpha : RdpAccountant::DefaultOrders()) {
    const double a = static_cast<double>(alpha);
    expected = std::min(
        expected, steps * a / (2.0 * sigma * sigma) +
                      std::log(1e5) / (a - 1.0));
  }
  EXPECT_NEAR(accountant.GetEpsilon(Delta(1e-5)), expected, 1e-12);
}

TEST(RdpAccountantTest, TighterThanAdvancedComposition) {
  // RDP accounting of a realistic DP-SGD run should beat advanced
  // composition of per-step guarantees.
  const double sigma = 2.0;
  const double q = 0.01;
  const int64_t steps = 1000;
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(NoiseMultiplier(sigma),
                                        SamplingRate(q), steps);
  const double rdp_eps = accountant.GetEpsilon(Delta(1e-5));

  const double per_step_eps = GaussianEpsilonForSigma(sigma, 1e-6);
  const PrivacyGuarantee adv =
      AdvancedComposition({per_step_eps, 1e-6}, steps, 1e-6);
  EXPECT_LT(rdp_eps, adv.epsilon);
}

TEST(RdpAccountantTest, OptimalOrderIsTracked) {
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(NoiseMultiplier(1.0),
                                        SamplingRate(0.01), 500);
  const int64_t order = accountant.GetOptimalOrder(Delta(1e-5));
  const double eps = accountant.GetEpsilon(Delta(1e-5));
  // Recompute epsilon at the reported order.
  const auto& orders = accountant.orders();
  const auto& rdp = accountant.cumulative_rdp();
  for (size_t i = 0; i < orders.size(); ++i) {
    if (orders[i] == order) {
      const double a = static_cast<double>(order);
      EXPECT_NEAR(eps, rdp[i] + std::log(1e5) / (a - 1.0), 1e-12);
    }
  }
}

TEST(RdpAccountantTest, ZeroStepsZeroEpsilonPlusConversionTerm) {
  RdpAccountant accountant;
  // With no steps, epsilon is just the minimal conversion overhead.
  const double eps = accountant.GetEpsilon(Delta(1e-5));
  EXPECT_NEAR(eps, std::log(1e5) / (1024.0 - 1.0), 1e-9);
}

TEST(RdpAccountantTest, SnapshotReportsZeroBeforeAnySpend) {
  // Unlike GetEpsilon (which reports the vacuous conversion term), a
  // snapshot of an untouched accountant is all zeros — what the per-step
  // telemetry should show before the first release.
  const RdpAccountant accountant;
  const RdpSnapshot snapshot = accountant.Snapshot(Delta(1e-5));
  EXPECT_EQ(snapshot.epsilon, 0.0);
  EXPECT_EQ(snapshot.optimal_order, 0);
  EXPECT_EQ(snapshot.total_steps, 0);
}

TEST(RdpAccountantTest, SnapshotMatchesGettersAfterSpend) {
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(NoiseMultiplier(1.0),
                                        SamplingRate(0.01), 100);
  accountant.AddGaussianSteps(NoiseMultiplier(2.0), 5);
  const RdpSnapshot snapshot = accountant.Snapshot(Delta(1e-5));
  EXPECT_DOUBLE_EQ(snapshot.epsilon, accountant.GetEpsilon(Delta(1e-5)));
  EXPECT_EQ(snapshot.optimal_order, accountant.GetOptimalOrder(Delta(1e-5)));
  EXPECT_EQ(snapshot.total_steps, 105);
  EXPECT_EQ(accountant.total_steps(), 105);
}

}  // namespace
}  // namespace geodp
