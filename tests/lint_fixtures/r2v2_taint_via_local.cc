// Fixture: seeded R2v2 violation — a parameter marked as per-sample
// transport flows through innocently named locals and escapes via
// return. No per-sample-named identifier appears anywhere near the
// sink, so only the taint layer can see the leak.
#include <vector>

namespace geodp {

double SumNorms(const std::vector<double>& norms) {  // geodp: per-sample
  double acc = 0.0;
  for (double n : norms) acc += n;
  return acc;
}

}  // namespace geodp
