#include "data/synthetic_images.h"

#include <cmath>
#include <vector>

#include "base/check.h"
#include "base/rng.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Deterministic class prototype: low-frequency sinusoid grid plus a
// class-positioned Gaussian blob, per channel.
Tensor MakePrototype(int64_t class_id, const SyntheticImageOptions& options,
                     Rng& rng) {
  Tensor proto({options.channels, options.height, options.width});
  // Class-specific frequencies/phases drawn from the class RNG so the
  // prototypes are well separated but deterministic given the seed.
  for (int64_t c = 0; c < options.channels; ++c) {
    const double fx = 1.0 + rng.Uniform() * 2.5;
    const double fy = 1.0 + rng.Uniform() * 2.5;
    const double px = rng.Uniform() * 2.0 * kPi;
    const double py = rng.Uniform() * 2.0 * kPi;
    // Blob center cycles around the image with the class index.
    const double angle =
        2.0 * kPi * static_cast<double>(class_id) /
        static_cast<double>(std::max<int64_t>(options.num_classes, 1));
    const double cx = 0.5 + 0.3 * std::cos(angle);
    const double cy = 0.5 + 0.3 * std::sin(angle);
    const double blob_scale = 0.08 + 0.04 * rng.Uniform();
    for (int64_t y = 0; y < options.height; ++y) {
      for (int64_t x = 0; x < options.width; ++x) {
        const double u = static_cast<double>(x) /
                         static_cast<double>(options.width - 1);
        const double v = static_cast<double>(y) /
                         static_cast<double>(options.height - 1);
        const double wave = std::sin(fx * 2.0 * kPi * u + px) *
                            std::cos(fy * 2.0 * kPi * v + py);
        const double blob =
            1.6 * std::exp(-((u - cx) * (u - cx) + (v - cy) * (v - cy)) /
                           (2.0 * blob_scale));
        proto.at({c, y, x}) = static_cast<float>(0.6 * wave + blob);
      }
    }
  }
  return proto;
}

// Copies `proto` shifted by (dy, dx), zero-filled outside, scaled by `amp`.
Tensor ShiftedCopy(const Tensor& proto, int64_t dy, int64_t dx, float amp) {
  const int64_t channels = proto.dim(0);
  const int64_t height = proto.dim(1);
  const int64_t width = proto.dim(2);
  Tensor out(proto.shape());
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t y = 0; y < height; ++y) {
      const int64_t sy = y - dy;
      if (sy < 0 || sy >= height) continue;
      for (int64_t x = 0; x < width; ++x) {
        const int64_t sx = x - dx;
        if (sx < 0 || sx >= width) continue;
        out.at({c, y, x}) = amp * proto.at({c, sy, sx});
      }
    }
  }
  return out;
}

}  // namespace

InMemoryDataset MakeSyntheticImages(const SyntheticImageOptions& options) {
  GEODP_CHECK_GT(options.num_examples, 0);
  GEODP_CHECK_GT(options.num_classes, 1);
  GEODP_CHECK_GT(options.channels, 0);
  GEODP_CHECK_GE(options.height, 4);
  GEODP_CHECK_GE(options.width, 4);
  GEODP_CHECK(options.label_noise >= 0.0 && options.label_noise < 1.0);

  Rng master(options.seed);
  // Prototypes are generated first so they depend only on the seed, not on
  // num_examples.
  std::vector<Tensor> prototypes;
  prototypes.reserve(static_cast<size_t>(options.num_classes));
  for (int64_t k = 0; k < options.num_classes; ++k) {
    Rng class_rng(options.seed * 1000003ULL + static_cast<uint64_t>(k) + 17);
    prototypes.push_back(MakePrototype(k, options, class_rng));
  }

  InMemoryDataset dataset;
  for (int64_t i = 0; i < options.num_examples; ++i) {
    const int64_t true_class =
        static_cast<int64_t>(master.UniformInt(
            static_cast<uint64_t>(options.num_classes)));
    const int64_t span = 2 * options.max_shift + 1;
    const int64_t dy =
        static_cast<int64_t>(master.UniformInt(static_cast<uint64_t>(span))) -
        options.max_shift;
    const int64_t dx =
        static_cast<int64_t>(master.UniformInt(static_cast<uint64_t>(span))) -
        options.max_shift;
    const float amp = static_cast<float>(0.8 + 0.4 * master.Uniform());
    Tensor img = ShiftedCopy(prototypes[static_cast<size_t>(true_class)], dy,
                             dx, amp);
    for (int64_t p = 0; p < img.numel(); ++p) {
      img[p] += static_cast<float>(master.Gaussian(0.0, options.pixel_noise));
    }
    int64_t label = true_class;
    if (master.Uniform() < options.label_noise) {
      label = static_cast<int64_t>(
          master.UniformInt(static_cast<uint64_t>(options.num_classes)));
    }
    dataset.Add(std::move(img), label);
  }
  return dataset;
}

InMemoryDataset MakeMnistLike(const SyntheticImageOptions& options) {
  return MakeSyntheticImages(options);
}

InMemoryDataset MakeCifarLike(SyntheticImageOptions options) {
  options.channels = 3;
  options.height = 16;
  options.width = 16;
  return MakeSyntheticImages(options);
}

}  // namespace geodp
