#include "base/status.h"

namespace geodp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace geodp
