#include "base/simd/kernels.h"

#include "base/simd/dispatch.h"
#include "base/simd/kernels_impl.h"

namespace geodp {
namespace simd {
namespace {

const KernelTable& ActiveKernels() {
#if defined(GEODP_SIMD_AVX2_BUILD)
  if (ActiveSimdTier() == SimdTier::kAvx2) return Avx2Kernels();
#endif
  return ScalarKernels();
}

}  // namespace

void Add(float* y, const float* x, int64_t n) { ActiveKernels().add(y, x, n); }

void Axpy(float* y, const float* x, float alpha, int64_t n) {
  ActiveKernels().axpy(y, x, alpha, n);
}

void Scale(float* x, float factor, int64_t n) {
  ActiveKernels().scale(x, factor, n);
}

// geodp: per-sample seeded into the chunk partial at the clipped scale
void ClipScaleAssign(float* dst, const float* per_sample_grad, float scale,
                     int64_t n) {
  // geodp: per-sample forwarded to the active tier at the clipped scale
  ActiveKernels().scale_assign(dst, per_sample_grad, scale, n);
}

// geodp: per-sample fused clip-and-accumulate entry point
void ClipAxpy(float* acc, const float* per_sample_grad, float scale,
              int64_t n) {
  // geodp: per-sample forwarded to the active tier at the clipped scale
  ActiveKernels().axpy(acc, per_sample_grad, scale, n);
}

double SumSquares(const float* x, int64_t n) {
  return ActiveKernels().sum_squares(x, n);
}

double Dot(const float* a, const float* b, int64_t n) {
  return ActiveKernels().dot(a, b, n);
}

void MatmulRowBlock(const float* a, const float* b, float* out,
                    int64_t row_begin, int64_t row_end, int64_t k,
                    int64_t n) {
  ActiveKernels().matmul_row_block(a, b, out, row_begin, row_end, k, n);
}

void PadCopyRow(float* dst, const float* src, int64_t out_w, int64_t shift,
                int64_t width) {
  ActiveKernels().pad_copy_row(dst, src, out_w, shift, width);
}

void SqrtArray(const double* x, double* out, int64_t n) {
  ActiveKernels().sqrt_array(x, out, n);
}

void SinCos(const double* angles, double* sin_out, double* cos_out,
            int64_t n) {
  ActiveKernels().sincos(angles, sin_out, cos_out, n);
}

void Atan2(const double* y, const double* x, double* out, int64_t n) {
  ActiveKernels().atan2(y, x, out, n);
}

void WrapReflect(double* angles, int64_t n) {
  ActiveKernels().wrap_reflect(angles, n);
}

void GaussianAdd(Rng& stream, double stddev, float* dst, int64_t n) {
  ActiveKernels().gaussian_add_f32(stream, stddev, dst, n);
}

void GaussianAdd(Rng& stream, double stddev, double* dst, int64_t n) {
  ActiveKernels().gaussian_add_f64(stream, stddev, dst, n);
}

}  // namespace simd
}  // namespace geodp
