// Fixture: seeded R1 violation — raw steady_clock::now() in library code.
#include <chrono>

namespace geodp {

long WallclockMicros() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace geodp
