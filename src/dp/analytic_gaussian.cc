#include "dp/analytic_gaussian.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

double StandardNormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double AnalyticGaussianDelta(double sigma, double epsilon) {
  GEODP_CHECK_GT(sigma, 0.0);
  GEODP_CHECK_GT(epsilon, 0.0);
  const double a = 1.0 / (2.0 * sigma);
  return StandardNormalCdf(a - epsilon * sigma) -
         std::exp(epsilon) * StandardNormalCdf(-a - epsilon * sigma);
}

double AnalyticGaussianSigma(double epsilon, double delta, double tolerance) {
  GEODP_CHECK_GT(epsilon, 0.0);
  GEODP_CHECK(delta > 0.0 && delta < 1.0);
  GEODP_CHECK_GT(tolerance, 0.0);
  // AnalyticGaussianDelta is decreasing in sigma; bracket then bisect.
  double lo = 1e-6;
  double hi = 1.0;
  while (AnalyticGaussianDelta(hi, epsilon) > delta) {
    hi *= 2.0;
    GEODP_CHECK_LT(hi, 1e12) << "failed to bracket sigma";
  }
  while (hi - lo > 1e-12 * hi) {
    const double mid = 0.5 * (lo + hi);
    const double d = AnalyticGaussianDelta(mid, epsilon);
    if (std::fabs(d - delta) <= tolerance) return mid;
    if (d > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace geodp
