// Fixture: seeded R2 violation — ghost-norm bookkeeping (per-sample
// gradient norms computed without materializing the gradient) consumed
// outside src/clip/ with no annotation; the trailing-annotated use below
// is exempt.
#include <vector>

namespace geodp {

double LeakGhostNorms(const std::vector<double>& values) {
  double total = 0.0;
  for (double ghost_norm_sq : values) total += ghost_norm_sq;
  return total;
}

double AnnotatedGhostUse(double ghost_norm) {  // geodp: per-sample
  return ghost_norm;  // geodp: per-sample norm, clipped downstream
}

}  // namespace geodp
