// Ablation: how the magnitude/direction noise split affects GeoDP.
// Algorithm 1 perturbs both components at the same multiplier sigma; this
// ablation rescales each component's noise while keeping the other fixed,
// confirming that the direction noise dominates model-relevant error
// (the paper's core claim) and the magnitude noise is comparatively cheap.

#include "common/bench_util.h"
#include "core/perturbation.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

MseResult MeasureWithScales(const GradientDataset& data, double mag_scale,
                            double dir_scale) {
  GeoDpOptions options;
  options.base.clip_threshold = 0.1;
  options.base.batch_size = 256;
  options.base.noise_multiplier = 1.0;
  options.beta = 0.1;
  options.magnitude_sigma_scale = mag_scale;
  options.direction_sigma_scale = dir_scale;
  const GeoDpPerturber perturber(options);
  return MeasurePerturbationMse(data, perturber, 256, 0.1, 24, 41);
}

void Run() {
  PrintBanner(
      "Ablation: GeoDP noise budget split between magnitude and direction",
      "(design-choice ablation; not a paper table)",
      "d=512, B=256, sigma=1, beta=0.1; scale one component's noise while "
      "fixing the other");

  const GradientDataset data = HarvestedGradients(512, /*count=*/384);

  TablePrinter table({"magnitude scale", "direction scale", "theta MSE",
                      "g MSE"});
  for (double mag : {0.0, 0.5, 1.0, 2.0}) {
    for (double dir : {0.0, 0.5, 1.0, 2.0}) {
      const MseResult mse = MeasureWithScales(data, mag, dir);
      table.AddRow({TablePrinter::Fmt(mag, 1), TablePrinter::Fmt(dir, 1),
                    TablePrinter::FmtSci(mse.direction_mse),
                    TablePrinter::FmtSci(mse.gradient_mse)});
    }
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
