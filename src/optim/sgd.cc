#include "optim/sgd.h"

#include "base/check.h"

namespace geodp {

Sgd::Sgd(std::vector<Parameter*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  GEODP_CHECK_GT(options_.learning_rate, 0.0);
  GEODP_CHECK_GE(options_.momentum, 0.0);
  GEODP_CHECK_LT(options_.momentum, 1.0);
  if (options_.momentum > 0.0) {
    velocity_.reserve(params_.size());
    for (Parameter* p : params_) {
      velocity_.push_back(Tensor::Zeros(p->value.shape()));
    }
  }
}

void Sgd::Step() {
  const float lr = static_cast<float>(options_.learning_rate);
  const float mu = static_cast<float>(options_.momentum);
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (mu > 0.0f) {
      Tensor& v = velocity_[i];
      v.ScaleInPlace(mu);
      v.AddInPlace(p->grad);
      p->value.AxpyInPlace(-lr, v);
    } else {
      p->value.AxpyInPlace(-lr, p->grad);
    }
  }
}

void Sgd::ZeroGrad() { ZeroGradients(params_); }

}  // namespace geodp
