// Layer abstraction: every building block implements an explicit forward
// and backward pass, caching whatever it needs in Forward. Batch-first
// layouts throughout: dense activations are [B, features], image
// activations are [B, C, H, W].

#ifndef GEODP_NN_MODULE_H_
#define GEODP_NN_MODULE_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace geodp {

/// Base class for all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch; caches state for Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after a matching Forward.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// True when the layer can run the ghost-clipping backward protocol
  /// below. Parameter-free layers always can (the defaults just forward
  /// to Backward); layers with parameters must override the two hooks to
  /// opt in.
  virtual bool SupportsGhostClip() { return Parameters().empty(); }

  /// Ghost-clipping pass 1 of 2: like Backward, but instead of
  /// accumulating parameter gradients it adds sample b's squared
  /// parameter-gradient L2 norm into ghost_norm_sq[b] (Goodfellow-style
  /// bookkeeping from the cached activations and this grad_output) and
  /// caches whatever GhostAccumulate needs. ghost_norm_sq must have
  /// batch-size entries. The default — correct only for parameter-free
  /// layers — is a plain Backward that leaves the norms untouched.
  virtual Tensor GhostBackward(
      const Tensor& grad_output,
      std::vector<double>& ghost_norm_sq) {  // geodp: per-sample norms out
    (void)ghost_norm_sq;  // geodp: per-sample (no parameters, no norm)
    return Backward(grad_output);
  }

  /// Ghost-clipping pass 2 of 2: accumulates sum_b weights[b] * g_b into
  /// the parameter gradients, where g_b is sample b's parameter gradient
  /// implied by the last GhostBackward. `weights` has one entry per
  /// sample (a clip scale, 1.0 for raw sums, or exactly 0.0 for excluded
  /// samples — implementations must skip zero-weight samples structurally
  /// rather than multiply, so non-finite gradients cannot poison the sum
  /// via 0 * inf). Default: no-op for parameter-free layers.
  virtual void GhostAccumulate(const std::vector<double>& weights) {
    (void)weights;
  }

  virtual std::string name() const = 0;
};

}  // namespace geodp

#endif  // GEODP_NN_MODULE_H_
