// Optimization techniques the paper composes with both DP and GeoDP
// (Tables II and III): importance sampling (after DPIS, Wei et al. CCS'22)
// and selective update-and-release (after DPSUR, Fu et al. VLDB'24). Both
// are faithful-in-spirit reimplementations at the scale of this repo; see
// DESIGN.md.

#ifndef GEODP_OPTIM_TECHNIQUES_H_
#define GEODP_OPTIM_TECHNIQUES_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace geodp {

/// Serializable snapshot of an ImportanceSampler: generator state plus the
/// per-example weight table.
struct ImportanceSamplerState {
  RngState rng;
  std::vector<double> weights;
  std::vector<bool> seen;
};

/// Importance sampling: examples are drawn with probability proportional to
/// an exponential moving average of their recent loss, so hard examples are
/// visited more often. Unseen examples carry the current mean weight.
class ImportanceSampler {
 public:
  ImportanceSampler(int64_t dataset_size, int64_t batch_size, uint64_t seed,
                    double ema = 0.7);

  /// Draws `batch_size` indices with replacement, weight-proportional.
  std::vector<int64_t> NextBatch();

  /// Feeds back the observed loss of an example. Non-finite losses (a
  /// sample that produced a NaN/Inf loss is skipped by the trainer) are
  /// ignored so they cannot poison the weight table.
  void UpdateLoss(int64_t index, double loss);

  /// Current sampling weight of an example (exposed for tests).
  double weight(int64_t index) const;

  /// Checkpoint support: snapshot / restore the full sampler state.
  ImportanceSamplerState ExportState() const;
  void ImportState(const ImportanceSamplerState& state);

 private:
  int64_t dataset_size_;
  int64_t batch_size_;
  double ema_;
  Rng rng_;
  std::vector<double> weights_;
  std::vector<bool> seen_;
};

/// Selective update-and-release: a noisy update is accepted only if it does
/// not worsen the (noisily estimated) objective beyond a tolerance;
/// otherwise the model reverts to the previous parameters.
class SelectiveUpdater {
 public:
  explicit SelectiveUpdater(double tolerance = 0.0);

  /// Decision for one step; records acceptance statistics.
  bool ShouldAccept(double loss_before, double loss_after);

  int64_t accepted() const { return accepted_; }
  int64_t rejected() const { return rejected_; }

  /// Checkpoint support: restores the acceptance counters.
  void RestoreCounts(int64_t accepted, int64_t rejected);

 private:
  double tolerance_;
  int64_t accepted_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace geodp

#endif  // GEODP_OPTIM_TECHNIQUES_H_
