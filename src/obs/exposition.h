// Exposition formatting for the live introspection server: Prometheus
// text for the metrics registry, JSON/HTML status pages, and the
// copy-on-publish snapshot channel the trainer feeds. Everything here is
// a pure function of its inputs and independent of sockets, so tests pin
// exact bytes without networking; obs/http_server.h serves these strings
// over HTTP.

#ifndef GEODP_OBS_EXPOSITION_H_
#define GEODP_OBS_EXPOSITION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/step_observer.h"

namespace geodp {

/// Everything /statusz and /varz report about the run in flight. The
/// trainer builds one per step (copy-on-publish: the struct is immutable
/// once handed to the publisher), so serving a request never touches
/// trainer state.
struct TrainingStatusSnapshot {
  std::string run_state;  // "training" | "finished" | "cancelled"
  std::string options_fingerprint;
  int64_t step = 0;        // accepted updates so far
  int64_t attempt = 0;     // loop iterations so far (>= step under SUR)
  int64_t iterations = 0;  // configured accepted-update target
  bool has_last_record = false;
  StepRecord last_record;  // most recent per-step telemetry
  double epsilon_spent = 0.0;
  double epsilon_budget = 0.0;  // 0 = unbounded (watchdog disabled)
  double delta = 0.0;
  // True once an observability sink lost data (telemetry writes kept
  // failing). Training itself is unaffected; /healthz reports "degraded".
  bool degraded = false;
  // Epsilon burn rate: epsilon spent per accepted step over the trainer's
  // trailing window (0 until two window samples exist), and the projected
  // steps until epsilon_budget is exhausted at that rate (-1 when
  // unknowable: no budget, no rate, or budget already exceeded). /healthz
  // turns "warn" when the projection drops under the configured horizon.
  double eps_burn_rate = 0.0;
  double eps_steps_to_exhaustion = -1.0;
  std::string checkpoint_dir;      // empty when checkpointing is off
  std::string latest_checkpoint;   // last durably-written checkpoint file
  int64_t publish_sequence = 0;    // filled by the publisher
  int64_t publish_micros = 0;      // Timer::ProcessMicros() at publish time
};

/// Thread-safe holder of the latest snapshot. Publish replaces the held
/// pointer; readers get a shared_ptr to an immutable snapshot, so a reader
/// can format a response while the trainer publishes the next step.
class TrainingStatusPublisher {
 public:
  TrainingStatusPublisher() = default;
  TrainingStatusPublisher(const TrainingStatusPublisher&) = delete;
  TrainingStatusPublisher& operator=(const TrainingStatusPublisher&) = delete;

  /// Stamps publish_sequence/publish_micros and swaps the snapshot in.
  void Publish(TrainingStatusSnapshot snapshot);

  /// Latest published snapshot; nullptr before the first Publish.
  std::shared_ptr<const TrainingStatusSnapshot> Latest() const;

  int64_t publish_count() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const TrainingStatusSnapshot> latest_;
  int64_t publish_count_ = 0;
};

/// "trainer.steps" -> "geodp_trainer_steps": prefixes the namespace and
/// maps every character outside [a-zA-Z0-9_] to '_'.
std::string PrometheusMetricName(const std::string& name);

/// Prometheus text exposition (text/plain; version=0.0.4) of a registry
/// snapshot, deterministic order: counters, gauges, then histograms, each
/// sorted by name. Counters get the "_total" suffix; histograms emit
/// cumulative le-buckets (including "+Inf"), _sum and _count, plus
/// interpolated p50/p95/p99 gauges as <name>_p50/_p95/_p99.
std::string PrometheusText(const RegistrySnapshot& snapshot);

/// The /statusz payload as one deterministic JSON object (fixed key
/// order, FormatDouble numbers).
std::string StatuszJson(const TrainingStatusSnapshot& snapshot);

/// Minimal self-contained HTML rendering of the same status (a table for
/// humans plus the JSON in a <pre> for copy-paste).
std::string StatuszHtml(const TrainingStatusSnapshot& snapshot);

/// Raw JSON snapshot of everything: {"metrics": {...}, "status": {...}}.
/// `status` may be null (before any publish); the key is then null.
std::string VarzJson(const RegistrySnapshot& registry,
                     const TrainingStatusSnapshot* status);

/// The /profilez?format=json payload: {"enabled":...,"threads":N,
/// "phases":[{"path":...,"name":...,"count":N,"total_micros":N,
/// "self_micros":N,"share_of_step":X,"p50_micros":X,"p95_micros":X,
/// "p99_micros":X}]}. share_of_step divides by the cross-thread total of
/// the top-level "step" phase (0 when no step completed yet).
std::string ProfilezJson(const ProfileSnapshot& snapshot, bool enabled);

/// Human rendering of the same snapshot: a per-phase table plus the JSON
/// in a <pre>.
std::string ProfilezHtml(const ProfileSnapshot& snapshot, bool enabled);

/// The /flightz payload: {"enabled":...,"total_recorded":N,"events":[
/// {"sequence":N,"micros":N,"kind":"...","step":N,"tid":N,
/// "detail":"..."}]} in sequence order.
std::string FlightzJson(const std::vector<FlightEvent>& events, bool enabled,
                        int64_t total_recorded);

/// Everything a postmortem dump says about why the run stopped, beyond
/// the event buffer itself.
struct PostmortemInfo {
  std::string reason;  // "fatal_status" | "watchdog_cancel" | "degraded"
                       // | "checkpoint" (routine cadence flush)
  std::string detail;  // e.g. the fatal Status message
  int64_t step = 0;    // accepted updates at dump time
  int64_t attempt = 0; // loop attempts at dump time
  double epsilon = 0.0;
  bool degraded = false;
};

/// The postmortem file body: one JSON object {"tool":"geodp","kind":
/// "postmortem",...info fields...,"last_milestone_step":N,"events":[...]}
/// where last_milestone_step is the step of the newest "step" event (-1
/// when none survived wraparound). scripts/check_postmortem.py validates
/// this schema.
std::string PostmortemJson(const PostmortemInfo& info,
                           const std::vector<FlightEvent>& events);

}  // namespace geodp

#endif  // GEODP_OBS_EXPOSITION_H_
