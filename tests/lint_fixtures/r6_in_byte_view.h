// Fixture: a reinterpret_cast that is clean under the virtual path
// src/base/byte_view.h (the one audited home of type punning) and an R6
// finding under any other path.
#ifndef GEODP_TESTS_LINT_FIXTURES_R6_IN_BYTE_VIEW_H_
#define GEODP_TESTS_LINT_FIXTURES_R6_IN_BYTE_VIEW_H_

namespace geodp {

template <typename T>
const char* FixtureBytes(const T& value) {
  return reinterpret_cast<const char*>(&value);
}

}  // namespace geodp

#endif  // GEODP_TESTS_LINT_FIXTURES_R6_IN_BYTE_VIEW_H_
