// Fail-point hooks for crash-safety testing.
//
// Production code calls FaultInjector::Fire(site) at carefully chosen
// points (end of a training step, inside the checkpoint write protocol).
// Normally this is a single relaxed atomic load returning kNone. Tests and
// the CLI can arm exactly one fail point — "<site>@<hit>:<action>" — and
// the matching Fire call then returns the action (crash the process,
// truncate the write, flip a bit), letting us prove that kill-at-any-step
// resume is bit-identical and that torn checkpoint writes are never
// resumed from.
//
// Fail-point catalog (see docs/fault_tolerance.md):
//   trainer.step        end of each training attempt, after any checkpoint
//   ckpt.before_write   entry of SaveTrainingCheckpoint
//   ckpt.write          payload about to be written (short_write/bit_flip
//                       corrupt the bytes; crash dies before the rename)
//   ckpt.before_rename  temp file durable, final rename not yet done

#ifndef GEODP_CKPT_FAULT_INJECTION_H_
#define GEODP_CKPT_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "base/status.h"

namespace geodp {

/// Process-wide fail-point registry. One fail point can be armed at a
/// time; firing is thread-safe.
class FaultInjector {
 public:
  enum class Action {
    kNone = 0,     // fail point not armed / not this site / not this hit
    kCrash,        // terminate the process immediately (simulated kill -9)
    kShortWrite,   // truncate the bytes being written (torn write)
    kBitFlip,      // flip one bit in the bytes being written (bit rot)
  };

  static FaultInjector& Global();

  /// Arms `site` to return `action` on its `hit`-th Fire (1-based). Any
  /// previously armed fail point is replaced.
  void Arm(const std::string& site, int64_t hit, Action action);

  /// Disarms and resets the hit counter.
  void Disarm();

  /// True when a fail point is armed (single relaxed atomic load; this is
  /// all a Fire call costs when fault injection is off).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Reports this site being reached. Returns the armed action when this
  /// is the armed site's configured hit, kNone otherwise. A returned
  /// action other than kCrash disarms the fail point (one-shot).
  /// kCrash terminates the process via _Exit(kCrashExitCode) — callers
  /// never observe it.
  Action Fire(const std::string& site);

  /// Exit code used by Action::kCrash, distinguishable from normal failures.
  static constexpr int kCrashExitCode = 87;

  /// Arms the global injector from a CLI spec "<site>@<hit>:<action>",
  /// e.g. "trainer.step@25:crash" or "ckpt.write@2:bit_flip". Actions:
  /// crash, short_write, bit_flip. An empty spec is a no-op.
  static Status ArmFromSpec(const std::string& spec);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::string site_;
  int64_t target_hit_ = 0;
  int64_t hits_ = 0;
  Action action_ = Action::kNone;
};

}  // namespace geodp

#endif  // GEODP_CKPT_FAULT_INJECTION_H_
