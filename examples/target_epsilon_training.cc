// Example: budget-first private training. Instead of picking a noise
// multiplier, pick the privacy budget (epsilon, delta) for the whole run;
// the calibration utilities solve for sigma, train with GeoDP, and the
// privacy ledger audits the spend.
//
//   $ ./examples/target_epsilon_training

#include <cstdio>

#include "base/rng.h"
#include "data/synthetic_images.h"
#include "dp/calibration.h"
#include "dp/privacy_ledger.h"
#include "models/logistic_regression.h"
#include "optim/trainer.h"

int main() {
  using namespace geodp;

  const double kTargetEpsilon = 4.0;
  const double kDelta = 1e-5;
  const int64_t kIterations = 150;
  const int64_t kBatch = 128;

  SyntheticImageOptions data_options;
  data_options.num_examples = 1200;
  data_options.seed = 51;
  InMemoryDataset train = MakeMnistLike(data_options);
  InMemoryDataset test = train.SplitTail(200);

  const double sampling_rate =
      static_cast<double>(kBatch) / static_cast<double>(train.size());
  const StatusOr<double> sigma_or = NoiseMultiplierForTargetEpsilon(
      Epsilon(kTargetEpsilon), Delta(kDelta), SamplingRate(sampling_rate),
      kIterations);
  if (!sigma_or.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 sigma_or.status().ToString().c_str());
    return 1;
  }
  const double sigma = sigma_or.value();
  std::printf("budget: (eps=%.2f, delta=%.0e) over %lld steps at q=%.4f\n",
              kTargetEpsilon, kDelta, static_cast<long long>(kIterations),
              sampling_rate);
  std::printf("calibrated noise multiplier sigma = %.4f\n\n", sigma);

  auto train_with = [&](PerturbationMethod method, double beta,
                        const char* label) {
    Rng rng(52);
    auto model = MakeLogisticRegression(196, 10, rng);
    TrainerOptions options;
    options.method = method;
    options.beta = beta;
    options.batch_size = kBatch;
    options.iterations = kIterations;
    options.learning_rate = 2.0;
    options.noise_multiplier = sigma;
    options.delta = kDelta;
    options.seed = 53;
    DpTrainer trainer(model.get(), &train, &test, options);
    const TrainingResult result = trainer.Train();
    std::printf("%-22s test acc %.2f%%  achieved eps %.3f\n", label,
                result.test_accuracy * 100, result.epsilon);
    return result;
  };

  train_with(PerturbationMethod::kDp, 1.0, "DP-SGD");
  const TrainingResult geo =
      train_with(PerturbationMethod::kGeoDp, 0.002, "GeoDP (beta=0.002)");

  PrivacyLedger ledger;
  ledger.RecordSubsampledGaussian(NoiseMultiplier(sigma),
                                  SamplingRate(sampling_rate), kIterations,
                                  "GeoDP training run");
  std::printf("\n%s\n", ledger.Report(Delta(kDelta)).c_str());
  std::printf(
      "\nNote: GeoDP's magnitude release satisfies the audited guarantee; "
      "its direction is (eps, delta + delta') with delta' <= %.3f "
      "(Lemma 2, beta=0.002).\n",
      1.0 - 0.002);
  return geo.test_accuracy > 0 ? 0 : 1;
}
