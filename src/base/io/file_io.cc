#include "base/io/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "base/fault_injection.h"

namespace geodp {
namespace {

// Fires `site` (when set) and returns the simulated errno of an armed
// errno-emulating action, 0 otherwise. Corruption/rename actions are
// reported through `action` for the call sites that honor them.
int FireSite(const std::string& site, FaultInjector::Action* action) {
  if (action != nullptr) *action = FaultInjector::Action::kNone;
  if (site.empty()) return 0;
  const FaultInjector::Action fired = FaultInjector::Global().Fire(site);
  if (action != nullptr) *action = fired;
  return FaultInjector::SimulatedErrno(fired);
}

// Flushes the directory entry of `path` so a completed rename survives a
// crash. Best-effort: some filesystems refuse to open directories.
void SyncParentDir(const std::filesystem::path& path) {
  if (!path.has_parent_path()) return;
  const int dir_fd =
      ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace

StatusOr<std::string> ReadFileWithRetry(const std::string& path,
                                        const RetryPolicy& policy,
                                        const std::string& fault_site) {
  RetryState retry(policy);
  while (true) {
    int err = FireSite(fault_site, nullptr);
    if (err == 0) {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) {
        err = errno;
      } else {
        std::string bytes;
        char buffer[1 << 16];
        while (true) {
          const ssize_t n = ::read(fd, buffer, sizeof(buffer));
          if (n > 0) {
            bytes.append(buffer, static_cast<size_t>(n));
            continue;
          }
          if (n == 0) {
            ::close(fd);
            return bytes;
          }
          if (errno == EINTR) continue;  // bare EINTR: re-read, no backoff
          err = errno;
          break;
        }
        ::close(fd);
      }
    }
    if (!retry.ShouldRetry(err)) {
      return StatusFromErrno(err, "cannot read " + path);
    }
  }
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const RetryPolicy& policy, const std::string& fault_site,
                       const std::string& pre_rename_site) {
  const std::filesystem::path final_path(path);
  const std::string tmp_path = path + ".tmp";
  RetryState retry(policy);
  while (true) {
    FaultInjector::Action action = FaultInjector::Action::kNone;
    int err = FireSite(fault_site, &action);
    // Corruption actions succeed with damaged bytes — simulated silent
    // corruption the reader's checksums must catch.
    std::string corrupted;
    std::string_view attempt_bytes = bytes;
    if (action == FaultInjector::Action::kShortWrite ||
        action == FaultInjector::Action::kTornRename) {
      attempt_bytes = bytes.substr(0, bytes.size() / 2);
    } else if (action == FaultInjector::Action::kBitFlip && !bytes.empty()) {
      corrupted.assign(bytes);
      corrupted[corrupted.size() / 2] ^= 0x10;
      attempt_bytes = corrupted;
    }

    if (err == 0) {
      std::error_code ec;
      if (final_path.has_parent_path()) {
        std::filesystem::create_directories(final_path.parent_path(), ec);
        // An existing directory is fine; a real failure surfaces at open.
      }
      const int fd =
          ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) {
        err = errno;
      } else {
        size_t written = 0;
        while (written < attempt_bytes.size()) {
          const ssize_t n = ::write(fd, attempt_bytes.data() + written,
                                    attempt_bytes.size() - written);
          if (n >= 0) {
            written += static_cast<size_t>(n);
            continue;
          }
          if (errno == EINTR) continue;
          err = errno;
          break;
        }
        if (err == 0 && ::fsync(fd) != 0) err = errno;
        ::close(fd);
        if (err == 0 && !pre_rename_site.empty()) {
          FaultInjector::Global().Fire(pre_rename_site);
        }
        if (err == 0 && ::rename(tmp_path.c_str(), path.c_str()) != 0) {
          err = errno;
        }
        if (err == 0) {
          SyncParentDir(final_path);
          return Status::Ok();
        }
      }
      std::remove(tmp_path.c_str());  // geodp: raw-io-ok attempt cleanup
    }
    if (!retry.ShouldRetry(err)) {
      return StatusFromErrno(err, "cannot write " + path);
    }
  }
}

RetryingWriter::RetryingWriter(std::string path, RetryPolicy policy,
                               std::string fault_site)
    : path_(std::move(path)),
      policy_(policy),
      fault_site_(std::move(fault_site)) {}

RetryingWriter::~RetryingWriter() { Close(); }

Status RetryingWriter::Open() {
  if (fd_ >= 0) return Status::Ok();
  RetryState retry(policy_);
  while (true) {
    int err = FireSite(fault_site_, nullptr);
    if (err == 0) {
      const int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                            0644);  // geodp: raw-io-ok the substrate itself
      if (fd >= 0) {
        fd_ = fd;
        return Status::Ok();
      }
      err = errno;
    }
    if (!retry.ShouldRetry(err)) {
      const Status failed = StatusFromErrno(err, "cannot open " + path_);
      if (status_.ok()) status_ = failed;
      return failed;
    }
  }
}

Status RetryingWriter::Append(std::string_view bytes) {
  if (fd_ < 0) {
    ++dropped_appends_;
    if (status_.ok()) {
      status_ = Status::FailedPrecondition("writer is not open: " + path_);
    }
    return status_;
  }
  RetryState retry(policy_);
  size_t written = 0;
  while (written < bytes.size()) {
    int err = FireSite(fault_site_, nullptr);
    if (err == 0) {
      const ssize_t n =
          ::write(fd_, bytes.data() + written, bytes.size() - written);
      if (n >= 0) {
        written += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      err = errno;
    }
    if (!retry.ShouldRetry(err)) {
      ++dropped_appends_;
      const Status failed = StatusFromErrno(err, "write failed for " + path_);
      if (status_.ok()) status_ = failed;
      return failed;
    }
  }
  return Status::Ok();
}

const Status& RetryingWriter::Close() {
  if (fd_ < 0) return status_;
  const bool close_failed = ::close(fd_) != 0;
  fd_ = -1;
  if (close_failed && status_.ok()) {
    status_ = StatusFromErrno(errno, "close failed for " + path_);
  }
  return status_;
}

}  // namespace geodp
