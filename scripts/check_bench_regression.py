#!/usr/bin/env python3
"""Performance-regression gate over the BENCH_*.json files the benchmark
binaries emit via --bench_json_out.

Two comparison modes, both over benchmarks matched by name in two files:

  * Speedup gate — asserts one run is at least --min-speedup times faster
    than another (wall_ms ratio), per benchmark. CI uses this to prove the
    AVX2 kernel tier actually pays for itself against the committed scalar
    baseline:

      check_bench_regression.py --speedup-of BENCH_fig6_runtime.avx2.json \\
          --over BENCH_fig6_runtime.json --min-speedup 2.0 \\
          --filter 'Perturb|ToSpherical|ToCartesian'

  * Clip-mode gate — within ONE file, pairs every ghost clipping row
    (name containing "/ghost/") with its materialized counterpart and
    asserts the ghost path pays for itself on at least one axis: wall-ms
    speedup >= --min-speedup OR peak-RSS ratio >= --min-rss-ratio. CI uses
    this over the committed BENCH_table2 baseline (tight floors, recorded
    host) and over a fresh run (soft floors, unknown runner):

      check_bench_regression.py \\
          --clip-mode-gate bench/baselines/BENCH_table2_cnn_mnist.json \\
          --min-speedup 2.0 --min-rss-ratio 4.0

  * Overhead gate — asserts one run's GEOMETRIC-MEAN steps_per_s across
    the matched benchmarks is at most --max-overhead-pct percent below
    another's, recorded under the SAME simd tier. Per-benchmark ratios on
    a shared runner swing +/-15% in both directions from scheduler noise;
    the geomean cancels that while a real across-the-board cost (what an
    always-on layer would impose) survives it. Per-name deltas are still
    printed for diagnosis. CI uses this to prove the observability layer
    (flight recorder + phase profiler) is effectively free:

      check_bench_regression.py --overhead-of BENCH_fig6_runtime.obs.json \\
          --against BENCH_fig6_runtime.json --max-overhead-pct 2.0

  * Baseline gate — asserts a fresh run has not regressed below a fraction
    of the committed baseline's steps_per_s. The tolerance band is wide
    because CI hosts differ from the machine that recorded the baseline;
    the gate exists to catch order-of-magnitude regressions (a kernel
    silently falling back to scalar, an accidental O(n^2)), not 5% noise:

      check_bench_regression.py --fresh fresh.json \\
          --baseline bench/baselines/BENCH_fig6_runtime.json --min-ratio 0.25

Benchmarks present in only one file are reported and skipped; zero matched
names is a failure (a rename must not silently disarm the gate). Both
files must record the same "simd" tier unless --allow-tier-mismatch is
given. Exits 0 when every matched benchmark passes, 1 with a per-name
diagnostic otherwise. Uses only the standard library.

`--self-check` lints this script itself (pyflakes if available, else a
stdlib AST pass), mirroring the other scripts/ checkers.
"""

import argparse
import json
import math
import re
import sys


def fail(message):
    print(f"check_bench_regression: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def self_check():
    """Lints this file. Prefers pyflakes; falls back to compiling the AST
    with a duplicate-name scan so the check still bites where pyflakes is
    not installed."""
    import ast

    source_path = __file__
    try:
        with open(source_path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        fail(f"self-check: cannot read {source_path}: {error}")

    try:
        from pyflakes.api import check as pyflakes_check
        from pyflakes.reporter import Reporter

        errors = pyflakes_check(
            source, source_path, Reporter(sys.stderr, sys.stderr)
        )
        if errors:
            fail(f"self-check: pyflakes reported {errors} problem(s)")
        print("check_bench_regression: OK: self-check passed (pyflakes)")
        return
    except ImportError:
        pass

    try:
        tree = ast.parse(source, filename=source_path)
        compile(tree, source_path, "exec")
    except SyntaxError as error:
        fail(f"self-check: syntax error: {error}")
    top_level = [
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    duplicates = {name for name in top_level if top_level.count(name) > 1}
    if duplicates:
        fail(f"self-check: duplicate top-level definitions: {duplicates}")
    print("check_bench_regression: OK: self-check passed (stdlib ast fallback)")


def load_bench_json(path):
    """Returns (doc, {name: result_row}) after structural validation."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as error:
        fail(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")

    for key in ("bench", "git_rev", "results"):
        if key not in doc:
            fail(f"{path}: missing top-level key {key!r}")
    if doc.get("simd") not in ("scalar", "avx2"):
        fail(f"{path}: missing or unknown \"simd\" tier {doc.get('simd')!r}")
    if not doc["results"]:
        fail(f"{path}: empty results")

    rows = {}
    for row in doc["results"]:
        name = row.get("name")
        if not name:
            fail(f"{path}: result row without a name: {row}")
        if name in rows:
            fail(f"{path}: duplicate result name {name!r}")
        for key in ("wall_ms", "steps_per_s"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"{path}: {name}: bad {key} {value!r}")
        rows[name] = row
    return doc, rows


def matched_names(a_rows, b_rows, name_filter, a_path, b_path):
    pattern = re.compile(name_filter) if name_filter else None
    names = sorted(set(a_rows) & set(b_rows))
    skipped = sorted(set(a_rows) ^ set(b_rows))
    if skipped:
        print(
            f"check_bench_regression: note: {len(skipped)} benchmark(s) "
            f"present in only one of {a_path}, {b_path}: "
            + ", ".join(skipped[:8])
            + (" ..." if len(skipped) > 8 else "")
        )
    if pattern:
        names = [name for name in names if pattern.search(name)]
    if not names:
        fail(
            f"no benchmark names matched between {a_path} and {b_path}"
            + (f" under filter {name_filter!r}" if name_filter else "")
        )
    return names


def check_tiers(a_doc, a_path, b_doc, b_path, allow_mismatch):
    if a_doc["simd"] != b_doc["simd"] and not allow_mismatch:
        fail(
            f"simd tier mismatch: {a_path} is \"{a_doc['simd']}\", "
            f"{b_path} is \"{b_doc['simd']}\" "
            "(pass --allow-tier-mismatch to compare across tiers)"
        )


def run_speedup_gate(args):
    fast_doc, fast = load_bench_json(args.speedup_of)
    slow_doc, slow = load_bench_json(args.over)
    if fast_doc["simd"] == slow_doc["simd"] and not args.allow_tier_mismatch:
        fail(
            f"speedup gate compares tiers, but both files record "
            f"\"{fast_doc['simd']}\" (pass --allow-tier-mismatch to "
            "compare same-tier runs)"
        )
    names = matched_names(fast, slow, args.filter, args.speedup_of, args.over)
    failures = []
    for name in names:
        speedup = slow[name]["wall_ms"] / fast[name]["wall_ms"]
        status = "ok" if speedup >= args.min_speedup else "FAIL"
        print(
            f"  {status:4s} {name}: {speedup:.2f}x "
            f"({slow[name]['wall_ms']:.4g} ms -> "
            f"{fast[name]['wall_ms']:.4g} ms)"
        )
        if speedup < args.min_speedup:
            failures.append((name, speedup))
    if failures:
        fail(
            f"{len(failures)}/{len(names)} benchmark(s) below the "
            f"{args.min_speedup:.2f}x speedup floor: "
            + ", ".join(f"{n} ({s:.2f}x)" for n, s in failures)
        )
    print(
        f"check_bench_regression: OK: {len(names)} benchmark(s) at >= "
        f"{args.min_speedup:.2f}x ({fast_doc['simd']} over "
        f"{slow_doc['simd']})"
    )


def run_clip_mode_gate(args):
    doc, rows = load_bench_json(args.clip_mode_gate)
    pattern = re.compile(args.filter) if args.filter else None
    pairs = []
    for name in sorted(rows):
        if "/ghost/" not in name:
            continue
        if pattern and not pattern.search(name):
            continue
        counterpart = name.replace("/ghost/", "/materialize/")
        if counterpart not in rows:
            print(
                f"check_bench_regression: note: {name} has no "
                f"materialized counterpart {counterpart!r}; skipped"
            )
            continue
        pairs.append((name, counterpart))
    if not pairs:
        fail(
            f"no ghost/materialize row pairs found in {args.clip_mode_gate}"
            + (f" under filter {args.filter!r}" if args.filter else "")
        )
    failures = []
    for ghost_name, mat_name in pairs:
        ghost, mat = rows[ghost_name], rows[mat_name]
        speedup = mat["wall_ms"] / ghost["wall_ms"]
        ghost_rss = ghost.get("peak_rss_mb", 0)
        mat_rss = mat.get("peak_rss_mb", 0)
        rss_ratio = (
            mat_rss / ghost_rss
            if isinstance(ghost_rss, (int, float))
            and isinstance(mat_rss, (int, float))
            and ghost_rss > 0
            else 0.0
        )
        ok = speedup >= args.min_speedup or rss_ratio >= args.min_rss_ratio
        status = "ok" if ok else "FAIL"
        print(
            f"  {status:4s} {ghost_name}: {speedup:.2f}x steps "
            f"({mat['wall_ms']:.4g} ms -> {ghost['wall_ms']:.4g} ms), "
            f"{rss_ratio:.2f}x peak RSS"
        )
        if not ok:
            failures.append((ghost_name, speedup, rss_ratio))
    if failures:
        fail(
            f"{len(failures)}/{len(pairs)} ghost row(s) below both floors "
            f"(speedup < {args.min_speedup:.2f}x and RSS ratio < "
            f"{args.min_rss_ratio:.2f}x): "
            + ", ".join(
                f"{n} ({s:.2f}x, {r:.2f}x)" for n, s, r in failures
            )
        )
    print(
        f"check_bench_regression: OK: {len(pairs)} ghost/materialize "
        f"pair(s) clear speedup >= {args.min_speedup:.2f}x or RSS ratio "
        f">= {args.min_rss_ratio:.2f}x ({doc['simd']} tier "
        f"@ {doc['git_rev']})"
    )


def run_overhead_gate(args):
    on_doc, on = load_bench_json(args.overhead_of)
    off_doc, off = load_bench_json(args.against)
    check_tiers(on_doc, args.overhead_of, off_doc, args.against,
                args.allow_tier_mismatch)
    names = matched_names(on, off, args.filter, args.overhead_of,
                          args.against)
    log_ratio_sum = 0.0
    for name in names:
        ratio = off[name]["steps_per_s"] / on[name]["steps_per_s"]
        log_ratio_sum += math.log(ratio)
        print(
            f"       {name}: {(ratio - 1.0) * 100.0:+.2f}% "
            f"({off[name]['steps_per_s']:.4g} -> "
            f"{on[name]['steps_per_s']:.4g} steps/s)"
        )
    overhead_pct = (math.exp(log_ratio_sum / len(names)) - 1.0) * 100.0
    if overhead_pct > args.max_overhead_pct:
        fail(
            f"geomean overhead {overhead_pct:+.2f}% across {len(names)} "
            f"benchmark(s) is above the {args.max_overhead_pct:.2f}% ceiling"
        )
    print(
        f"check_bench_regression: OK: geomean overhead {overhead_pct:+.2f}% "
        f"across {len(names)} benchmark(s), within the "
        f"{args.max_overhead_pct:.2f}% ceiling ({on_doc['simd']} tier)"
    )


def run_baseline_gate(args):
    fresh_doc, fresh = load_bench_json(args.fresh)
    base_doc, base = load_bench_json(args.baseline)
    check_tiers(fresh_doc, args.fresh, base_doc, args.baseline,
                args.allow_tier_mismatch)
    names = matched_names(fresh, base, args.filter, args.fresh, args.baseline)
    failures = []
    for name in names:
        ratio = fresh[name]["steps_per_s"] / base[name]["steps_per_s"]
        status = "ok" if ratio >= args.min_ratio else "FAIL"
        print(
            f"  {status:4s} {name}: {ratio:.2f}x of baseline "
            f"({base[name]['steps_per_s']:.4g} -> "
            f"{fresh[name]['steps_per_s']:.4g} steps/s)"
        )
        if ratio < args.min_ratio:
            failures.append((name, ratio))
    if failures:
        fail(
            f"{len(failures)}/{len(names)} benchmark(s) regressed below "
            f"{args.min_ratio:.2f}x of the committed baseline "
            f"({args.baseline} @ {base_doc['git_rev']}): "
            + ", ".join(f"{n} ({r:.2f}x)" for n, r in failures)
        )
    print(
        f"check_bench_regression: OK: {len(names)} benchmark(s) within the "
        f"tolerance band (>= {args.min_ratio:.2f}x of baseline "
        f"@ {base_doc['git_rev']})"
    )


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-check":
        self_check()
        return

    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--speedup-of", metavar="FAST_JSON",
                        help="faster run for the speedup gate")
    parser.add_argument("--over", metavar="SLOW_JSON",
                        help="slower run the speedup is measured against")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="per-benchmark speedup floor (default 2.0)")
    parser.add_argument("--fresh", metavar="JSON",
                        help="freshly measured run for the baseline gate")
    parser.add_argument("--baseline", metavar="JSON",
                        help="committed baseline the fresh run must not "
                             "regress below")
    parser.add_argument("--min-ratio", type=float, default=0.25,
                        help="fresh/baseline steps_per_s floor (default 0.25)")
    parser.add_argument("--overhead-of", metavar="ON_JSON",
                        help="instrumented run for the overhead gate")
    parser.add_argument("--against", metavar="OFF_JSON",
                        help="uninstrumented same-tier run the overhead is "
                             "measured against")
    parser.add_argument("--max-overhead-pct", type=float, default=2.0,
                        help="geomean steps_per_s overhead ceiling in "
                             "percent (default 2.0)")
    parser.add_argument("--clip-mode-gate", metavar="JSON",
                        help="single run whose /ghost/ rows must beat their "
                             "/materialize/ counterparts on speedup or "
                             "peak-RSS ratio")
    parser.add_argument("--min-rss-ratio", type=float, default=4.0,
                        help="materialize/ghost peak-RSS floor for the "
                             "clip-mode gate (default 4.0)")
    parser.add_argument("--filter", metavar="REGEX",
                        help="only gate benchmark names matching this regex")
    parser.add_argument("--allow-tier-mismatch", action="store_true",
                        help="permit comparing files recorded under "
                             "different (or identical, for --speedup-of) "
                             "simd tiers")
    args = parser.parse_args()

    speedup_mode = args.speedup_of is not None or args.over is not None
    baseline_mode = args.fresh is not None or args.baseline is not None
    clip_mode = args.clip_mode_gate is not None
    overhead_mode = args.overhead_of is not None or args.against is not None
    if speedup_mode + baseline_mode + clip_mode + overhead_mode != 1:
        fail("pick one mode: --speedup-of/--over, --fresh/--baseline, "
             "--clip-mode-gate, or --overhead-of/--against")
    if speedup_mode:
        if not (args.speedup_of and args.over):
            fail("--speedup-of and --over must be given together")
        run_speedup_gate(args)
    elif clip_mode:
        run_clip_mode_gate(args)
    elif overhead_mode:
        if not (args.overhead_of and args.against):
            fail("--overhead-of and --against must be given together")
        run_overhead_gate(args)
    else:
        if not (args.fresh and args.baseline):
            fail("--fresh and --baseline must be given together")
        run_baseline_gate(args)


if __name__ == "__main__":
    main()
