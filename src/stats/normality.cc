#include "stats/normality.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

NormalityReport AnalyzeNormality(const std::vector<double>& samples) {
  GEODP_CHECK_GE(samples.size(), 4u);
  NormalityReport report;
  report.count = static_cast<int64_t>(samples.size());
  const double n = static_cast<double>(samples.size());

  double mean = 0.0;
  for (double x : samples) mean += x;
  mean /= n;

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double x : samples) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  GEODP_CHECK_GT(m2, 0.0) << "normality analysis needs non-zero variance";

  report.mean = mean;
  report.stddev = std::sqrt(m2);
  report.skewness = m3 / std::pow(m2, 1.5);
  report.excess_kurtosis = m4 / (m2 * m2) - 3.0;
  report.jarque_bera =
      n / 6.0 *
      (report.skewness * report.skewness +
       report.excess_kurtosis * report.excess_kurtosis / 4.0);
  return report;
}

bool LooksGaussian(const NormalityReport& report, double tolerance) {
  return std::fabs(report.skewness) < tolerance &&
         std::fabs(report.excess_kurtosis) < tolerance;
}

}  // namespace geodp
