// Strong typedefs for the privacy-critical double parameters that travel
// together through the clipping and calibration APIs. A clip threshold C,
// a noise multiplier sigma and an L2 sensitivity are all "just doubles",
// and every transposition of one for another is a silent privacy bug (the
// clang-tidy easily-swappable-parameters debt in ROADMAP item 5). Each
// wrapper is an explicit single-value type: construction names the unit at
// the call site and `.value()` unwraps it where the arithmetic happens.
//
// These are deliberately minimal — no arithmetic operators, no implicit
// conversions — because the point is to force the caller to say which
// quantity a literal is, not to build a units system.

#ifndef GEODP_BASE_UNITS_H_
#define GEODP_BASE_UNITS_H_

namespace geodp {
namespace internal {

// One tagged wrapper per unit; the Tag type only disambiguates overloads.
template <typename Tag>
class UnitDouble {
 public:
  explicit constexpr UnitDouble(double value) : value_(value) {}
  constexpr double value() const { return value_; }

 private:
  double value_;
};

}  // namespace internal

/// L2 clip threshold C: the per-sample sensitivity bound every Clipper
/// guarantees (paper Eq. 6).
using ClipThreshold = internal::UnitDouble<struct ClipThresholdTag>;

/// Noise multiplier sigma: noise stddev per unit of sensitivity.
using NoiseMultiplier = internal::UnitDouble<struct NoiseMultiplierTag>;

/// L2 sensitivity of a released quantity (for one DP-SGD batch sum this
/// equals the clip threshold, but the two play different roles).
using Sensitivity = internal::UnitDouble<struct SensitivityTag>;

/// Privacy budget epsilon of an (epsilon, delta)-DP guarantee. Used where
/// epsilon is an *input* (a target budget, a recorded Laplace spend);
/// computed epsilons stay plain doubles.
using Epsilon = internal::UnitDouble<struct EpsilonTag>;

/// Failure probability delta of an (epsilon, delta)-DP guarantee. Delta
/// and epsilon ride through every accounting call together, and both are
/// small dimensionless doubles — exactly the transposition this header
/// exists to make un-compilable.
using Delta = internal::UnitDouble<struct DeltaTag>;

/// Poisson sampling rate q = batch_size / dataset_size in (0, 1].
using SamplingRate = internal::UnitDouble<struct SamplingRateTag>;

}  // namespace geodp

#endif  // GEODP_BASE_UNITS_H_
