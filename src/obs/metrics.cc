#include "obs/metrics.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/check.h"
#include "base/io/file_io.h"

namespace geodp {

std::string FormatDouble(double value) {
  std::array<char, 40> buffer;
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer.data(), buffer.size(), "%.*g", precision, value);
    if (std::strtod(buffer.data(), nullptr) == value) break;
  }
  return buffer.data();
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::ObserveHistogram(const std::string& name,
                                       const std::vector<double>& upper_bounds,
                                       double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& histogram = histograms_[name];
  if (histogram.upper_bounds.empty()) {
    GEODP_CHECK(!upper_bounds.empty()) << "histogram " << name
                                       << " needs at least one bucket bound";
    for (size_t i = 1; i < upper_bounds.size(); ++i) {
      GEODP_CHECK_LT(upper_bounds[i - 1], upper_bounds[i])
          << "histogram bounds must be strictly increasing";
    }
    histogram.upper_bounds = upper_bounds;
    histogram.counts.assign(upper_bounds.size() + 1, 0);
  }
  size_t bucket = histogram.upper_bounds.size();  // overflow by default
  for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
    if (value <= histogram.upper_bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++histogram.counts[bucket];
  ++histogram.count;
  histogram.sum += value;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

double HistogramQuantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count <= 0 || snapshot.upper_bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(snapshot.count);
  const size_t overflow = snapshot.upper_bounds.size();
  int64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.counts.size(); ++i) {
    const int64_t in_bucket = snapshot.counts[i];
    const int64_t previous = cumulative;
    cumulative += in_bucket;
    if (in_bucket == 0 || static_cast<double>(cumulative) < rank) continue;
    // Observations past the last finite bound have no upper edge to
    // interpolate toward; clamp to the largest finite bound.
    if (i == overflow) return snapshot.upper_bounds.back();
    const double upper = snapshot.upper_bounds[i];
    const double lower =
        i == 0 ? (snapshot.upper_bounds[0] > 0.0 ? 0.0 : snapshot.upper_bounds[0])
               : snapshot.upper_bounds[i - 1];
    double fraction =
        (rank - static_cast<double>(previous)) / static_cast<double>(in_bucket);
    if (fraction < 0.0) fraction = 0.0;
    return lower + (upper - lower) * fraction;
  }
  return snapshot.upper_bounds.back();
}

namespace {

void FillQuantiles(HistogramSnapshot& snapshot) {
  snapshot.p50 = HistogramQuantile(snapshot, 0.5);
  snapshot.p95 = HistogramQuantile(snapshot, 0.95);
  snapshot.p99 = HistogramQuantile(snapshot, 0.99);
}

}  // namespace

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snapshot;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return snapshot;
  snapshot.upper_bounds = it->second.upper_bounds;
  snapshot.counts = it->second.counts;
  snapshot.count = it->second.count;
  snapshot.sum = it->second.sum;
  FillQuantiles(snapshot);
  return snapshot;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snapshot;
  snapshot.counters = counters_;
  snapshot.gauges = gauges_;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot& out = snapshot.histograms[name];
    out.upper_bounds = histogram.upper_bounds;
    out.counts = histogram.counts;
    out.count = histogram.count;
    out.sum = histogram.sum;
    FillQuantiles(out);
  }
  return snapshot;
}

std::string MetricsRegistry::ToJsonl() const {
  const RegistrySnapshot snapshot = Snapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "{\"type\":\"counter\",\"name\":\"" << name << "\",\"value\":"
        << value << "}\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "{\"type\":\"gauge\",\"name\":\"" << name << "\",\"value\":"
        << FormatDouble(value) << "}\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << "{\"type\":\"histogram\",\"name\":\"" << name << "\",\"bounds\":[";
    for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << FormatDouble(histogram.upper_bounds[i]);
    }
    out << "],\"counts\":[";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << histogram.counts[i];
    }
    out << "],\"count\":" << histogram.count << ",\"sum\":"
        << FormatDouble(histogram.sum) << ",\"p50\":"
        << FormatDouble(histogram.p50) << ",\"p95\":"
        << FormatDouble(histogram.p95) << ",\"p99\":"
        << FormatDouble(histogram.p99) << "}\n";
  }
  return out.str();
}

Status MetricsRegistry::WriteJsonl(const std::string& path) const {
  return AtomicWriteFile(path, ToJsonl(), RetryPolicy{}, "obs.metrics_jsonl");
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace geodp
