// Machine-readable output for the google-benchmark binaries: a main()
// replacement that understands --bench_json_out=<path> and, after the
// normal console run, writes one JSON object summarizing every benchmark
// (name, wall-ms per iteration, steps/s, thread count) plus the git
// revision the binary was built from. CI archives these BENCH_*.json
// files so perf regressions are diffable across commits; without the
// flag the behavior is exactly BENCHMARK_MAIN().
//
// Header-only so the two google-benchmark binaries can share it without
// linking bench_util's trainer-facing helpers into their hot loops.

#ifndef GEODP_BENCH_COMMON_BENCH_JSON_H_
#define GEODP_BENCH_COMMON_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/fault_injection.h"
#include "base/simd/dispatch.h"
#include "common/peak_rss.h"
#include "obs/flight_recorder.h"
#include "obs/phase_profiler.h"

// Injected by bench/CMakeLists.txt from `git rev-parse --short HEAD`;
// "unknown" outside a git checkout (e.g. a source tarball).
#ifndef GEODP_GIT_REV
#define GEODP_GIT_REV "unknown"
#endif

namespace geodp {
namespace bench {

/// Forwards to the normal console output while keeping a copy of every
/// per-iteration run (aggregates and errored runs are excluded) for the
/// JSON dump written after the run completes.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      captured_.push_back(run);
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

inline std::string BenchJsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Writes the captured runs as one JSON object to `path`. Returns false
/// (after printing a diagnostic) when the file cannot be written.
inline bool WriteBenchJson(const std::string& path,
                           const std::string& bench_name,
                           const std::vector<JsonCaptureReporter::Run>& runs) {
  // "bench.json_out" lets the chaos tooling prove a failed results dump
  // is reported (non-zero exit) instead of silently losing the numbers.
  const int injected = FaultInjector::SimulatedErrno(
      FaultInjector::Global().Fire("bench.json_out"));
  if (injected != 0) {
    std::fprintf(stderr, "bench_json: cannot write %s: %s\n", path.c_str(),
                 std::strerror(injected));
    return false;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  // The active SIMD tier is part of a result's identity: per-tier numbers
  // are only comparable against baselines recorded under the same tier.
  std::fprintf(file,
               "{\"bench\":\"%s\",\"git_rev\":\"%s\",\"simd\":\"%s\","
               "\"results\":[",
               BenchJsonEscape(bench_name).c_str(), GEODP_GIT_REV,
               SimdTierName(ActiveSimdTier()));
  bool first = true;
  for (const auto& run : runs) {
    const double iterations = static_cast<double>(run.iterations);
    const double wall_ms = iterations > 0.0
                               ? run.real_accumulated_time / iterations * 1e3
                               : 0.0;
    const double steps_per_s = run.real_accumulated_time > 0.0
                                   ? iterations / run.real_accumulated_time
                                   : 0.0;
    // Workloads that pin the pool report their thread count as a user
    // counter named "threads"; fall back to google-benchmark's own
    // threads() arg for the rest.
    double threads = static_cast<double>(run.threads);
    const auto it = run.counters.find("threads");
    if (it != run.counters.end()) threads = it->second.value;
    // Memory column: a workload that tracks its own footprint reports a
    // "peak_rss_mb" counter; the rest fall back to the process-wide peak
    // at write time (monotone — see common/peak_rss.h).
    double peak_rss_mb = PeakRssMb();
    const auto rss_it = run.counters.find("peak_rss_mb");
    if (rss_it != run.counters.end()) peak_rss_mb = rss_it->second.value;
    std::fprintf(file,
                 "%s{\"name\":\"%s\",\"wall_ms\":%.9g,\"steps_per_s\":%.9g,"
                 "\"threads\":%d,\"peak_rss_mb\":%.9g}",
                 first ? "" : ",",
                 BenchJsonEscape(run.benchmark_name()).c_str(), wall_ms,
                 steps_per_s, static_cast<int>(threads), peak_rss_mb);
    first = false;
  }
  const bool body_ok = std::fprintf(file, "]}\n") >= 0;
  const bool close_ok = std::fclose(file) == 0;
  if (!body_ok || !close_ok) {
    std::fprintf(stderr, "bench_json: write failed for %s\n", path.c_str());
    return false;
  }
  return true;
}

/// BENCHMARK_MAIN() with --bench_json_out, --geodp_simd,
/// --geodp_profile_out and --geodp_flight_recorder support: strips the
/// geodp flags from argv (google-benchmark rejects unknown arguments),
/// runs the benchmarks with console output as usual, then writes the JSON
/// summary. The bench name recorded in the JSON is argv[0]'s basename.
/// The observability flags exist for the CI overhead gate: the same
/// benchmark runs once with recorder + profiler on and once with both
/// off, and check_bench_regression.py --overhead-of bounds the delta.
inline int BenchmarkMainWithJson(int argc, char** argv) {
  std::string json_out;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  const std::string prefix = "--bench_json_out=";
  const std::string simd_prefix = "--geodp_simd=";
  const std::string profile_prefix = "--geodp_profile_out=";
  const std::string recorder_prefix = "--geodp_flight_recorder=";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      json_out = arg.substr(prefix.size());
      continue;
    }
    if (arg.rfind(simd_prefix, 0) == 0) {
      const Status status =
          SetSimdTierFromString(arg.substr(simd_prefix.size()));
      if (!status.ok()) {
        std::fprintf(stderr, "--geodp_simd: %s\n",
                     std::string(status.message()).c_str());
        return 1;
      }
      continue;
    }
    if (arg.rfind(profile_prefix, 0) == 0) {
      EnableProfiling(arg.substr(profile_prefix.size()));
      continue;
    }
    if (arg.rfind(recorder_prefix, 0) == 0) {
      const std::string value = arg.substr(recorder_prefix.size());
      if (value != "true" && value != "false") {
        std::fprintf(stderr, "--geodp_flight_recorder: want true|false\n");
        return 1;
      }
      FlightRecorder::Global().set_enabled(value == "true");
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  std::string bench_name = argc > 0 ? argv[0] : "bench";
  const size_t slash = bench_name.find_last_of('/');
  if (slash != std::string::npos) bench_name = bench_name.substr(slash + 1);

  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (ProfilingEnabled()) {
    const Status flushed = FlushProfile();
    if (!flushed.ok()) {
      std::fprintf(stderr, "bench_json: profile flush failed: %s\n",
                   std::string(flushed.message()).c_str());
    }
  }
  if (!json_out.empty() &&
      !WriteBenchJson(json_out, bench_name, reporter.captured())) {
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace geodp

#endif  // GEODP_BENCH_COMMON_BENCH_JSON_H_
