// Tests for the MNIST IDX loader/exporter (round trips through real IDX
// bytes, header validation, truncation handling).

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/mnist_idx.h"
#include "data/synthetic_images.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MnistIdxTest, RoundTripThroughIdxFiles) {
  SyntheticImageOptions options;
  options.num_examples = 12;
  options.pixel_noise = 0.1;
  options.seed = 3;
  const InMemoryDataset original = MakeMnistLike(options);

  const std::string images_path = TempPath("imgs.idx3");
  const std::string labels_path = TempPath("lbls.idx1");
  ASSERT_TRUE(SaveMnistIdx(original, images_path, labels_path).ok());

  StatusOr<InMemoryDataset> loaded = LoadMnistIdx(images_path, labels_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 12);
  EXPECT_EQ(loaded.value().image(0).shape(),
            (std::vector<int64_t>{1, 14, 14}));
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(loaded.value().label(i), original.label(i));
    // Pixel values round-trip up to [0,1] clamping + byte quantization.
    for (int64_t p = 0; p < 196; ++p) {
      const float expected =
          std::min(std::max(original.image(i)[p], 0.0f), 1.0f);
      EXPECT_NEAR(loaded.value().image(i)[p], expected, 1.0f / 255.0f + 1e-4f);
    }
  }
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(MnistIdxTest, MaxExamplesLimitsLoad) {
  SyntheticImageOptions options;
  options.num_examples = 10;
  options.seed = 4;
  const InMemoryDataset original = MakeMnistLike(options);
  const std::string images_path = TempPath("imgs2.idx3");
  const std::string labels_path = TempPath("lbls2.idx1");
  ASSERT_TRUE(SaveMnistIdx(original, images_path, labels_path).ok());
  StatusOr<InMemoryDataset> loaded =
      LoadMnistIdx(images_path, labels_path, /*max_examples=*/4);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 4);
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(MnistIdxTest, MissingFilesFail) {
  StatusOr<InMemoryDataset> loaded =
      LoadMnistIdx("/nonexistent.idx3", "/nonexistent.idx1");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(MnistIdxTest, BadMagicFails) {
  const std::string images_path = TempPath("bad.idx3");
  const std::string labels_path = TempPath("bad.idx1");
  {
    std::ofstream out(images_path, std::ios::binary);
    out << "not an idx file at all";
  }
  {
    std::ofstream out(labels_path, std::ios::binary);
    out << "nor is this";
  }
  StatusOr<InMemoryDataset> loaded = LoadMnistIdx(images_path, labels_path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(MnistIdxTest, TruncatedDataFails) {
  SyntheticImageOptions options;
  options.num_examples = 6;
  options.seed = 5;
  const InMemoryDataset original = MakeMnistLike(options);
  const std::string images_path = TempPath("trunc.idx3");
  const std::string labels_path = TempPath("trunc.idx1");
  ASSERT_TRUE(SaveMnistIdx(original, images_path, labels_path).ok());
  // Chop the image file in half.
  {
    std::ifstream in(images_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(images_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  StatusOr<InMemoryDataset> loaded = LoadMnistIdx(images_path, labels_path);
  EXPECT_FALSE(loaded.ok());
  std::remove(images_path.c_str());
  std::remove(labels_path.c_str());
}

TEST(MnistIdxTest, CountMismatchFails) {
  SyntheticImageOptions options;
  options.num_examples = 5;
  options.seed = 6;
  const InMemoryDataset a = MakeMnistLike(options);
  options.num_examples = 7;
  const InMemoryDataset b = MakeMnistLike(options);
  const std::string images_a = TempPath("a.idx3");
  const std::string labels_a = TempPath("a.idx1");
  const std::string images_b = TempPath("b.idx3");
  const std::string labels_b = TempPath("b.idx1");
  ASSERT_TRUE(SaveMnistIdx(a, images_a, labels_a).ok());
  ASSERT_TRUE(SaveMnistIdx(b, images_b, labels_b).ok());
  // 5 images with 7 labels.
  StatusOr<InMemoryDataset> loaded = LoadMnistIdx(images_a, labels_b);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  for (const auto& p : {images_a, labels_a, images_b, labels_b}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace geodp
