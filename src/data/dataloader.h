// Batch index samplers: epoch-shuffled fixed-size batches and Poisson
// subsampling (the sampling model assumed by the RDP accountant). Both
// samplers expose their complete state for crash-safe checkpointing: a
// restored sampler continues the exact index sequence it would have
// produced uninterrupted.

#ifndef GEODP_DATA_DATALOADER_H_
#define GEODP_DATA_DATALOADER_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace geodp {

/// Serializable snapshot of a BatchSampler: generator state plus the
/// current epoch permutation and position within it.
struct BatchSamplerState {
  RngState rng;
  std::vector<int64_t> order;
  int64_t cursor = 0;
};

/// Cycles through a shuffled permutation of [0, dataset_size), reshuffling
/// at each epoch boundary; batches have exactly `batch_size` indices and
/// never contain duplicates (an epoch tail shorter than batch_size is
/// dropped and rejoins the next shuffle — reshuffling mid-batch could draw
/// an example twice, violating the sensitivity-C bound of DP-SGD).
/// A zero-size dataset (or zero batch size) yields empty batches instead
/// of aborting, so callers can surface a configuration error.
class BatchSampler {
 public:
  BatchSampler(int64_t dataset_size, int64_t batch_size, uint64_t seed,
               bool shuffle = true);

  /// Next batch of indices; reshuffles at batch boundaries across epochs.
  /// Empty when the dataset is empty; at most dataset_size indices when
  /// batch_size exceeds the dataset.
  std::vector<int64_t> NextBatch();

  int64_t batch_size() const { return batch_size_; }

  /// Checkpoint support: snapshot / restore the full sampler state.
  BatchSamplerState ExportState() const;
  void ImportState(const BatchSamplerState& state);

 private:
  void StartEpoch();

  int64_t dataset_size_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

/// Poisson subsampling: each example is included independently with
/// probability sampling_rate. Batches have random size (possibly zero).
/// The rate is clamped to [0, 1]; a zero-size dataset yields empty
/// batches.
class PoissonSampler {
 public:
  PoissonSampler(int64_t dataset_size, double sampling_rate, uint64_t seed);

  std::vector<int64_t> NextBatch();

  double sampling_rate() const { return sampling_rate_; }

  /// Checkpoint support: the only mutable state is the generator.
  RngState ExportState() const;
  void ImportState(const RngState& state);

 private:
  int64_t dataset_size_;
  double sampling_rate_;
  Rng rng_;
};

}  // namespace geodp

#endif  // GEODP_DATA_DATALOADER_H_
