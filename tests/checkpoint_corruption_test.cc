// Exhaustive corruption regression suite for the GDPC model checkpoint
// (nn/checkpoint.cc): flip a bit at EVERY byte offset and truncate at
// EVERY length — every corrupt file must produce a non-OK Status, never a
// crash, and never a partially mutated model.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "base/byte_view.h"
#include "base/rng.h"
#include "models/logistic_regression.h"
#include "nn/checkpoint.h"
#include "nn/parameter.h"

namespace geodp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Raw bytes of the model weights, for bit-exact no-mutation checks.
std::string WeightBytes(Sequential& model) {
  const Tensor flat = FlattenValues(model.Parameters());
  const geodp::ByteSpan bytes =
      geodp::AsBytes(flat.data(), static_cast<size_t>(flat.numel()));
  return std::string(bytes.data, bytes.size);
}

class CheckpointCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A deliberately tiny model keeps the exhaustive sweeps fast.
    Rng source_rng(21);
    source_ = MakeLogisticRegression(16, 4, source_rng);
    path_ = TempPath("corruption.gdpc");
    ASSERT_TRUE(SaveCheckpoint(*source_, path_).ok());
    good_bytes_ = ReadFile(path_);
    ASSERT_GT(good_bytes_.size(), 16u);

    Rng target_rng(22);  // different init than the checkpoint
    target_ = MakeLogisticRegression(16, 4, target_rng);
    target_before_ = WeightBytes(*target_);
  }

  std::unique_ptr<Sequential> source_;
  std::unique_ptr<Sequential> target_;
  std::string path_;
  std::string good_bytes_;
  std::string target_before_;
};

TEST_F(CheckpointCorruptionTest, BitFlipAtEveryOffsetIsRejected) {
  for (size_t offset = 0; offset < good_bytes_.size(); ++offset) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string bad = good_bytes_;
      bad[offset] = static_cast<char>(bad[offset] ^ mask);
      WriteFile(path_, bad);
      const Status status = LoadCheckpoint(*target_, path_);
      EXPECT_FALSE(status.ok())
          << "flip of mask " << int{mask} << " at offset " << offset
          << " was accepted";
      EXPECT_EQ(WeightBytes(*target_), target_before_)
          << "model mutated by rejected load (offset " << offset << ")";
    }
  }
}

TEST_F(CheckpointCorruptionTest, TruncationAtEveryLengthIsRejected) {
  for (size_t keep = 0; keep < good_bytes_.size(); ++keep) {
    WriteFile(path_, good_bytes_.substr(0, keep));
    const Status status = LoadCheckpoint(*target_, path_);
    EXPECT_FALSE(status.ok())
        << "truncation to " << keep << " bytes was accepted";
    EXPECT_EQ(WeightBytes(*target_), target_before_)
        << "model mutated by rejected load (keep " << keep << ")";
  }
}

TEST_F(CheckpointCorruptionTest, AppendedGarbageIsRejected) {
  WriteFile(path_, good_bytes_ + std::string(33, '\x5a'));
  // Trailing garbage after the last tensor is tolerated by the streaming
  // reader only if it never reads past the declared tensors; the GDPC
  // reader stops after `count` entries, so this stays loadable. What must
  // hold is that the loaded weights equal the source exactly.
  const Status status = LoadCheckpoint(*target_, path_);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(WeightBytes(*target_), WeightBytes(*source_));
}

TEST_F(CheckpointCorruptionTest, IntactFileRoundTripsExactly) {
  WriteFile(path_, good_bytes_);
  ASSERT_TRUE(LoadCheckpoint(*target_, path_).ok());
  EXPECT_EQ(WeightBytes(*target_), WeightBytes(*source_));
}

}  // namespace
}  // namespace geodp
