// Per-sample gradient computation for DP training (the "microbatch of 1"
// semantics of Abadi et al.): each example is run through the model
// individually, its flattened gradient is clipped, and the clipped
// gradients are averaged — the quantity the perturbers then add noise to
// (paper Eq. 7-8).

#ifndef GEODP_OPTIM_DP_SGD_H_
#define GEODP_OPTIM_DP_SGD_H_

#include <cstdint>
#include <vector>

#include "clip/clipping.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/sequential.h"

namespace geodp {

/// Result of one private gradient computation over a batch.
struct PrivateBatchGradient {
  Tensor averaged_clipped;  // (1/B) * sum_j clip(g_j)
  Tensor averaged_raw;      // (1/B) * sum_j g_j  (noise-free reference)
  double mean_loss = 0.0;   // mean per-sample loss over the batch
  std::vector<double> sample_losses;  // per-sample losses, batch order
  // Pre-clip L2 norm of each per-sample gradient, batch order. Only
  // filled when requested (telemetry pays for the extra norm pass, the
  // plain training path does not).
  std::vector<double> sample_grad_norms;  // geodp: per-sample
  int64_t batch_size = 0;
  // Samples whose loss or gradient came out non-finite (NaN/Inf). They
  // contribute zero gradient — the averages stay finite and the update is
  // still divided by the full batch size, so the sensitivity bound is
  // unaffected — and are excluded from mean_loss. sample_losses keeps the
  // raw (possibly non-finite) values so it stays batch-aligned.
  int64_t nonfinite_skipped = 0;
};

/// Runs each indexed example through the model with batch size 1, clips its
/// flattened gradient with `clipper`, and returns both the clipped and raw
/// averages. Leaves the accumulated parameter gradients zeroed. Set
/// `record_sample_norms` to also fill sample_grad_norms.
PrivateBatchGradient ComputePerSampleGradients(
    Sequential& model, SoftmaxCrossEntropy& loss,
    const InMemoryDataset& dataset, const std::vector<int64_t>& indices,
    const Clipper& clipper, bool record_sample_norms = false);

/// Mean loss of the model on up to `max_examples` examples (0 = all),
/// evaluated in batches. Does not touch gradients.
double EvaluateMeanLoss(Sequential& model, const InMemoryDataset& dataset,
                        int64_t max_examples = 0, int64_t batch_size = 128);

/// Classification accuracy of the model on the dataset.
double EvaluateAccuracy(Sequential& model, const InMemoryDataset& dataset,
                        int64_t batch_size = 128);

}  // namespace geodp

#endif  // GEODP_OPTIM_DP_SGD_H_
