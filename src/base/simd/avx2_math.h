// Vectorized double-precision log / sincos / atan2 for the AVX2 kernel
// tier, following the classic Cephes algorithms (Moshier, netlib cephes;
// the same rational approximations libm derives from). Accuracy is a few
// ulp over the argument ranges the kernels feed in (|x| < ~16 for the
// trig reductions, (0, 1) for log), which is far inside every consumer's
// tolerance; results differ from libm in the last bits, which is why the
// AVX2 tier pins its own goldens.
//
// Only kernels_avx2.cc may include this header: it requires -mavx2 -mfma.

#ifndef GEODP_BASE_SIMD_AVX2_MATH_H_
#define GEODP_BASE_SIMD_AVX2_MATH_H_

#include <immintrin.h>

#include <array>

namespace geodp {
namespace simd {
namespace avx2 {

// Horner evaluation of c[0]*x^5 + ... + c[5] (Cephes polevl, degree 5).
inline __m256d Polevl5(__m256d x, const std::array<double, 6>& c) {
  __m256d y = _mm256_set1_pd(c[0]);
  for (int i = 1; i < 6; ++i) {
    y = _mm256_fmadd_pd(y, x, _mm256_set1_pd(c[i]));
  }
  return y;
}

// Horner evaluation of x^5 + c[0]*x^4 + ... + c[4] (Cephes p1evl: leading
// coefficient 1 is implicit).
inline __m256d P1evl5(__m256d x, const std::array<double, 5>& c) {
  __m256d y = _mm256_add_pd(x, _mm256_set1_pd(c[0]));
  for (int i = 1; i < 5; ++i) {
    y = _mm256_fmadd_pd(y, x, _mm256_set1_pd(c[i]));
  }
  return y;
}

// Degree-4 polevl used by atan.
inline __m256d Polevl4(__m256d x, const std::array<double, 5>& c) {
  __m256d y = _mm256_set1_pd(c[0]);
  for (int i = 1; i < 5; ++i) {
    y = _mm256_fmadd_pd(y, x, _mm256_set1_pd(c[i]));
  }
  return y;
}

// Packs the low 32 bits of each 64-bit lane into a __m128i.
inline __m128i PackLow32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  return _mm_castps_si128(_mm_shuffle_ps(_mm_castsi128_ps(lo),
                                         _mm_castsi128_ps(hi),
                                         _MM_SHUFFLE(2, 0, 2, 0)));
}

// Natural log for normal positive inputs (Cephes log.c, rational branch).
inline __m256d Log(__m256d x) {
  static constexpr std::array<double, 6> kLogP = {
      1.01875663804580931796E-4, 4.97494994976747001425E-1,
      4.70579119878881725854E0,  1.44989225341610930846E1,
      1.79368678507819816313E1,  7.70838733755885391666E0,
  };
  static constexpr std::array<double, 5> kLogQ = {
      1.12873587189167450590E1, 4.52279145837532221105E1,
      8.29875266912776603211E1, 7.11544750618563894466E1,
      2.31251620126765340583E1,
  };
  const __m256d one = _mm256_set1_pd(1.0);

  // frexp: split into mantissa m in [0.5, 1) and integral exponent e.
  const __m256i bits = _mm256_castpd_si256(x);
  const __m256i expo_bits = _mm256_srli_epi64(bits, 52);
  __m256d e = _mm256_sub_pd(_mm256_cvtepi32_pd(PackLow32(expo_bits)),
                            _mm256_set1_pd(1022.0));
  const __m256i mant_bits = _mm256_or_si256(
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
      _mm256_set1_epi64x(0x3FE0000000000000LL));
  __m256d m = _mm256_castsi256_pd(mant_bits);

  // m < sqrt(1/2): use 2m - 1 and drop the exponent by one, else m - 1.
  const __m256d below = _mm256_cmp_pd(
      m, _mm256_set1_pd(0.70710678118654752440), _CMP_LT_OQ);
  e = _mm256_add_pd(e, _mm256_and_pd(below, _mm256_set1_pd(-1.0)));
  __m256d xm = _mm256_sub_pd(m, one);
  xm = _mm256_add_pd(xm, _mm256_and_pd(below, m));

  const __m256d z = _mm256_mul_pd(xm, xm);
  __m256d y = _mm256_mul_pd(
      xm, _mm256_div_pd(_mm256_mul_pd(z, Polevl5(xm, kLogP)),
                        P1evl5(xm, kLogQ)));
  // ln 2 split into an exact high part and a small correction so the
  // e * ln2 term loses no precision.
  y = _mm256_fnmadd_pd(e, _mm256_set1_pd(2.121944400546905827679E-4), y);
  y = _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, y);
  __m256d r = _mm256_add_pd(xm, y);
  r = _mm256_fmadd_pd(e, _mm256_set1_pd(0.693359375), r);
  return r;
}

// Simultaneous sin and cos (Cephes sin.c reduction with the sincos lane
// selection of the classic sse_mathfun routine, in double precision).
inline void SinCos(__m256d x, __m256d* sin_out, __m256d* cos_out) {
  static constexpr std::array<double, 6> kSinCof = {
      1.58962301576546568060E-10, -2.50507477628578072866E-8,
      2.75573136213857245213E-6,  -1.98412698295895385996E-4,
      8.33333333332211858878E-3,  -1.66666666666666307295E-1,
  };
  static constexpr std::array<double, 6> kCosCof = {
      -1.13585365213876817300E-11, 2.08757008419747316778E-9,
      -2.75573141792967388112E-7,  2.48015872888517179954E-5,
      -1.38888888888730564116E-3,  4.16666666666665929218E-2,
  };
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);

  const __m256d x_sign = _mm256_and_pd(x, sign_mask);
  __m256d xa = _mm256_andnot_pd(sign_mask, x);

  // j = nearest multiple-of-two octant of x / (pi/4).
  __m256d y = _mm256_floor_pd(
      _mm256_mul_pd(xa, _mm256_set1_pd(1.27323954473516268615)));  // 4/pi
  __m128i j32 = _mm256_cvttpd_epi32(y);
  j32 = _mm_and_si128(_mm_add_epi32(j32, _mm_set1_epi32(1)),
                      _mm_set1_epi32(~1));
  y = _mm256_cvtepi32_pd(j32);
  const __m256i j = _mm256_cvtepi32_epi64(j32);

  // sin flips sign in octants 4..7; cos in octants 2..5.
  const __m256d swap_sign_sin = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_and_si256(j, _mm256_set1_epi64x(4)), 61));
  const __m256d sign_cos = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_andnot_si256(_mm256_sub_epi64(j, _mm256_set1_epi64x(2)),
                          _mm256_set1_epi64x(4)),
      61));
  // Octants 0 and 4 keep the sine polynomial for sin (and cosine for cos).
  const __m256d poly_mask = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(j, _mm256_set1_epi64x(2)), _mm256_setzero_si256()));

  // Extended-precision argument reduction (Cody-Waite, three parts).
  xa = _mm256_fnmadd_pd(y, _mm256_set1_pd(7.85398125648498535156E-1), xa);
  xa = _mm256_fnmadd_pd(y, _mm256_set1_pd(3.77489470793079817668E-8), xa);
  xa = _mm256_fnmadd_pd(y, _mm256_set1_pd(2.69515142907905952645E-15), xa);

  const __m256d z = _mm256_mul_pd(xa, xa);
  // Sine polynomial: x + x z P(z).
  const __m256d poly_sin =
      _mm256_fmadd_pd(_mm256_mul_pd(z, Polevl5(z, kSinCof)), xa, xa);
  // Cosine polynomial: 1 - z/2 + z^2 P(z).
  const __m256d poly_cos = _mm256_fmadd_pd(
      _mm256_mul_pd(z, z), Polevl5(z, kCosCof),
      _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, one));

  const __m256d sin_mag = _mm256_blendv_pd(poly_cos, poly_sin, poly_mask);
  const __m256d cos_mag = _mm256_blendv_pd(poly_sin, poly_cos, poly_mask);
  *sin_out = _mm256_xor_pd(sin_mag, _mm256_xor_pd(swap_sign_sin, x_sign));
  *cos_out = _mm256_xor_pd(cos_mag, sign_cos);
}

// Arctangent (Cephes atan.c).
inline __m256d Atan(__m256d x) {
  static constexpr std::array<double, 5> kAtanP = {
      -8.750608600031904122785E-1, -1.615753718733365076637E1,
      -7.500855792314704667340E1,  -1.228866684490136173410E2,
      -6.485021904942025371773E1,
  };
  static constexpr std::array<double, 5> kAtanQ = {
      2.485846490142306297962E1, 1.650270098316988542046E2,
      4.328810604912902668951E2, 4.853903996359136964868E2,
      1.945506571482613964425E2,
  };
  constexpr double kMoreBits = 6.123233995736765886130E-17;
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d one = _mm256_set1_pd(1.0);

  const __m256d x_sign = _mm256_and_pd(x, sign_mask);
  const __m256d xa = _mm256_andnot_pd(sign_mask, x);

  // Range reduction: tan(3 pi / 8) and 0.66 split the argument into the
  // three Cephes branches, folded here into lane blends.
  const __m256d big =
      _mm256_cmp_pd(xa, _mm256_set1_pd(2.41421356237309504880), _CMP_GT_OQ);
  const __m256d mid = _mm256_andnot_pd(
      big, _mm256_cmp_pd(xa, _mm256_set1_pd(0.66), _CMP_GT_OQ));

  const __m256d x_big = _mm256_div_pd(_mm256_set1_pd(-1.0), xa);
  const __m256d x_mid = _mm256_div_pd(_mm256_sub_pd(xa, one),
                                      _mm256_add_pd(xa, one));
  __m256d xr = _mm256_blendv_pd(xa, x_mid, mid);
  xr = _mm256_blendv_pd(xr, x_big, big);

  __m256d base = _mm256_and_pd(
      big, _mm256_set1_pd(1.57079632679489661923));  // pi/2
  base = _mm256_or_pd(
      base,
      _mm256_and_pd(mid, _mm256_set1_pd(7.85398163397448309616E-1)));
  __m256d extra = _mm256_and_pd(big, _mm256_set1_pd(kMoreBits));
  extra = _mm256_or_pd(extra,
                       _mm256_and_pd(mid, _mm256_set1_pd(0.5 * kMoreBits)));

  const __m256d z = _mm256_mul_pd(xr, xr);
  __m256d p = _mm256_mul_pd(
      z, _mm256_div_pd(Polevl4(z, kAtanP), P1evl5(z, kAtanQ)));
  p = _mm256_fmadd_pd(xr, p, xr);
  p = _mm256_add_pd(p, extra);
  return _mm256_xor_pd(_mm256_add_pd(base, p), x_sign);
}

// Four-quadrant arctangent. Lanes with x == 0 are NOT handled here (the
// division below yields inf/nan); kernels_avx2.cc patches those lanes with
// std::atan2 so signed-zero semantics match libm exactly.
inline __m256d Atan2(__m256d y, __m256d x) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d q = Atan(_mm256_div_pd(y, x));
  // Left half-plane: shift by +/- pi with the sign of y.
  const __m256d x_neg = _mm256_cmp_pd(x, _mm256_setzero_pd(), _CMP_LT_OQ);
  const __m256d pi_signed = _mm256_or_pd(
      _mm256_set1_pd(3.14159265358979323846), _mm256_and_pd(y, sign_mask));
  return _mm256_add_pd(_mm256_and_pd(x_neg, pi_signed), q);
}

}  // namespace avx2
}  // namespace simd
}  // namespace geodp

#endif  // GEODP_BASE_SIMD_AVX2_MATH_H_
