#!/usr/bin/env python3
"""Validator for the flight-recorder postmortem dumps the trainer writes
next to its checkpoints (postmortem-<step>.json; src/obs/exposition.cc
PostmortemJson). A postmortem is the black box a dead run leaves behind,
so this script is strict: every schema field must be present with the
right type, the event log must be internally consistent (strictly
increasing sequence numbers, known event kinds), and the headline
"last_milestone_step" must equal the newest step-milestone event actually
recorded — a dump that disagrees with its own event log is worse than no
dump at all.

Usage:

    check_postmortem.py CKPT_DIR/postmortem-000000012.json
    check_postmortem.py --dir CKPT_DIR            # newest postmortem
    check_postmortem.py FILE --expect-attempt 12  # resume-point pinning

`--expect-attempt N` additionally asserts the dump records attempt N —
the chaos harness uses the same invariant in-process (tools/geodp_chaos.cc
CheckPostmortem): the postmortem left by a kill must name exactly the
attempt training resumes from. When the file name matches
postmortem-<digits>.json, the digits must also equal the recorded attempt.

Exits 0 when every given file validates, 1 with a diagnostic otherwise.
Uses only the standard library.

`--self-check` lints this script itself (pyflakes if available, else a
stdlib AST pass), mirroring the other scripts/ checkers.
"""

import argparse
import json
import os
import re
import sys

# FlightEventKindName in src/obs/flight_recorder.cc — keep in sync.
KNOWN_EVENT_KINDS = {
    "step",
    "status_error",
    "io_retry",
    "io_giveup",
    "degraded",
    "checkpoint_write",
    "checkpoint_miss",
    "checkpoint_prune",
    "watchdog_cancel",
    "resume",
    "note",
}

# flush_postmortem call sites in src/optim/trainer.cc — keep in sync.
KNOWN_REASONS = {"checkpoint", "fatal_status", "watchdog_cancel", "degraded"}

FILE_NAME_PATTERN = re.compile(r"^postmortem-(\d+)\.json$")


def fail(message):
    print(f"check_postmortem: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def self_check():
    """Lints this file. Prefers pyflakes; falls back to compiling the AST
    with a duplicate-name scan so the check still bites where pyflakes is
    not installed."""
    import ast

    source_path = __file__
    try:
        with open(source_path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        fail(f"self-check: cannot read {source_path}: {error}")

    try:
        from pyflakes.api import check as pyflakes_check
        from pyflakes.reporter import Reporter

        errors = pyflakes_check(
            source, source_path, Reporter(sys.stderr, sys.stderr)
        )
        if errors:
            fail(f"self-check: pyflakes reported {errors} problem(s)")
        print("check_postmortem: OK: self-check passed (pyflakes)")
        return
    except ImportError:
        pass

    try:
        tree = ast.parse(source, filename=source_path)
        compile(tree, source_path, "exec")
    except SyntaxError as error:
        fail(f"self-check: syntax error: {error}")
    top_level = [
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    duplicates = {name for name in top_level if top_level.count(name) > 1}
    if duplicates:
        fail(f"self-check: duplicate top-level definitions: {duplicates}")
    print("check_postmortem: OK: self-check passed (stdlib ast fallback)")


def require(doc, key, types, path, context):
    if key not in doc:
        fail(f"{path}: {context} missing key {key!r}")
    value = doc[key]
    # bool is an int subclass in Python; an int field must not be a bool.
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        fail(f"{path}: {context} key {key!r} is a bool, want {types}")
    if not isinstance(value, types):
        fail(
            f"{path}: {context} key {key!r} has type "
            f"{type(value).__name__}, want {types}"
        )
    return value


def validate_events(events, path):
    """Returns the step of the newest step-milestone event, or -1."""
    last_sequence = 0
    last_milestone = -1
    for index, event in enumerate(events):
        context = f"events[{index}]"
        if not isinstance(event, dict):
            fail(f"{path}: {context} is not an object")
        sequence = require(event, "sequence", int, path, context)
        require(event, "micros", int, path, context)
        kind = require(event, "kind", str, path, context)
        step = require(event, "step", int, path, context)
        require(event, "tid", int, path, context)
        require(event, "detail", str, path, context)
        if sequence <= last_sequence:
            fail(
                f"{path}: {context} sequence {sequence} not strictly "
                f"increasing (previous {last_sequence})"
            )
        last_sequence = sequence
        if kind not in KNOWN_EVENT_KINDS:
            fail(f"{path}: {context} unknown event kind {kind!r}")
        if kind == "step":
            last_milestone = step
    return last_milestone


def validate_file(path, expect_attempt):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as error:
        fail(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")

    if require(doc, "tool", str, path, "top level") != "geodp":
        fail(f"{path}: \"tool\" is not \"geodp\"")
    if require(doc, "kind", str, path, "top level") != "postmortem":
        fail(f"{path}: \"kind\" is not \"postmortem\"")
    reason = require(doc, "reason", str, path, "top level")
    if reason not in KNOWN_REASONS:
        fail(
            f"{path}: unknown reason {reason!r} "
            f"(known: {sorted(KNOWN_REASONS)})"
        )
    require(doc, "detail", str, path, "top level")
    step = require(doc, "step", int, path, "top level")
    attempt = require(doc, "attempt", int, path, "top level")
    epsilon = require(doc, "epsilon", (int, float), path, "top level")
    require(doc, "degraded", bool, path, "top level")
    recorded_milestone = require(
        doc, "last_milestone_step", int, path, "top level"
    )
    events = require(doc, "events", list, path, "top level")

    if step < 0 or attempt < 0:
        fail(f"{path}: negative step ({step}) or attempt ({attempt})")
    if attempt < step:
        fail(f"{path}: attempt {attempt} < accepted step count {step}")
    if epsilon < 0:
        fail(f"{path}: negative epsilon {epsilon}")

    derived_milestone = validate_events(events, path)
    if derived_milestone != recorded_milestone:
        fail(
            f"{path}: last_milestone_step is {recorded_milestone} but the "
            f"newest step-milestone event says {derived_milestone} — the "
            "dump disagrees with its own event log"
        )

    name_match = FILE_NAME_PATTERN.match(os.path.basename(path))
    if name_match and int(name_match.group(1)) != attempt:
        fail(
            f"{path}: file name claims attempt {int(name_match.group(1))} "
            f"but the dump records attempt {attempt}"
        )
    if expect_attempt is not None and attempt != expect_attempt:
        fail(
            f"{path}: records attempt {attempt}, expected {expect_attempt} "
            "(the resume point)"
        )
    print(
        f"check_postmortem: OK: {path}: reason={reason} attempt={attempt} "
        f"step={step} last_milestone_step={recorded_milestone} "
        f"events={len(events)}"
    )


def newest_postmortem(directory):
    try:
        names = sorted(
            name
            for name in os.listdir(directory)
            if FILE_NAME_PATTERN.match(name)
        )
    except OSError as error:
        fail(f"cannot list {directory}: {error}")
    if not names:
        fail(f"no postmortem-*.json files in {directory}")
    # Zero padding makes lexicographic order equal numeric order.
    return os.path.join(directory, names[-1])


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-check":
        self_check()
        return

    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="*", metavar="POSTMORTEM_JSON",
                        help="postmortem file(s) to validate")
    parser.add_argument("--dir", metavar="CKPT_DIR",
                        help="validate the newest postmortem-*.json in this "
                             "directory")
    parser.add_argument("--expect-attempt", type=int, metavar="N",
                        help="additionally assert the dump records attempt "
                             "N (the resume point)")
    args = parser.parse_args()

    files = list(args.files)
    if args.dir:
        files.append(newest_postmortem(args.dir))
    if not files:
        fail("nothing to validate: give file path(s) or --dir")
    for path in files:
        validate_file(path, args.expect_attempt)


if __name__ == "__main__":
    main()
