// Tests for base/byte_view.h — the audited home of type punning (lint
// rule R6) — plus byte-exact golden tests proving the codecs rebuilt on
// it (GDPT tensors, GDPC checkpoints, IDX exports) still emit exactly
// the wire bytes they did before the migration. The golden streams are
// assembled with std::memcpy and hand-rolled CRC only, so they do not
// depend on the code under test.

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/byte_view.h"
#include "base/rng.h"
#include "data/mnist_idx.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "nn/parameter.h"
#include "tensor/serialization.h"
#include "tensor/tensor.h"

namespace geodp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Appends the object's bytes via memcpy only — independent of
// byte_view.h, so golden streams are built without the code under test.
template <typename T>
void AppendPod(std::string& out, const T& value) {
  std::array<char, sizeof(T)> buffer;
  std::memcpy(buffer.data(), &value, sizeof(T));
  out.append(buffer.data(), buffer.size());
}

void AppendBigEndian32(std::string& out, uint32_t value) {
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>(value & 0xFF));
}

// Independent bitwise CRC-32 (reflected 0xEDB88320) — deliberately not
// the table implementation in base/crc32.cc, so the trailer check
// cross-validates both.
uint32_t TestCrc32(const std::string& data) {
  uint32_t state = 0xFFFFFFFFu;
  for (const char c : data) {
    state ^= static_cast<unsigned char>(c);
    for (int bit = 0; bit < 8; ++bit) {
      state = (state & 1u) ? (0xEDB88320u ^ (state >> 1)) : (state >> 1);
    }
  }
  return state ^ 0xFFFFFFFFu;
}

TEST(ByteViewTest, AsBytesMatchesMemcpy) {
  const uint32_t value = 0x01020304u;
  const ByteSpan bytes = AsBytes(value);
  ASSERT_EQ(bytes.size, sizeof(value));
  std::array<char, sizeof(value)> expected;
  std::memcpy(expected.data(), &value, sizeof(value));
  EXPECT_EQ(std::memcmp(bytes.data, expected.data(), sizeof(value)), 0);
}

TEST(ByteViewTest, FromBytesRoundTripsAnyTriviallyCopyableValue) {
  const double value = -123.456789;
  const double restored = FromBytes<double>(AsBytes(value));
  EXPECT_EQ(restored, value);
}

TEST(ByteViewTest, ElementRangeOverloadsSpanTheWholeRange) {
  std::vector<float> values = {1.0f, 2.0f, 3.0f};
  const ByteSpan bytes = AsBytes(values.data(), values.size());
  EXPECT_EQ(bytes.size, values.size() * sizeof(float));
  EXPECT_EQ(static_cast<const void*>(bytes.data),
            static_cast<const void*>(values.data()));

  // Writing through the mutable span is visible in the vector.
  const MutableByteSpan writable =
      AsWritableBytes(values.data(), values.size());
  const float replacement = 9.5f;
  std::memcpy(writable.data, &replacement, sizeof(replacement));
  EXPECT_EQ(values[0], 9.5f);
}

TEST(ByteViewTest, PunCastPreservesAddressAndConstness) {
  struct Probe {
    int x = 7;
  };
  Probe probe;
  EXPECT_EQ(static_cast<void*>(PunCast<char>(&probe)),
            static_cast<void*>(&probe));
  const Probe& const_probe = probe;
  const char* viewed = PunCast<const char>(&const_probe);
  EXPECT_EQ(static_cast<const void*>(viewed),
            static_cast<const void*>(&const_probe));
}

TEST(GoldenBytesTest, TensorWireFormatIsUnchanged) {
  const std::vector<float> data = {0.0f, 1.5f, -2.25f, 3.0f, 4.5f, -6.75f};
  const Tensor tensor = Tensor::FromVector({2, 3}, data);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(WriteTensor(tensor, out).ok());

  std::string payload = "GDPT";
  AppendPod(payload, uint32_t{2});  // version
  AppendPod(payload, uint32_t{2});  // ndim
  AppendPod(payload, int64_t{2});
  AppendPod(payload, int64_t{3});
  for (const float f : data) AppendPod(payload, f);
  std::string expected = payload;
  AppendPod(expected, static_cast<uint64_t>(payload.size()));
  AppendPod(expected, TestCrc32(payload));

  EXPECT_EQ(out.str(), expected);
}

TEST(GoldenBytesTest, CheckpointContainerFormatIsUnchanged) {
  Rng rng(11);
  Linear model(3, 2, rng);
  const std::string path = TempPath("byte_view_golden.gdpc");
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  std::string expected = "GDPC";
  const std::vector<Parameter*> params = model.Parameters();
  AppendPod(expected, static_cast<uint32_t>(params.size()));
  for (Parameter* p : params) {
    AppendPod(expected, static_cast<uint32_t>(p->name.size()));
    expected += p->name;
    std::ostringstream tensor_bytes(std::ios::binary);
    ASSERT_TRUE(WriteTensor(p->value, tensor_bytes).ok());
    expected += tensor_bytes.str();
  }

  EXPECT_EQ(ReadWholeFile(path), expected);
}

TEST(GoldenBytesTest, IdxExportFormatIsUnchanged) {
  InMemoryDataset dataset;
  dataset.Add(Tensor::FromVector({1, 2, 2}, {0.0f, 0.5f, 1.0f, 0.25f}), 3);
  dataset.Add(Tensor::FromVector({1, 2, 2}, {1.0f, 0.0f, 0.75f, 0.5f}), 1);
  const std::string images_path = TempPath("byte_view_golden_images.idx");
  const std::string labels_path = TempPath("byte_view_golden_labels.idx");
  ASSERT_TRUE(SaveMnistIdx(dataset, images_path, labels_path).ok());

  std::string images;
  AppendBigEndian32(images, 2051);  // IDX3 magic
  AppendBigEndian32(images, 2);     // examples
  AppendBigEndian32(images, 2);     // rows
  AppendBigEndian32(images, 2);     // cols
  // Pixels quantized as round(clamp(v, 0, 1) * 255).
  const std::array<unsigned char, 8> pixels = {0, 128, 255, 64,
                                               255, 0, 191, 128};
  for (const unsigned char pixel : pixels) {
    images.push_back(static_cast<char>(pixel));
  }
  std::string labels;
  AppendBigEndian32(labels, 2049);  // IDX1 magic
  AppendBigEndian32(labels, 2);
  labels.push_back(3);
  labels.push_back(1);

  EXPECT_EQ(ReadWholeFile(images_path), images);
  EXPECT_EQ(ReadWholeFile(labels_path), labels);
}

}  // namespace
}  // namespace geodp
