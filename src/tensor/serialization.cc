#include "tensor/serialization.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "base/byte_view.h"
#include "base/crc32.h"
#include "base/io/file_io.h"

namespace geodp {
namespace {

constexpr std::array<char, 4> kMagic = {'G', 'D', 'P', 'T'};
// v1: magic, version, ndim, extents, raw float32 data.
// v2 appends an integrity trailer: u64 payload length (bytes from magic
// through the end of the data) and the CRC-32 of those bytes, so torn
// writes and bit flips fail loudly at read time. v1 files (no trailer)
// are still readable.
constexpr uint32_t kLegacyVersion = 1;
constexpr uint32_t kVersion = 2;
// Refuses absurd inputs so a corrupt header cannot trigger huge allocations.
constexpr uint32_t kMaxDims = 16;
constexpr int64_t kMaxElements = int64_t{1} << 34;
// Tensor data is read in bounded chunks: a corrupt extent then fails with
// "truncated" after a small allocation instead of attempting to reserve
// the full (bogus) element count up front.
constexpr size_t kReadChunkBytes = size_t{1} << 20;

template <typename T>
void WritePod(std::ostream& out, const T& value, uint32_t& crc) {
  const ByteSpan bytes = AsBytes(value);
  out.write(bytes.data, static_cast<std::streamsize>(bytes.size));
  crc = Crc32Update(crc, bytes.data, bytes.size);
}

template <typename T>
bool ReadPod(std::istream& in, T* value, uint32_t& crc) {
  const MutableByteSpan bytes = AsWritableBytes(*value);
  in.read(bytes.data, static_cast<std::streamsize>(bytes.size));
  if (!in.good()) return false;
  crc = Crc32Update(crc, value, sizeof(T));
  return true;
}

// Reads exactly `bytes` into `data`, growing it in bounded chunks and
// updating `crc`. Growing as the bytes actually arrive (instead of
// resizing to the full claimed count up front) means a corrupt extent
// fails with "truncated" after at most one chunk past the real file
// size, rather than zero-filling a multi-gigabyte allocation first.
// Returns false on a short read.
bool ReadDataChunked(std::istream& in, std::vector<float>& data,
                     size_t bytes, uint32_t& crc) {
  size_t done = 0;
  while (done < bytes) {
    const size_t chunk = std::min(kReadChunkBytes, bytes - done);
    data.resize((done + chunk) / sizeof(float));
    char* dest = AsWritableBytes(data.data(), data.size()).data + done;
    in.read(dest, static_cast<std::streamsize>(chunk));
    const auto got = static_cast<size_t>(in.gcount());
    if (got < chunk) return false;
    crc = Crc32Update(crc, dest, got);
    done += got;
  }
  return true;
}

}  // namespace

Status WriteTensor(const Tensor& tensor, std::ostream& out) {
  uint32_t crc = Crc32Init();
  out.write(kMagic.data(), kMagic.size());
  crc = Crc32Update(crc, kMagic.data(), kMagic.size());
  uint64_t payload_length = kMagic.size();
  WritePod(out, kVersion, crc);
  payload_length += sizeof(kVersion);
  const uint32_t ndim = static_cast<uint32_t>(tensor.ndim());
  WritePod(out, ndim, crc);
  payload_length += sizeof(ndim);
  for (int i = 0; i < tensor.ndim(); ++i) {
    WritePod(out, static_cast<int64_t>(tensor.dim(i)), crc);
    payload_length += sizeof(int64_t);
  }
  const size_t data_bytes =
      static_cast<size_t>(tensor.numel()) * sizeof(float);
  if (data_bytes > 0) {
    out.write(AsBytes(tensor.data(), static_cast<size_t>(tensor.numel())).data,
              static_cast<std::streamsize>(data_bytes));
    crc = Crc32Update(crc, tensor.data(), data_bytes);
  }
  payload_length += data_bytes;
  // Integrity trailer (v2): payload length then CRC-32 of the payload.
  out.write(AsBytes(payload_length).data, sizeof(payload_length));
  const uint32_t checksum = Crc32Finish(crc);
  out.write(AsBytes(checksum).data, sizeof(checksum));
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::Ok();
}

StatusOr<Tensor> ReadTensor(std::istream& in) {
  uint32_t crc = Crc32Init();
  std::array<char, 4> magic;
  in.read(magic.data(), magic.size());
  if (!in.good() ||
      std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
    return Status::InvalidArgument("bad tensor magic");
  }
  crc = Crc32Update(crc, magic.data(), magic.size());
  uint64_t payload_length = magic.size();
  uint32_t version = 0;
  if (!ReadPod(in, &version, crc) ||
      (version != kLegacyVersion && version != kVersion)) {
    return Status::InvalidArgument("unsupported tensor version");
  }
  payload_length += sizeof(version);
  uint32_t ndim = 0;
  if (!ReadPod(in, &ndim, crc) || ndim > kMaxDims) {
    return Status::InvalidArgument("bad tensor rank");
  }
  payload_length += sizeof(ndim);
  std::vector<int64_t> shape(ndim);
  // An empty (default-constructed) tensor has rank 0 and holds no data;
  // it is not a rank-0 scalar.
  int64_t numel = ndim == 0 ? 0 : 1;
  for (uint32_t i = 0; i < ndim; ++i) {
    if (!ReadPod(in, &shape[i], crc) || shape[i] <= 0) {
      return Status::InvalidArgument("bad tensor extent");
    }
    payload_length += sizeof(int64_t);
    numel *= shape[i];
    if (numel > kMaxElements) {
      return Status::InvalidArgument("tensor too large");
    }
  }
  const size_t data_bytes = static_cast<size_t>(numel) * sizeof(float);
  std::vector<float> data;
  if (!ReadDataChunked(in, data, data_bytes, crc)) {
    return Status::InvalidArgument("truncated tensor data");
  }
  payload_length += data_bytes;
  if (version == kVersion) {
    uint64_t stored_length = 0;
    uint32_t stored_crc = 0;
    in.read(AsWritableBytes(stored_length).data, sizeof(stored_length));
    in.read(AsWritableBytes(stored_crc).data, sizeof(stored_crc));
    if (!in.good() && !in.eof()) {
      return Status::InvalidArgument("truncated tensor trailer");
    }
    if (static_cast<size_t>(in.gcount()) != sizeof(stored_crc)) {
      return Status::InvalidArgument("truncated tensor trailer");
    }
    if (stored_length != payload_length) {
      return Status::InvalidArgument("tensor payload length mismatch");
    }
    if (stored_crc != Crc32Finish(crc)) {
      return Status::InvalidArgument("tensor checksum mismatch");
    }
  }
  // A rank-0 stream is an empty (default-constructed) tensor;
  // FromVector would treat the empty shape as a scalar.
  if (shape.empty()) return Tensor();
  return Tensor::FromVector(std::move(shape), std::move(data));
}

Status SaveTensorToFile(const Tensor& tensor, const std::string& path) {
  std::ostringstream out(std::ios::binary);
  const Status written = WriteTensor(tensor, out);
  if (!written.ok()) return written;
  return AtomicWriteFile(path, out.str(), RetryPolicy{}, "tensor.file_write");
}

StatusOr<Tensor> LoadTensorFromFile(const std::string& path) {
  StatusOr<std::string> read =
      ReadFileWithRetry(path, RetryPolicy{}, "tensor.file_read");
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("cannot open for read: " + path);
    }
    return read.status();
  }
  std::istringstream in(std::move(read).value(), std::ios::binary);
  return ReadTensor(in);
}

}  // namespace geodp
