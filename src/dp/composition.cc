#include "dp/composition.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

PrivacyGuarantee BasicComposition(const PrivacyGuarantee& per_step,
                                  int64_t steps) {
  GEODP_CHECK_GE(steps, 0);  // geodp: check-ok
  return {per_step.epsilon * static_cast<double>(steps),
          per_step.delta * static_cast<double>(steps)};
}

PrivacyGuarantee AdvancedComposition(const PrivacyGuarantee& per_step,
                                     int64_t steps, double delta_slack) {
  GEODP_CHECK_GE(steps, 0);  // geodp: check-ok
  GEODP_CHECK(delta_slack > 0.0 && delta_slack < 1.0);  // geodp: check-ok
  const double k = static_cast<double>(steps);
  const double eps = per_step.epsilon;
  const double eps_total = std::sqrt(2.0 * k * std::log(1.0 / delta_slack)) *
                               eps +
                           k * eps * (std::exp(eps) - 1.0);
  return {eps_total, k * per_step.delta + delta_slack};
}

PrivacyGuarantee BestComposition(const PrivacyGuarantee& per_step,
                                 int64_t steps, double delta_slack) {
  const PrivacyGuarantee basic = BasicComposition(per_step, steps);
  const PrivacyGuarantee advanced =
      AdvancedComposition(per_step, steps, delta_slack);
  return advanced.epsilon < basic.epsilon ? advanced : basic;
}

}  // namespace geodp
