// Ablation: what to do with perturbed angles that leave their canonical
// ranges. Algorithm 1 feeds them straight to the Cartesian conversion
// (sin/cos are periodic); wrapping or clamping are plausible alternatives.
// Measures both MSEs and end-to-end LR training loss per policy.

#include "base/rng.h"
#include "common/bench_util.h"
#include "core/perturbation.h"
#include "models/logistic_regression.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

const char* HandlingName(AngleHandling handling) {
  switch (handling) {
    case AngleHandling::kNone:
      return "none (paper)";
    case AngleHandling::kWrap:
      return "wrap";
    case AngleHandling::kClamp:
      return "clamp";
  }
  return "?";
}

void Run() {
  PrintBanner(
      "Ablation: angle handling after GeoDP perturbation",
      "(design-choice ablation; not a paper table)",
      "MSE at d=512, B=256, sigma in {1, 8}, beta=0.5; plus LR training "
      "loss at sigma=8");

  const GradientDataset data = HarvestedGradients(512, /*count=*/384);

  TablePrinter mse_table({"sigma", "handling", "theta MSE", "g MSE"});
  for (double sigma : {1.0, 8.0}) {
    for (AngleHandling handling :
         {AngleHandling::kNone, AngleHandling::kWrap, AngleHandling::kClamp}) {
      GeoDpOptions options;
      options.base.clip_threshold = 0.1;
      options.base.batch_size = 256;
      options.base.noise_multiplier = sigma;
      options.beta = 0.5;
      options.angle_handling = handling;
      const GeoDpPerturber perturber(options);
      const MseResult mse =
          MeasurePerturbationMse(data, perturber, 256, 0.1, 24, 43);
      mse_table.AddRow({TablePrinter::Fmt(sigma, 1), HandlingName(handling),
                        TablePrinter::FmtSci(mse.direction_mse),
                        TablePrinter::FmtSci(mse.gradient_mse)});
    }
  }
  PrintTable(mse_table);

  const SplitDataset split = MnistLikeSplit(512, 128, /*seed=*/12);
  TablePrinter train_table({"handling", "final train loss", "test acc"});
  for (AngleHandling handling :
       {AngleHandling::kNone, AngleHandling::kWrap, AngleHandling::kClamp}) {
    Rng rng(77);
    auto model = MakeLogisticRegression(196, 10, rng);
    TrainerOptions options;
    options.method = PerturbationMethod::kGeoDp;
    options.batch_size = 128;
    options.iterations = 100;
    options.learning_rate = 2.0;
    options.noise_multiplier = 8.0;
    options.beta = 0.02;
    options.angle_handling = handling;
    options.seed = 19;
    DpTrainer trainer(model.get(), &split.train, &split.test, options);
    const TrainingResult result = trainer.Train();
    train_table.AddRow({HandlingName(handling),
                        TablePrinter::Fmt(result.final_train_loss),
                        TablePrinter::Fmt(result.test_accuracy * 100, 2) +
                            "%"});
  }
  PrintTable(train_table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
