#include "dp/privacy_ledger.h"

#include <sstream>

#include "base/check.h"
#include "dp/rdp_accountant.h"

namespace geodp {

void PrivacyLedger::RecordGaussian(double noise_multiplier, int64_t count,
                                   std::string note) {
  GEODP_CHECK_GT(noise_multiplier, 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(count, 0);  // geodp: check-ok
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kGaussian;
  event.noise_multiplier = noise_multiplier;
  event.count = count;
  event.note = std::move(note);
  events_.push_back(std::move(event));
}

void PrivacyLedger::RecordSubsampledGaussian(double noise_multiplier,
                                             double sampling_rate,
                                             int64_t count,
                                             std::string note) {
  GEODP_CHECK_GT(noise_multiplier, 0.0);  // geodp: check-ok
  GEODP_CHECK(sampling_rate > 0.0 && sampling_rate <= 1.0);  // geodp: check-ok
  GEODP_CHECK_GT(count, 0);  // geodp: check-ok
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kSubsampledGaussian;
  event.noise_multiplier = noise_multiplier;
  event.sampling_rate = sampling_rate;
  event.count = count;
  event.note = std::move(note);
  events_.push_back(std::move(event));
}

void PrivacyLedger::RecordLaplace(double epsilon, int64_t count,
                                  std::string note) {
  GEODP_CHECK_GT(epsilon, 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(count, 0);  // geodp: check-ok
  PrivacyEvent event;
  event.kind = PrivacyEvent::Kind::kLaplace;
  event.epsilon = epsilon;
  event.count = count;
  event.note = std::move(note);
  events_.push_back(std::move(event));
}

void PrivacyLedger::RecordSubsampledGaussianCoalesced(double noise_multiplier,
                                                      double sampling_rate,
                                                      std::string note) {
  if (!events_.empty()) {
    PrivacyEvent& last = events_.back();
    if (last.kind == PrivacyEvent::Kind::kSubsampledGaussian &&
        last.noise_multiplier == noise_multiplier &&
        last.sampling_rate == sampling_rate && last.note == note) {
      ++last.count;
      return;
    }
  }
  RecordSubsampledGaussian(noise_multiplier, sampling_rate, 1,
                           std::move(note));
}

void PrivacyLedger::RestoreEvents(std::vector<PrivacyEvent> events) {
  events_ = std::move(events);
}

int64_t PrivacyLedger::TotalReleases() const {
  int64_t total = 0;
  for (const PrivacyEvent& event : events_) total += event.count;
  return total;
}

PrivacyGuarantee PrivacyLedger::ComposedGuarantee(double delta) const {
  GEODP_CHECK(delta > 0.0 && delta < 1.0);  // geodp: check-ok
  RdpAccountant accountant;
  double laplace_epsilon = 0.0;
  bool has_gaussian = false;
  for (const PrivacyEvent& event : events_) {
    switch (event.kind) {
      case PrivacyEvent::Kind::kGaussian:
        accountant.AddGaussianSteps(event.noise_multiplier, event.count);
        has_gaussian = true;
        break;
      case PrivacyEvent::Kind::kSubsampledGaussian:
        accountant.AddSubsampledGaussianSteps(event.noise_multiplier,
                                              event.sampling_rate,
                                              event.count);
        has_gaussian = true;
        break;
      case PrivacyEvent::Kind::kLaplace:
        laplace_epsilon +=
            event.epsilon * static_cast<double>(event.count);
        break;
    }
  }
  const double gaussian_epsilon =
      has_gaussian ? accountant.GetEpsilon(delta) : 0.0;
  return {gaussian_epsilon + laplace_epsilon, has_gaussian ? delta : 0.0};
}

int64_t PrivacyLedger::OptimalOrder(double delta) const {
  GEODP_CHECK(delta > 0.0 && delta < 1.0);  // geodp: check-ok
  RdpAccountant accountant;
  bool has_gaussian = false;
  for (const PrivacyEvent& event : events_) {
    switch (event.kind) {
      case PrivacyEvent::Kind::kGaussian:
        accountant.AddGaussianSteps(event.noise_multiplier, event.count);
        has_gaussian = true;
        break;
      case PrivacyEvent::Kind::kSubsampledGaussian:
        accountant.AddSubsampledGaussianSteps(event.noise_multiplier,
                                              event.sampling_rate,
                                              event.count);
        has_gaussian = true;
        break;
      case PrivacyEvent::Kind::kLaplace:
        break;
    }
  }
  return has_gaussian ? accountant.GetOptimalOrder(delta) : 0;
}

std::string PrivacyLedger::Report(double delta) const {
  std::ostringstream out;
  out << "privacy ledger (" << events_.size() << " entries, "
      << TotalReleases() << " releases)\n";
  for (const PrivacyEvent& event : events_) {
    out << "  - ";
    switch (event.kind) {
      case PrivacyEvent::Kind::kGaussian:
        out << "gaussian sigma=" << event.noise_multiplier;
        break;
      case PrivacyEvent::Kind::kSubsampledGaussian:
        out << "subsampled-gaussian sigma=" << event.noise_multiplier
            << " q=" << event.sampling_rate;
        break;
      case PrivacyEvent::Kind::kLaplace:
        out << "laplace eps=" << event.epsilon;
        break;
    }
    out << " x" << event.count;
    if (!event.note.empty()) out << "  (" << event.note << ")";
    out << "\n";
  }
  const PrivacyGuarantee guarantee = ComposedGuarantee(delta);
  // A pure-Laplace ledger composes to (eps, 0)-DP; still echo the delta
  // the caller asked about so the report is unambiguous.
  out << "  => (" << guarantee.epsilon << ", " << guarantee.delta
      << ")-DP at requested delta=" << delta;
  const int64_t order = OptimalOrder(delta);
  if (order > 0) out << "\n  => optimal RDP order: " << order;
  return out.str();
}

}  // namespace geodp
