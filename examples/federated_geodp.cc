// Example (extension, paper §VII future work): federated averaging with
// GeoDP-perturbed client updates. Each client computes a clipped model
// delta on its local shard, perturbs it (DP or GeoDP) before upload, and
// the server averages the noisy deltas.
//
//   $ ./examples/federated_geodp

#include <cstdio>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "clip/clipping.h"
#include "core/perturbation.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "optim/dp_sgd.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace geodp;

constexpr int kClients = 8;
constexpr int kRounds = 30;
constexpr int kLocalSteps = 4;
constexpr int64_t kLocalBatch = 16;
constexpr double kClip = 0.1;
constexpr double kServerLr = 1.0;
constexpr double kClientLr = 1.0;

// One client's clipped, locally-trained model delta.
Tensor ClientDelta(Sequential& model, const InMemoryDataset& shard,
                   const Tensor& global_flat, Rng& rng) {
  const auto params = model.Parameters();
  SetValuesFromFlat(params, global_flat);
  SoftmaxCrossEntropy loss;
  const FlatClipper clipper(1e9);  // local steps are not clipped per-sample
  for (int step = 0; step < kLocalSteps; ++step) {
    std::vector<int64_t> batch;
    for (int64_t i = 0; i < kLocalBatch; ++i) {
      batch.push_back(static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(shard.size()))));
    }
    const PrivateBatchGradient grads =
        ComputePerSampleGradients(model, loss, shard, batch, clipper);
    ApplyFlatUpdate(params, grads.averaged_raw, kClientLr);
  }
  Tensor delta = Sub(global_flat, FlattenValues(params));
  // Clip the *update* to bound each client's contribution.
  const double norm = delta.L2Norm();
  if (norm > kClip) delta.ScaleInPlace(static_cast<float>(kClip / norm));
  return delta;
}

double RunFederated(const std::vector<InMemoryDataset>& shards,
                    const InMemoryDataset& test, const Perturber& perturber,
                    const char* label) {
  Rng rng(7);
  auto model = MakeLogisticRegression(196, 10, rng);
  const auto params = model->Parameters();
  Tensor global_flat = FlattenValues(params);
  Rng noise_rng(8);
  Rng client_rng(9);

  for (int round = 0; round < kRounds; ++round) {
    Tensor aggregate({global_flat.numel()});
    for (int c = 0; c < kClients; ++c) {
      const Tensor delta =
          ClientDelta(*model, shards[static_cast<size_t>(c)], global_flat,
                      client_rng);
      aggregate.AddInPlace(perturber.Perturb(delta, noise_rng));
    }
    aggregate.ScaleInPlace(1.0f / kClients);
    global_flat.AxpyInPlace(static_cast<float>(-kServerLr), aggregate);
    // AxpyInPlace subtracts lr*avg_delta; delta points from new to old
    // weights, so descending means subtracting it.
  }
  SetValuesFromFlat(params, global_flat);
  const double acc = EvaluateAccuracy(*model, test);
  std::printf("%-28s final test accuracy %.2f%%\n", label, acc * 100);
  return acc;
}

}  // namespace

int main() {
  SyntheticImageOptions data_options;
  data_options.num_examples = 8 * 100 + 200;
  data_options.seed = 41;
  InMemoryDataset all = MakeMnistLike(data_options);
  const InMemoryDataset test = all.SplitTail(200);
  std::vector<InMemoryDataset> shards;
  for (int c = 0; c < kClients; ++c) {
    shards.push_back(all.SplitTail(100));
  }

  const double kSigma = 0.1;
  PerturbationOptions base;
  base.clip_threshold = kClip;
  base.batch_size = 1;  // one update per client per round
  base.noise_multiplier = kSigma;

  std::printf("Federated averaging, %d clients, %d rounds, sigma=%.2f\n\n",
              kClients, kRounds, kSigma);

  GeoDpOptions geo_options;
  geo_options.base = base;
  geo_options.beta = 0.0005;
  const GeoDpPerturber geo(geo_options);
  const DpPerturber dp(base);
  PerturbationOptions none = base;
  none.noise_multiplier = 0.0;
  const DpPerturber noise_free(none);

  RunFederated(shards, test, noise_free, "FedAvg (no noise)");
  RunFederated(shards, test, dp, "FedAvg + DP");
  RunFederated(shards, test, geo, "FedAvg + GeoDP (beta=0.0005)");
  return 0;
}
