// Tests for the resilient I/O substrate and the trainer's graceful
// degradation on top of it: errno classification, deterministic
// retry/backoff, atomic write cleanup, the generalized multi-site fault
// injector (thread safety, probabilistic determinism), telemetry
// degraded mode (training bit-identical with every sink failing, at 1
// and 8 threads), checkpoint miss-debt bounds, prune-error counting,
// and the stall watchdog's cancel-then-resume path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/byte_view.h"
#include "base/fault_injection.h"
#include "base/io/file_io.h"
#include "base/io/retry.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "base/timer.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/parameter.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/step_observer.h"
#include "optim/trainer.h"

namespace geodp {
namespace {

using Action = FaultInjector::Action;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Every test disarms on exit so a failing assertion cannot leak an armed
// fail point into an unrelated test.
class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(ResilienceTest, TransientErrnoClassification) {
  EXPECT_TRUE(IsTransientErrno(EINTR));
  EXPECT_TRUE(IsTransientErrno(EAGAIN));
  EXPECT_TRUE(IsTransientErrno(EIO));
  EXPECT_FALSE(IsTransientErrno(ENOSPC));
  EXPECT_FALSE(IsTransientErrno(ENOENT));
  EXPECT_FALSE(IsTransientErrno(EACCES));
  EXPECT_FALSE(IsTransientErrno(0));
}

TEST_F(ResilienceTest, StatusFromErrnoMapsToTypedCodes) {
  EXPECT_EQ(StatusFromErrno(EIO, "write x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno(ENOSPC, "c").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromErrno(EDQUOT, "c").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromErrno(EROFS, "c").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromErrno(EACCES, "c").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromErrno(ENOENT, "c").code(), StatusCode::kNotFound);
  EXPECT_EQ(StatusFromErrno(EINVAL, "c").code(), StatusCode::kInternal);
  // Message carries the caller's context plus strerror text.
  const Status status = StatusFromErrno(EIO, "write telemetry.jsonl");
  EXPECT_NE(status.message().find("write telemetry.jsonl"),
            std::string::npos);
}

TEST_F(ResilienceTest, RetryStateRetriesTransientThenGivesUp) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1;  // keep the test fast
  const int64_t retries_before = IoStats::Global().retries.load();
  const int64_t giveups_before = IoStats::Global().giveups.load();

  RetryState state(policy);
  EXPECT_TRUE(state.ShouldRetry(EIO));
  EXPECT_TRUE(state.ShouldRetry(EINTR));
  EXPECT_FALSE(state.ShouldRetry(EIO));  // attempt budget exhausted
  EXPECT_EQ(IoStats::Global().retries.load(), retries_before + 2);
  EXPECT_EQ(IoStats::Global().giveups.load(), giveups_before + 1);

  // Permanent errnos never retry, however many attempts remain.
  RetryState permanent(policy);
  EXPECT_FALSE(permanent.ShouldRetry(ENOSPC));
  EXPECT_EQ(IoStats::Global().retries.load(), retries_before + 2);
  EXPECT_EQ(IoStats::Global().giveups.load(), giveups_before + 2);
}

TEST_F(ResilienceTest, RetryStateHonorsDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_us = 1;
  policy.deadline_us = 50;
  RetryState state(policy);
  // Burn monotonic time past the deadline, then a transient errno must
  // still give up.
  const int64_t start = Timer::ProcessMicros();
  while (Timer::ProcessMicros() - start < 200) {
  }
  EXPECT_FALSE(state.ShouldRetry(EIO));
}

TEST_F(ResilienceTest, AtomicWriteThenReadRoundTrips) {
  const std::string dir = FreshDir("resilience_rw");
  const std::string path = dir + "/nested/not/yet/made/data.bin";
  const std::string bytes("geodp\0payload\n", 14);  // embedded NUL
  ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());   // creates parents
  const StatusOr<std::string> read = ReadFileWithRetry(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);

  const StatusOr<std::string> missing = ReadFileWithRetry(dir + "/absent");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(ResilienceTest, TransientReadFaultIsRetriedToSuccess) {
  const std::string dir = FreshDir("resilience_read_retry");
  ASSERT_TRUE(AtomicWriteFile(dir + "/f", "payload").ok());
  ASSERT_TRUE(FaultInjector::ArmFromSpec("test.read@1:eio").ok());
  const int64_t retries_before = IoStats::Global().retries.load();
  const StatusOr<std::string> read =
      ReadFileWithRetry(dir + "/f", RetryPolicy{}, "test.read");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), "payload");
  EXPECT_GT(IoStats::Global().retries.load(), retries_before);
}

TEST_F(ResilienceTest, PermanentWriteFaultSurfacesTypedAndLeavesNoTemp) {
  const std::string dir = FreshDir("resilience_enospc");
  ASSERT_TRUE(FaultInjector::ArmFromSpec("test.write@1:enospc").ok());
  const Status status =
      AtomicWriteFile(dir + "/f", "x", RetryPolicy{}, "test.write");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // A failed attempt is all-or-nothing: no temp file debris.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ADD_FAILURE() << "unexpected file left behind: " << entry.path();
  }
  // The one-shot fault is spent; the identical call now succeeds.
  EXPECT_TRUE(
      AtomicWriteFile(dir + "/f", "x", RetryPolicy{}, "test.write").ok());
}

TEST_F(ResilienceTest, ExhaustedTransientRetriesReturnUnavailable) {
  const std::string dir = FreshDir("resilience_exhaust");
  ASSERT_TRUE(FaultInjector::ArmFromSpec("test.write@p=1:eio").ok());
  RetryPolicy policy;
  policy.initial_backoff_us = 1;
  const int64_t giveups_before = IoStats::Global().giveups.load();
  const Status status =
      AtomicWriteFile(dir + "/f", "x", policy, "test.write");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_GT(IoStats::Global().giveups.load(), giveups_before);
  EXPECT_FALSE(std::filesystem::exists(dir + "/f"));
  FaultInjector::Global().Disarm();
  EXPECT_TRUE(AtomicWriteFile(dir + "/f", "x", policy, "test.write").ok());
}

TEST_F(ResilienceTest, TornRenameWritesTruncatedBytes) {
  // torn_rename simulates a torn file landing durably in place. The
  // substrate reports success — catching the corruption is the CRC
  // layer's job (ckpt_test pins that the checkpoint format rejects it).
  const std::string dir = FreshDir("resilience_torn");
  ASSERT_TRUE(FaultInjector::ArmFromSpec("test.write@1:torn_rename").ok());
  const std::string bytes = "0123456789abcdef";
  ASSERT_TRUE(
      AtomicWriteFile(dir + "/f", bytes, RetryPolicy{}, "test.write").ok());
  const StatusOr<std::string> read = ReadFileWithRetry(dir + "/f");
  ASSERT_TRUE(read.ok());
  EXPECT_LT(read.value().size(), bytes.size());
  EXPECT_EQ(read.value(), bytes.substr(0, read.value().size()));
}

TEST_F(ResilienceTest, RetryingWriterDropsAppendsAfterStickyFailure) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("test.jsonl@p=1:eio").ok());
  RetryPolicy policy;
  policy.initial_backoff_us = 1;
  RetryingWriter writer(TempPath("resilience_writer.jsonl"), policy,
                        "test.jsonl");
  EXPECT_FALSE(writer.Open().ok());
  EXPECT_FALSE(writer.open());
  EXPECT_FALSE(writer.Append("a\n").ok());
  EXPECT_FALSE(writer.Append("b\n").ok());
  EXPECT_EQ(writer.dropped_appends(), 2);
  EXPECT_FALSE(writer.Close().ok());
}

TEST_F(ResilienceTest, MultiSiteSpecArmsIndependentSites) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("a.site@1:eio,b.site@2:eintr").ok());
  FaultInjector& faults = FaultInjector::Global();
  EXPECT_EQ(faults.Fire("a.site"), Action::kEio);
  EXPECT_EQ(faults.Fire("a.site"), Action::kNone);  // one-shot: spent
  EXPECT_EQ(faults.Fire("b.site"), Action::kNone);  // hit 1 of 2
  EXPECT_EQ(faults.Fire("b.site"), Action::kEintr);
  EXPECT_EQ(faults.hits("a.site"), 2);
  EXPECT_EQ(faults.hits("b.site"), 2);
  EXPECT_EQ(faults.hits("unarmed.site"), 0);
}

TEST_F(ResilienceTest, SimulatedErrnoMapping) {
  EXPECT_EQ(FaultInjector::SimulatedErrno(Action::kEio), EIO);
  EXPECT_EQ(FaultInjector::SimulatedErrno(Action::kEintr), EINTR);
  EXPECT_EQ(FaultInjector::SimulatedErrno(Action::kEnospc), ENOSPC);
  EXPECT_EQ(FaultInjector::SimulatedErrno(Action::kCrash), 0);
  EXPECT_EQ(FaultInjector::SimulatedErrno(Action::kShortWrite), 0);
  EXPECT_EQ(FaultInjector::SimulatedErrno(Action::kNone), 0);
}

TEST_F(ResilienceTest, MalformedSpecsRejectAndDisarm) {
  const char* bad_specs[] = {
      "nosite",          "a@0:eio",       "a@x:eio",     "a@1:explode",
      "@1:eio",          "a@p=0:eio",     "a@p=1.5:eio", "a@p=x:eio",
      "a@1:eio,",        ",a@1:eio",      "a@1",         "a@1:stall:0",
      "a@1:stall:x",     "a@1:stall:-5",
  };
  for (const char* spec : bad_specs) {
    EXPECT_FALSE(FaultInjector::ArmFromSpec(spec).ok()) << spec;
    EXPECT_FALSE(FaultInjector::Global().armed()) << spec;
  }
  EXPECT_TRUE(FaultInjector::ArmFromSpec("a@1:stall:25").ok());
  EXPECT_TRUE(FaultInjector::ArmFromSpec("").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST_F(ResilienceTest, ProbabilisticFiringIsSeedDeterministic) {
  auto firing_pattern = [](uint64_t seed) {
    EXPECT_TRUE(FaultInjector::ArmFromSpec("p.site@p=0.5:eio").ok());
    FaultInjector::Global().SeedRng(seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(FaultInjector::Global().Fire("p.site") ==
                        Action::kEio);
    }
    return pattern;
  };
  const std::vector<bool> first = firing_pattern(42);
  const std::vector<bool> second = firing_pattern(42);
  EXPECT_EQ(first, second);
  const int64_t fired = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 0);    // p=0.5 over 200 draws: both bounds are
  EXPECT_LT(fired, 200);  // astronomically safe
  EXPECT_NE(firing_pattern(7), first);
}

TEST_F(ResilienceTest, FireIsThreadSafeUnderContention) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("t.site@p=0.5:eio").ok());
  constexpr int kThreads = 8;
  constexpr int kFiresPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kFiresPerThread; ++i) {
        FaultInjector::Global().Fire("t.site");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(FaultInjector::Global().hits("t.site"),
            kThreads * kFiresPerThread);
}

TEST_F(ResilienceTest, StallActionBlocksThenReports) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("s.site@1:stall:10").ok());
  const int64_t start = Timer::ProcessMicros();
  EXPECT_EQ(FaultInjector::Global().Fire("s.site"), Action::kStall);
  EXPECT_GE(Timer::ProcessMicros() - start, 10 * 1000);
  EXPECT_EQ(FaultInjector::Global().Fire("s.site"), Action::kNone);
}

// ---------------------------------------------------------------------------
// Trainer-level graceful degradation.

InMemoryDataset MakeTrainSet(uint64_t seed) {
  SyntheticImageOptions options;
  options.num_examples = 80;
  options.height = 8;
  options.width = 8;
  options.seed = seed;
  return MakeSyntheticImages(options);
}

std::unique_ptr<Sequential> MakeModel(uint64_t seed) {
  Rng rng(seed);
  return MakeLogisticRegression(64, 10, rng);
}

std::string WeightBytes(Sequential& model) {
  const Tensor flat = FlattenValues(model.Parameters());
  const geodp::ByteSpan bytes =
      geodp::AsBytes(flat.data(), static_cast<size_t>(flat.numel()));
  return std::string(bytes.data, bytes.size);
}

TrainerOptions BaseOptions() {
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.batch_size = 16;
  options.iterations = 8;
  options.learning_rate = 0.5;
  options.noise_multiplier = 1.0;
  options.seed = 31;
  return options;
}

struct ObservedRun {
  std::string weights;
  bool healthy = false;
  int64_t dropped = 0;
  bool snapshot_degraded = false;
  Status status;
  bool ok = false;
};

// One training run writing telemetry through JsonlStepWriter, with the
// obs.jsonl fail point optionally armed to fail every write attempt.
ObservedRun RunWithJsonlSink(const std::string& jsonl_path,
                             bool fail_telemetry) {
  if (fail_telemetry) {
    EXPECT_TRUE(FaultInjector::ArmFromSpec("obs.jsonl@p=1:eio").ok());
  } else {
    FaultInjector::Global().Disarm();
  }
  const InMemoryDataset train = MakeTrainSet(50);
  auto model = MakeModel(7);
  JsonlStepWriter writer(jsonl_path);
  TrainingStatusPublisher publisher;
  TrainerOptions options = BaseOptions();
  options.step_observer = &writer;
  options.status_publisher = &publisher;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  ObservedRun out;
  const StatusOr<TrainingResult> run = trainer.Run();
  out.ok = run.ok();
  out.status = run.ok() ? Status::Ok() : run.status();
  FaultInjector::Global().Disarm();
  if (!run.ok()) return out;
  out.weights = WeightBytes(*model);
  out.healthy = writer.healthy();
  out.dropped = writer.dropped_records();
  out.snapshot_degraded = publisher.Latest() != nullptr &&
                          publisher.Latest()->degraded;
  writer.Close();
  return out;
}

TEST_F(ResilienceTest, TelemetryLossDegradesButNeverPerturbsTraining) {
  MetricsRegistry::Global().Reset();
  const std::string dir = FreshDir("resilience_degraded");

  SetGlobalThreadCount(1);
  const ObservedRun reference =
      RunWithJsonlSink(dir + "/ok.jsonl", /*fail_telemetry=*/false);
  ASSERT_TRUE(reference.ok) << reference.status.ToString();
  EXPECT_TRUE(reference.healthy);
  EXPECT_EQ(reference.dropped, 0);
  EXPECT_FALSE(reference.snapshot_degraded);

  const ObservedRun degraded_serial =
      RunWithJsonlSink(dir + "/deg1.jsonl", /*fail_telemetry=*/true);
  SetGlobalThreadCount(8);
  const ObservedRun degraded_parallel =
      RunWithJsonlSink(dir + "/deg8.jsonl", /*fail_telemetry=*/true);
  SetGlobalThreadCount(0);

  ASSERT_TRUE(degraded_serial.ok) << degraded_serial.status.ToString();
  ASSERT_TRUE(degraded_parallel.ok) << degraded_parallel.status.ToString();
  // Training is bit-identical with the telemetry sink failing every
  // write, at 1 and at 8 threads.
  EXPECT_EQ(degraded_serial.weights, reference.weights);
  EXPECT_EQ(degraded_parallel.weights, reference.weights);
  // The loss is visible, not silent: unhealthy sink, counted drops, the
  // sticky degraded flag in the published snapshot, and the obs.degraded
  // gauge in the global registry.
  EXPECT_FALSE(degraded_serial.healthy);
  EXPECT_EQ(degraded_serial.dropped, BaseOptions().iterations);
  EXPECT_TRUE(degraded_serial.snapshot_degraded);
  EXPECT_EQ(MetricsRegistry::Global().gauge("obs.degraded"), 1.0);
  EXPECT_GT(MetricsRegistry::Global().counter("obs.jsonl_write_errors"), 0);
}

TEST_F(ResilienceTest, CheckpointMissDebtBoundAbortsWithContext) {
  MetricsRegistry::Global().Reset();
  const InMemoryDataset train = MakeTrainSet(50);
  auto model = MakeModel(7);
  CollectingStepObserver observer;  // enables io-stat mirroring
  TrainerOptions options = BaseOptions();
  options.step_observer = &observer;
  options.checkpoint_dir = FreshDir("resilience_missdebt");
  options.checkpoint_every = 1;
  options.max_missed_checkpoints = 1;
  ASSERT_TRUE(FaultInjector::ArmFromSpec("ckpt.write_io@p=1:eio").ok());
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(run.status().message().find("consecutive checkpoint(s) missed"),
            std::string::npos);
  EXPECT_GE(MetricsRegistry::Global().counter("ckpt.missed"), 2);
  EXPECT_GT(MetricsRegistry::Global().counter("io.giveups"), 0);
}

TEST_F(ResilienceTest, CheckpointMissesWithinBoundDoNotPerturbTraining) {
  const InMemoryDataset train = MakeTrainSet(50);
  auto reference_model = MakeModel(7);
  TrainerOptions options = BaseOptions();
  {
    DpTrainer trainer(reference_model.get(), &train, nullptr, options);
    ASSERT_TRUE(trainer.Run().ok());
  }

  auto model = MakeModel(7);
  options.checkpoint_dir = FreshDir("resilience_missok");
  options.checkpoint_every = 1;
  options.max_missed_checkpoints = options.iterations;  // absorb them all
  ASSERT_TRUE(FaultInjector::ArmFromSpec("ckpt.write_io@p=1:eio").ok());
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const StatusOr<TrainingResult> run = trainer.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(WeightBytes(*model), WeightBytes(*reference_model));
}

TEST_F(ResilienceTest, PruneErrorsAreCountedNeverFatal) {
  MetricsRegistry::Global().Reset();
  const InMemoryDataset train = MakeTrainSet(50);
  auto model = MakeModel(7);
  TrainerOptions options = BaseOptions();
  options.checkpoint_dir = FreshDir("resilience_prune");
  options.checkpoint_every = 1;
  options.checkpoint_keep = 1;
  ASSERT_TRUE(FaultInjector::ArmFromSpec("ckpt.prune@p=1:eio").ok());
  DpTrainer trainer(model.get(), &train, nullptr, options);
  ASSERT_TRUE(trainer.Run().ok());
  EXPECT_GT(MetricsRegistry::Global().counter("ckpt.prune_errors"), 0);
  // Every prune failed, so the files stale pruning would have deleted are
  // still there (keep=1 but `iterations` checkpoints written).
  int64_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           options.checkpoint_dir)) {
    files += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_GT(files, 1);
}

TEST_F(ResilienceTest, StallWatchdogCancelsFlushesAndResumes) {
  const InMemoryDataset train = MakeTrainSet(50);
  TrainerOptions base = BaseOptions();
  base.iterations = 12;

  auto reference_model = MakeModel(7);
  {
    DpTrainer trainer(reference_model.get(), &train, nullptr, base);
    ASSERT_TRUE(trainer.Run().ok());
  }

  // Stalled run: attempt 3's trainer.step fire blocks for 1s while the
  // watchdog only tolerates 200ms without a heartbeat. The loop must
  // cancel cooperatively at the next attempt boundary, flush a final
  // checkpoint, and report kCancelled.
  const std::string dir = FreshDir("resilience_stall");
  auto stalled_model = MakeModel(7);
  TrainingStatusPublisher publisher;
  TrainerOptions stalled = base;
  stalled.checkpoint_dir = dir;
  stalled.checkpoint_every = 1;
  stalled.stall_timeout_ms = 200;
  stalled.status_publisher = &publisher;
  ASSERT_TRUE(FaultInjector::ArmFromSpec("trainer.step@3:stall:1000").ok());
  DpTrainer trainer(stalled_model.get(), &train, nullptr, stalled);
  const StatusOr<TrainingResult> run = trainer.Run();
  FaultInjector::Global().Disarm();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
  EXPECT_NE(run.status().message().find("stall watchdog"),
            std::string::npos);
  ASSERT_NE(publisher.Latest(), nullptr);
  EXPECT_EQ(publisher.Latest()->run_state, "cancelled");

  // The cancel path flushed a postmortem after the final checkpoint; it
  // overwrites that attempt's checkpoint postmortem, so the newest
  // postmortem-*.json in the directory carries the watchdog reason.
  std::string newest_postmortem;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("postmortem-", 0) == 0 && name > newest_postmortem) {
      newest_postmortem = name;
    }
  }
  ASSERT_FALSE(newest_postmortem.empty());
  const StatusOr<std::string> postmortem =
      ReadFileWithRetry(dir + "/" + newest_postmortem);
  ASSERT_TRUE(postmortem.ok()) << postmortem.status().ToString();
  EXPECT_NE(postmortem.value().find("\"kind\":\"postmortem\""),
            std::string::npos);
  EXPECT_NE(postmortem.value().find("\"reason\":\"watchdog_cancel\""),
            std::string::npos);
  EXPECT_NE(postmortem.value().find("\"kind\":\"watchdog_cancel\""),
            std::string::npos);  // the kWatchdogCancel flight event

  // Resume with different resilience knobs (watchdog off): the options
  // fingerprint excludes them, so the checkpoint must be accepted, and
  // the finished run must match the uninterrupted reference exactly.
  auto resumed_model = MakeModel(7);
  TrainerOptions resume = base;
  resume.checkpoint_dir = dir;
  resume.checkpoint_every = 1;
  resume.resume_from = dir;
  DpTrainer resumer(resumed_model.get(), &train, nullptr, resume);
  const StatusOr<TrainingResult> resumed = resumer.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(WeightBytes(*resumed_model), WeightBytes(*reference_model));
}

TEST_F(ResilienceTest, NegativeResilienceOptionsAreRejected) {
  const InMemoryDataset train = MakeTrainSet(50);
  auto model = MakeModel(7);
  TrainerOptions options = BaseOptions();
  options.max_missed_checkpoints = -1;
  {
    DpTrainer trainer(model.get(), &train, nullptr, options);
    EXPECT_FALSE(trainer.Run().ok());
  }
  options = BaseOptions();
  options.stall_timeout_ms = -5;
  {
    DpTrainer trainer(model.get(), &train, nullptr, options);
    EXPECT_FALSE(trainer.Run().ok());
  }
}

}  // namespace
}  // namespace geodp
