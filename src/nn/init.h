// Parameter initialization schemes.

#ifndef GEODP_NN_INIT_H_
#define GEODP_NN_INIT_H_

#include <cstdint>

#include "base/rng.h"
#include "tensor/tensor.h"

namespace geodp {

/// Kaiming/He uniform init: Uniform(-bound, bound) with
/// bound = sqrt(6 / fan_in). Suitable for layers followed by ReLU.
Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform init: bound = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(std::vector<int64_t> shape, int64_t fan_in,
                     int64_t fan_out, Rng& rng);

}  // namespace geodp

#endif  // GEODP_NN_INIT_H_
