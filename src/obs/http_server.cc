#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "base/byte_view.h"
#include "base/timer.h"

namespace geodp {
namespace {

constexpr int kAcceptPollMillis = 100;
constexpr int kRequestReadTimeoutSeconds = 5;
// Pending-connection backlog handed to listen(2). Introspection traffic
// is a handful of scrapers, so a small fixed queue is plenty.
constexpr int kListenBacklog = 16;
// Bytes pulled per recv(2) while reading a request head.
constexpr int kRecvChunkBytes = 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

IntrospectionResponse TextResponse(int status, std::string body) {
  IntrospectionResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

// Readiness/health of the run behind `publisher` per the watchdog rules in
// the header comment. `health_only` skips the readiness-specific checks
// (no-snapshot-yet, stalled run) so /healthz only trips on the budget.
IntrospectionResponse CheckHealth(const TrainingStatusPublisher* publisher,
                                  const IntrospectionServerOptions& options,
                                  bool health_only) {
  std::shared_ptr<const TrainingStatusSnapshot> snapshot;
  if (publisher != nullptr) snapshot = publisher->Latest();
  if (snapshot == nullptr) {
    if (health_only) return TextResponse(200, "ok\n");
    return TextResponse(503, "not ready: no training snapshot published\n");
  }
  if (snapshot->epsilon_budget > 0.0 &&
      snapshot->epsilon_spent > snapshot->epsilon_budget) {
    std::ostringstream out;
    out << "privacy budget exceeded: epsilon " +
               FormatDouble(snapshot->epsilon_spent) + " > budget " +
               FormatDouble(snapshot->epsilon_budget) + "\n";
    return TextResponse(503, out.str());
  }
  if (!health_only && options.stall_timeout_ms > 0 &&
      snapshot->run_state == "training") {
    const int64_t age_micros =
        Timer::ProcessMicros() - snapshot->publish_micros;
    if (age_micros > options.stall_timeout_ms * 1000) {
      return TextResponse(
          503, "not ready: training stalled (no snapshot in " +
                   std::to_string(age_micros / 1000) + " ms)\n");
    }
  }
  // Degraded (telemetry loss, training unaffected) is alive-but-impaired:
  // 200 so orchestrators do not kill a run that is still spending epsilon
  // productively, with a body monitors can alert on.
  if (snapshot->degraded) return TextResponse(200, "degraded\n");
  // Burn-rate early warning: still healthy (200), but the body flags that
  // the budget will be exhausted within the configured horizon so
  // operators can react before the hard 503 flip above.
  if (options.epsilon_warn_steps > 0 &&
      snapshot->eps_steps_to_exhaustion >= 0.0 &&
      snapshot->eps_steps_to_exhaustion <=
          static_cast<double>(options.epsilon_warn_steps)) {
    return TextResponse(
        200, "warn: epsilon budget exhausted in ~" +
                 FormatDouble(snapshot->eps_steps_to_exhaustion) +
                 " steps at the current burn rate\n");
  }
  return TextResponse(200, "ok\n");
}

}  // namespace

IntrospectionResponse RouteIntrospectionRequest(
    const std::string& method, const std::string& target,
    const MetricsRegistry* registry, const TrainingStatusPublisher* publisher,
    const IntrospectionServerOptions& options) {
  if (method != "GET") {
    return TextResponse(405, "only GET is supported\n");
  }
  const size_t query_start = target.find('?');
  const std::string path = target.substr(0, query_start);
  const std::string query = query_start == std::string::npos
                                ? std::string()
                                : target.substr(query_start + 1);

  if (path == "/metrics") {
    IntrospectionResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = PrometheusText(registry != nullptr ? registry->Snapshot()
                                                       : RegistrySnapshot());
    return response;
  }
  if (path == "/healthz") {
    return CheckHealth(publisher, options, /*health_only=*/true);
  }
  if (path == "/readyz") {
    return CheckHealth(publisher, options, /*health_only=*/false);
  }
  if (path == "/statusz") {
    std::shared_ptr<const TrainingStatusSnapshot> snapshot;
    if (publisher != nullptr) snapshot = publisher->Latest();
    if (snapshot == nullptr) {
      return TextResponse(503, "no training snapshot published yet\n");
    }
    IntrospectionResponse response;
    if (query == "format=json") {
      response.content_type = "application/json";
      response.body = StatuszJson(*snapshot);
    } else {
      response.content_type = "text/html; charset=utf-8";
      response.body = StatuszHtml(*snapshot);
    }
    return response;
  }
  if (path == "/varz") {
    std::shared_ptr<const TrainingStatusSnapshot> snapshot;
    if (publisher != nullptr) snapshot = publisher->Latest();
    IntrospectionResponse response;
    response.content_type = "application/json";
    response.body =
        VarzJson(registry != nullptr ? registry->Snapshot()
                                     : RegistrySnapshot(),
                 snapshot.get());
    return response;
  }
  if (path == "/profilez") {
    const ProfileSnapshot profile = SnapshotProfile();
    const bool enabled = ProfilingEnabled();
    IntrospectionResponse response;
    if (query == "format=json") {
      response.content_type = "application/json";
      response.body = ProfilezJson(profile, enabled);
    } else if (query == "format=folded") {
      response.body = FoldedStacks(profile);
    } else {
      response.content_type = "text/html; charset=utf-8";
      response.body = ProfilezHtml(profile, enabled);
    }
    return response;
  }
  if (path == "/flightz") {
    const FlightRecorder& recorder = FlightRecorder::Global();
    IntrospectionResponse response;
    response.content_type = "application/json";
    response.body = FlightzJson(recorder.Snapshot(), recorder.enabled(),
                                recorder.total_recorded());
    return response;
  }
  if (path == "/") {
    return TextResponse(200,
                        "geodp introspection: /metrics /healthz /readyz "
                        "/statusz /varz /profilez /flightz\n");
  }
  return TextResponse(404, "unknown endpoint " + path + "\n");
}

std::string SerializeHttpResponse(const IntrospectionResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " "
      << ReasonPhrase(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  return out.str();
}

IntrospectionServer::IntrospectionServer(
    const MetricsRegistry* registry, const TrainingStatusPublisher* publisher,
    IntrospectionServerOptions options)
    : registry_(registry),
      publisher_(publisher),
      options_(std::move(options)) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

Status IntrospectionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("introspection server already running");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("http port out of range: " +
                                   std::to_string(options_.port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, PunCast<const sockaddr>(&address), sizeof(address)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("cannot bind " + options_.bind_address + ":" +
                            std::to_string(options_.port) + ": " + error);
  }
  if (::listen(fd, kListenBacklog) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + error);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, PunCast<sockaddr>(&bound), &bound_len) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + error);
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void IntrospectionServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void IntrospectionServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd poll_fd;
    poll_fd.fd = listen_fd_;
    poll_fd.events = POLLIN;
    poll_fd.revents = 0;
    const int ready = ::poll(&poll_fd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    HandleConnection(client_fd);
    ::close(client_fd);
  }
}

void IntrospectionServer::HandleConnection(int client_fd) {
  timeval timeout;
  timeout.tv_sec = kRequestReadTimeoutSeconds;
  timeout.tv_usec = 0;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the request head, the size bound, or timeout.
  // Introspection requests are header-only, so the body (if any) is
  // ignored once the head terminator is seen.
  std::string request;
  bool oversize = false;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (static_cast<int64_t>(request.size()) >= options_.max_request_bytes) {
      oversize = true;
      break;
    }
    std::array<char, kRecvChunkBytes> buffer;
    const ssize_t n = ::recv(client_fd, buffer.data(), buffer.size(), 0);
    if (n <= 0) break;  // peer closed, error, or timeout
    request.append(buffer.data(), static_cast<size_t>(n));
  }

  IntrospectionResponse response;
  if (oversize) {
    response = TextResponse(431, "request too large\n");
  } else {
    // Parse "<METHOD> <target> HTTP/1.x" from the first line.
    const size_t line_end = request.find_first_of("\r\n");
    const std::string line =
        line_end == std::string::npos ? request : request.substr(0, line_end);
    const size_t method_end = line.find(' ');
    const size_t target_end =
        method_end == std::string::npos ? std::string::npos
                                        : line.find(' ', method_end + 1);
    if (method_end == std::string::npos ||
        target_end == std::string::npos ||
        line.compare(target_end + 1, 5, "HTTP/") != 0) {
      response = TextResponse(400, "malformed request line\n");
    } else {
      const std::string method = line.substr(0, method_end);
      const std::string target =
          line.substr(method_end + 1, target_end - method_end - 1);
      response = RouteIntrospectionRequest(method, target, registry_,
                                           publisher_, options_);
    }
  }

  const std::string wire = SerializeHttpResponse(response);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(client_fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

StatusOr<std::unique_ptr<IntrospectionHandle>> ApplyIntrospectionFlags(
    const FlagParser& parser) {
  const int64_t port = parser.GetInt("geodp_http_port");
  if (port == 0) return std::unique_ptr<IntrospectionHandle>(nullptr);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--geodp_http_port out of range: " +
                                   std::to_string(port));
  }
  auto handle = std::make_unique<IntrospectionHandle>();
  handle->publisher = std::make_unique<TrainingStatusPublisher>();
  IntrospectionServerOptions options;
  options.port = static_cast<int>(port);
  options.stall_timeout_ms = parser.GetInt("geodp_stall_timeout_ms");
  options.epsilon_warn_steps = parser.GetInt("geodp_epsilon_warn_steps");
  handle->server = std::make_unique<IntrospectionServer>(
      &MetricsRegistry::Global(), handle->publisher.get(), options);
  const Status started = handle->server->Start();
  if (!started.ok()) return started;
  return handle;
}

}  // namespace geodp
