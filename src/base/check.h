// Lightweight CHECK macros in the spirit of glog/absl. A failed check prints
// the condition, file/line and an optional streamed message, then aborts.
// These guard programmer errors (precondition violations), not recoverable
// runtime errors; recoverable paths use geodp::Status instead.

#ifndef GEODP_BASE_CHECK_H_
#define GEODP_BASE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace geodp {
namespace internal_check {

// Accumulates a streamed failure message and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lets a streamed CheckFailure expression terminate in a void context
// (operator& binds looser than operator<<).
class Voidify {
 public:
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_check
}  // namespace geodp

#define GEODP_CHECK(condition)                   \
  (condition) ? (void)0                          \
              : ::geodp::internal_check::Voidify() & \
                    ::geodp::internal_check::CheckFailure(#condition,  \
                                                          __FILE__, __LINE__)

#define GEODP_CHECK_OP(a, b, op)                                          \
  ((a)op(b)) ? (void)0                                                    \
             : ::geodp::internal_check::Voidify() &                      \
                   (::geodp::internal_check::CheckFailure(               \
                        #a " " #op " " #b, __FILE__, __LINE__)           \
                    << "(" << (a) << " vs " << (b) << ") ")

#define GEODP_CHECK_EQ(a, b) GEODP_CHECK_OP(a, b, ==)
#define GEODP_CHECK_NE(a, b) GEODP_CHECK_OP(a, b, !=)
#define GEODP_CHECK_LT(a, b) GEODP_CHECK_OP(a, b, <)
#define GEODP_CHECK_LE(a, b) GEODP_CHECK_OP(a, b, <=)
#define GEODP_CHECK_GT(a, b) GEODP_CHECK_OP(a, b, >)
#define GEODP_CHECK_GE(a, b) GEODP_CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define GEODP_DCHECK(condition) \
  while (false) GEODP_CHECK(condition)
#else
#define GEODP_DCHECK(condition) GEODP_CHECK(condition)
#endif

#endif  // GEODP_BASE_CHECK_H_
