// Kernel-level coverage for the base/simd dispatch layer.
//
// Three contracts are pinned here:
//   1. The scalar tier reproduces plain element loops bit-for-bit — it IS
//      the historical numeric behavior of the library.
//   2. Every other available tier agrees with the scalar tier exactly for
//      copy/sqrt kernels and within tight tolerances for FMA / polynomial
//      transcendental kernels.
//   3. Within any tier, results are bit-identical at 1 and 8 threads
//      (the parallel_determinism contract, re-run per tier).
//
// Edge shapes (n = 0, 1, odd tails, non-multiples of the vector width) are
// exercised on every kernel so tail handling can never regress silently.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "base/simd/dispatch.h"
#include "base/simd/kernels.h"
#include "base/thread_pool.h"
#include "clip/clipping.h"
#include "core/perturbation.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "nn/parameter.h"
#include "optim/geodp_sgd.h"
#include "optim/trainer.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

// Sizes straddling every alignment case of the 8-wide float / 4-wide double
// kernels: empty, sub-width, exact widths, width+1, and a large block.
const int64_t kEdgeSizes[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 100};

std::vector<float> RandnF32(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

std::vector<double> RandnF64(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  return v;
}

template <typename T>
double MaxAbsDiffSpan(const std::vector<T>& a, const std::vector<T>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

// Restores the entry tier after each test, so a failing ASSERT can never
// leak a forced tier into later tests.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_tier_ = ActiveSimdTier(); }
  void TearDown() override { SetSimdTier(entry_tier_); }

  SimdTier entry_tier_ = SimdTier::kScalar;
};

using SimdDispatchTest = SimdTest;
using SimdKernelTest = SimdTest;
using SimdTierDeterminismTest = SimdTest;

TEST_F(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
}

TEST_F(SimdDispatchTest, ScalarTierIsAlwaysAvailable) {
  EXPECT_TRUE(SimdTierAvailable(SimdTier::kScalar));
  const std::vector<SimdTier> tiers = AvailableSimdTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), SimdTier::kScalar);
  // DetectSimdTier picks the best available tier, which is listed last.
  EXPECT_EQ(DetectSimdTier(), tiers.back());
  EXPECT_TRUE(SimdTierAvailable(DetectSimdTier()));
}

TEST_F(SimdDispatchTest, SetFromStringParsesEveryTierName) {
  ASSERT_TRUE(SetSimdTierFromString("scalar").ok());
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);

  ASSERT_TRUE(SetSimdTierFromString("auto").ok());
  EXPECT_EQ(ActiveSimdTier(), DetectSimdTier());

  if (SimdTierAvailable(SimdTier::kAvx2)) {
    ASSERT_TRUE(SetSimdTierFromString("avx2").ok());
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kAvx2);
  } else {
    // On hosts without AVX2 the name parses but the tier is rejected.
    EXPECT_FALSE(SetSimdTierFromString("avx2").ok());
  }
}

TEST_F(SimdDispatchTest, SetFromStringRejectsUnknownNamesWithoutSideEffects) {
  ASSERT_TRUE(SetSimdTierFromString("scalar").ok());
  const Status status = SetSimdTierFromString("sse9");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sse9"), std::string::npos);
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
}

// Runs `fn` once per available tier with that tier forced active.
template <typename Fn>
void ForEachTier(Fn fn) {
  for (SimdTier tier : AvailableSimdTiers()) {
    SetSimdTier(tier);
    SCOPED_TRACE(SimdTierName(tier));
    fn(tier);
  }
}

TEST_F(SimdKernelTest, AddMatchesReferenceBitExactlyOnEveryTier) {
  for (int64_t n : kEdgeSizes) {
    const std::vector<float> x = RandnF32(n, 1000 + static_cast<uint64_t>(n));
    const std::vector<float> y0 = RandnF32(n, 2000 + static_cast<uint64_t>(n));
    std::vector<float> expected = y0;
    for (int64_t i = 0; i < n; ++i) {
      expected[static_cast<size_t>(i)] += x[static_cast<size_t>(i)];
    }
    ForEachTier([&](SimdTier) {
      std::vector<float> y = y0;
      simd::Add(y.data(), x.data(), n);
      // Lane-wise float add has a single rounding on every tier.
      EXPECT_EQ(MaxAbsDiffSpan(y, expected), 0.0) << "n=" << n;
    });
  }
}

TEST_F(SimdKernelTest, ScaleAndClipScaleAssignAreBitExactOnEveryTier) {
  for (int64_t n : kEdgeSizes) {
    const std::vector<float> src = RandnF32(n, 3000 + static_cast<uint64_t>(n));
    const float scale = 0.3710937f;
    std::vector<float> expected(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      expected[static_cast<size_t>(i)] = src[static_cast<size_t>(i)] * scale;
    }
    ForEachTier([&](SimdTier) {
      std::vector<float> scaled = src;
      simd::Scale(scaled.data(), scale, n);
      EXPECT_EQ(MaxAbsDiffSpan(scaled, expected), 0.0) << "n=" << n;

      std::vector<float> assigned(static_cast<size_t>(n), -7.0f);
      simd::ClipScaleAssign(assigned.data(), src.data(), scale, n);
      EXPECT_EQ(MaxAbsDiffSpan(assigned, expected), 0.0) << "n=" << n;
    });
  }
}

TEST_F(SimdKernelTest, AxpyScalarTierIsBitExactAndAvx2IsWithinOneFmaRounding) {
  for (int64_t n : kEdgeSizes) {
    const std::vector<float> x = RandnF32(n, 4000 + static_cast<uint64_t>(n));
    const std::vector<float> y0 = RandnF32(n, 5000 + static_cast<uint64_t>(n));
    const float alpha = -1.6254883f;
    std::vector<float> expected = y0;
    for (int64_t i = 0; i < n; ++i) {
      expected[static_cast<size_t>(i)] +=
          alpha * x[static_cast<size_t>(i)];
    }
    ForEachTier([&](SimdTier tier) {
      std::vector<float> y = y0;
      simd::Axpy(y.data(), x.data(), alpha, n);
      std::vector<float> acc = y0;
      simd::ClipAxpy(acc.data(), x.data(), alpha, n);
      // ClipAxpy is the same fused kernel under its audited R2 name.
      EXPECT_EQ(MaxAbsDiffSpan(y, acc), 0.0) << "n=" << n;
      if (tier == SimdTier::kScalar) {
        EXPECT_EQ(MaxAbsDiffSpan(y, expected), 0.0) << "n=" << n;
      } else {
        // FMA contracts mul+add into one rounding: at most 1 ulp apart.
        EXPECT_LE(MaxAbsDiffSpan(y, expected), 1e-5) << "n=" << n;
      }
    });
  }
}

TEST_F(SimdKernelTest, SumSquaresAndDotMatchDoubleReference) {
  for (int64_t n : kEdgeSizes) {
    const std::vector<float> a = RandnF32(n, 6000 + static_cast<uint64_t>(n));
    const std::vector<float> b = RandnF32(n, 7000 + static_cast<uint64_t>(n));
    double ref_ss = 0.0, ref_dot = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double ai = a[static_cast<size_t>(i)];
      const double bi = b[static_cast<size_t>(i)];
      ref_ss += ai * ai;
      ref_dot += ai * bi;
    }
    ForEachTier([&](SimdTier tier) {
      const double ss = simd::SumSquares(a.data(), n);
      const double dot = simd::Dot(a.data(), b.data(), n);
      if (tier == SimdTier::kScalar) {
        EXPECT_EQ(ss, ref_ss) << "n=" << n;
        EXPECT_EQ(dot, ref_dot) << "n=" << n;
      } else {
        // 4 double lanes re-associate the sum; error stays O(n * eps).
        EXPECT_NEAR(ss, ref_ss, 1e-12 * (1.0 + std::abs(ref_ss))) << "n=" << n;
        EXPECT_NEAR(dot, ref_dot, 1e-12 * (1.0 + std::abs(ref_dot)))
            << "n=" << n;
      }
    });
  }
}

TEST_F(SimdKernelTest, MatmulRowBlockMatchesNaiveReferenceAtOddShapes) {
  struct Shape {
    int64_t m, k, n;
  };
  // Odd everything: k below / straddling the tile, n not a multiple of 8.
  const Shape shapes[] = {{1, 1, 1},  {3, 7, 5},   {4, 37, 29},
                          {5, 64, 9}, {2, 65, 17}, {7, 130, 3}};
  for (const Shape& s : shapes) {
    const std::vector<float> a =
        RandnF32(s.m * s.k, 8000 + static_cast<uint64_t>(s.k));
    const std::vector<float> b =
        RandnF32(s.k * s.n, 9000 + static_cast<uint64_t>(s.n));
    // Reference accumulates in k-ascending order, like the kernels.
    std::vector<float> expected(static_cast<size_t>(s.m * s.n), 0.0f);
    for (int64_t i = 0; i < s.m; ++i) {
      for (int64_t kk = 0; kk < s.k; ++kk) {
        const float aik = a[static_cast<size_t>(i * s.k + kk)];
        for (int64_t j = 0; j < s.n; ++j) {
          expected[static_cast<size_t>(i * s.n + j)] +=
              aik * b[static_cast<size_t>(kk * s.n + j)];
        }
      }
    }
    ForEachTier([&](SimdTier tier) {
      std::vector<float> out(static_cast<size_t>(s.m * s.n), 0.0f);
      // Two row blocks, to cover row_begin > 0.
      const int64_t split = s.m / 2;
      simd::MatmulRowBlock(a.data(), b.data(), out.data(), 0, split, s.k, s.n);
      simd::MatmulRowBlock(a.data(), b.data(), out.data(), split, s.m, s.k,
                           s.n);
      if (tier == SimdTier::kScalar) {
        // Same k order, but the tile structure only re-orders across
        // tiles; within one tile (k <= 64) it is the plain loop.
        if (s.k <= 64) {
          EXPECT_EQ(MaxAbsDiffSpan(out, expected), 0.0)
              << s.m << "x" << s.k << "x" << s.n;
        }
      }
      EXPECT_LE(MaxAbsDiffSpan(out, expected), 1e-4)
          << s.m << "x" << s.k << "x" << s.n;
    });
  }
}

TEST_F(SimdKernelTest, PadCopyRowIsBitIdenticalAcrossTiersAndShifts) {
  const int64_t width = 19;
  const std::vector<float> src = RandnF32(width, 101);
  for (int64_t out_w : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{19},
                        int64_t{25}, int64_t{40}}) {
    for (int64_t shift : {int64_t{-25}, int64_t{-3}, int64_t{0}, int64_t{2},
                          int64_t{19}, int64_t{30}}) {
      std::vector<float> expected(static_cast<size_t>(out_w));
      for (int64_t ow = 0; ow < out_w; ++ow) {
        const int64_t iw = ow + shift;
        expected[static_cast<size_t>(ow)] =
            (iw >= 0 && iw < width) ? src[static_cast<size_t>(iw)] : 0.0f;
      }
      ForEachTier([&](SimdTier) {
        std::vector<float> dst(static_cast<size_t>(out_w), -3.0f);
        simd::PadCopyRow(dst.data(), src.data(), out_w, shift, width);
        EXPECT_EQ(MaxAbsDiffSpan(dst, expected), 0.0)
            << "out_w=" << out_w << " shift=" << shift;
      });
    }
  }
}

TEST_F(SimdKernelTest, SqrtArrayIsCorrectlyRoundedOnEveryTier) {
  for (int64_t n : kEdgeSizes) {
    std::vector<double> x = RandnF64(n, 10000 + static_cast<uint64_t>(n));
    for (double& v : x) v = v * v;  // nonnegative inputs
    std::vector<double> expected(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      expected[static_cast<size_t>(i)] =
          std::sqrt(x[static_cast<size_t>(i)]);
    }
    ForEachTier([&](SimdTier) {
      std::vector<double> out(static_cast<size_t>(n), -1.0);
      simd::SqrtArray(x.data(), out.data(), n);
      // IEEE sqrt is correctly rounded: bit-identical across tiers.
      EXPECT_EQ(MaxAbsDiffSpan(out, expected), 0.0) << "n=" << n;
    });
  }
}

TEST_F(SimdKernelTest, SinCosMatchesLibmWithinPolynomialTolerance) {
  for (int64_t n : kEdgeSizes) {
    std::vector<double> angles(static_cast<size_t>(n));
    Rng rng(11000 + static_cast<uint64_t>(n));
    for (double& a : angles) a = rng.Gaussian(0.0, 2.0);
    if (n >= 4) {
      angles[0] = 0.0;
      angles[1] = -3.14159265358979323846;
      angles[2] = 1.5707963267948966;
      angles[3] = -0.0;
    }
    std::vector<double> ref_sin(static_cast<size_t>(n)),
        ref_cos(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      ref_sin[static_cast<size_t>(i)] = std::sin(angles[static_cast<size_t>(i)]);
      ref_cos[static_cast<size_t>(i)] = std::cos(angles[static_cast<size_t>(i)]);
    }
    ForEachTier([&](SimdTier tier) {
      std::vector<double> s(static_cast<size_t>(n), -9.0),
          c(static_cast<size_t>(n), -9.0);
      simd::SinCos(angles.data(), s.data(), c.data(), n);
      if (tier == SimdTier::kScalar) {
        EXPECT_EQ(MaxAbsDiffSpan(s, ref_sin), 0.0) << "n=" << n;
        EXPECT_EQ(MaxAbsDiffSpan(c, ref_cos), 0.0) << "n=" << n;
      } else {
        EXPECT_LE(MaxAbsDiffSpan(s, ref_sin), 1e-12) << "n=" << n;
        EXPECT_LE(MaxAbsDiffSpan(c, ref_cos), 1e-12) << "n=" << n;
      }
    });
  }
}

TEST_F(SimdKernelTest, Atan2MatchesLibmIncludingAxesAndSignedZero) {
  for (int64_t n : kEdgeSizes) {
    std::vector<double> y = RandnF64(n, 12000 + static_cast<uint64_t>(n));
    std::vector<double> x = RandnF64(n, 13000 + static_cast<uint64_t>(n));
    if (n >= 8) {
      // The exact quadrant/axis conventions ToSpherical depends on.
      y[0] = 1.0, x[0] = 0.0;    // +pi/2
      y[1] = -1.0, x[1] = 0.0;   // -pi/2
      y[2] = 0.0, x[2] = -2.0;   // +pi
      y[3] = -0.0, x[3] = -2.0;  // -pi
      y[4] = 0.0, x[4] = 3.0;    // +0
      y[5] = -0.0, x[5] = 3.0;   // -0
      y[6] = 0.0, x[6] = 0.0;    // +0 by convention
      y[7] = 5.0, x[7] = -0.0;   // +pi/2
    }
    std::vector<double> expected(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      expected[static_cast<size_t>(i)] = std::atan2(
          y[static_cast<size_t>(i)], x[static_cast<size_t>(i)]);
    }
    ForEachTier([&](SimdTier tier) {
      std::vector<double> out(static_cast<size_t>(n), -9.0);
      simd::Atan2(y.data(), x.data(), out.data(), n);
      if (tier == SimdTier::kScalar) {
        EXPECT_EQ(MaxAbsDiffSpan(out, expected), 0.0) << "n=" << n;
      } else {
        EXPECT_LE(MaxAbsDiffSpan(out, expected), 1e-12) << "n=" << n;
        // x == 0 lanes are patched with libm: exactly equal, right signs.
        for (int64_t i = 0; i < n; ++i) {
          if (x[static_cast<size_t>(i)] == 0.0) {
            EXPECT_EQ(out[static_cast<size_t>(i)],
                      expected[static_cast<size_t>(i)])
                << "n=" << n << " i=" << i;
          }
        }
      }
    });
  }
}

TEST_F(SimdKernelTest, GaussianAddScalarTierReplaysPlainGaussianCalls) {
  SetSimdTier(SimdTier::kScalar);
  for (int64_t n : kEdgeSizes) {
    const double stddev = 2.5;
    Rng kernel_stream(14000 + static_cast<uint64_t>(n));
    std::vector<double> dst(static_cast<size_t>(n), 1.0);
    simd::GaussianAdd(kernel_stream, stddev, dst.data(), n);

    Rng ref_stream(14000 + static_cast<uint64_t>(n));
    std::vector<double> expected(static_cast<size_t>(n), 1.0);
    for (double& v : expected) v += ref_stream.Gaussian(0.0, stddev);
    EXPECT_EQ(MaxAbsDiffSpan(dst, expected), 0.0) << "n=" << n;

    Rng kernel_stream32(14000 + static_cast<uint64_t>(n));
    std::vector<float> dst32(static_cast<size_t>(n), 1.0f);
    simd::GaussianAdd(kernel_stream32, stddev, dst32.data(), n);
    Rng ref_stream32(14000 + static_cast<uint64_t>(n));
    std::vector<float> expected32(static_cast<size_t>(n), 1.0f);
    for (float& v : expected32) {
      v += static_cast<float>(ref_stream32.Gaussian(0.0, stddev));
    }
    EXPECT_EQ(MaxAbsDiffSpan(dst32, expected32), 0.0) << "n=" << n;
  }
}

TEST_F(SimdKernelTest, GaussianAddTiersConsumeTheSameUniformsAndAgreeClosely) {
  if (!SimdTierAvailable(SimdTier::kAvx2)) {
    GTEST_SKIP() << "AVX2 tier not available on this host";
  }
  for (int64_t n : kEdgeSizes) {
    const double stddev = 1.5;
    SetSimdTier(SimdTier::kScalar);
    Rng scalar_stream(15000 + static_cast<uint64_t>(n));
    std::vector<double> scalar_out(static_cast<size_t>(n), 0.0);
    simd::GaussianAdd(scalar_stream, stddev, scalar_out.data(), n);

    SetSimdTier(SimdTier::kAvx2);
    Rng avx2_stream(15000 + static_cast<uint64_t>(n));
    std::vector<double> avx2_out(static_cast<size_t>(n), 0.0);
    simd::GaussianAdd(avx2_stream, stddev, avx2_out.data(), n);

    // Same stream, same Box-Muller pairs; only the log/sincos rounding
    // differs, so every variate agrees to ~1 ulp of its magnitude.
    EXPECT_LE(MaxAbsDiffSpan(scalar_out, avx2_out), 1e-10) << "n=" << n;

    // Repeating the AVX2 call from the same seed is bit-identical.
    Rng again(15000 + static_cast<uint64_t>(n));
    std::vector<double> avx2_again(static_cast<size_t>(n), 0.0);
    simd::GaussianAdd(again, stddev, avx2_again.data(), n);
    EXPECT_EQ(MaxAbsDiffSpan(avx2_out, avx2_again), 0.0) << "n=" << n;
  }
}

// --- Per-tier 1-vs-8-thread determinism -----------------------------------
//
// parallel_determinism_test pins the thread-count contract under the
// default tier; these re-run the load-bearing cases with each tier forced,
// so an AVX2 kernel that leaked chunk-position or thread dependence would
// be caught even on hosts where scalar is the default.

template <typename Fn>
auto AtThreadCounts(Fn fn) {
  SetGlobalThreadCount(1);
  auto serial = fn();
  SetGlobalThreadCount(8);
  auto parallel = fn();
  SetGlobalThreadCount(0);
  return std::make_pair(std::move(serial), std::move(parallel));
}

TEST_F(SimdTierDeterminismTest, MatmulBitIdenticalPerTier) {
  ForEachTier([&](SimdTier) {
    const auto [serial, parallel] = AtThreadCounts([] {
      Rng rng(3);
      const Tensor a = Tensor::Randn({37, 53}, rng);
      const Tensor b = Tensor::Randn({53, 29}, rng);
      return Matmul(a, b);
    });
    EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
  });
}

TEST_F(SimdTierDeterminismTest, ClipAndSumBitIdenticalPerTier) {
  ForEachTier([&](SimdTier) {
    const auto [serial, parallel] = AtThreadCounts([] {
      Rng rng(7);
      std::vector<Tensor> grads;
      for (int i = 0; i < 23; ++i) grads.push_back(Tensor::Randn({129}, rng));
      const FlatClipper clipper(0.1);
      return ClipAndSum(grads, clipper);
    });
    EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
  });
}

TEST_F(SimdTierDeterminismTest, GeoDpPerturbBitIdenticalPerTier) {
  ForEachTier([&](SimdTier) {
    const auto [serial, parallel] = AtThreadCounts([] {
      GeoDpOptions options;
      options.base.clip_threshold = 0.1;
      options.base.batch_size = 16;
      options.base.noise_multiplier = 1.0;
      options.beta = 0.1;
      const GeoDpPerturber perturber(options);
      Rng data_rng(17), noise_rng(19);
      const Tensor g = Tensor::Randn({10000}, data_rng);
      return perturber.Perturb(g, noise_rng);
    });
    EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
  });
}

TEST_F(SimdTierDeterminismTest, TrainedWeightsBitIdenticalPerTier) {
  SyntheticImageOptions data_options;
  data_options.num_examples = 48;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = 43;
  const InMemoryDataset train = MakeSyntheticImages(data_options);

  ForEachTier([&](SimdTier) {
    const auto [serial, parallel] = AtThreadCounts([&] {
      Rng rng(47);
      auto model = MakeLogisticRegression(64, 10, rng);
      TrainerOptions options;
      options.method = PerturbationMethod::kGeoDp;
      options.batch_size = 16;
      options.iterations = 4;
      options.learning_rate = 0.5;
      options.noise_multiplier = 1.0;
      options.seed = 53;
      DpTrainer trainer(model.get(), &train, nullptr, options);
      trainer.Train();
      return FlattenValues(model->Parameters());
    });
    EXPECT_EQ(MaxAbsDiff(serial, parallel), 0.0);
  });
}

// Proof the dispatch is not inert: FMA contraction makes the AVX2 matmul
// round differently from scalar, so forcing different tiers must produce
// different bits on a float-accumulated kernel.
TEST_F(SimdTierDeterminismTest, TiersProduceDistinctRoundingOnFmaKernels) {
  const std::vector<SimdTier> tiers = AvailableSimdTiers();
  if (tiers.size() < 2) GTEST_SKIP() << "only one tier built";

  const auto matmul_once = [] {
    Rng rng(3);
    const Tensor a = Tensor::Randn({37, 53}, rng);
    const Tensor b = Tensor::Randn({53, 29}, rng);
    return Matmul(a, b);
  };
  SetSimdTier(tiers.front());
  const Tensor base = matmul_once();
  for (size_t t = 1; t < tiers.size(); ++t) {
    SetSimdTier(tiers[t]);
    const Tensor other = matmul_once();
    EXPECT_GT(MaxAbsDiff(base, other), 0.0)
        << SimdTierName(tiers[t])
        << " matmul bit-identical to scalar — dispatch may be inert";
    EXPECT_LE(MaxAbsDiff(base, other), 1e-4) << SimdTierName(tiers[t]);
  }
}

// Cross-tier sanity on the end-to-end pipeline: forcing a different tier
// changes rounding, not semantics — trained weights stay close. (They may
// even be bit-identical at this scale: per-tier gradient differences of
// ~1e-10 fall below float weight spacing after the lr multiply.)
TEST_F(SimdTierDeterminismTest, TiersAgreeOnTrainingWithinTolerance) {
  const std::vector<SimdTier> tiers = AvailableSimdTiers();
  if (tiers.size() < 2) GTEST_SKIP() << "only one tier built";

  SyntheticImageOptions data_options;
  data_options.num_examples = 48;
  data_options.height = 8;
  data_options.width = 8;
  data_options.seed = 61;
  const InMemoryDataset train = MakeSyntheticImages(data_options);
  const auto train_once = [&] {
    Rng rng(67);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions options;
    options.method = PerturbationMethod::kGeoDp;
    options.batch_size = 16;
    options.iterations = 2;
    options.learning_rate = 0.1;
    options.noise_multiplier = 1.0;
    options.seed = 71;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    trainer.Train();
    return FlattenValues(model->Parameters());
  };

  SetSimdTier(tiers.front());
  const Tensor base = train_once();
  for (size_t t = 1; t < tiers.size(); ++t) {
    SetSimdTier(tiers[t]);
    const Tensor other = train_once();
    EXPECT_LE(MaxAbsDiff(base, other), 1e-2) << SimdTierName(tiers[t]);
  }
}

}  // namespace
}  // namespace geodp
