// Tests for the three model families: output shapes, parameter counts and
// end-to-end gradient checks on reduced configurations.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "models/cnn.h"
#include "models/logistic_regression.h"
#include "models/resnet.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "test_util.h"

namespace geodp {
namespace {

TEST(LogisticRegressionTest, ShapesAndParameterCount) {
  Rng rng(1);
  auto model = MakeLogisticRegression(196, 10, rng);
  const Tensor x = Tensor::Randn({4, 1, 14, 14}, rng);
  const Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.dim(0), 4);
  EXPECT_EQ(logits.dim(1), 10);
  EXPECT_EQ(TotalParameterCount(model->Parameters()), 196 * 10 + 10);
}

TEST(LogisticRegressionTest, GradientCheck) {
  Rng rng(2);
  auto model = MakeLogisticRegression(16, 3, rng);
  const Tensor x = Tensor::Randn({2, 1, 4, 4}, rng);
  const auto result = testing_util::CheckGradients(*model, x, rng);
  EXPECT_LT(result.max_input_error, 2e-2);
  EXPECT_LT(result.max_param_error, 2e-2);
}

TEST(CnnTest, DefaultShapes) {
  Rng rng(3);
  CnnConfig config;
  auto model = MakeCnn(config, rng);
  const Tensor x = Tensor::Randn({2, 1, 14, 14}, rng);
  const Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(CnnTest, ParameterCountMatchesArchitecture) {
  Rng rng(4);
  CnnConfig config;
  auto model = MakeCnn(config, rng);
  // conv1: 6*1*9+6, conv2: 12*6*9+12, fc: (12*5*5)*10+10.
  const int64_t expected = (6 * 1 * 9 + 6) + (12 * 6 * 9 + 12) +
                           (12 * 5 * 5) * 10 + 10;
  EXPECT_EQ(TotalParameterCount(model->Parameters()), expected);
}

TEST(CnnTest, GradientCheckTinyConfig) {
  Rng rng(5);
  CnnConfig config;
  config.image_size = 8;
  config.conv1_channels = 2;
  config.conv2_channels = 2;
  config.num_classes = 3;
  auto model = MakeCnn(config, rng);
  const Tensor x = Tensor::Randn({1, 1, 8, 8}, rng);
  const auto result = testing_util::CheckGradients(*model, x, rng);
  EXPECT_LT(result.max_input_error, 5e-2);
  EXPECT_LT(result.max_param_error, 5e-2);
}

TEST(CnnTest, CifarVariantShapes) {
  Rng rng(6);
  CnnConfig config;
  config.in_channels = 3;
  config.image_size = 16;
  auto model = MakeCnn(config, rng);
  const Tensor x = Tensor::Randn({2, 3, 16, 16}, rng);
  EXPECT_EQ(model->Forward(x).dim(1), 10);
}

TEST(ResNetTest, DefaultShapes) {
  Rng rng(7);
  ResNetConfig config;
  auto model = MakeResNet(config, rng);
  const Tensor x = Tensor::Randn({2, 3, 16, 16}, rng);
  const Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(ResNetTest, BlockCountControlsParameters) {
  Rng rng(8);
  ResNetConfig small, large;
  small.num_blocks = 1;
  large.num_blocks = 3;
  auto model_small = MakeResNet(small, rng);
  auto model_large = MakeResNet(large, rng);
  const int64_t per_block = 2 * (8 * 8 * 9 + 8);
  EXPECT_EQ(TotalParameterCount(model_large->Parameters()) -
                TotalParameterCount(model_small->Parameters()),
            2 * per_block);
}

TEST(ResNetTest, GradientCheckTinyConfig) {
  Rng rng(9);
  ResNetConfig config;
  config.image_size = 8;
  config.width = 2;
  config.num_blocks = 1;
  config.num_classes = 3;
  auto model = MakeResNet(config, rng);
  const Tensor x = Tensor::Randn({1, 3, 8, 8}, rng);
  const auto result = testing_util::CheckGradients(*model, x, rng);
  EXPECT_LT(result.max_input_error, 5e-2);
  EXPECT_LT(result.max_param_error, 5e-2);
}

TEST(ModelsTest, TrainingReducesLossOnToyData) {
  // One non-private step of gradient descent on a fixed batch must reduce
  // the loss for each model family.
  Rng rng(10);
  SoftmaxCrossEntropy loss;

  auto run_one_step = [&](Sequential& model, const Tensor& x,
                          const std::vector<int64_t>& y, double lr) {
    const auto params = model.Parameters();
    ZeroGradients(params);
    const double before = loss.Forward(model.Forward(x), y);
    model.Backward(loss.Backward());
    const Tensor grad = FlattenGradients(params);
    ApplyFlatUpdate(params, grad, lr);
    const double after = loss.Forward(model.Forward(x), y);
    EXPECT_LT(after, before);
  };

  auto lr_model = MakeLogisticRegression(64, 4, rng);
  run_one_step(*lr_model, Tensor::Randn({8, 1, 8, 8}, rng),
               {0, 1, 2, 3, 0, 1, 2, 3}, 0.5);

  CnnConfig cnn_config;
  cnn_config.image_size = 8;
  cnn_config.num_classes = 4;
  auto cnn_model = MakeCnn(cnn_config, rng);
  run_one_step(*cnn_model, Tensor::Randn({8, 1, 8, 8}, rng),
               {0, 1, 2, 3, 0, 1, 2, 3}, 0.5);

  ResNetConfig resnet_config;
  resnet_config.image_size = 8;
  resnet_config.width = 4;
  resnet_config.num_classes = 4;
  auto resnet_model = MakeResNet(resnet_config, rng);
  // The ResNet's flatten head yields larger gradients; a smaller step
  // keeps the descent within the local linear regime.
  run_one_step(*resnet_model, Tensor::Randn({8, 3, 8, 8}, rng),
               {0, 1, 2, 3, 0, 1, 2, 3}, 0.02);
}

}  // namespace
}  // namespace geodp
