// ResNet-lite (paper's "ResNet with 3 residual blocks, each containing
// 2 convolutional layers and 1 ReLU"): conv stem, max-pool, three
// identity-skip residual blocks, global average pooling and a dense head.

#ifndef GEODP_MODELS_RESNET_H_
#define GEODP_MODELS_RESNET_H_

#include <cstdint>
#include <memory>

#include "base/rng.h"
#include "nn/sequential.h"

namespace geodp {

/// Architecture description of the small ResNet.
struct ResNetConfig {
  int64_t in_channels = 3;
  int64_t image_size = 16;  // square input, must be even
  int64_t num_classes = 10;
  int64_t width = 8;        // channel count throughout the trunk
  int64_t num_blocks = 3;
  // Global average pooling keeps the head tiny (width features) as in the
  // original ResNet; the flatten head keeps all spatial features, which
  // the narrow trunks used in the reduced-scale experiments need.
  bool global_avg_pool_head = false;
};

/// Builds Conv(k3, pad1) -> ReLU -> MaxPool(2) -> num_blocks x
/// ResidualBlock -> (GlobalAvgPool | Flatten) -> Linear.
std::unique_ptr<Sequential> MakeResNet(const ResNetConfig& config, Rng& rng);

}  // namespace geodp

#endif  // GEODP_MODELS_RESNET_H_
