// Tests for the normality diagnostics and direction-concentration
// measurements that support the paper's Theorems 2-3: batch-averaged
// gradient coordinates and directions approach a Gaussian, and per-sample
// directions concentrate in a subspace (justifying beta < 1).

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/gradient_dataset.h"
#include "stats/direction_stats.h"
#include "stats/normality.h"

namespace geodp {
namespace {

TEST(NormalityTest, GaussianSampleLooksGaussian) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Gaussian(3.0, 2.0));
  const NormalityReport report = AnalyzeNormality(samples);
  EXPECT_NEAR(report.mean, 3.0, 0.05);
  EXPECT_NEAR(report.stddev, 2.0, 0.05);
  EXPECT_TRUE(LooksGaussian(report, 0.1));
}

TEST(NormalityTest, ExponentialSampleIsSkewed) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(-std::log(1.0 - rng.Uniform()));
  const NormalityReport report = AnalyzeNormality(samples);
  EXPECT_GT(report.skewness, 1.5);  // Exp(1) has skewness 2
  EXPECT_FALSE(LooksGaussian(report, 0.5));
}

TEST(NormalityTest, UniformSampleHasNegativeKurtosis) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Uniform());
  const NormalityReport report = AnalyzeNormality(samples);
  EXPECT_NEAR(report.excess_kurtosis, -1.2, 0.1);
  EXPECT_NEAR(report.skewness, 0.0, 0.1);
}

TEST(NormalityTest, JarqueBeraSmallUnderNormality) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Gaussian());
  const NormalityReport normal = AnalyzeNormality(samples);
  std::vector<double> skewed;
  for (double x : samples) skewed.push_back(x * x);
  const NormalityReport chi2 = AnalyzeNormality(skewed);
  EXPECT_LT(normal.jarque_bera, chi2.jarque_bera);
}

TEST(Theorem2Test, AveragedAngleCoordinateApproachesGaussian) {
  // Theorem 3 (same CLT argument as Theorem 2): the batch-average of a
  // fixed angle coordinate across per-sample gradients is asymptotically
  // Gaussian. Averages of B=64 i.i.d. draws should look much more Gaussian
  // than the raw per-sample values, whose distribution we make skewed on
  // purpose (log-normal magnitudes + concentration).
  const GradientDataset data =
      MakeConcentratedGradientDataset(1000, 16, 0.5, 1.0, /*seed=*/5);

  const std::vector<double> raw =
      SampleAveragedAngleCoordinate(data, /*batch=*/1, /*angle_index=*/0,
                                    /*trials=*/1500, /*seed=*/6);
  const std::vector<double> averaged =
      SampleAveragedAngleCoordinate(data, /*batch=*/64, /*angle_index=*/0,
                                    /*trials=*/1500, /*seed=*/6);
  const NormalityReport raw_report = AnalyzeNormality(raw);
  const NormalityReport averaged_report = AnalyzeNormality(averaged);
  EXPECT_LT(averaged_report.jarque_bera, raw_report.jarque_bera);
  EXPECT_TRUE(LooksGaussian(averaged_report, 0.5));
  // Spread shrinks roughly as 1/sqrt(B).
  EXPECT_LT(averaged_report.stddev, raw_report.stddev / 4.0);
}

TEST(Theorem3Test, ConcentratedGradientsHaveSmallEmpiricalBeta) {
  const GradientDataset concentrated =
      MakeConcentratedGradientDataset(300, 32, 0.05, 1.0, /*seed=*/7);
  const DirectionConcentration c =
      AnalyzeDirectionConcentration(concentrated);
  EXPECT_GT(c.mean_cosine_to_center, 0.8);
  EXPECT_LT(c.empirical_beta, 0.5);

  // Isotropic gradients fill the space: near-zero alignment, larger
  // empirical beta.
  const GradientDataset isotropic =
      MakeConcentratedGradientDataset(300, 32, 100.0, 1.0, /*seed=*/8);
  const DirectionConcentration iso = AnalyzeDirectionConcentration(isotropic);
  EXPECT_LT(iso.mean_cosine_to_center, 0.3);
  EXPECT_GT(iso.empirical_beta, c.empirical_beta);
}

TEST(Theorem3Test, HarvestedCnnGradientsConcentrateAboveIsotropic) {
  // The real harvested gradients (what GeoDP exploits) concentrate more
  // than an isotropic baseline of the same size/dimension. For N isotropic
  // unit vectors the expected cosine to their empirical center is about
  // 1/sqrt(N); per-sample CNN gradients share loss-surface structure and
  // exceed it.
  GradientDatasetOptions options;
  options.num_gradients = 64;
  options.dimension = 128;
  options.training_examples = 64;
  const GradientDataset harvested = HarvestGradientDataset(options);
  const DirectionConcentration c = AnalyzeDirectionConcentration(harvested);

  const GradientDataset isotropic =
      MakeConcentratedGradientDataset(64, 128, 1e6, 1.0, /*seed=*/17);
  const DirectionConcentration iso = AnalyzeDirectionConcentration(isotropic);

  EXPECT_GT(c.mean_cosine_to_center, iso.mean_cosine_to_center);
  EXPECT_GT(c.mean_cosine_to_center, 0.05);
}

}  // namespace
}  // namespace geodp
