// Fixture: seeded R4 violation — <iostream> included by library code.
#include <iostream>

namespace geodp {

void DebugDump(double value) { std::cout << value << "\n"; }

}  // namespace geodp
