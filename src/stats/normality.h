// Normality diagnostics used to verify the paper's Theorems 2-3: the
// averaged per-sample gradient (and the averaged direction) of a batch
// approaches a Gaussian as B grows (Lindeberg-Levy CLT). We measure sample
// skewness, excess kurtosis and the Jarque-Bera statistic.

#ifndef GEODP_STATS_NORMALITY_H_
#define GEODP_STATS_NORMALITY_H_

#include <cstdint>
#include <vector>

namespace geodp {

/// Moment-based shape summary of a sample.
struct NormalityReport {
  int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;        // ~0 for a Gaussian
  double excess_kurtosis = 0.0; // ~0 for a Gaussian
  double jarque_bera = 0.0;     // ~chi^2(2) under normality; small is normal
};

/// Computes the report. Requires at least 4 samples and non-zero variance.
NormalityReport AnalyzeNormality(const std::vector<double>& samples);

/// Convenience: true if |skewness| and |excess kurtosis| are both below
/// `tolerance` (a pragmatic normality check for tests/benches, not a
/// formal hypothesis test).
bool LooksGaussian(const NormalityReport& report, double tolerance = 0.5);

}  // namespace geodp

#endif  // GEODP_STATS_NORMALITY_H_
