#include "models/resnet.h"

#include "base/check.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/flatten.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/residual.h"

namespace geodp {

std::unique_ptr<Sequential> MakeResNet(const ResNetConfig& config, Rng& rng) {
  GEODP_CHECK_GE(config.image_size, 4);
  GEODP_CHECK_EQ(config.image_size % 2, 0);
  GEODP_CHECK_GE(config.num_blocks, 1);
  auto model = std::make_unique<Sequential>("ResNet");
  model->Emplace<Conv2d>(config.in_channels, config.width,
                         /*kernel_size=*/3, rng, /*padding=*/1);
  model->Emplace<ReLU>();
  model->Emplace<MaxPool2d>(2);
  for (int64_t i = 0; i < config.num_blocks; ++i) {
    model->Emplace<ResidualBlock>(config.width, rng);
  }
  if (config.global_avg_pool_head) {
    model->Emplace<GlobalAvgPool>();
    model->Emplace<Linear>(config.width, config.num_classes, rng);
  } else {
    model->Emplace<Flatten>();
    const int64_t pooled = config.image_size / 2;
    model->Emplace<Linear>(config.width * pooled * pooled,
                           config.num_classes, rng);
  }
  return model;
}

}  // namespace geodp
