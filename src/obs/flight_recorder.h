// Always-on flight recorder: a fixed-capacity, mutex-striped ring buffer
// of structured events that explains *why* a run died after the fact.
// Components record step milestones, non-OK Statuses, io retries/giveups,
// degraded transitions, checkpoint write/miss/prune outcomes, and
// watchdog cancellations; the buffer keeps the most recent events per
// stripe and the /flightz endpoint (obs/http_server.h) serves them live.
// On a fatal Status, a watchdog cancellation, or a degraded transition
// the trainer dumps the buffer as an atomic postmortem JSON file next to
// the checkpoints (docs/observability.md documents the schema).
//
// Recording is O(1) and allocation-free: one stripe mutex (picked by the
// caller's dense trace thread id, so threads rarely contend), one slot
// overwrite, one bounded detail copy. The recorder never feeds back into
// training — it is observability-only state, and training bytes are
// identical with it on or off.

#ifndef GEODP_OBS_FLIGHT_RECORDER_H_
#define GEODP_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace geodp {

/// What happened. Kind names (FlightEventKindName) are stable strings used
/// by /flightz, postmortem files, and scripts/check_postmortem.py.
enum class FlightEventKind {
  kStepMilestone = 0,   // a training attempt completed
  kStatusError,         // a non-OK Status surfaced
  kIoRetry,             // transient I/O failure retried
  kIoGiveup,            // I/O retries exhausted
  kDegraded,            // run transitioned to degraded telemetry
  kCheckpointWrite,     // checkpoint durably written
  kCheckpointMiss,      // checkpoint write failed and was skipped
  kCheckpointPrune,     // old-checkpoint prune reported errors
  kWatchdogCancel,      // stall watchdog cancelled the run
  kResume,              // run resumed from a checkpoint
  kNote,                // anything else worth keeping
};

/// Stable lowercase name of a kind ("step", "status_error", ...).
const char* FlightEventKindName(FlightEventKind kind);

/// One recorded event. `detail` is a bounded, NUL-terminated copy of the
/// recorded text (truncated at kFlightEventDetailBytes - 1 characters).
struct FlightEvent {
  /// Capacity of the inline detail buffer, truncation included.
  static constexpr int kDetailBytes = 96;

  int64_t sequence = 0;  // global record order; 0 marks an empty slot
  int64_t micros = 0;    // Timer::ProcessMicros() at record time
  FlightEventKind kind = FlightEventKind::kNote;
  int64_t step = -1;     // training step/attempt, -1 when not applicable
  int tid = 0;           // CurrentTraceThreadId() of the recording thread
  std::array<char, kDetailBytes> detail{};
};

/// The ring buffer. All methods are thread-safe.
class FlightRecorder {
 public:
  /// Stripe count: recording threads are spread across this many
  /// independently-locked rings, so concurrent recorders rarely share a
  /// mutex. Power of two to keep the stripe pick a mask.
  static constexpr int kStripes = 8;
  /// Events retained per stripe; the recorder holds at most
  /// kStripes * kSlotsPerStripe events and overwrites the oldest.
  static constexpr int kSlotsPerStripe = 128;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event (O(1), allocation-free). No-op while disabled.
  void Record(FlightEventKind kind, int64_t step, std::string_view detail);

  /// Every retained event, merged across stripes in record (sequence)
  /// order. Allocates; intended for /flightz and postmortem dumps, not
  /// the hot path.
  std::vector<FlightEvent> Snapshot() const;

  /// Recording is on by default ("always-on black box"); tests and the
  /// --geodp_flight_recorder=0 escape hatch turn it off.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Events recorded since construction/Reset (dropped-by-wraparound
  /// events included).
  int64_t total_recorded() const {
    return next_sequence_.load(std::memory_order_relaxed);
  }

  /// Drops every event and restarts the sequence (tests).
  void Reset();

  /// Process-wide recorder shared by the trainer, the I/O substrate
  /// mirrors, and the introspection server.
  static FlightRecorder& Global();

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::array<FlightEvent, kSlotsPerStripe> slots;  // guarded by mu
    int64_t next_slot = 0;                           // guarded by mu
  };

  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> next_sequence_{0};
  std::array<Stripe, kStripes> stripes_;
};

}  // namespace geodp

#endif  // GEODP_OBS_FLIGHT_RECORDER_H_
