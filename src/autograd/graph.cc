#include "autograd/graph.h"

#include <cmath>

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace autograd {

Var Graph::Input(Tensor value) {
  return Emplace(std::move(value), nullptr, /*needs_grad=*/false);
}

Var Graph::Parameter(Tensor value) {
  return Emplace(std::move(value), nullptr, /*needs_grad=*/true);
}

Var Graph::Emplace(Tensor value, BackwardFn backward, bool needs_grad) {
  GEODP_CHECK(!backward_ran_) << "tape already differentiated";
  Node node;
  node.grad = Tensor::Zeros(value.shape());
  node.value = std::move(value);
  node.backward = std::move(backward);
  node.needs_grad = needs_grad;
  nodes_.push_back(std::move(node));
  return Var{static_cast<int32_t>(nodes_.size() - 1)};
}

const Tensor& Graph::value(Var v) const {
  GEODP_CHECK(v.valid() && static_cast<size_t>(v.index) < nodes_.size());
  return nodes_[static_cast<size_t>(v.index)].value;
}

const Tensor& Graph::grad(Var v) const {
  GEODP_CHECK(v.valid() && static_cast<size_t>(v.index) < nodes_.size());
  return nodes_[static_cast<size_t>(v.index)].grad;
}

Tensor& Graph::mutable_grad(Var v) {
  GEODP_CHECK(v.valid() && static_cast<size_t>(v.index) < nodes_.size());
  return nodes_[static_cast<size_t>(v.index)].grad;
}

bool Graph::needs_grad(Var v) const {
  GEODP_CHECK(v.valid() && static_cast<size_t>(v.index) < nodes_.size());
  return nodes_[static_cast<size_t>(v.index)].needs_grad;
}

void Graph::Backward(Var output) {
  GEODP_CHECK(!backward_ran_) << "Backward may run once per tape";
  GEODP_CHECK_EQ(value(output).numel(), 1) << "output must be scalar";
  backward_ran_ = true;
  mutable_grad(output)[0] = 1.0f;
  // Tape order is a valid topological order: every node's inputs precede
  // it, so reverse iteration propagates gradients correctly.
  for (size_t i = nodes_.size(); i-- > 0;) {
    Node& node = nodes_[i];
    if (node.backward && node.needs_grad) node.backward(*this);
  }
}

namespace {

// An op's output needs a gradient iff any input does.
bool AnyNeedsGrad(const Graph& g, std::initializer_list<Var> vars) {
  for (Var v : vars) {
    if (g.needs_grad(v)) return true;
  }
  return false;
}

// The Var the next Emplace call will return; lets backward closures refer
// to their own output.
Var NextVar(const Graph& g) { return Var{static_cast<int32_t>(g.size())}; }

}  // namespace

Var Add(Graph& g, Var a, Var b) {
  GEODP_CHECK(SameShape(g.value(a), g.value(b)));
  const bool needs = AnyNeedsGrad(g, {a, b});
  const Var out = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, b, out](Graph& graph) {
      const Tensor& gy = graph.grad(out);
      if (graph.needs_grad(a)) graph.mutable_grad(a).AddInPlace(gy);
      if (graph.needs_grad(b)) graph.mutable_grad(b).AddInPlace(gy);
    };
  }
  return g.Emplace(geodp::Add(g.value(a), g.value(b)), std::move(backward),
                   needs);
}

Var Sub(Graph& g, Var a, Var b) {
  GEODP_CHECK(SameShape(g.value(a), g.value(b)));
  const bool needs = AnyNeedsGrad(g, {a, b});
  const Var out = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, b, out](Graph& graph) {
      const Tensor& gy = graph.grad(out);
      if (graph.needs_grad(a)) graph.mutable_grad(a).AddInPlace(gy);
      if (graph.needs_grad(b)) graph.mutable_grad(b).SubInPlace(gy);
    };
  }
  return g.Emplace(geodp::Sub(g.value(a), g.value(b)), std::move(backward),
                   needs);
}

Var Mul(Graph& g, Var a, Var b) {
  GEODP_CHECK(SameShape(g.value(a), g.value(b)));
  const bool needs = AnyNeedsGrad(g, {a, b});
  const Var out = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, b, out](Graph& graph) {
      const Tensor& gy = graph.grad(out);
      if (graph.needs_grad(a)) {
        graph.mutable_grad(a).AddInPlace(geodp::Mul(gy, graph.value(b)));
      }
      if (graph.needs_grad(b)) {
        graph.mutable_grad(b).AddInPlace(geodp::Mul(gy, graph.value(a)));
      }
    };
  }
  return g.Emplace(geodp::Mul(g.value(a), g.value(b)), std::move(backward),
                   needs);
}

Var Scale(Graph& g, Var a, float factor) {
  const bool needs = g.needs_grad(a);
  const Var out = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, out, factor](Graph& graph) {
      graph.mutable_grad(a).AxpyInPlace(factor, graph.grad(out));
    };
  }
  return g.Emplace(geodp::Scale(g.value(a), factor), std::move(backward),
                   needs);
}

Var Matmul(Graph& g, Var a, Var b) {
  const bool needs = AnyNeedsGrad(g, {a, b});
  const Var out = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, b, out](Graph& graph) {
      const Tensor& gy = graph.grad(out);
      if (graph.needs_grad(a)) {
        // dA = dY @ B^T
        graph.mutable_grad(a).AddInPlace(
            geodp::Matmul(gy, Transpose(graph.value(b))));
      }
      if (graph.needs_grad(b)) {
        // dB = A^T @ dY
        graph.mutable_grad(b).AddInPlace(
            geodp::Matmul(Transpose(graph.value(a)), gy));
      }
    };
  }
  return g.Emplace(geodp::Matmul(g.value(a), g.value(b)),
                   std::move(backward), needs);
}

Var MatmulNT(Graph& g, Var a, Var b) {
  const bool needs = AnyNeedsGrad(g, {a, b});
  const Var out = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, b, out](Graph& graph) {
      const Tensor& gy = graph.grad(out);
      if (graph.needs_grad(a)) {
        // Y = A B^T  =>  dA = dY @ B
        graph.mutable_grad(a).AddInPlace(geodp::Matmul(gy, graph.value(b)));
      }
      if (graph.needs_grad(b)) {
        // dB = dY^T @ A
        graph.mutable_grad(b).AddInPlace(
            geodp::Matmul(Transpose(gy), graph.value(a)));
      }
    };
  }
  return g.Emplace(geodp::Matmul(g.value(a), Transpose(g.value(b))),
                   std::move(backward), needs);
}

Var AddRowBias(Graph& g, Var matrix, Var bias) {
  const Tensor& m = g.value(matrix);
  const Tensor& v = g.value(bias);
  GEODP_CHECK_EQ(m.ndim(), 2);
  GEODP_CHECK_EQ(v.ndim(), 1);
  GEODP_CHECK_EQ(m.dim(1), v.dim(0));
  Tensor out = m;
  const int64_t rows = m.dim(0), cols = m.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) out[r * cols + c] += v[c];
  }
  const bool needs = AnyNeedsGrad(g, {matrix, bias});
  const Var result = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [matrix, bias, result, rows, cols](Graph& graph) {
      const Tensor& gy = graph.grad(result);
      if (graph.needs_grad(matrix)) {
        graph.mutable_grad(matrix).AddInPlace(gy);
      }
      if (graph.needs_grad(bias)) {
        Tensor& gb = graph.mutable_grad(bias);
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t c = 0; c < cols; ++c) gb[c] += gy[r * cols + c];
        }
      }
    };
  }
  return g.Emplace(std::move(out), std::move(backward), needs);
}

Var Relu(Graph& g, Var a) {
  Tensor out = g.value(a);
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  const bool needs = g.needs_grad(a);
  const Var result = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, result](Graph& graph) {
      const Tensor& gy = graph.grad(result);
      const Tensor& x = graph.value(a);
      Tensor& gx = graph.mutable_grad(a);
      for (int64_t i = 0; i < gy.numel(); ++i) {
        if (x[i] > 0.0f) gx[i] += gy[i];
      }
    };
  }
  return g.Emplace(std::move(out), std::move(backward), needs);
}

Var TanhOp(Graph& g, Var a) {
  Tensor out = g.value(a);
  for (int64_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  const bool needs = g.needs_grad(a);
  const Var result = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, result](Graph& graph) {
      const Tensor& gy = graph.grad(result);
      const Tensor& y = graph.value(result);
      Tensor& gx = graph.mutable_grad(a);
      for (int64_t i = 0; i < gy.numel(); ++i) {
        gx[i] += gy[i] * (1.0f - y[i] * y[i]);
      }
    };
  }
  return g.Emplace(std::move(out), std::move(backward), needs);
}

Var SigmoidOp(Graph& g, Var a) {
  Tensor out = g.value(a);
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(
        1.0 / (1.0 + std::exp(-static_cast<double>(out[i]))));
  }
  const bool needs = g.needs_grad(a);
  const Var result = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, result](Graph& graph) {
      const Tensor& gy = graph.grad(result);
      const Tensor& y = graph.value(result);
      Tensor& gx = graph.mutable_grad(a);
      for (int64_t i = 0; i < gy.numel(); ++i) {
        gx[i] += gy[i] * y[i] * (1.0f - y[i]);
      }
    };
  }
  return g.Emplace(std::move(out), std::move(backward), needs);
}

Var Sum(Graph& g, Var a) {
  Tensor out = Tensor::Vector({static_cast<float>(g.value(a).Sum())});
  const bool needs = g.needs_grad(a);
  const Var result = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [a, result](Graph& graph) {
      const float gy = graph.grad(result)[0];
      Tensor& gx = graph.mutable_grad(a);
      for (int64_t i = 0; i < gx.numel(); ++i) gx[i] += gy;
    };
  }
  return g.Emplace(std::move(out), std::move(backward), needs);
}

Var MeanOp(Graph& g, Var a) {
  const int64_t n = g.value(a).numel();
  Var total = Sum(g, a);
  return Scale(g, total, 1.0f / static_cast<float>(n));
}

Var SoftmaxCrossEntropyOp(Graph& g, Var logits,
                          const std::vector<int64_t>& labels) {
  const Tensor& z = g.value(logits);
  GEODP_CHECK_EQ(z.ndim(), 2);
  const int64_t batch = z.dim(0), classes = z.dim(1);
  GEODP_CHECK_EQ(static_cast<int64_t>(labels.size()), batch);

  // Forward: stable softmax + mean NLL; cache probabilities for backward.
  Tensor probabilities({batch, classes});
  double total_loss = 0.0;
  for (int64_t b = 0; b < batch; ++b) {
    float row_max = z[b * classes];
    for (int64_t k = 1; k < classes; ++k) {
      row_max = std::max(row_max, z[b * classes + k]);
    }
    double denom = 0.0;
    for (int64_t k = 0; k < classes; ++k) {
      const double e =
          std::exp(static_cast<double>(z[b * classes + k]) -
                   static_cast<double>(row_max));
      probabilities[b * classes + k] = static_cast<float>(e);
      denom += e;
    }
    for (int64_t k = 0; k < classes; ++k) {
      probabilities[b * classes + k] = static_cast<float>(
          static_cast<double>(probabilities[b * classes + k]) / denom);
    }
    total_loss -= std::log(std::max(
        static_cast<double>(
            probabilities[b * classes + labels[static_cast<size_t>(b)]]),
        1e-12));
  }
  Tensor out =
      Tensor::Vector({static_cast<float>(total_loss / static_cast<double>(batch))});

  const bool needs = g.needs_grad(logits);
  const Var result = NextVar(g);
  Graph::BackwardFn backward;
  if (needs) {
    backward = [logits, result, probabilities, labels, batch,
                classes](Graph& graph) {
      const float gy = graph.grad(result)[0];
      Tensor& gx = graph.mutable_grad(logits);
      const float inv_batch = 1.0f / static_cast<float>(batch);
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t k = 0; k < classes; ++k) {
          float p = probabilities[b * classes + k];
          if (k == labels[static_cast<size_t>(b)]) p -= 1.0f;
          gx[b * classes + k] += gy * p * inv_batch;
        }
      }
    };
  }
  return g.Emplace(std::move(out), std::move(backward), needs);
}

}  // namespace autograd
}  // namespace geodp
