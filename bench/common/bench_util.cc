#include "common/bench_util.h"

#include <cstdlib>
#include <iostream>

#include "base/flags.h"
#include "base/rng.h"
#include "core/spherical.h"
#include "obs/step_observer.h"
#include "stats/metrics.h"

namespace geodp {
namespace bench {
namespace {

// Step writer shared by every trainer a bench binary constructs; opened by
// InitBenchObservability, attached via AttachObserver. Leaked on purpose
// (lives for the whole process, like the flag values themselves).
JsonlStepWriter* g_step_writer = nullptr;

}  // namespace

void InitBenchObservability(int argc, const char* const* argv) {
  FlagParser flags;
  AddCommonFlags(flags);
  const Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n" << flags.HelpText();
    std::exit(1);
  }
  ApplyCommonFlags(flags);
  g_step_writer = ApplyObservabilityFlags(flags).release();
}

void AttachObserver(TrainerOptions& options) {
  options.step_observer = g_step_writer;
}

void PrintBanner(const std::string& id, const std::string& paper_setup,
                 const std::string& repro_setup) {
  std::cout << "\n=== " << id << " ===\n";
  std::cout << "paper: " << paper_setup << "\n";
  std::cout << "repro: " << repro_setup << "\n\n";
}

void PrintTable(const TablePrinter& table) {
  table.Print(std::cout);
  std::cout << "\n-- csv --\n";
  table.PrintCsv(std::cout);
  std::cout << std::endl;
}

MseResult MeasurePerturbationMse(const GradientDataset& data,
                                 const Perturber& perturber, int64_t batch,
                                 double clip_threshold, int trials,
                                 uint64_t seed) {
  Rng sample_rng(seed);
  Rng noise_rng(seed + 1);
  std::vector<SphericalCoordinates> original_dirs, perturbed_dirs;
  std::vector<Tensor> original, perturbed;
  original_dirs.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Tensor avg = data.AverageClipped(batch, clip_threshold, sample_rng);
    Tensor noisy = perturber.Perturb(avg, noise_rng);
    original_dirs.push_back(ToSpherical(avg));
    perturbed_dirs.push_back(ToSpherical(noisy));
    original.push_back(std::move(avg));
    perturbed.push_back(std::move(noisy));
  }
  return {DirectionMse(original_dirs, perturbed_dirs),
          GradientMse(original, perturbed)};
}

std::unique_ptr<Perturber> MakeDp(double clip_threshold, int64_t batch,
                                  double sigma) {
  PerturbationOptions options;
  options.clip_threshold = clip_threshold;
  options.batch_size = batch;
  options.noise_multiplier = sigma;
  return std::make_unique<DpPerturber>(options);
}

std::unique_ptr<Perturber> MakeGeo(double clip_threshold, int64_t batch,
                                   double sigma, double beta) {
  GeoDpOptions options;
  options.base.clip_threshold = clip_threshold;
  options.base.batch_size = batch;
  options.base.noise_multiplier = sigma;
  options.beta = beta;
  return std::make_unique<GeoDpPerturber>(options);
}

GradientDataset HarvestedGradients(int64_t dimension, int64_t count) {
  GradientDatasetOptions options;
  options.num_gradients = count;
  options.dimension = dimension;
  options.training_examples = 256;
  options.seed = 4242;
  return HarvestGradientDataset(options);
}

SplitDataset MnistLikeSplit(int64_t train_size, int64_t test_size,
                            uint64_t seed) {
  SyntheticImageOptions options;
  options.num_examples = train_size + test_size;
  options.seed = seed;
  SplitDataset split;
  split.train = MakeMnistLike(options);
  split.test = split.train.SplitTail(test_size);
  return split;
}

SplitDataset CifarLikeSplit(int64_t train_size, int64_t test_size,
                            uint64_t seed) {
  SyntheticImageOptions options;
  options.num_examples = train_size + test_size;
  options.seed = seed;
  SplitDataset split;
  split.train = MakeCifarLike(options);
  split.test = split.train.SplitTail(test_size);
  return split;
}

}  // namespace bench
}  // namespace geodp
