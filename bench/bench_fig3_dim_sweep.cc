// Figure 3(d)-(f): direction and gradient MSE of GeoDP vs DP as the
// gradient dimensionality sweeps, at beta in {1, 0.1, 0.01}.
// Expected shape: at beta=1 GeoDP's direction error grows with d (its
// sensitivity is sqrt(d+2)*beta*pi) and eventually exceeds DP's; small
// beta restores GeoDP's advantage at every dimension.

#include <cstdint>

#include "common/bench_util.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Figure 3(d)-(f) (MSE vs dimensionality d)",
      "sigma=8, B=4096, d in {500..20000}, beta in {1, 0.1, 0.01}",
      "sigma=8, B=512, d in {64..2048}, C=0.1, 16 trials");

  const int64_t kBatch = 512;
  const double kClip = 0.1;
  const double kSigma = 8.0;
  const int kTrials = 16;

  TablePrinter table({"beta", "d", "GeoDP theta MSE", "DP theta MSE",
                      "GeoDP g MSE", "DP g MSE"});
  for (int64_t dim : {64, 128, 256, 512, 1024, 2048}) {
    const GradientDataset data = HarvestedGradients(dim, /*count=*/384);
    for (double beta : {1.0, 0.1, 0.01}) {
      const auto geo = MakeGeo(kClip, kBatch, kSigma, beta);
      const auto dp = MakeDp(kClip, kBatch, kSigma);
      const MseResult geo_mse =
          MeasurePerturbationMse(data, *geo, kBatch, kClip, kTrials, 23);
      const MseResult dp_mse =
          MeasurePerturbationMse(data, *dp, kBatch, kClip, kTrials, 23);
      table.AddRow({TablePrinter::Fmt(beta, 2), std::to_string(dim),
                    TablePrinter::FmtSci(geo_mse.direction_mse),
                    TablePrinter::FmtSci(dp_mse.direction_mse),
                    TablePrinter::FmtSci(geo_mse.gradient_mse),
                    TablePrinter::FmtSci(dp_mse.gradient_mse)});
    }
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
