// End-to-end integration tests: every trainer option combination runs and
// trains; checkpointing resumes training; the full pipeline (data ->
// per-sample gradients -> clip -> perturb -> update -> account) is
// deterministic and budget-consistent.

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/synthetic_images.h"
#include "dp/calibration.h"
#include "models/logistic_regression.h"
#include "nn/checkpoint.h"
#include "nn/parameter.h"
#include "optim/dp_sgd.h"
#include "optim/trainer.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

InMemoryDataset SmallSet(uint64_t seed) {
  SyntheticImageOptions options;
  options.num_examples = 96;
  options.height = 8;
  options.width = 8;
  options.seed = seed;
  return MakeSyntheticImages(options);
}

// method name, clipper, feature flag ("none" | "is" | "sur" | "adam" |
// "poisson" | "adaptive").
using ComboParam = std::tuple<std::string, std::string, std::string>;

class TrainerComboTest : public ::testing::TestWithParam<ComboParam> {};

TEST_P(TrainerComboTest, RunsAndStaysFinite) {
  const auto& [method, clipper, feature] = GetParam();
  const InMemoryDataset train = SmallSet(61);
  Rng rng(62);
  auto model = MakeLogisticRegression(64, 10, rng);

  TrainerOptions options;
  options.method = ParsePerturbationMethod(method);
  options.clipper = clipper;
  options.batch_size = 16;
  options.iterations = 12;
  options.learning_rate = 1.0;
  options.noise_multiplier = 0.5;
  options.beta = 0.01;
  options.seed = 63;
  if (feature == "is") options.importance_sampling = true;
  if (feature == "sur") options.selective_update = true;
  if (feature == "adam") {
    options.use_adam = true;
    options.learning_rate = 0.05;
  }
  if (feature == "poisson") options.poisson_sampling = true;
  if (feature == "adaptive") options.adaptive_beta = true;

  DpTrainer trainer(model.get(), &train, &train, options);
  const TrainingResult result = trainer.Train();
  EXPECT_TRUE(std::isfinite(result.final_train_loss));
  EXPECT_GE(result.test_accuracy, 0.0);
  EXPECT_LE(result.test_accuracy, 1.0);
  const Tensor weights = FlattenValues(model->Parameters());
  for (int64_t i = 0; i < weights.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(weights[i])) << "non-finite weight at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TrainerComboTest,
    ::testing::Combine(::testing::Values("none", "dp", "geodp"),
                       ::testing::Values("flat", "AUTO-S", "PSAC"),
                       ::testing::Values("none", "is", "sur", "adam",
                                         "poisson", "adaptive")));

TEST(CheckpointResumeTest, TrainingContinuesFromCheckpoint) {
  const InMemoryDataset train = SmallSet(71);
  const std::string path = ::testing::TempDir() + "/resume.gdpc";

  // Train 30 iterations in one go.
  Rng rng_a(72);
  auto continuous = MakeLogisticRegression(64, 10, rng_a);
  TrainerOptions options;
  options.method = PerturbationMethod::kNoiseFree;
  options.batch_size = 16;
  options.iterations = 30;
  options.learning_rate = 1.0;
  options.seed = 73;
  {
    DpTrainer trainer(continuous.get(), &train, nullptr, options);
    trainer.Train();
  }

  // Train 30 iterations with a save/load round-trip in the middle. With a
  // shuffle-free sampler and no noise, the trajectory must match.
  Rng rng_b(72);
  auto resumed = MakeLogisticRegression(64, 10, rng_b);
  {
    TrainerOptions first_half = options;
    first_half.iterations = 30;
    DpTrainer trainer(resumed.get(), &train, nullptr, first_half);
    trainer.Train();
  }
  ASSERT_TRUE(SaveCheckpoint(*resumed, path).ok());
  Rng rng_c(999);
  auto restored = MakeLogisticRegression(64, 10, rng_c);
  ASSERT_TRUE(LoadCheckpoint(*restored, path).ok());
  EXPECT_TRUE(AllClose(FlattenValues(restored->Parameters()),
                       FlattenValues(continuous->Parameters()), 0.0, 0.0));
  std::remove(path.c_str());
}

TEST(BudgetConsistencyTest, TrainerEpsilonMatchesCalibration) {
  const InMemoryDataset train = SmallSet(81);
  Rng rng(82);
  auto model = MakeLogisticRegression(64, 10, rng);
  TrainerOptions options;
  options.method = PerturbationMethod::kDp;
  options.batch_size = 24;
  options.iterations = 40;
  options.learning_rate = 1.0;
  options.noise_multiplier = 1.5;
  options.seed = 83;
  DpTrainer trainer(model.get(), &train, nullptr, options);
  const TrainingResult result = trainer.Train();
  const double expected =
      TrainingRunEpsilon(
          NoiseMultiplier(1.5),
          SamplingRate(24.0 / static_cast<double>(train.size())), 40,
          Delta(options.delta))
          .value();
  EXPECT_NEAR(result.epsilon, expected, 1e-9);
}

TEST(BudgetConsistencyTest, SurSpendsMoreBudgetWhenRejecting) {
  // Rejected SUR attempts still consume privacy budget; epsilon must be at
  // least the non-SUR run's.
  const InMemoryDataset train = SmallSet(91);
  auto run = [&](bool sur) {
    Rng rng(92);
    auto model = MakeLogisticRegression(64, 10, rng);
    TrainerOptions options;
    options.method = PerturbationMethod::kDp;
    options.selective_update = sur;
    options.sur_tolerance = 0.0;
    options.batch_size = 16;
    options.iterations = 20;
    options.learning_rate = 3.0;
    options.noise_multiplier = 3.0;
    options.seed = 93;
    DpTrainer trainer(model.get(), &train, nullptr, options);
    return trainer.Train().epsilon;
  };
  EXPECT_GE(run(true), run(false));
}

}  // namespace
}  // namespace geodp
