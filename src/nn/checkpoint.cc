#include "nn/checkpoint.h"

#include <array>
#include <cstdint>
#include <sstream>
#include <vector>

#include "base/byte_view.h"
#include "base/io/file_io.h"
#include "tensor/serialization.h"

namespace geodp {
namespace {

constexpr std::array<char, 4> kMagic = {'G', 'D', 'P', 'C'};

void WriteString(std::ostream& out, const std::string& value) {
  const uint32_t size = static_cast<uint32_t>(value.size());
  out.write(AsBytes(size).data, sizeof(size));
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

bool ReadString(std::istream& in, std::string* value) {
  uint32_t size = 0;
  in.read(AsWritableBytes(size).data, sizeof(size));
  if (!in.good() || size > 4096) return false;
  value->resize(size);
  in.read(value->data(), static_cast<std::streamsize>(size));
  return in.good();
}

}  // namespace

Status SaveCheckpoint(Layer& model, const std::string& path) {
  std::ostringstream out(std::ios::binary);
  out.write(kMagic.data(), kMagic.size());
  const std::vector<Parameter*> params = model.Parameters();
  const uint32_t count = static_cast<uint32_t>(params.size());
  out.write(AsBytes(count).data, sizeof(count));
  for (Parameter* p : params) {
    WriteString(out, p->name);
    const Status status = WriteTensor(p->value, out);
    if (!status.ok()) return status;
  }
  if (!out.good()) return Status::Internal("checkpoint write failed");
  return AtomicWriteFile(path, out.str(), RetryPolicy{}, "nn.ckpt_write");
}

Status LoadCheckpoint(Layer& model, const std::string& path) {
  StatusOr<std::string> read =
      ReadFileWithRetry(path, RetryPolicy{}, "nn.ckpt_read");
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("cannot open for read: " + path);
    }
    return read.status();
  }
  std::istringstream in(std::move(read).value(), std::ios::binary);
  std::array<char, 4> magic;
  in.read(magic.data(), magic.size());
  if (!in.good() || magic[0] != 'G' || magic[1] != 'D' || magic[2] != 'P' ||
      magic[3] != 'C') {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  uint32_t count = 0;
  in.read(AsWritableBytes(count).data, sizeof(count));
  if (!in.good()) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  const std::vector<Parameter*> params = model.Parameters();
  if (count != params.size()) {
    return Status::FailedPrecondition("parameter count mismatch");
  }
  // Read everything first so a mismatch cannot leave the model partially
  // overwritten.
  std::vector<Tensor> values;
  values.reserve(params.size());
  for (Parameter* p : params) {
    std::string name;
    if (!ReadString(in, &name)) {
      return Status::InvalidArgument("truncated checkpoint");
    }
    if (name != p->name) {
      return Status::FailedPrecondition("parameter name mismatch: expected " +
                                        p->name + ", found " + name);
    }
    StatusOr<Tensor> tensor = ReadTensor(in);
    if (!tensor.ok()) return tensor.status();
    if (tensor.value().shape() != p->value.shape()) {
      return Status::FailedPrecondition("parameter shape mismatch for " +
                                        p->name);
    }
    values.push_back(std::move(tensor).value());
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(values[i]);
  }
  return Status::Ok();
}

}  // namespace geodp
