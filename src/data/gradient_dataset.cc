#include "data/gradient_dataset.h"

#include <cmath>

#include "base/check.h"
#include "data/synthetic_images.h"
#include "models/cnn.h"
#include "nn/loss.h"
#include "nn/parameter.h"

namespace geodp {

void GradientDataset::Add(Tensor gradient) {
  GEODP_CHECK_EQ(gradient.ndim(), 1);
  if (!gradients_.empty()) {
    GEODP_CHECK_EQ(gradient.dim(0), dimension());
  }
  gradients_.push_back(std::move(gradient));
}

int64_t GradientDataset::dimension() const {
  GEODP_CHECK(!gradients_.empty());
  return gradients_.front().dim(0);
}

const Tensor& GradientDataset::gradient(int64_t i) const {
  GEODP_CHECK(i >= 0 && i < size());
  return gradients_[static_cast<size_t>(i)];
}

Tensor GradientDataset::AverageClipped(int64_t count, double clip_threshold,
                                       Rng& rng) const {
  GEODP_CHECK_GT(count, 0);
  GEODP_CHECK_GT(clip_threshold, 0.0);
  GEODP_CHECK_GT(size(), 0);
  Tensor sum({dimension()});
  for (int64_t j = 0; j < count; ++j) {
    const Tensor& g =
        gradient(static_cast<int64_t>(rng.UniformInt(
            static_cast<uint64_t>(size()))));
    const double norm = g.L2Norm();
    const double scale = 1.0 / std::max(1.0, norm / clip_threshold);
    sum.AxpyInPlace(static_cast<float>(scale), g);
  }
  sum.ScaleInPlace(1.0f / static_cast<float>(count));
  return sum;
}

GradientDataset HarvestGradientDataset(const GradientDatasetOptions& options) {
  GEODP_CHECK_GT(options.num_gradients, 0);
  GEODP_CHECK_GE(options.dimension, 2);

  Rng rng(options.seed);
  SyntheticImageOptions image_options;
  image_options.num_examples = options.training_examples;
  image_options.seed = options.seed + 101;
  const InMemoryDataset dataset = MakeCifarLike(image_options);

  CnnConfig cnn_config;
  cnn_config.in_channels = 3;
  cnn_config.image_size = 16;
  auto model = MakeCnn(cnn_config, rng);
  const std::vector<Parameter*> params = model->Parameters();
  const int64_t model_dim = TotalParameterCount(params);

  SoftmaxCrossEntropy loss;
  // Number of raw batch-1 gradients consumed per output vector.
  const int64_t per_output =
      (options.dimension + model_dim - 1) / model_dim;

  GradientDataset out;
  std::vector<float> merged;
  merged.reserve(static_cast<size_t>(per_output * model_dim));
  int64_t step = 0;
  while (out.size() < options.num_gradients) {
    merged.clear();
    for (int64_t j = 0; j < per_output; ++j) {
      const int64_t index = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(dataset.size())));
      const Tensor x = dataset.StackImages({index});
      const std::vector<int64_t> y = {dataset.label(index)};
      ZeroGradients(params);
      loss.Forward(model->Forward(x), y);
      model->Backward(loss.Backward());
      const Tensor flat = FlattenGradients(params);
      for (int64_t i = 0; i < flat.numel(); ++i) merged.push_back(flat[i]);
      // Descend so successive gradients come from an evolving model, as in
      // the paper's 9-epoch harvest.
      ApplyFlatUpdate(params, flat, options.learning_rate);
      ++step;
    }
    merged.resize(static_cast<size_t>(options.dimension));
    out.Add(Tensor::Vector(merged));
  }
  (void)step;
  return out;
}

GradientDataset MakeConcentratedGradientDataset(int64_t num_gradients,
                                                int64_t dimension,
                                                double spread,
                                                double mean_magnitude,
                                                uint64_t seed) {
  GEODP_CHECK_GT(num_gradients, 0);
  GEODP_CHECK_GE(dimension, 2);
  GEODP_CHECK_GE(spread, 0.0);
  GEODP_CHECK_GT(mean_magnitude, 0.0);
  Rng rng(seed);
  // Shared mean direction.
  Tensor mean_dir = Tensor::Randn({dimension}, rng);
  mean_dir.ScaleInPlace(static_cast<float>(1.0 / mean_dir.L2Norm()));

  GradientDataset out;
  for (int64_t i = 0; i < num_gradients; ++i) {
    Tensor g = mean_dir;
    for (int64_t z = 0; z < dimension; ++z) {
      g[z] += static_cast<float>(rng.Gaussian(0.0, spread));
    }
    const double magnitude =
        mean_magnitude * std::exp(rng.Gaussian(0.0, 0.25));
    g.ScaleInPlace(static_cast<float>(magnitude / g.L2Norm()));
    out.Add(std::move(g));
  }
  return out;
}

}  // namespace geodp
