// In-memory labeled image dataset plus batch assembly helpers.

#ifndef GEODP_DATA_DATASET_H_
#define GEODP_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace geodp {

/// Owns a list of equally-shaped images and their integer labels.
class InMemoryDataset {
 public:
  InMemoryDataset() = default;

  /// Appends one example; all images must share a shape.
  void Add(Tensor image, int64_t label);

  int64_t size() const { return static_cast<int64_t>(labels_.size()); }
  const Tensor& image(int64_t i) const;
  int64_t label(int64_t i) const;
  const std::vector<int64_t>& labels() const { return labels_; }

  /// Number of classes = 1 + max label (0 when empty).
  int64_t NumClasses() const;

  /// Stacks the images at `indices` into one batch tensor
  /// [indices.size(), ...image shape...].
  Tensor StackImages(const std::vector<int64_t>& indices) const;

  /// Labels at `indices`, in order.
  std::vector<int64_t> GatherLabels(const std::vector<int64_t>& indices) const;

  /// Splits off the last `count` examples into a new dataset (train/test
  /// split helper). The examples are removed from this dataset.
  InMemoryDataset SplitTail(int64_t count);

 private:
  std::vector<Tensor> images_;
  std::vector<int64_t> labels_;
};

}  // namespace geodp

#endif  // GEODP_DATA_DATASET_H_
