// Dense row-major float32 tensor with value semantics.
//
// This is the numeric substrate for the whole library: gradients, model
// parameters, images and activations are all Tensors. The design favors
// simplicity and determinism over peak performance: data is always
// contiguous, ops are single-threaded, and all randomness flows through
// geodp::Rng.

#ifndef GEODP_TENSOR_TENSOR_H_
#define GEODP_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/rng.h"

namespace geodp {

/// Dense N-dimensional float array, row-major, always contiguous.
/// Copy is deep (value semantics); move is cheap.
class Tensor {
 public:
  /// Empty tensor (ndim 0, numel 0).
  Tensor() = default;

  /// Zero-filled tensor of the given shape. All extents must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Wraps `data` (must have exactly the shape's element count).
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> data);

  /// 1-D tensor from a flat list of values.
  static Tensor Vector(std::vector<float> data);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng,
                      float stddev = 1.0f);

  /// I.i.d. Uniform[lo, hi) entries.
  static Tensor RandUniform(std::vector<int64_t> shape, Rng& rng, float lo,
                            float hi);

  const std::vector<int64_t>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat (row-major) element access.
  float& operator[](int64_t i) {
    GEODP_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    GEODP_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  /// Multi-index access, e.g. t.at({row, col}).
  float& at(std::initializer_list<int64_t> index);
  float at(std::initializer_list<int64_t> index) const;

  /// Returns a copy with a new shape; element count must match. A -1 extent
  /// is inferred from the remaining dimensions.
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  /// Deep copy (same as copy construction, named for readability).
  Tensor Clone() const { return *this; }

  void Fill(float value);

  /// this += other (shapes must match).
  void AddInPlace(const Tensor& other);

  /// this -= other (shapes must match).
  void SubInPlace(const Tensor& other);

  /// this *= factor.
  void ScaleInPlace(float factor);

  /// this += alpha * x (shapes must match).
  void AxpyInPlace(float alpha, const Tensor& x);

  /// Euclidean (L2) norm of the flattened tensor.
  double L2Norm() const;

  /// Sum of all elements.
  double Sum() const;

  /// "Tensor([2, 3], [...first elements...])" for debugging.
  std::string DebugString(int64_t max_elements = 8) const;

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> index) const;

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// True if shapes are identical.
bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace geodp

#endif  // GEODP_TENSOR_TENSOR_H_
