#include "geodp_lint/tokenizer.h"

#include <array>
#include <cctype>

namespace geodp {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Multi-character punctuators, longest first so "<<=" wins over "<<".
constexpr std::array<std::string_view, 25> kPunctuators = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  ".*"};

// Literal prefixes that may introduce a raw string (R"...") or an encoded
// string/char literal (u8"...", L'x', ...).
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

bool IsEncodingPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

class Scanner {
 public:
  explicit Scanner(std::string_view content) : content_(content) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (c == '\n') {
        Advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        Advance();
        continue;
      }
      Token token;
      token.line = line_;
      token.col = col_;
      const size_t start = pos_;
      if (c == '/' && Peek(1) == '/') {
        token.kind = TokenKind::kComment;
        ScanLineComment();
      } else if (c == '/' && Peek(1) == '*') {
        token.kind = TokenKind::kComment;
        ScanBlockComment();
      } else if (IsIdentStart(c)) {
        token.kind = TokenKind::kIdentifier;
        while (pos_ < content_.size() && IsIdentChar(content_[pos_])) {
          Advance();
        }
        const std::string_view ident =
            content_.substr(start, pos_ - start);
        if (pos_ < content_.size() && content_[pos_] == '"') {
          if (IsRawStringPrefix(ident)) {
            token.kind = TokenKind::kString;
            ScanRawString();
          } else if (IsEncodingPrefix(ident)) {
            token.kind = TokenKind::kString;
            ScanQuoted('"');
          }
        } else if (pos_ < content_.size() && content_[pos_] == '\'' &&
                   IsEncodingPrefix(ident)) {
          token.kind = TokenKind::kCharLiteral;
          ScanQuoted('\'');
        }
      } else if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        token.kind = TokenKind::kNumber;
        ScanNumber();
      } else if (c == '"') {
        token.kind = TokenKind::kString;
        ScanQuoted('"');
      } else if (c == '\'') {
        token.kind = TokenKind::kCharLiteral;
        ScanQuoted('\'');
      } else {
        token.kind = TokenKind::kPunct;
        ScanPunctuator();
      }
      token.text.assign(content_.substr(start, pos_ - start));
      tokens.push_back(std::move(token));
    }
    return tokens;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < content_.size() ? content_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (content_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void ScanLineComment() {
    while (pos_ < content_.size() && content_[pos_] != '\n') {
      // Backslash-newline continues a line comment onto the next line.
      if (content_[pos_] == '\\' && Peek(1) == '\n') {
        Advance();
        Advance();
        continue;
      }
      Advance();
    }
  }

  void ScanBlockComment() {
    Advance();  // '/'
    Advance();  // '*'
    while (pos_ < content_.size()) {
      if (content_[pos_] == '*' && Peek(1) == '/') {
        Advance();
        Advance();
        return;
      }
      Advance();
    }
  }

  // At the opening '"' of R"delim( ... )delim".
  void ScanRawString() {
    Advance();  // '"'
    std::string terminator = ")";
    while (pos_ < content_.size() && content_[pos_] != '(') {
      terminator += content_[pos_];
      Advance();
    }
    terminator += '"';
    while (pos_ < content_.size()) {
      if (content_.compare(pos_, terminator.size(), terminator) == 0) {
        for (size_t i = 0; i < terminator.size(); ++i) Advance();
        return;
      }
      Advance();
    }
  }

  // At the opening quote. An unterminated literal ends at the line break
  // (best-effort recovery; the rest of the file still tokenizes).
  void ScanQuoted(char quote) {
    Advance();
    while (pos_ < content_.size() && content_[pos_] != '\n') {
      if (content_[pos_] == '\\' && pos_ + 1 < content_.size()) {
        Advance();
        Advance();
        continue;
      }
      if (content_[pos_] == quote) {
        Advance();
        return;
      }
      Advance();
    }
  }

  // pp-number: digits, identifier chars, digit separators between
  // alphanumerics, '.', and exponent signs directly after e/E/p/P. Covers
  // decimal, hex, octal, binary, floats, hexfloats (0x1.8p-3) and
  // suffixed literals (42ull, 1.0f).
  void ScanNumber() {
    while (pos_ < content_.size()) {
      const char c = content_[pos_];
      if (IsIdentChar(c) || c == '.') {
        Advance();
        continue;
      }
      if (c == '\'' && pos_ > 0 && IsIdentChar(content_[pos_ - 1]) &&
          IsIdentChar(Peek(1))) {
        Advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > 0 &&
          (content_[pos_ - 1] == 'e' || content_[pos_ - 1] == 'E' ||
           content_[pos_ - 1] == 'p' || content_[pos_ - 1] == 'P')) {
        Advance();
        continue;
      }
      break;
    }
  }

  void ScanPunctuator() {
    for (const std::string_view punct : kPunctuators) {
      if (content_.compare(pos_, punct.size(), punct) == 0) {
        for (size_t i = 0; i < punct.size(); ++i) Advance();
        return;
      }
    }
    Advance();
  }

  std::string_view content_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view content) {
  return Scanner(content).Run();
}

}  // namespace lint
}  // namespace geodp
