#include "obs/step_observer.h"

#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace.h"

namespace geodp {

std::string StepRecordToJson(const StepRecord& record) {
  std::ostringstream out;
  out << "{\"step\":" << record.step << ",\"attempt\":" << record.attempt
      << ",\"batch_size\":" << record.batch_size << ",\"empty_lot\":"
      << (record.empty_lot ? "true" : "false") << ",\"nonfinite_skipped\":"
      << record.nonfinite_skipped << ",\"mean_loss\":"
      << FormatDouble(record.mean_loss) << ",\"raw_grad_norm\":"
      << FormatDouble(record.raw_grad_norm) << ",\"clipped_grad_norm\":"
      << FormatDouble(record.clipped_grad_norm) << ",\"clip_fraction\":"
      << FormatDouble(record.clip_fraction) << ",\"magnitude_noise_stddev\":"
      << FormatDouble(record.magnitude_noise_stddev)
      << ",\"direction_noise_stddev\":"
      << FormatDouble(record.direction_noise_stddev) << ",\"beta\":"
      << FormatDouble(record.beta) << ",\"sur_enabled\":"
      << (record.sur_enabled ? "true" : "false") << ",\"sur_accepted\":"
      << (record.sur_accepted ? "true" : "false") << ",\"sur_accepted_total\":"
      << record.sur_accepted_total << ",\"sur_rejected_total\":"
      << record.sur_rejected_total << ",\"epsilon\":"
      << FormatDouble(record.epsilon) << ",\"rdp_order\":" << record.rdp_order
      << ",\"accounted_steps\":" << record.accounted_steps << "}";
  return out.str();
}

JsonlStepWriter::JsonlStepWriter(const std::string& path)
    : writer_(path, RetryPolicy{}, "obs.jsonl") {
  if (!writer_.Open().ok()) {
    MetricsRegistry::Global().IncrementCounter("obs.jsonl_open_errors");
  }
}

JsonlStepWriter::~JsonlStepWriter() { Close(); }

void JsonlStepWriter::OnStep(const StepRecord& record) {
  if (!writer_.Append(StepRecordToJson(record) + "\n").ok()) {
    MetricsRegistry::Global().IncrementCounter("obs.jsonl_write_errors");
    return;
  }
  ++records_written_;
}

bool JsonlStepWriter::healthy() const {
  return writer_.status().ok() && writer_.dropped_appends() == 0;
}

const Status& JsonlStepWriter::Close() {
  writer_.Close();
  if (status_.ok()) status_ = writer_.status();
  if (writer_.dropped_appends() > 0 && status_.ok()) {
    status_ = Status::Internal(std::to_string(writer_.dropped_appends()) +
                               " telemetry record(s) dropped for " +
                               writer_.path());
  }
  return status_;
}

const Status& JsonlStepWriter::status() const {
  return status_.ok() ? writer_.status() : status_;
}

std::unique_ptr<JsonlStepWriter> ApplyObservabilityFlags(
    const FlagParser& parser) {
  const std::string trace_path = parser.GetString("geodp_trace_out");
  if (!trace_path.empty()) EnableTracing(trace_path);
  const std::string profile_path = parser.GetString("geodp_profile_out");
  if (!profile_path.empty()) EnableProfiling(profile_path);
  FlightRecorder::Global().set_enabled(parser.GetBool("geodp_flight_recorder"));
  const std::string metrics_path = parser.GetString("geodp_metrics_out");
  if (metrics_path.empty()) return nullptr;
  return std::make_unique<JsonlStepWriter>(metrics_path);
}

}  // namespace geodp
