#include "obs/exposition.h"

#include <array>
#include <cstdio>
#include <sstream>
#include <utility>

#include "base/timer.h"

namespace geodp {
namespace {

// Escapes a string for embedding in a JSON string literal. Metric and
// path names are plain ASCII, but fingerprints embed hexfloats and user
// paths can contain anything.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer;
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendHistogram(std::ostringstream& out, const std::string& source_name,
                     const HistogramSnapshot& histogram) {
  const std::string name = PrometheusMetricName(source_name);
  out << "# HELP " << name << " " << source_name << "\n";
  out << "# TYPE " << name << " histogram\n";
  int64_t cumulative = 0;
  for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
    cumulative += histogram.counts[i];
    out << name << "_bucket{le=\"" << FormatDouble(histogram.upper_bounds[i])
        << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << histogram.count << "\n";
  out << name << "_sum " << FormatDouble(histogram.sum) << "\n";
  out << name << "_count " << histogram.count << "\n";
  const std::pair<const char*, double> quantiles[] = {
      {"p50", histogram.p50}, {"p95", histogram.p95}, {"p99", histogram.p99}};
  for (const auto& [suffix, value] : quantiles) {
    out << "# HELP " << name << "_" << suffix << " " << suffix
        << " of " << source_name << "\n";
    out << "# TYPE " << name << "_" << suffix << " gauge\n";
    out << name << "_" << suffix << " " << FormatDouble(value) << "\n";
  }
}

// The JSON body of a status snapshot without the surrounding braces, so
// VarzJson can reuse it verbatim.
std::string StatusJsonBody(const TrainingStatusSnapshot& s) {
  std::ostringstream out;
  out << "\"run_state\":\"" << JsonEscape(s.run_state) << "\""
      << ",\"options_fingerprint\":\"" << JsonEscape(s.options_fingerprint)
      << "\""
      << ",\"step\":" << s.step << ",\"attempt\":" << s.attempt
      << ",\"iterations\":" << s.iterations << ",\"last_record\":";
  if (s.has_last_record) {
    out << StepRecordToJson(s.last_record);
  } else {
    out << "null";
  }
  out << ",\"epsilon_spent\":" << FormatDouble(s.epsilon_spent)
      << ",\"epsilon_budget\":" << FormatDouble(s.epsilon_budget)
      << ",\"delta\":" << FormatDouble(s.delta) << ",\"degraded\":"
      << (s.degraded ? "true" : "false") << ",\"checkpoint_dir\":\""
      << JsonEscape(s.checkpoint_dir) << "\",\"latest_checkpoint\":\""
      << JsonEscape(s.latest_checkpoint) << "\",\"publish_sequence\":"
      << s.publish_sequence << ",\"publish_micros\":" << s.publish_micros;
  return out.str();
}

}  // namespace

void TrainingStatusPublisher::Publish(TrainingStatusSnapshot snapshot) {
  auto holder =
      std::make_shared<TrainingStatusSnapshot>(std::move(snapshot));
  holder->publish_micros = Timer::ProcessMicros();
  std::lock_guard<std::mutex> lock(mu_);
  holder->publish_sequence = ++publish_count_;
  latest_ = std::move(holder);
}

std::shared_ptr<const TrainingStatusSnapshot> TrainingStatusPublisher::Latest()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

int64_t TrainingStatusPublisher::publish_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return publish_count_;
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "geodp_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out += keep ? c : '_';
  }
  return out;
}

std::string PrometheusText(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [source_name, value] : snapshot.counters) {
    const std::string name = PrometheusMetricName(source_name) + "_total";
    out << "# HELP " << name << " " << source_name << "\n";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [source_name, value] : snapshot.gauges) {
    const std::string name = PrometheusMetricName(source_name);
    out << "# HELP " << name << " " << source_name << "\n";
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << FormatDouble(value) << "\n";
  }
  for (const auto& [source_name, histogram] : snapshot.histograms) {
    AppendHistogram(out, source_name, histogram);
  }
  return out.str();
}

std::string StatuszJson(const TrainingStatusSnapshot& snapshot) {
  std::string out = "{";
  out += StatusJsonBody(snapshot);
  out += "}";
  return out;
}

std::string StatuszHtml(const TrainingStatusSnapshot& s) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><title>geodp /statusz</title></head>\n"
      << "<body>\n<h1>GeoDP training status</h1>\n<table border=\"1\">\n";
  auto row = [&out](const std::string& key, const std::string& value) {
    out << "<tr><td>" << HtmlEscape(key) << "</td><td>" << HtmlEscape(value)
        << "</td></tr>\n";
  };
  row("run_state", s.run_state);
  row("step", std::to_string(s.step) + " / " + std::to_string(s.iterations));
  row("attempt", std::to_string(s.attempt));
  row("epsilon_spent", FormatDouble(s.epsilon_spent));
  row("epsilon_budget",
      s.epsilon_budget > 0.0 ? FormatDouble(s.epsilon_budget) : "unbounded");
  row("delta", FormatDouble(s.delta));
  row("degraded", s.degraded ? "true" : "false");
  row("checkpoint_dir", s.checkpoint_dir.empty() ? "(off)" : s.checkpoint_dir);
  row("latest_checkpoint",
      s.latest_checkpoint.empty() ? "(none)" : s.latest_checkpoint);
  row("options_fingerprint", s.options_fingerprint);
  out << "</table>\n<h2>raw</h2>\n<pre>" << HtmlEscape(StatuszJson(s))
      << "</pre>\n</body></html>\n";
  return out.str();
}

std::string VarzJson(const RegistrySnapshot& registry,
                     const TrainingStatusSnapshot* status) {
  std::ostringstream out;
  out << "{\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << FormatDouble(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << histogram.count
        << ",\"sum\":" << FormatDouble(histogram.sum) << ",\"p50\":"
        << FormatDouble(histogram.p50) << ",\"p95\":"
        << FormatDouble(histogram.p95) << ",\"p99\":"
        << FormatDouble(histogram.p99) << "}";
  }
  out << "}},\"status\":";
  if (status != nullptr) {
    out << "{" << StatusJsonBody(*status) << "}";
  } else {
    out << "null";
  }
  out << "}";
  return out.str();
}

}  // namespace geodp
