// Wall-clock timing helper used by the runtime benchmarks (paper Fig. 6).

#ifndef GEODP_BASE_TIMER_H_
#define GEODP_BASE_TIMER_H_

#include <chrono>

namespace geodp {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer();

  /// Restarts the stopwatch.
  void Reset();

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const;

  /// Microseconds elapsed since construction or the last Reset(), as an
  /// integer (trace-event resolution).
  int64_t ElapsedMicros() const;

  /// Monotonic microseconds since the process-wide epoch (fixed on first
  /// call). Trace timestamps use this so all spans share one time base.
  static int64_t ProcessMicros();

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace geodp

#endif  // GEODP_BASE_TIMER_H_
