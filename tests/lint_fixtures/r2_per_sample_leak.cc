// Fixture: seeded R2 violation — per-sample gradients consumed outside
// src/clip/ with no annotation; the trailing-annotated use and the
// preceding-line-annotated declaration further down are exempt.
#include <vector>

namespace geodp {

double LeakPerSampleData(const std::vector<double>& values) {
  double total = 0.0;
  for (double per_sample_gradient : values) total += per_sample_gradient;
  return total;
}

double AnnotatedUse(double per_sample_norm) {  // geodp: sensitivity-checked
  return per_sample_norm;  // geodp: sensitivity-checked post-clip scalar
}

// geodp: per-sample
extern std::vector<double> per_sample_gradient_buffer;

}  // namespace geodp
