// Minimal command-line flag parsing for the CLI tool and examples:
// `--name=value` / `--name value` / boolean `--name`. No global registry —
// a FlagParser instance owns its flags, which keeps tests hermetic.

#ifndef GEODP_BASE_FLAGS_H_
#define GEODP_BASE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"

namespace geodp {

/// Declares typed flags, parses argv, and exposes the values.
class FlagParser {
 public:
  FlagParser() = default;

  /// Declares a flag with a default and a help string.
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt(const std::string& name, int64_t default_value,
              std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses argv (skipping argv[0]). Unknown flags or malformed values
  /// produce an error status. Non-flag arguments land in
  /// positional_arguments().
  Status Parse(int argc, const char* const* argv);

  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional_arguments() const {
    return positional_;
  }

  /// Formatted help text listing every declared flag.
  std::string HelpText() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string help;
  };

  Status SetValue(Flag& flag, const std::string& name,
                  const std::string& value);
  const Flag& GetFlag(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

/// Registers the library-wide flags every binary should accept. Currently:
///   --geodp_num_threads     worker threads for ParallelFor
///                           (0 = auto-detect, 1 = serial execution).
///   --geodp_metrics_out     per-step training telemetry JSONL path ("" off)
///   --geodp_trace_out       chrome://tracing JSON path ("" off)
///   --geodp_http_port       live introspection server port (0 off)
///   --geodp_http_linger_ms  keep serving this long after training ends
///   --geodp_epsilon_budget  /healthz privacy-budget watchdog (0 unbounded)
///   --geodp_simd            kernel dispatch tier: scalar, avx2 or auto
void AddCommonFlags(FlagParser& parser);

/// Applies the parsed common flags to the library (resizes the global
/// thread pool, selects the SIMD kernel tier). Call once after
/// FlagParser::Parse succeeds. The
/// observability flags are applied by ApplyObservabilityFlags
/// (obs/step_observer.h), which lives above this layer.
void ApplyCommonFlags(const FlagParser& parser);

}  // namespace geodp

#endif  // GEODP_BASE_FLAGS_H_
