// R2v2: per-function intraprocedural taint pass over the token stream.
//
// The name scan in rules.cc only sees values that *keep* a per-sample name.
// The ghost-clipping path is exactly the shape it misses: a squared-norm
// accumulator or weighted backprop row copied into an innocently named
// `double total`, then returned or stored. This pass follows the value.
//
// Taint model (per function body, no interprocedural propagation):
//   sources     — identifiers matching the per-sample patterns (rules.h),
//                 parameters declared on a `// geodp: per-sample` line, and
//                 calls into known per-sample APIs (GhostBackward,
//                 BackwardSum).
//   propagation — assignment and compound assignment (`x = t`, `x += t[i]`,
//                 arithmetic on the right-hand side, container subscripts),
//                 range-for over a tainted range, construction from tainted
//                 arguments, and method calls that feed a tainted argument
//                 into a local object.
//   sinks       — `return` of a tainted value, writes into member state
//                 (`this->...` or the trailing-underscore convention), and
//                 calls that pass a tainted argument out of the function
//                 (value-reading helpers like std::min are exempt).
//   sanitizers  — a `// geodp: sensitivity-checked` line cleans every
//                 variable it mentions (the sensitivity bound has been
//                 applied; the value is no longer raw per-sample data).
//                 `// geodp: per-sample` marks authorized transport: the
//                 sink is suppressed but the value STAYS tainted, so a
//                 later unannotated escape is still caught.
//
// Findings reuse RuleId::kR2PrivacyBoundary ("R2") with an "escapes via
// local" message carrying the taint chain back to the source.

#ifndef GEODP_TOOLS_GEODP_LINT_DATAFLOW_H_
#define GEODP_TOOLS_GEODP_LINT_DATAFLOW_H_

#include <string>
#include <vector>

#include "geodp_lint/lint.h"
#include "geodp_lint/rules.h"

namespace geodp {
namespace lint {

/// Runs the taint pass over every function body in `source` and appends
/// R2v2 findings. Applies only where PathInfo::r2_applies (src/ outside
/// src/clip/).
void CheckPerSampleTaint(const std::string& path, const PathInfo& info,
                         const AnnotatedSource& source,
                         std::vector<Finding>& findings);

}  // namespace lint
}  // namespace geodp

#endif  // GEODP_TOOLS_GEODP_LINT_DATAFLOW_H_
