#include "clip/clipping.h"

#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/thread_pool.h"

namespace geodp {
namespace {

// Samples per ParallelFor chunk in AccumulateClipped. The chunk structure
// (not the thread count) fixes the floating-point reduction order.
constexpr int64_t kClipGrain = 4;

}  // namespace

void Clipper::OnStep(int64_t /*step*/) {}

FlatClipper::FlatClipper(double clip_threshold)
    : clip_threshold_(clip_threshold) {
  GEODP_CHECK_GT(clip_threshold_, 0.0);
}

Tensor FlatClipper::Clip(const Tensor& per_sample_gradient) const {
  const double norm = per_sample_gradient.L2Norm();
  const double divisor = std::max(1.0, norm / clip_threshold_);
  Tensor out = per_sample_gradient;
  out.ScaleInPlace(static_cast<float>(1.0 / divisor));
  return out;
}

AutoSClipper::AutoSClipper(double clip_threshold, double gamma)
    : clip_threshold_(clip_threshold), gamma_(gamma) {
  GEODP_CHECK_GT(clip_threshold_, 0.0);
  GEODP_CHECK_GT(gamma_, 0.0);
}

Tensor AutoSClipper::Clip(const Tensor& per_sample_gradient) const {
  const double norm = per_sample_gradient.L2Norm();
  const double scale = clip_threshold_ / (norm + gamma_);
  Tensor out = per_sample_gradient;
  out.ScaleInPlace(static_cast<float>(scale));
  return out;
}

PsacClipper::PsacClipper(double clip_threshold, double r0, double decay,
                         double gamma)
    : clip_threshold_(clip_threshold),
      r0_(r0),
      decay_(decay),
      gamma_(gamma),
      radius_(r0) {
  GEODP_CHECK_GT(clip_threshold_, 0.0);
  GEODP_CHECK_GE(r0_, 0.0);
  GEODP_CHECK(decay_ > 0.0 && decay_ <= 1.0);
  GEODP_CHECK_GT(gamma_, 0.0);
}

Tensor PsacClipper::Clip(const Tensor& per_sample_gradient) const {
  const double norm = per_sample_gradient.L2Norm();
  const double scale = clip_threshold_ / (norm + radius_ / (norm + gamma_));
  Tensor out = per_sample_gradient;
  out.ScaleInPlace(static_cast<float>(scale));
  return out;
}

void PsacClipper::OnStep(int64_t step) {
  GEODP_CHECK_GE(step, 0);
  radius_ = r0_ * std::pow(decay_, static_cast<double>(step));
}

std::unique_ptr<Clipper> MakeClipper(const std::string& name,
                                     double clip_threshold) {
  if (name == "flat") return std::make_unique<FlatClipper>(clip_threshold);
  if (name == "AUTO-S") return std::make_unique<AutoSClipper>(clip_threshold);
  if (name == "PSAC") return std::make_unique<PsacClipper>(clip_threshold);
  GEODP_CHECK(false) << "unknown clipper: " << name;
  return nullptr;
}

void AccumulateClipped(const std::vector<Tensor>& per_sample_gradients,
                       const Clipper& clipper, Tensor& sum) {
  if (per_sample_gradients.empty()) return;
  const int64_t count = static_cast<int64_t>(per_sample_gradients.size());
  const int64_t num_chunks = (count + kClipGrain - 1) / kClipGrain;
  std::vector<Tensor> partials(static_cast<size_t>(num_chunks));
  ParallelForChunks(0, count, kClipGrain,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      Tensor partial =
                          clipper.Clip(per_sample_gradients[static_cast<size_t>(lo)]);
                      for (int64_t i = lo + 1; i < hi; ++i) {
                        partial.AddInPlace(clipper.Clip(
                            per_sample_gradients[static_cast<size_t>(i)]));
                      }
                      partials[static_cast<size_t>(chunk)] =
                          std::move(partial);
                    });
  for (const Tensor& partial : partials) sum.AddInPlace(partial);
}

Tensor ClipAndSum(const std::vector<Tensor>& per_sample_gradients,
                  const Clipper& clipper) {
  GEODP_CHECK(!per_sample_gradients.empty());
  Tensor sum(per_sample_gradients.front().shape());
  AccumulateClipped(per_sample_gradients, clipper, sum);
  return sum;
}

}  // namespace geodp
