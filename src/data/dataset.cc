#include "data/dataset.h"

#include <algorithm>

#include "base/check.h"

namespace geodp {

void InMemoryDataset::Add(Tensor image, int64_t label) {
  GEODP_CHECK_GE(label, 0);
  if (!images_.empty()) {
    GEODP_CHECK(image.shape() == images_.front().shape())
        << "all images must share a shape";
  }
  images_.push_back(std::move(image));
  labels_.push_back(label);
}

const Tensor& InMemoryDataset::image(int64_t i) const {
  GEODP_CHECK(i >= 0 && i < size());
  return images_[static_cast<size_t>(i)];
}

int64_t InMemoryDataset::label(int64_t i) const {
  GEODP_CHECK(i >= 0 && i < size());
  return labels_[static_cast<size_t>(i)];
}

int64_t InMemoryDataset::NumClasses() const {
  if (labels_.empty()) return 0;
  return 1 + *std::max_element(labels_.begin(), labels_.end());
}

Tensor InMemoryDataset::StackImages(const std::vector<int64_t>& indices) const {
  GEODP_CHECK(!indices.empty());
  const Tensor& first = image(indices.front());
  std::vector<int64_t> batch_shape;
  batch_shape.push_back(static_cast<int64_t>(indices.size()));
  for (int64_t extent : first.shape()) batch_shape.push_back(extent);
  Tensor batch(batch_shape);
  const int64_t stride = first.numel();
  for (size_t b = 0; b < indices.size(); ++b) {
    const Tensor& img = image(indices[b]);
    for (int64_t i = 0; i < stride; ++i) {
      batch[static_cast<int64_t>(b) * stride + i] = img[i];
    }
  }
  return batch;
}

std::vector<int64_t> InMemoryDataset::GatherLabels(
    const std::vector<int64_t>& indices) const {
  std::vector<int64_t> out;
  out.reserve(indices.size());
  for (int64_t i : indices) out.push_back(label(i));
  return out;
}

InMemoryDataset InMemoryDataset::SplitTail(int64_t count) {
  GEODP_CHECK(count >= 0 && count <= size());
  InMemoryDataset tail;
  const int64_t start = size() - count;
  for (int64_t i = start; i < size(); ++i) {
    tail.Add(std::move(images_[static_cast<size_t>(i)]),
             labels_[static_cast<size_t>(i)]);
  }
  images_.resize(static_cast<size_t>(start));
  labels_.resize(static_cast<size_t>(start));
  return tail;
}

}  // namespace geodp
