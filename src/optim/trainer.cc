#include "optim/trainer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <ios>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "base/check.h"
#include "base/fault_injection.h"
#include "base/io/file_io.h"
#include "base/io/retry.h"
#include "base/rng.h"
#include "base/timer.h"
#include "base/units.h"
#include "ckpt/checkpoint.h"
#include "clip/clipping.h"
#include "data/dataloader.h"
#include "nn/loss.h"
#include "nn/parameter.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/adaptive_beta.h"
#include "optim/dp_sgd.h"
#include "optim/ghost_grad.h"
#include "optim/techniques.h"

namespace geodp {
namespace {

// Fills one StepRecord from the step's intermediates. Only called when an
// observer or a status publisher is attached, so none of this costs the
// plain training path.
StepRecord BuildStepRecord(const PrivateBatchGradient& grads,
                           const Perturber& perturber, const Clipper& clipper,
                           const RdpAccountant& accountant,
                           const TrainerOptions& options, int64_t step,
                           int64_t attempt, double current_beta,
                           bool step_accepted,
                           const SelectiveUpdater& selective,
                           int64_t flat_dim) {
  StepRecord record;
  record.step = step;
  record.attempt = attempt;
  record.batch_size = grads.batch_size;
  record.empty_lot = grads.batch_size == 0;
  record.nonfinite_skipped = grads.nonfinite_skipped;
  record.mean_loss = record.empty_lot ? 0.0 : grads.mean_loss;
  record.raw_grad_norm = grads.averaged_raw.L2Norm();
  record.clipped_grad_norm = grads.averaged_clipped.L2Norm();
  // Pre-clip norms feed the clip-fraction telemetry only; the released
  // gradient itself is clipped in the clip-accumulate path.
  if (!grads.sample_grad_norms.empty()) {  // geodp: sensitivity-checked
    int64_t clipped = 0;
    // geodp: sensitivity-checked
    for (const double norm : grads.sample_grad_norms) {
      if (norm > clipper.clip_threshold()) ++clipped;
    }
    record.clip_fraction =
        static_cast<double>(clipped) /
        static_cast<double>(
            grads.sample_grad_norms.size());  // geodp: sensitivity-checked
  }
  const NoiseStddevs stddevs = perturber.Stddevs(flat_dim);
  record.magnitude_noise_stddev = stddevs.magnitude;
  record.direction_noise_stddev = stddevs.direction;
  record.beta = current_beta;
  record.sur_enabled = options.selective_update;
  record.sur_accepted = step_accepted;
  record.sur_accepted_total = selective.accepted();
  record.sur_rejected_total = selective.rejected();
  const RdpSnapshot snapshot = accountant.Snapshot(Delta(options.delta));
  record.epsilon = snapshot.epsilon;
  record.rdp_order = snapshot.optimal_order;
  record.accounted_steps = snapshot.total_steps;
  return record;
}

// Trailing window length (in attempts) of the epsilon burn-rate estimate:
// long enough to smooth the accountant's early nonlinearity, short enough
// to track a regime change within a few dozen steps.
constexpr size_t kBurnRateWindowSteps = 32;

// Derives dp.eps_burn_rate / dp.eps_steps_to_exhaustion from the RDP
// accountant trend: a sliding window of (attempt, epsilon) samples.
// Epsilon per attempt (not per accepted step) because every attempt —
// SUR-rejected ones included — spends budget. Pure function of the
// deterministic epsilon sequence, so the derived telemetry is as
// thread-count-invariant as the accountant itself.
class EpsilonBurnTracker {
 public:
  void Observe(int64_t attempt, double epsilon) {
    if (!window_.empty() && window_.back().first >= attempt) return;
    window_.emplace_back(attempt, epsilon);
    if (window_.size() > kBurnRateWindowSteps) window_.pop_front();
  }

  /// Epsilon spent per attempt over the window; 0 until two samples.
  double rate() const {
    if (window_.size() < 2) return 0.0;
    const int64_t attempts = window_.back().first - window_.front().first;
    if (attempts <= 0) return 0.0;
    return (window_.back().second - window_.front().second) /
           static_cast<double>(attempts);
  }

  /// Projected attempts until `budget` is exhausted at the current rate:
  /// -1 when unknowable (no budget, no samples, or zero rate), 0 once the
  /// budget is already spent.
  double StepsToExhaustion(double budget) const {
    if (budget <= 0.0 || window_.empty()) return -1.0;
    const double remaining = budget - window_.back().second;
    if (remaining <= 0.0) return 0.0;
    const double per_attempt = rate();
    if (per_attempt <= 0.0) return -1.0;
    return remaining / per_attempt;
  }

 private:
  std::deque<std::pair<int64_t, double>> window_;
};

// Mirrors one StepRecord into the global metrics registry (the source the
// /metrics endpoint and MetricsRegistry::ToJsonl serve from).
void MirrorStepMetrics(const StepRecord& record,
                       const TrainerOptions& options) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.IncrementCounter("trainer.steps");
  if (record.empty_lot) registry.IncrementCounter("trainer.empty_lots");
  if (record.nonfinite_skipped > 0) {
    registry.IncrementCounter("trainer.nonfinite_samples",
                              record.nonfinite_skipped);
  }
  if (options.selective_update) {
    registry.IncrementCounter(record.sur_accepted ? "trainer.sur_accepted"
                                                  : "trainer.sur_rejected");
  }
  if (!record.empty_lot) {
    registry.ObserveHistogram("trainer.clip_fraction",
                              {0.1, 0.25, 0.5, 0.75, 0.9, 1.0},
                              record.clip_fraction);
  }
  registry.SetGauge("trainer.epsilon", record.epsilon);
}

// Background thread that watches for a wedged training loop: the loop
// heartbeats once per attempt, and when no heartbeat lands for the
// configured timeout the watchdog flips a sticky `stalled` flag. The loop
// polls it at each attempt boundary and cancels cooperatively — the
// watchdog never kills anything itself, so the final checkpoint flush
// always runs. Uses the R1-safe process clock (base/timer.h).
class StallWatchdog {
 public:
  explicit StallWatchdog(int64_t timeout_ms)
      : timeout_us_(timeout_ms * 1000),
        last_beat_us_(Timer::ProcessMicros()),
        thread_([this] { Loop(); }) {}

  ~StallWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  /// Called by the training loop once per attempt.
  void Heartbeat() {
    last_beat_us_.store(Timer::ProcessMicros(), std::memory_order_relaxed);
  }

  /// Sticky: true once any heartbeat gap exceeded the timeout.
  bool stalled() const { return stalled_.load(std::memory_order_relaxed); }

 private:
  void Loop() {
    // Check a few times per timeout window so detection latency stays a
    // fraction of the timeout without busy-polling.
    const auto interval =
        std::chrono::microseconds(std::max<int64_t>(timeout_us_ / 4, 1000));
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, interval, [this] { return stop_; });
      if (stop_) return;
      const int64_t gap_us =
          Timer::ProcessMicros() -
          last_beat_us_.load(std::memory_order_relaxed);
      if (gap_us >= timeout_us_ && !stalled_.exchange(true)) {
        std::fprintf(stderr,
                     "trainer: stall watchdog fired (no step for %lld ms); "
                     "cancelling at the next attempt boundary\n",
                     static_cast<long long>(gap_us / 1000));
      }
    }
  }

  const int64_t timeout_us_;
  std::atomic<int64_t> last_beat_us_;
  std::atomic<bool> stalled_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::thread thread_;
};

// Canonical string of every option that shapes the training trajectory.
// Stored in each checkpoint and compared on resume, so a checkpoint can
// never silently continue a differently-configured run. `iterations` is
// deliberately excluded: resuming with a larger bound extends training,
// and the first steps of a run do not depend on when it will stop.
// Doubles are rendered as hexfloat, so the comparison is bit-exact.
std::string OptionsFingerprint(const TrainerOptions& o, int64_t train_size) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "v2"
      << "|method=" << static_cast<int>(o.method)
      << "|train_size=" << train_size
      << "|batch=" << o.batch_size
      << "|lr=" << o.learning_rate
      << "|clip=" << o.clip_threshold
      << "|sigma=" << o.noise_multiplier
      << "|beta=" << o.beta
      << "|adaptive_beta=" << o.adaptive_beta
      << "|beta_floor=" << o.adaptive_beta_floor
      << "|angles=" << static_cast<int>(o.angle_handling)
      << "|clipper=" << o.clipper
      << "|clip_mode=" << o.clip_mode
      << "|poisson=" << o.poisson_sampling
      << "|is=" << o.importance_sampling
      << "|sur=" << o.selective_update
      << "|sur_tol=" << o.sur_tolerance
      << "|sur_eval=" << o.sur_eval_examples
      << "|adam=" << o.use_adam
      << "|delta=" << o.delta
      << "|seed=" << o.seed
      << "|record_loss=" << o.record_loss_every;
  return out.str();
}

}  // namespace

Status ValidateTrainerOptions(const TrainerOptions& options,
                              int64_t train_size) {
  if (train_size <= 0) {
    return Status::InvalidArgument("training dataset is empty");
  }
  if (options.batch_size <= 0) {
    return Status::InvalidArgument(
        "batch_size must be positive, got " +
        std::to_string(options.batch_size));
  }
  if (options.batch_size > train_size) {
    return Status::InvalidArgument(
        "batch_size " + std::to_string(options.batch_size) +
        " exceeds dataset size " + std::to_string(train_size));
  }
  if (options.iterations <= 0) {
    return Status::InvalidArgument(
        "iterations must be positive, got " +
        std::to_string(options.iterations));
  }
  if (!(options.learning_rate > 0.0)) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (!(options.clip_threshold > 0.0)) {
    return Status::InvalidArgument("clip_threshold must be positive");
  }
  if (!IsKnownClipper(options.clipper)) {
    return Status::InvalidArgument(
        "unknown clipper \"" + options.clipper +
        "\" (expected \"flat\", \"AUTO-S\", or \"PSAC\")");
  }
  if (options.clip_mode != "materialize" && options.clip_mode != "ghost") {
    return Status::InvalidArgument(
        "unknown clip_mode \"" + options.clip_mode +
        "\" (expected \"materialize\" or \"ghost\")");
  }
  if (!(options.noise_multiplier >= 0.0)) {
    return Status::InvalidArgument("noise_multiplier must be >= 0");
  }
  if (!(options.beta > 0.0 && options.beta <= 1.0)) {
    return Status::InvalidArgument("beta must be in (0, 1]");
  }
  if (!(options.delta > 0.0 && options.delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (options.selective_update && options.sur_eval_examples <= 0) {
    return Status::InvalidArgument(
        "sur_eval_examples must be positive when selective_update is on");
  }
  if (!(options.sur_tolerance >= 0.0)) {
    return Status::InvalidArgument("sur_tolerance must be >= 0");
  }
  if (options.checkpoint_every < 0) {
    return Status::InvalidArgument("checkpoint_every must be >= 0");
  }
  if (options.checkpoint_every > 0 && options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every > 0 requires checkpoint_dir");
  }
  if (options.checkpoint_keep < 1) {
    return Status::InvalidArgument("checkpoint_keep must be >= 1");
  }
  if (options.max_missed_checkpoints < 0) {
    return Status::InvalidArgument("max_missed_checkpoints must be >= 0");
  }
  if (options.stall_timeout_ms < 0) {
    return Status::InvalidArgument("stall_timeout_ms must be >= 0");
  }
  return Status::Ok();
}

DpTrainer::DpTrainer(Sequential* model, const InMemoryDataset* train,
                     const InMemoryDataset* test, TrainerOptions options)
    : model_(model), train_(train), test_(test), options_(options) {
  // Null pointers are programming errors; everything value-shaped is
  // validated by Run() so callers get a Status instead of an abort.
  GEODP_CHECK(model_ != nullptr);  // geodp: check-ok
  GEODP_CHECK(train_ != nullptr);  // geodp: check-ok
}

TrainingResult DpTrainer::Train() {
  StatusOr<TrainingResult> result = Run();
  GEODP_CHECK(result.ok()) << result.status().ToString();  // geodp: check-ok
  return std::move(result).value();
}

StatusOr<TrainingResult> DpTrainer::Run() {
  const Status valid = ValidateTrainerOptions(options_, train_->size());
  if (!valid.ok()) return valid;
  const bool ghost_clipping = options_.clip_mode == "ghost";
  if (ghost_clipping && !GhostClipSupported(*model_)) {
    return Status::InvalidArgument(
        "clip_mode \"ghost\" requires every model layer to support ghost "
        "clipping; use clip_mode \"materialize\" for this model");
  }

  Rng rng(options_.seed);
  Rng noise_rng = rng.Fork();

  const std::vector<Parameter*> params = model_->Parameters();
  const int64_t flat_dim = TotalParameterCount(params);

  PerturbationOptions base;
  base.clip_threshold = options_.clip_threshold;
  base.batch_size = options_.batch_size;
  base.noise_multiplier = options_.noise_multiplier;
  std::unique_ptr<Perturber> perturber = MakePerturberForMethod(
      options_.method, base, options_.beta, options_.angle_handling);
  AdaptiveBetaController beta_controller(options_.adaptive_beta_floor, 1.0);
  const bool adapt_beta =
      options_.adaptive_beta && options_.method == PerturbationMethod::kGeoDp;
  double current_beta = options_.beta;

  const std::unique_ptr<Clipper> clipper =
      MakeClipper(options_.clipper, ClipThreshold(options_.clip_threshold));

  BatchSampler uniform_sampler(train_->size(), options_.batch_size,
                               rng.Next());
  PoissonSampler poisson_sampler(train_->size(),
                                 static_cast<double>(options_.batch_size) /
                                     static_cast<double>(train_->size()),
                                 rng.Next());
  ImportanceSampler importance_sampler(train_->size(), options_.batch_size,
                                       rng.Next());
  SelectiveUpdater selective(options_.sur_tolerance);
  FlatAdam adam(flat_dim, AdamOptions{.learning_rate =
                                          options_.learning_rate});
  SoftmaxCrossEntropy loss;
  RdpAccountant accountant;
  const double sampling_rate = static_cast<double>(options_.batch_size) /
                               static_cast<double>(train_->size());
  const std::string fingerprint =
      OptionsFingerprint(options_, train_->size());

  TrainingResult result;
  int64_t accepted_updates = 0;
  int64_t start_attempt = 0;
  std::string last_checkpoint_path;

  if (!options_.resume_from.empty()) {
    StatusOr<FoundCheckpoint> found =
        FindLatestGoodCheckpoint(options_.resume_from);
    if (!found.ok()) return found.status();
    last_checkpoint_path = found.value().path;
    const TrainingCheckpoint& c = found.value().checkpoint;
    if (c.options_fingerprint != fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint " + found.value().path +
          " was written by a differently-configured run; refusing to "
          "resume (got \"" + c.options_fingerprint + "\", want \"" +
          fingerprint + "\")");
    }
    // Validate every restored shape before mutating anything, so a
    // mismatched checkpoint leaves the model and trainer untouched.
    if (c.param_names.size() != params.size()) {
      return Status::FailedPrecondition(
          "checkpoint parameter count mismatch");
    }
    for (size_t i = 0; i < params.size(); ++i) {
      if (c.param_names[i] != params[i]->name ||
          c.param_values[i].shape() != params[i]->value.shape()) {
        return Status::FailedPrecondition(
            "checkpoint parameter mismatch at \"" + c.param_names[i] +
            "\"");
      }
    }
    if (static_cast<int64_t>(c.uniform_sampler.order.size()) !=
            train_->size() ||
        c.uniform_sampler.cursor < 0 ||
        c.uniform_sampler.cursor > train_->size()) {
      return Status::FailedPrecondition(
          "checkpoint batch-sampler state does not fit this dataset");
    }
    if (static_cast<int64_t>(c.importance_sampler.weights.size()) !=
            train_->size() ||
        c.importance_sampler.seen.size() !=
            c.importance_sampler.weights.size()) {
      return Status::FailedPrecondition(
          "checkpoint importance-sampler state does not fit this dataset");
    }
    if (c.adam.m.numel() != flat_dim || c.adam.v.numel() != flat_dim ||
        c.adam.step < 0) {
      return Status::FailedPrecondition(
          "checkpoint optimizer state does not fit this model");
    }
    if (c.beta_controller.observations < 0 ||
        c.beta_controller.min_angle.size() !=
            c.beta_controller.max_angle.size()) {
      return Status::FailedPrecondition(
          "checkpoint adaptive-beta state is inconsistent");
    }
    if (c.sur_accepted < 0 || c.sur_rejected < 0) {
      return Status::FailedPrecondition(
          "checkpoint SUR counters are inconsistent");
    }
    const Status accounting = accountant.RestoreState(
        c.accountant_orders, c.accountant_rdp, c.accountant_steps);
    if (!accounting.ok()) return accounting;

    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = c.param_values[i];
    }
    noise_rng.ImportState(c.noise_rng);
    uniform_sampler.ImportState(c.uniform_sampler);
    poisson_sampler.ImportState(c.poisson_rng);
    importance_sampler.ImportState(c.importance_sampler);
    adam.ImportState(c.adam);
    beta_controller.ImportState(c.beta_controller);
    selective.RestoreCounts(c.sur_accepted, c.sur_rejected);
    result.ledger.RestoreEvents(c.ledger_events);
    result.loss_iterations = c.loss_iterations;
    result.loss_history = c.loss_history;
    result.empty_lots = c.empty_lots;
    result.nonfinite_skipped = c.nonfinite_skipped;
    current_beta = c.current_beta;
    if (adapt_beta) {
      perturber = MakePerturberForMethod(options_.method, base, current_beta,
                                         options_.angle_handling);
    }
    accepted_updates = c.accepted_updates;
    start_attempt = c.next_attempt;
    FlightRecorder::Global().Record(FlightEventKind::kResume, start_attempt,
                                    "resumed from " + last_checkpoint_path);
  }

  // SUR (DPSUR semantics): a rejected update does not count as a training
  // iteration — the loop keeps drawing fresh noisy updates (each spending
  // privacy budget) until one is accepted, up to an attempt cap.
  const int64_t max_attempts = options_.selective_update
                                   ? 3 * options_.iterations
                                   : options_.iterations;
  StepObserver* const observer = options_.step_observer;
  const bool observing = observer != nullptr;
  TrainingStatusPublisher* const publisher = options_.status_publisher;
  const bool publishing = publisher != nullptr;
  const bool checkpointing = options_.checkpoint_every > 0;
  FaultInjector& faults = FaultInjector::Global();
  FlightRecorder& recorder = FlightRecorder::Global();

  // -- Resilience state -------------------------------------------------
  // Sticky once any observability sink loses data: training continues,
  // the obs.degraded gauge flips, /healthz reports "degraded".
  bool degraded = false;
  int64_t missed_checkpoints = 0;  // consecutive write failures skipped
  bool warned_missed = false;
  bool warned_prune = false;
  // Baselines for mirroring the dependency-free base/io tallies into the
  // metrics registry as this run's io.retries / io.giveups deltas.
  IoStats& io_stats = IoStats::Global();
  int64_t mirrored_retries = io_stats.retries.load(std::memory_order_relaxed);
  int64_t mirrored_giveups = io_stats.giveups.load(std::memory_order_relaxed);
  const auto mirror_io_stats = [&] {
    const int64_t retries = io_stats.retries.load(std::memory_order_relaxed);
    const int64_t giveups = io_stats.giveups.load(std::memory_order_relaxed);
    if (retries > mirrored_retries) {
      MetricsRegistry::Global().IncrementCounter("io.retries",
                                                 retries - mirrored_retries);
      recorder.Record(FlightEventKind::kIoRetry, accepted_updates,
                      "+" + std::to_string(retries - mirrored_retries) +
                          " io retries");
      mirrored_retries = retries;
    }
    if (giveups > mirrored_giveups) {
      MetricsRegistry::Global().IncrementCounter("io.giveups",
                                                 giveups - mirrored_giveups);
      recorder.Record(FlightEventKind::kIoGiveup, accepted_updates,
                      "+" + std::to_string(giveups - mirrored_giveups) +
                          " io giveups");
      mirrored_giveups = giveups;
    }
  };
  // Dumps the flight-recorder buffer as an atomic postmortem file next to
  // the checkpoints (checkpointing off = nowhere agreed to write).
  // Best-effort observability: a failed dump never changes the run's
  // fate, and the write fires its own "obs.postmortem" fault site so
  // chaos schedules armed at other sites draw the same random sequence
  // with or without postmortems.
  const auto flush_postmortem = [&](const char* reason,
                                    const std::string& detail,
                                    int64_t attempts_done) {
    if (!checkpointing || !recorder.enabled()) return;
    PostmortemInfo info;
    info.reason = reason;
    info.detail = detail;
    info.step = accepted_updates;
    info.attempt = attempts_done;
    info.epsilon = accountant.Snapshot(Delta(options_.delta)).epsilon;
    info.degraded = degraded;
    const std::string path =
        options_.checkpoint_dir + "/" + PostmortemFileName(attempts_done);
    (void)AtomicWriteFile(path, PostmortemJson(info, recorder.Snapshot()),
                          RetryPolicy{}, "obs.postmortem");
  };
  const auto note_degraded = [&](const char* what, int64_t attempts_done) {
    if (degraded) return;
    degraded = true;
    MetricsRegistry::Global().SetGauge("obs.degraded", 1.0);
    recorder.Record(FlightEventKind::kDegraded, accepted_updates, what);
    std::fprintf(stderr,
                 "trainer: %s is failing; continuing degraded (training "
                 "unaffected, telemetry may be incomplete)\n",
                 what);
    flush_postmortem("degraded", what, attempts_done);
  };
  if (observing || publishing) {
    MetricsRegistry::Global().SetGauge("obs.degraded", 0.0);
  }
  std::unique_ptr<StallWatchdog> watchdog;
  if (options_.stall_timeout_ms > 0) {
    watchdog = std::make_unique<StallWatchdog>(options_.stall_timeout_ms);
  }

  // Copy-on-publish status for the introspection server. Reporting only:
  // nothing the trainer computes depends on whether a publisher is set, so
  // the trajectory (and the JSONL bytes) are identical either way.
  StepRecord last_record;
  bool have_record = false;
  EpsilonBurnTracker burn_tracker;
  const auto publish_status = [&](const char* run_state, int64_t step,
                                  int64_t attempts_done,
                                  const StepRecord* record) {
    TrainingStatusSnapshot snap;
    snap.run_state = run_state;
    snap.options_fingerprint = fingerprint;
    snap.step = step;
    snap.attempt = attempts_done;
    snap.iterations = options_.iterations;
    if (record != nullptr) {
      snap.has_last_record = true;
      snap.last_record = *record;
      snap.epsilon_spent = record->epsilon;
    } else {
      snap.epsilon_spent = accountant.Snapshot(Delta(options_.delta)).epsilon;
    }
    snap.epsilon_budget = options_.epsilon_budget;
    snap.delta = options_.delta;
    snap.degraded = degraded;
    snap.eps_burn_rate = burn_tracker.rate();
    snap.eps_steps_to_exhaustion =
        burn_tracker.StepsToExhaustion(options_.epsilon_budget);
    snap.checkpoint_dir = options_.checkpoint_dir;
    snap.latest_checkpoint = last_checkpoint_path;
    publisher->Publish(std::move(snap));
  };
  if (publishing) {
    publish_status("training", accepted_updates, start_attempt, nullptr);
  }

  // Builds and writes the full-state checkpoint for `next_attempt`.
  // Shared by the periodic in-loop save and the cancellation flush.
  const auto save_checkpoint = [&](int64_t next_attempt) -> Status {
    TrainingCheckpoint ckpt;
    ckpt.next_attempt = next_attempt;
    ckpt.accepted_updates = accepted_updates;
    ckpt.loss_iterations = result.loss_iterations;
    ckpt.loss_history = result.loss_history;
    ckpt.empty_lots = result.empty_lots;
    ckpt.nonfinite_skipped = result.nonfinite_skipped;
    ckpt.sur_accepted = selective.accepted();
    ckpt.sur_rejected = selective.rejected();
    ckpt.current_beta = current_beta;
    ckpt.param_names.reserve(params.size());
    ckpt.param_values.reserve(params.size());
    for (const Parameter* param : params) {
      ckpt.param_names.push_back(param->name);
      ckpt.param_values.push_back(param->value);
    }
    ckpt.noise_rng = noise_rng.ExportState();
    ckpt.uniform_sampler = uniform_sampler.ExportState();
    ckpt.poisson_rng = poisson_sampler.ExportState();
    ckpt.importance_sampler = importance_sampler.ExportState();
    ckpt.adam = adam.ExportState();
    ckpt.accountant_orders = accountant.orders();
    ckpt.accountant_rdp = accountant.cumulative_rdp();
    ckpt.accountant_steps = accountant.total_steps();
    ckpt.ledger_events = result.ledger.events();
    ckpt.beta_controller = beta_controller.ExportState();
    ckpt.options_fingerprint = fingerprint;
    const std::string path =
        options_.checkpoint_dir + "/" + CheckpointFileName(next_attempt);
    const Status saved = SaveTrainingCheckpoint(ckpt, path);
    if (saved.ok()) {
      last_checkpoint_path = path;
      recorder.Record(FlightEventKind::kCheckpointWrite, next_attempt, path);
    }
    return saved;
  };

  bool cancelled = false;
  int64_t attempt = start_attempt;
  for (; attempt < max_attempts && accepted_updates < options_.iterations;
       ++attempt) {
    if (watchdog != nullptr) {
      if (watchdog->stalled()) {
        cancelled = true;
        break;
      }
      watchdog->Heartbeat();
    }
    const TraceSpan step_span("step");
    const int64_t t = accepted_updates;
    clipper->OnStep(t);
    const std::vector<int64_t> batch =
        options_.poisson_sampling
            ? poisson_sampler.NextBatch()
            : (options_.importance_sampling ? importance_sampler.NextBatch()
                                            : uniform_sampler.NextBatch());
    PrivateBatchGradient grads;
    if (batch.empty()) {
      // A Poisson draw can be empty: the "lot" contributes zero gradient
      // and the step is pure noise. Its loss is undefined and its
      // direction carries no signal, so it is excluded from loss_history
      // and from the adaptive-beta envelope below; the step telemetry
      // counts it instead.
      grads.averaged_clipped = Tensor({flat_dim});
      grads.averaged_raw = Tensor({flat_dim});
      grads.batch_size = 0;
      ++result.empty_lots;
    } else {
      grads = ghost_clipping
                  ? ComputeGhostClippedGradients(
                        *model_, loss, *train_, batch, *clipper,
                        /*record_sample_norms=*/observing || publishing)
                  : ComputePerSampleGradients(
                        *model_, loss, *train_, batch, *clipper,
                        /*record_sample_norms=*/observing || publishing);
      result.nonfinite_skipped += grads.nonfinite_skipped;
    }
    if (options_.poisson_sampling && !batch.empty()) {
      // Renormalize: divide the clipped sum by the nominal lot size B
      // rather than the realized batch size.
      const float rescale = static_cast<float>(batch.size()) /
                            static_cast<float>(options_.batch_size);
      grads.averaged_clipped.ScaleInPlace(rescale);
      grads.averaged_raw.ScaleInPlace(rescale);
    }
    if (options_.importance_sampling && !options_.poisson_sampling) {
      for (size_t j = 0; j < batch.size(); ++j) {
        importance_sampler.UpdateLoss(batch[j], grads.sample_losses[j]);
      }
    }

    if (adapt_beta && !batch.empty()) {
      beta_controller.Observe(ToSpherical(grads.averaged_clipped));
      current_beta = beta_controller.CurrentBeta();
      perturber = MakePerturberForMethod(options_.method, base, current_beta,
                                         options_.angle_handling);
    }
    const Tensor noisy = perturber->Perturb(grads.averaged_clipped, noise_rng);
    if (options_.method != PerturbationMethod::kNoiseFree &&
        options_.noise_multiplier > 0.0) {
      accountant.AddSubsampledGaussianSteps(
          NoiseMultiplier(options_.noise_multiplier),
          SamplingRate(sampling_rate), 1);
      result.ledger.RecordSubsampledGaussianCoalesced(
          NoiseMultiplier(options_.noise_multiplier),
          SamplingRate(sampling_rate), "dp-sgd step");
    }

    bool step_accepted = true;
    if (options_.selective_update) {
      // Snapshot, apply, test, revert on failure.
      const TraceSpan sur_span("step.sur_eval");
      const Tensor snapshot = FlattenValues(params);
      const double loss_before = EvaluateMeanLoss(
          *model_, *train_, options_.sur_eval_examples);
      if (options_.use_adam) {
        adam.Step(params, noisy);
      } else {
        ApplyFlatUpdate(params, noisy, options_.learning_rate);
      }
      const double loss_after = EvaluateMeanLoss(
          *model_, *train_, options_.sur_eval_examples);
      if (selective.ShouldAccept(loss_before, loss_after)) {
        ++accepted_updates;
      } else {
        SetValuesFromFlat(params, snapshot);
        step_accepted = false;  // rejected attempts do not advance training
      }
    } else {
      const TraceSpan apply_span("step.optimizer_apply");
      if (options_.use_adam) {
        adam.Step(params, noisy);
      } else {
        ApplyFlatUpdate(params, noisy, options_.learning_rate);
      }
      ++accepted_updates;
    }

    if (step_accepted && !batch.empty() && options_.record_loss_every > 0 &&
        (t % options_.record_loss_every == 0 ||
         t == options_.iterations - 1)) {
      result.loss_iterations.push_back(t);
      result.loss_history.push_back(grads.mean_loss);
    }

    recorder.Record(FlightEventKind::kStepMilestone, attempt + 1,
                    "accepted=" + std::to_string(accepted_updates));

    if (observing || publishing) {
      const StepRecord record = BuildStepRecord(
          grads, *perturber, *clipper, accountant, options_, t, attempt,
          current_beta, step_accepted, selective, flat_dim);
      if (observing) observer->OnStep(record);
      if (observing && !observer->healthy()) {
        note_degraded("the telemetry sink", attempt + 1);
      }
      MirrorStepMetrics(record, options_);
      burn_tracker.Observe(attempt + 1, record.epsilon);
      MetricsRegistry::Global().SetGauge("dp.eps_burn_rate",
                                         burn_tracker.rate());
      MetricsRegistry::Global().SetGauge(
          "dp.eps_steps_to_exhaustion",
          burn_tracker.StepsToExhaustion(options_.epsilon_budget));
      mirror_io_stats();
      if (publishing) {
        last_record = record;
        have_record = true;
      }
    }

    if (checkpointing && (attempt + 1) % options_.checkpoint_every == 0) {
      const TraceSpan ckpt_span("step.checkpoint");
      const Status saved = save_checkpoint(attempt + 1);
      if (!saved.ok()) {
        // The write already exhausted its own errno retries. Skip it and
        // keep training — epsilon spent on completed steps is
        // unrecoverable, so aborting here wastes budget — but bound the
        // debt: too many consecutive misses means the next crash would
        // lose more work than the operator allowed.
        ++missed_checkpoints;
        MetricsRegistry::Global().IncrementCounter("ckpt.missed");
        recorder.Record(FlightEventKind::kCheckpointMiss, attempt + 1,
                        saved.message());
        if (missed_checkpoints > options_.max_missed_checkpoints) {
          const Status fatal(
              saved.code(),
              saved.message() + " (" + std::to_string(missed_checkpoints) +
                  " consecutive checkpoint(s) missed, bound is " +
                  std::to_string(options_.max_missed_checkpoints) + ")");
          recorder.Record(FlightEventKind::kStatusError, attempt + 1,
                          fatal.message());
          flush_postmortem("fatal_status", fatal.message(), attempt + 1);
          return fatal;
        }
        if (!warned_missed) {
          warned_missed = true;
          std::fprintf(stderr,
                       "trainer: checkpoint write failed (%s); skipping "
                       "(miss %lld of %lld allowed)\n",
                       saved.message().c_str(),
                       static_cast<long long>(missed_checkpoints),
                       static_cast<long long>(
                           options_.max_missed_checkpoints));
        }
      } else {
        missed_checkpoints = 0;
        const int64_t prune_errors = PruneOldCheckpoints(
            options_.checkpoint_dir, options_.checkpoint_keep);
        if (prune_errors > 0) {
          // Never fatal: a stale checkpoint file costs disk, not
          // correctness. Counted so operators see the leak.
          MetricsRegistry::Global().IncrementCounter("ckpt.prune_errors",
                                                     prune_errors);
          recorder.Record(FlightEventKind::kCheckpointPrune, attempt + 1,
                          std::to_string(prune_errors) + " prune error(s)");
          if (!warned_prune) {
            warned_prune = true;
            std::fprintf(stderr,
                         "trainer: failed to prune %lld old checkpoint "
                         "file(s) in %s; continuing\n",
                         static_cast<long long>(prune_errors),
                         options_.checkpoint_dir.c_str());
          }
        }
        // Piggyback a postmortem on every successful checkpoint: a later
        // hard kill (SIGKILL, _Exit) gets no chance to flush anything, so
        // the black box must already be on disk — its attempt equals the
        // checkpoint's resume point by construction.
        flush_postmortem("checkpoint", last_checkpoint_path, attempt + 1);
      }
    }

    if (publishing) {
      publish_status("training", accepted_updates, attempt + 1,
                     have_record ? &last_record : nullptr);
    }

    faults.Fire("trainer.step");
  }

  if (cancelled) {
    // Cooperative cancellation: flush a final checkpoint so the epsilon
    // already spent stays resumable, report, and return kCancelled.
    std::string detail = "training cancelled by the stall watchdog after " +
                         std::to_string(attempt) + " attempt(s)";
    recorder.Record(FlightEventKind::kWatchdogCancel, attempt, detail);
    if (checkpointing) {
      const Status flushed = save_checkpoint(attempt);
      detail += flushed.ok()
                    ? "; final checkpoint flushed to " + last_checkpoint_path
                    : "; final checkpoint flush failed: " + flushed.message();
    }
    flush_postmortem("watchdog_cancel", detail, attempt);
    if (observing || publishing) mirror_io_stats();
    if (publishing) {
      publish_status("cancelled", accepted_updates, attempt,
                     have_record ? &last_record : nullptr);
    }
    return Status::Cancelled(detail);
  }

  result.final_train_loss =
      EvaluateMeanLoss(*model_, *train_, /*max_examples=*/0);
  if (test_ != nullptr && test_->size() > 0) {
    result.test_accuracy = EvaluateAccuracy(*model_, *test_);
  }
  if (options_.method != PerturbationMethod::kNoiseFree &&
      options_.noise_multiplier > 0.0) {
    result.epsilon = accountant.GetEpsilon(Delta(options_.delta));
  }
  result.sur_accepted = selective.accepted();
  result.sur_rejected = selective.rejected();
  result.final_beta = adapt_beta ? current_beta : options_.beta;
  if (observing || publishing) mirror_io_stats();
  if (publishing) {
    publish_status("finished", accepted_updates, attempt,
                   have_record ? &last_record : nullptr);
  }
  return result;
}

}  // namespace geodp
