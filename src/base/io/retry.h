// Deterministic retry/backoff policy for the file I/O substrate.
//
// Every filesystem boundary in the library goes through base/io/ (lint
// rule R5), and every operation there retries transient errno failures
// (EINTR/EAGAIN/EIO) under a RetryPolicy: bounded attempts, exponential
// backoff with jitter drawn from a dedicated xoshiro substream — so a
// run that retries is still bit-reproducible — and an optional per-op
// deadline on the R1-safe process clock. Permanent errnos (ENOSPC,
// EROFS, ENOENT, ...) map to typed Status codes immediately; exhausted
// transient retries map to kUnavailable.

#ifndef GEODP_BASE_IO_RETRY_H_
#define GEODP_BASE_IO_RETRY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "base/rng.h"
#include "base/status.h"

namespace geodp {

/// How an I/O operation retries transient failures. The defaults keep
/// total worst-case delay in the low milliseconds so tests and tight
/// loops stay fast; long-lived services can widen them per call site.
struct RetryPolicy {
  // Total tries including the first (1 = no retry).
  int max_attempts = 4;
  // Backoff before retry k (1-based) is initial_backoff_us *
  // backoff_multiplier^(k-1), +/- jitter_fraction of itself.
  int64_t initial_backoff_us = 500;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;
  // Give up once this much process time elapsed since the first attempt
  // (0 = attempts bound only).
  int64_t deadline_us = 0;
  // Root seed of the jitter substream. Fixed by default so retry timing
  // is reproducible; callers that interleave many concurrent ops can
  // salt it. Jitter never feeds back into training randomness: the
  // stream is derived with Rng::Substream, independent of every other
  // stream in the process.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Process-wide I/O resilience tallies. Dependency-free (base/ cannot
/// link the metrics registry in obs/); the trainer mirrors these into
/// MetricsRegistry as the io.retries / io.giveups counters.
struct IoStats {
  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> giveups{0};

  static IoStats& Global();
};

/// True for errnos worth retrying (EINTR, EAGAIN/EWOULDBLOCK, EIO).
bool IsTransientErrno(int err);

/// Maps an errno to a typed Status: transient errnos and unknown
/// failures that may clear -> kUnavailable; ENOSPC/EDQUOT ->
/// kResourceExhausted; EROFS/EACCES/EPERM -> kFailedPrecondition;
/// ENOENT -> kNotFound; anything else -> kInternal. The message is
/// "<context>: <strerror>".
Status StatusFromErrno(int err, const std::string& context);

/// One operation's retry bookkeeping: feed it each failed attempt's
/// errno; it decides whether to retry (sleeping the backoff and counting
/// IoStats::retries) or give up (counting IoStats::giveups).
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy);

  /// Called after a failed attempt with that attempt's errno. When it
  /// returns true the caller should re-run the operation (the backoff
  /// sleep already happened); false means give up now — the errno was
  /// permanent, attempts ran out, or the deadline passed.
  bool ShouldRetry(int err);

  /// Attempts consumed so far (failed calls to ShouldRetry).
  int attempts() const { return attempts_; }

 private:
  RetryPolicy policy_;
  int attempts_ = 0;
  int64_t start_us_;
  Rng jitter_rng_;
};

}  // namespace geodp

#endif  // GEODP_BASE_IO_RETRY_H_
