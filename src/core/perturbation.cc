#include "core/perturbation.h"

#include <cmath>

#include "base/check.h"
#include "base/simd/kernels.h"
#include "base/thread_pool.h"
#include "obs/trace.h"

namespace geodp {
namespace {

void ValidateOptions(const PerturbationOptions& options) {
  GEODP_CHECK_GT(options.clip_threshold, 0.0);
  GEODP_CHECK_GE(options.batch_size, 1);
  GEODP_CHECK_GE(options.noise_multiplier, 0.0);
}

// Coordinates per noise substream. Noise is sampled in parallel from
// per-chunk xoshiro256++ substreams rooted at a single draw from the
// caller's generator, so a release is reproducible from the parent seed
// and invariant to the thread count (the chunk structure, not the
// scheduling, determines which variate lands on which coordinate).
constexpr int64_t kNoiseGrain = 4096;

// Adds i.i.d. N(0, stddev^2) noise to values[0..count) from substreams
// rooted at `root`.
void AddGaussianNoise(float* values, int64_t count, double stddev,
                      uint64_t root) {
  ParallelForChunks(0, count, kNoiseGrain,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      Rng stream =
                          Rng::Substream(root, static_cast<uint64_t>(chunk));
                      simd::GaussianAdd(stream, stddev, values + lo, hi - lo);
                    });
}

// Same substream scheme for a double-valued angle vector.
void AddGaussianNoise(std::vector<double>& values, double stddev,
                      uint64_t root) {
  ParallelForChunks(0, static_cast<int64_t>(values.size()), kNoiseGrain,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      Rng stream =
                          Rng::Substream(root, static_cast<uint64_t>(chunk));
                      simd::GaussianAdd(stream, stddev,
                                        values.data() + lo, hi - lo);
                    });
}

void AddLaplaceNoise(std::vector<double>& values, double scale,
                     uint64_t root) {
  ParallelForChunks(0, static_cast<int64_t>(values.size()), kNoiseGrain,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      Rng stream =
                          Rng::Substream(root, static_cast<uint64_t>(chunk));
                      for (int64_t i = lo; i < hi; ++i) {
                        values[static_cast<size_t>(i)] +=
                            stream.Laplace(scale);
                      }
                    });
}

}  // namespace

DpPerturber::DpPerturber(PerturbationOptions options) : options_(options) {
  ValidateOptions(options_);
}

double DpPerturber::CoordinateNoiseStddev() const {
  return options_.clip_threshold * options_.noise_multiplier /
         static_cast<double>(options_.batch_size);
}

NoiseStddevs DpPerturber::Stddevs(int64_t /*dimension*/) const {
  return {CoordinateNoiseStddev(), 0.0};
}

Tensor DpPerturber::Perturb(const Tensor& avg_clipped_gradient,
                            Rng& rng) const {
  GEODP_CHECK_EQ(avg_clipped_gradient.ndim(), 1);
  const TraceSpan span("perturb.dp");
  Tensor out = avg_clipped_gradient;
  // One root draw advances the parent deterministically; the coordinate
  // noise itself comes from per-chunk substreams (see AddGaussianNoise).
  const uint64_t root = rng.Next();
  AddGaussianNoise(out.data(), out.numel(), CoordinateNoiseStddev(), root);
  return out;
}

GeoDpPerturber::GeoDpPerturber(GeoDpOptions options) : options_(options) {
  ValidateOptions(options_.base);
  GEODP_CHECK(options_.beta > 0.0 && options_.beta <= 1.0)
      << "bounding factor beta must lie in (0, 1]";
  GEODP_CHECK_GE(options_.magnitude_sigma_scale, 0.0);
  GEODP_CHECK_GE(options_.direction_sigma_scale, 0.0);
}

double GeoDpPerturber::MagnitudeNoiseStddev() const {
  return options_.magnitude_sigma_scale * options_.base.clip_threshold *
         options_.base.noise_multiplier /
         static_cast<double>(options_.base.batch_size);
}

double GeoDpPerturber::DirectionNoiseStddev(int64_t dimension) const {
  const DirectionSensitivity sensitivity =
      ComputeDirectionSensitivity(dimension, options_.beta);
  return options_.direction_sigma_scale * sensitivity.total_l2 *
         options_.base.noise_multiplier /
         static_cast<double>(options_.base.batch_size);
}

SphericalCoordinates GeoDpPerturber::PerturbSpherical(
    const SphericalCoordinates& coords, Rng& rng) const {
  SphericalCoordinates noisy = coords;
  noisy.magnitude += rng.Gaussian(0.0, MagnitudeNoiseStddev());
  if (options_.clamp_magnitude && noisy.magnitude < 0.0) {
    noisy.magnitude = 0.0;
  }
  const double angle_stddev = DirectionNoiseStddev(coords.CartesianDim());
  AddGaussianNoise(noisy.angles, angle_stddev, rng.Next());
  switch (options_.angle_handling) {
    case AngleHandling::kNone:
      break;
    case AngleHandling::kWrap:
      noisy.angles = WrapAngles(std::move(noisy.angles));
      break;
    case AngleHandling::kClamp:
      noisy.angles = ClampAngles(std::move(noisy.angles));
      break;
  }
  return noisy;
}

NoiseStddevs GeoDpPerturber::Stddevs(int64_t dimension) const {
  return {MagnitudeNoiseStddev(), DirectionNoiseStddev(dimension)};
}

Tensor GeoDpPerturber::Perturb(const Tensor& avg_clipped_gradient,
                               Rng& rng) const {
  GEODP_CHECK_EQ(avg_clipped_gradient.ndim(), 1);
  GEODP_CHECK_GE(avg_clipped_gradient.dim(0), 2)
      << "GeoDP needs at least a 2-dimensional gradient";
  SphericalCoordinates coords;
  {
    const TraceSpan span("spherical.to_spherical");
    coords = ToSpherical(avg_clipped_gradient);
  }
  SphericalCoordinates noisy;
  {
    const TraceSpan span("perturb.geodp");
    noisy = PerturbSpherical(coords, rng);
  }
  const TraceSpan span("spherical.to_cartesian");
  return ToCartesian(noisy);
}

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

GeoLaplacePerturber::GeoLaplacePerturber(GeoLaplaceOptions options)
    : options_(options) {
  GEODP_CHECK_GT(options_.clip_threshold, 0.0);
  GEODP_CHECK_GE(options_.batch_size, 1);
  GEODP_CHECK_GT(options_.magnitude_epsilon, 0.0);
  GEODP_CHECK_GT(options_.direction_epsilon, 0.0);
  GEODP_CHECK(options_.beta > 0.0 && options_.beta <= 1.0);
}

double GeoLaplacePerturber::MagnitudeNoiseScale() const {
  return options_.clip_threshold /
         (options_.magnitude_epsilon *
          static_cast<double>(options_.batch_size));
}

double GeoLaplacePerturber::DirectionNoiseScale(int64_t dimension) const {
  GEODP_CHECK_GE(dimension, 2);
  // L1 sensitivity of the angle vector: (d-2) angles of range beta*pi plus
  // one of range 2*beta*pi.
  const double l1_sensitivity =
      static_cast<double>(dimension) * options_.beta * kPi;
  return l1_sensitivity / (options_.direction_epsilon *
                           static_cast<double>(options_.batch_size));
}

double GeoLaplacePerturber::TotalEpsilon() const {
  return options_.magnitude_epsilon + options_.direction_epsilon;
}

NoiseStddevs GeoLaplacePerturber::Stddevs(int64_t dimension) const {
  // Laplace(b) has stddev sqrt(2) * b.
  const double kSqrt2 = std::sqrt(2.0);
  return {kSqrt2 * MagnitudeNoiseScale(),
          kSqrt2 * DirectionNoiseScale(dimension)};
}

Tensor GeoLaplacePerturber::Perturb(const Tensor& avg_clipped_gradient,
                                    Rng& rng) const {
  GEODP_CHECK_EQ(avg_clipped_gradient.ndim(), 1);
  GEODP_CHECK_GE(avg_clipped_gradient.dim(0), 2);
  SphericalCoordinates coords = ToSpherical(avg_clipped_gradient);
  coords.magnitude += rng.Laplace(MagnitudeNoiseScale());
  const double angle_scale = DirectionNoiseScale(coords.CartesianDim());
  AddLaplaceNoise(coords.angles, angle_scale, rng.Next());
  switch (options_.angle_handling) {
    case AngleHandling::kNone:
      break;
    case AngleHandling::kWrap:
      coords.angles = WrapAngles(std::move(coords.angles));
      break;
    case AngleHandling::kClamp:
      coords.angles = ClampAngles(std::move(coords.angles));
      break;
  }
  return ToCartesian(coords);
}

std::unique_ptr<Perturber> MakeDpPerturber(PerturbationOptions options) {
  return std::make_unique<DpPerturber>(options);
}

std::unique_ptr<Perturber> MakeGeoDpPerturber(GeoDpOptions options) {
  return std::make_unique<GeoDpPerturber>(options);
}

}  // namespace geodp
