#include "nn/pooling.h"

#include "base/check.h"

namespace geodp {

MaxPool2d::MaxPool2d(int64_t window) : window_(window) {
  GEODP_CHECK_GT(window_, 0);
}

Tensor MaxPool2d::Forward(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 4);
  const int64_t batch = input.dim(0), channels = input.dim(1);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  GEODP_CHECK_EQ(in_h % window_, 0);
  GEODP_CHECK_EQ(in_w % window_, 0);
  const int64_t out_h = in_h / window_, out_w = in_w / window_;

  input_shape_ = input.shape();
  Tensor output({batch, channels, out_h, out_w});
  argmax_.assign(static_cast<size_t>(output.numel()), 0);

  const float* x = input.data();
  float* y = output.data();
  int64_t out_index = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          int64_t best_index = -1;
          float best = 0.0f;
          for (int64_t kh = 0; kh < window_; ++kh) {
            for (int64_t kw = 0; kw < window_; ++kw) {
              const int64_t ih = oh * window_ + kh;
              const int64_t iw = ow * window_ + kw;
              const int64_t xi =
                  ((b * channels + c) * in_h + ih) * in_w + iw;
              if (best_index < 0 || x[xi] > best) {
                best = x[xi];
                best_index = xi;
              }
            }
          }
          y[out_index] = best;
          argmax_[static_cast<size_t>(out_index)] = best_index;
          ++out_index;
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  GEODP_CHECK_EQ(static_cast<size_t>(grad_output.numel()), argmax_.size());
  Tensor grad_input(input_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_input[argmax_[static_cast<size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

AvgPool2d::AvgPool2d(int64_t window) : window_(window) {
  GEODP_CHECK_GT(window_, 0);
}

Tensor AvgPool2d::Forward(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 4);
  const int64_t batch = input.dim(0), channels = input.dim(1);
  const int64_t in_h = input.dim(2), in_w = input.dim(3);
  GEODP_CHECK_EQ(in_h % window_, 0);
  GEODP_CHECK_EQ(in_w % window_, 0);
  const int64_t out_h = in_h / window_, out_w = in_w / window_;
  input_shape_ = input.shape();

  Tensor output({batch, channels, out_h, out_w});
  const float* x = input.data();
  float* y = output.data();
  const double inv = 1.0 / static_cast<double>(window_ * window_);
  int64_t out_index = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          double sum = 0.0;
          for (int64_t kh = 0; kh < window_; ++kh) {
            for (int64_t kw = 0; kw < window_; ++kw) {
              const int64_t ih = oh * window_ + kh;
              const int64_t iw = ow * window_ + kw;
              sum += static_cast<double>(
                  x[((b * channels + c) * in_h + ih) * in_w + iw]);
            }
          }
          y[out_index++] = static_cast<float>(sum * inv);
        }
      }
    }
  }
  return output;
}

Tensor AvgPool2d::Backward(const Tensor& grad_output) {
  GEODP_CHECK_EQ(grad_output.ndim(), 4);
  const int64_t batch = input_shape_[0], channels = input_shape_[1];
  const int64_t in_h = input_shape_[2], in_w = input_shape_[3];
  const int64_t out_h = in_h / window_, out_w = in_w / window_;
  GEODP_CHECK_EQ(grad_output.dim(2), out_h);
  GEODP_CHECK_EQ(grad_output.dim(3), out_w);

  Tensor grad_input(input_shape_);
  const float* gy = grad_output.data();
  float* gx = grad_input.data();
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  int64_t out_index = 0;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t oh = 0; oh < out_h; ++oh) {
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const float g = gy[out_index++] * inv;
          for (int64_t kh = 0; kh < window_; ++kh) {
            for (int64_t kw = 0; kw < window_; ++kw) {
              const int64_t ih = oh * window_ + kh;
              const int64_t iw = ow * window_ + kw;
              gx[((b * channels + c) * in_h + ih) * in_w + iw] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

Tensor GlobalAvgPool::Forward(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 4);
  const int64_t batch = input.dim(0), channels = input.dim(1);
  const int64_t spatial = input.dim(2) * input.dim(3);
  input_shape_ = input.shape();
  Tensor output({batch, channels});
  const float* x = input.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      double sum = 0.0;
      const float* plane = x + (b * channels + c) * spatial;
      for (int64_t i = 0; i < spatial; ++i)
        sum += static_cast<double>(plane[i]);
      output[b * channels + c] =
          static_cast<float>(sum / static_cast<double>(spatial));
    }
  }
  return output;
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_output) {
  GEODP_CHECK_EQ(grad_output.ndim(), 2);
  const int64_t batch = input_shape_[0], channels = input_shape_[1];
  const int64_t spatial = input_shape_[2] * input_shape_[3];
  GEODP_CHECK_EQ(grad_output.dim(0), batch);
  GEODP_CHECK_EQ(grad_output.dim(1), channels);
  Tensor grad_input(input_shape_);
  float* gx = grad_input.data();
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels; ++c) {
      const float g = grad_output[b * channels + c] * inv;
      float* plane = gx + (b * channels + c) * spatial;
      for (int64_t i = 0; i < spatial; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

}  // namespace geodp
