#include "obs/step_observer.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace geodp {

std::string StepRecordToJson(const StepRecord& record) {
  std::ostringstream out;
  out << "{\"step\":" << record.step << ",\"attempt\":" << record.attempt
      << ",\"batch_size\":" << record.batch_size << ",\"empty_lot\":"
      << (record.empty_lot ? "true" : "false") << ",\"nonfinite_skipped\":"
      << record.nonfinite_skipped << ",\"mean_loss\":"
      << FormatDouble(record.mean_loss) << ",\"raw_grad_norm\":"
      << FormatDouble(record.raw_grad_norm) << ",\"clipped_grad_norm\":"
      << FormatDouble(record.clipped_grad_norm) << ",\"clip_fraction\":"
      << FormatDouble(record.clip_fraction) << ",\"magnitude_noise_stddev\":"
      << FormatDouble(record.magnitude_noise_stddev)
      << ",\"direction_noise_stddev\":"
      << FormatDouble(record.direction_noise_stddev) << ",\"beta\":"
      << FormatDouble(record.beta) << ",\"sur_enabled\":"
      << (record.sur_enabled ? "true" : "false") << ",\"sur_accepted\":"
      << (record.sur_accepted ? "true" : "false") << ",\"sur_accepted_total\":"
      << record.sur_accepted_total << ",\"sur_rejected_total\":"
      << record.sur_rejected_total << ",\"epsilon\":"
      << FormatDouble(record.epsilon) << ",\"rdp_order\":" << record.rdp_order
      << ",\"accounted_steps\":" << record.accounted_steps << "}";
  return out.str();
}

JsonlStepWriter::JsonlStepWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    status_ = Status::InvalidArgument("cannot open " + path);
    MetricsRegistry::Global().IncrementCounter("obs.jsonl_open_errors");
  }
}

JsonlStepWriter::~JsonlStepWriter() { Close(); }

void JsonlStepWriter::OnStep(const StepRecord& record) {
  if (file_ == nullptr) {
    ++dropped_records_;
    MetricsRegistry::Global().IncrementCounter("obs.jsonl_write_errors");
    return;
  }
  const std::string line = StepRecordToJson(record);
  if (std::fprintf(file_, "%s\n", line.c_str()) < 0 ||
      std::fflush(file_) != 0) {
    if (status_.ok()) status_ = Status::Internal("write failed for " + path_);
    ++dropped_records_;
    MetricsRegistry::Global().IncrementCounter("obs.jsonl_write_errors");
    return;
  }
  ++records_written_;
}

const Status& JsonlStepWriter::Close() {
  if (file_ == nullptr) return status_;
  const bool flush_failed = std::fflush(file_) != 0;
  const bool close_failed = std::fclose(file_) != 0;
  file_ = nullptr;
  if ((flush_failed || close_failed) && status_.ok()) {
    status_ = Status::Internal("close failed for " + path_);
  }
  if (dropped_records_ > 0 && status_.ok()) {
    status_ = Status::Internal(std::to_string(dropped_records_) +
                               " telemetry record(s) dropped for " + path_);
  }
  return status_;
}

std::unique_ptr<JsonlStepWriter> ApplyObservabilityFlags(
    const FlagParser& parser) {
  const std::string trace_path = parser.GetString("geodp_trace_out");
  if (!trace_path.empty()) EnableTracing(trace_path);
  const std::string metrics_path = parser.GetString("geodp_metrics_out");
  if (metrics_path.empty()) return nullptr;
  return std::make_unique<JsonlStepWriter>(metrics_path);
}

}  // namespace geodp
