#include "nn/flatten.h"

#include "base/check.h"

namespace geodp {

Tensor Flatten::Forward(const Tensor& input) {
  GEODP_CHECK_GE(input.ndim(), 2);
  input_shape_ = input.shape();
  return input.Reshape({input.dim(0), -1});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshape(input_shape_);
}

}  // namespace geodp
