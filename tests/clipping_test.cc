// Tests for per-sample clipping strategies, including the parameterized
// invariant that every strategy bounds the clipped norm by C.

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "clip/clipping.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

TEST(FlatClipperTest, LargeGradientScaledToThreshold) {
  const FlatClipper clipper(1.0);
  const Tensor g = Tensor::Vector({3, 4});  // norm 5
  const Tensor clipped = clipper.Clip(g);
  EXPECT_NEAR(clipped.L2Norm(), 1.0, 1e-6);
  // Direction preserved.
  EXPECT_NEAR(CosineSimilarity(g, clipped), 1.0, 1e-6);
}

TEST(FlatClipperTest, SmallGradientUnchanged) {
  const FlatClipper clipper(10.0);
  const Tensor g = Tensor::Vector({3, 4});
  EXPECT_TRUE(AllClose(clipper.Clip(g), g));
}

TEST(FlatClipperTest, BoundaryGradientUnchanged) {
  const FlatClipper clipper(5.0);
  const Tensor g = Tensor::Vector({3, 4});  // norm exactly 5
  EXPECT_TRUE(AllClose(clipper.Clip(g), g));
}

TEST(AutoSClipperTest, NormalizesTowardsThreshold) {
  const AutoSClipper clipper(1.0, 0.01);
  const Tensor g = Tensor::Vector({30, 40});  // norm 50
  const Tensor clipped = clipper.Clip(g);
  EXPECT_NEAR(clipped.L2Norm(), 50.0 / 50.01, 1e-4);
  EXPECT_NEAR(CosineSimilarity(g, clipped), 1.0, 1e-6);
}

TEST(AutoSClipperTest, TinyGradientNotBlownUp) {
  const AutoSClipper clipper(1.0, 0.01);
  const Tensor g = Tensor::Vector({1e-4f, 0.0f});
  const Tensor clipped = clipper.Clip(g);
  // Scale is C/(norm+gamma) ~ 1/0.0101 ~ 99, far below the 10^4 blow-up a
  // pure normalization would cause.
  EXPECT_LT(clipped.L2Norm(), 0.011);
}

TEST(PsacClipperTest, RadiusDecaysOverSteps) {
  PsacClipper clipper(1.0, /*r0=*/1.0, /*decay=*/0.9);
  EXPECT_DOUBLE_EQ(clipper.current_radius(), 1.0);
  clipper.OnStep(10);
  EXPECT_NEAR(clipper.current_radius(), std::pow(0.9, 10), 1e-12);
}

TEST(PsacClipperTest, DampsSmallGradientsLessThanAutoS) {
  // For moderate gradients PSAC's non-monotonic weight preserves more
  // signal than AUTO-S once the adaptive radius decays.
  PsacClipper psac(1.0, /*r0=*/1.0, /*decay=*/0.5);
  psac.OnStep(20);  // radius ~ 1e-6
  const AutoSClipper auto_s(1.0, 0.01);
  const Tensor g = Tensor::Vector({0.05f, 0.05f});
  EXPECT_GT(psac.Clip(g).L2Norm(), auto_s.Clip(g).L2Norm());
}

TEST(ClipAndSumTest, EmptyBatchYieldsEmptyTensorNotAbort) {
  // Empty per-sample batches are a normal occurrence under Poisson
  // subsampling (an empty lot); they used to hard-abort via GEODP_CHECK.
  const FlatClipper clipper(1.0);
  const Tensor sum = ClipAndSum({}, clipper);
  EXPECT_TRUE(sum.empty());
  EXPECT_EQ(sum.numel(), 0);
}

TEST(ClipAndSumTest, EmptyBatchMatchesAccumulateClippedNoOp) {
  // AccumulateClipped's early return leaves the accumulator untouched;
  // ClipAndSum's empty tensor is the from-scratch analog of that.
  const FlatClipper clipper(1.0);
  Tensor sum = Tensor::Vector({1.5, -2.5});
  AccumulateClipped({}, clipper, sum);
  EXPECT_EQ(sum[0], 1.5f);
  EXPECT_EQ(sum[1], -2.5f);
}

TEST(ClipperFactoryTest, IsKnownClipperNames) {
  EXPECT_TRUE(IsKnownClipper("flat"));
  EXPECT_TRUE(IsKnownClipper("AUTO-S"));
  EXPECT_TRUE(IsKnownClipper("PSAC"));
  EXPECT_FALSE(IsKnownClipper("median"));
  EXPECT_FALSE(IsKnownClipper(""));
  EXPECT_FALSE(IsKnownClipper("Flat"));  // names are case-sensitive
}

TEST(ClipperFactoryTest, KnownNames) {
  EXPECT_EQ(MakeClipper("flat", ClipThreshold(0.1))->name(), "flat");
  EXPECT_EQ(MakeClipper("AUTO-S", ClipThreshold(0.1))->name(), "AUTO-S");
  EXPECT_EQ(MakeClipper("PSAC", ClipThreshold(0.1))->name(), "PSAC");
}

// Parameterized invariant: ||Clip(g)|| <= C for every strategy and any
// gradient magnitude.
class ClipBoundTest
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ClipBoundTest, ClippedNormNeverExceedsThreshold) {
  const auto& [name, threshold] = GetParam();
  const auto clipper = MakeClipper(name, ClipThreshold(threshold));
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const double scale = std::pow(10.0, rng.Uniform(-4.0, 4.0));
    const Tensor g =
        Scale(Tensor::Randn({17}, rng), static_cast<float>(scale));
    EXPECT_LE(clipper->Clip(g).L2Norm(), threshold * (1.0 + 1e-5))
        << name << " C=" << threshold << " scale=" << scale;
  }
}

TEST_P(ClipBoundTest, ClippingPreservesDirection) {
  const auto& [name, threshold] = GetParam();
  const auto clipper = MakeClipper(name, ClipThreshold(threshold));
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const Tensor g = Tensor::Randn({9}, rng);
    EXPECT_NEAR(CosineSimilarity(g, clipper->Clip(g)), 1.0, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClippers, ClipBoundTest,
    ::testing::Combine(::testing::Values("flat", "AUTO-S", "PSAC"),
                       ::testing::Values(0.01, 0.1, 1.0, 10.0)));

}  // namespace
}  // namespace geodp
