// Privacy-region bounding and privacy analysis for GeoDP (paper §V-B step 2
// and §V-C2). The bounding factor beta shrinks the sensitivity of each
// angle: Delta theta_z = beta*pi for z <= d-2 and 2*beta*pi for z = d-1, so
// the total direction sensitivity is
//   Delta theta = sqrt((d-2)(beta pi)^2 + (2 beta pi)^2) = sqrt(d+2) beta pi.
// In exchange, the direction guarantee degrades from (eps, delta) to
// (eps, delta + delta'), with delta' <= 1 - beta (Lemma 2).

#ifndef GEODP_CORE_PRIVACY_REGION_H_
#define GEODP_CORE_PRIVACY_REGION_H_

#include <cstdint>

namespace geodp {

/// Per-angle sensitivities induced by a bounding factor.
struct DirectionSensitivity {
  double per_angle = 0.0;       // beta * pi, angles 1..d-2
  double last_angle = 0.0;      // 2 * beta * pi, angle d-1
  double total_l2 = 0.0;        // sqrt(d+2) * beta * pi
};

/// Sensitivity of a d-dimensional gradient's direction under bounding
/// factor beta in (0, 1]. Requires d >= 2.
DirectionSensitivity ComputeDirectionSensitivity(int64_t dimension,
                                                 double beta);

/// Privacy guarantee of a full GeoDP release (Theorem 5): the magnitude is
/// (epsilon, delta)-DP and the direction is (epsilon, delta + delta')-DP
/// with delta' bounded above by 1 - beta.
struct GeoDpPrivacyReport {
  double epsilon = 0.0;
  double delta = 0.0;
  double delta_prime_upper_bound = 0.0;  // 1 - beta
  double total_delta_upper_bound = 0.0;  // delta + (1 - beta)
};

/// Builds the report for noise multiplier sigma at the given delta,
/// using the classic Gaussian calibration for epsilon.
GeoDpPrivacyReport AnalyzeGeoDpPrivacy(double noise_multiplier, double delta,
                                       double beta);

}  // namespace geodp

#endif  // GEODP_CORE_PRIVACY_REGION_H_
