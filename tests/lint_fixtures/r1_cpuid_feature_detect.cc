// Fixture: seeded R1 violation — unannotated cpu feature probe. Machine-
// dependent dispatch is only allowed in src/base/simd/ under `cpuid-ok`.

namespace geodp {

bool HostHasAvx2() {
  return __builtin_cpu_supports("avx2") != 0;
}

}  // namespace geodp
