// Fixture: same engine usage as r1_random_device.cc, but linted under the
// virtual path src/base/rng.cc — the R1 allowlist must exempt it.
#include <random>

namespace geodp {

unsigned AllowlistedEngine() {
  std::mt19937 engine{42};
  return engine();
}

}  // namespace geodp
