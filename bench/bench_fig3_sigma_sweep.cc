// Figure 3(a)-(c): direction and gradient MSE of GeoDP vs DP as the noise
// multiplier sweeps, at bounding factors beta in {1, 0.1, 0.01}.
// Expected shape: at beta=1 GeoDP loses to DP on direction for large
// sigma; shrinking beta lets GeoDP win on both direction and gradient.

#include <cstdint>

#include "common/bench_util.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Figure 3(a)-(c) (MSE vs noise multiplier sigma)",
      "d=5000, B=2048, sigma in {1e-4..10}, beta in {1, 0.1, 0.01}",
      "d=1024, B=256, same sigma grid and betas, C=0.1, 20 trials");

  const int64_t kDim = 1024;
  const int64_t kBatch = 256;
  const double kClip = 0.1;
  const int kTrials = 20;

  const GradientDataset data = HarvestedGradients(kDim);

  TablePrinter table({"beta", "sigma", "GeoDP theta MSE", "DP theta MSE",
                      "GeoDP g MSE", "DP g MSE"});
  for (double beta : {1.0, 0.1, 0.01}) {
    for (double sigma : {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}) {
      const auto geo = MakeGeo(kClip, kBatch, sigma, beta);
      const auto dp = MakeDp(kClip, kBatch, sigma);
      const MseResult geo_mse =
          MeasurePerturbationMse(data, *geo, kBatch, kClip, kTrials, 17);
      const MseResult dp_mse =
          MeasurePerturbationMse(data, *dp, kBatch, kClip, kTrials, 17);
      table.AddRow({TablePrinter::Fmt(beta, 2),
                    TablePrinter::FmtSci(sigma, 0),
                    TablePrinter::FmtSci(geo_mse.direction_mse),
                    TablePrinter::FmtSci(dp_mse.direction_mse),
                    TablePrinter::FmtSci(geo_mse.gradient_mse),
                    TablePrinter::FmtSci(dp_mse.gradient_mse)});
    }
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
