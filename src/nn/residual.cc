#include "nn/residual.h"

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace geodp {

ResidualBlock::ResidualBlock(int64_t channels, Rng& rng)
    : conv1_(channels, channels, /*kernel_size=*/3, rng, /*padding=*/1),
      conv2_(channels, channels, /*kernel_size=*/3, rng, /*padding=*/1) {}

Tensor ResidualBlock::Forward(const Tensor& input) {
  Tensor branch = conv2_.Forward(relu1_.Forward(conv1_.Forward(input)));
  GEODP_CHECK(SameShape(branch, input));
  branch.AddInPlace(input);
  return relu_out_.Forward(branch);
}

Tensor ResidualBlock::Backward(const Tensor& grad_output) {
  const Tensor grad_sum = relu_out_.Backward(grad_output);
  // grad_sum flows both through the conv branch and the identity skip.
  Tensor grad_input =
      conv1_.Backward(relu1_.Backward(conv2_.Backward(grad_sum)));
  grad_input.AddInPlace(grad_sum);
  return grad_input;
}

std::vector<Parameter*> ResidualBlock::Parameters() {
  std::vector<Parameter*> params = conv1_.Parameters();
  for (Parameter* p : conv2_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace geodp
