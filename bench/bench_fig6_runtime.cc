// Figure 6: perturbation runtime of GeoDP vs DP across dimensionality and
// batch size, using google-benchmark. Expected shape: both grow with d and
// B; GeoDP carries a constant-factor overhead from the two coordinate
// conversions that grows with d (the sequential sin-product chain), while
// batch size affects only the clipped averaging stage shared by both.

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "common/bench_json.h"
#include "core/perturbation.h"
#include "core/spherical.h"
#include "data/gradient_dataset.h"
#include "tensor/tensor.h"

namespace geodp {
namespace {

Tensor MakeGradient(int64_t dim) {
  Rng rng(1234 + static_cast<uint64_t>(dim));
  Tensor g = Tensor::Randn({dim}, rng);
  g.ScaleInPlace(static_cast<float>(0.1 / g.L2Norm()));
  return g;
}

void BM_DpPerturb(benchmark::State& state) {
  const int64_t dim = state.range(0);
  const int64_t batch = state.range(1);
  PerturbationOptions options;
  options.clip_threshold = 0.1;
  options.batch_size = batch;
  options.noise_multiplier = 1.0;
  const DpPerturber perturber(options);
  const Tensor g = MakeGradient(dim);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.Perturb(g, rng));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}

void BM_GeoDpPerturb(benchmark::State& state) {
  const int64_t dim = state.range(0);
  const int64_t batch = state.range(1);
  GeoDpOptions options;
  options.base.clip_threshold = 0.1;
  options.base.batch_size = batch;
  options.base.noise_multiplier = 1.0;
  options.beta = 0.1;
  const GeoDpPerturber perturber(options);
  const Tensor g = MakeGradient(dim);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.Perturb(g, rng));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}

// The averaging stage shared by both strategies: dominates at large B and
// explains why runtime grows with batch size in the paper's Figure 6.
void BM_AverageClipped(benchmark::State& state) {
  const int64_t dim = state.range(0);
  const int64_t batch = state.range(1);
  const GradientDataset data =
      MakeConcentratedGradientDataset(64, dim, 0.1, 0.1, 99);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.AverageClipped(batch, 0.1, rng));
  }
  state.SetItemsProcessed(state.iterations() * dim * batch);
}

void BM_ToSpherical(benchmark::State& state) {
  const Tensor g = MakeGradient(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToSpherical(g));
  }
}

void BM_ToCartesian(benchmark::State& state) {
  const SphericalCoordinates coords = ToSpherical(MakeGradient(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToCartesian(coords));
  }
}

void DimBatchArgs(benchmark::internal::Benchmark* b) {
  for (int64_t dim : {1250, 5000, 20000, 80000}) {
    for (int64_t batch : {512, 2048}) {
      b->Args({dim, batch});
    }
  }
}

BENCHMARK(BM_DpPerturb)->Apply(DimBatchArgs);
BENCHMARK(BM_GeoDpPerturb)->Apply(DimBatchArgs);
BENCHMARK(BM_AverageClipped)
    ->Args({1250, 128})
    ->Args({1250, 512})
    ->Args({5000, 128})
    ->Args({5000, 512});
BENCHMARK(BM_ToSpherical)->Arg(1250)->Arg(5000)->Arg(20000)->Arg(80000);
BENCHMARK(BM_ToCartesian)->Arg(1250)->Arg(5000)->Arg(20000)->Arg(80000);

}  // namespace
}  // namespace geodp

int main(int argc, char** argv) {
  return geodp::bench::BenchmarkMainWithJson(argc, argv);
}
