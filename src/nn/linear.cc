#include "nn/linear.h"

#include <algorithm>

#include "base/check.h"
#include "base/simd/kernels.h"
#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace geodp {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool with_bias)
    : in_features_(in_features),
      out_features_(out_features),
      with_bias_(with_bias),
      weight_("weight",
              KaimingUniform({out_features, in_features}, in_features, rng)),
      bias_("bias", Tensor::Zeros({out_features})) {
  GEODP_CHECK_GT(in_features_, 0);
  GEODP_CHECK_GT(out_features_, 0);
}

Tensor Linear::Forward(const Tensor& input) {
  GEODP_CHECK_EQ(input.ndim(), 2);
  GEODP_CHECK_EQ(input.dim(1), in_features_);
  cached_input_ = input;
  const int64_t batch = input.dim(0);
  // y[b, o] = sum_i x[b, i] * W[o, i] + bias[o]
  Tensor output = Matmul(input, Transpose(weight_.value));
  if (with_bias_) {
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t o = 0; o < out_features_; ++o) {
        output[b * out_features_ + o] += bias_.value[o];
      }
    }
  }
  return output;
}

Tensor Linear::Backward(const Tensor& grad_output) {
  GEODP_CHECK_EQ(grad_output.ndim(), 2);
  GEODP_CHECK_EQ(grad_output.dim(0), cached_input_.dim(0));
  GEODP_CHECK_EQ(grad_output.dim(1), out_features_);
  const int64_t batch = grad_output.dim(0);
  // dW[o, i] += sum_b dy[b, o] * x[b, i]
  weight_.grad.AddInPlace(Matmul(Transpose(grad_output), cached_input_));
  if (with_bias_) {
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t o = 0; o < out_features_; ++o) {
        bias_.grad[o] += grad_output[b * out_features_ + o];
      }
    }
  }
  // dx[b, i] = sum_o dy[b, o] * W[o, i]
  return Matmul(grad_output, weight_.value);
}

Tensor Linear::GhostBackward(
    const Tensor& grad_output,
    std::vector<double>& ghost_norm_sq) {  // geodp: per-sample norms out
  GEODP_CHECK_EQ(grad_output.ndim(), 2);
  GEODP_CHECK_EQ(grad_output.dim(0), cached_input_.dim(0));
  GEODP_CHECK_EQ(grad_output.dim(1), out_features_);
  const int64_t batch = grad_output.dim(0);
  GEODP_CHECK_EQ(ghost_norm_sq.size(),  // geodp: per-sample
                 static_cast<size_t>(batch));
  // Goodfellow factorization: sample b's weight gradient is the outer
  // product dy_b x_b^T, so ||dW_b||^2 = ||dy_b||^2 * ||x_b||^2; the bias
  // gradient is dy_b itself and adds one more ||dy_b||^2.
  for (int64_t b = 0; b < batch; ++b) {
    const double gy_sq = simd::SumSquares(
        grad_output.data() + b * out_features_, out_features_);
    const double x_sq = simd::SumSquares(
        cached_input_.data() + b * in_features_, in_features_);
    // geodp: per-sample squared norm, consumed by the clip boundary
    ghost_norm_sq[static_cast<size_t>(b)] +=
        gy_sq * (with_bias_ ? x_sq + 1.0 : x_sq);
  }
  cached_grad_output_ = grad_output;
  return Matmul(grad_output, weight_.value);
}

void Linear::GhostAccumulate(const std::vector<double>& weights) {
  GEODP_CHECK(!cached_grad_output_.empty())
      << "GhostAccumulate before GhostBackward";
  const int64_t batch = cached_grad_output_.dim(0);
  GEODP_CHECK_EQ(static_cast<int64_t>(weights.size()), batch);
  // Scale each sample's backprop row by its weight, then one matmul
  // accumulates the weighted sum of outer products. Zero-weight samples
  // are zero-filled, never multiplied: a non-finite excluded row must
  // contribute exactly nothing, and 0 * inf would be NaN.
  Tensor scaled(cached_grad_output_.shape());
  for (int64_t b = 0; b < batch; ++b) {
    float* row = scaled.data() + b * out_features_;
    if (weights[static_cast<size_t>(b)] == 0.0) {
      std::fill(row, row + out_features_, 0.0f);
    } else {
      simd::ClipScaleAssign(
          row, cached_grad_output_.data() + b * out_features_,
          static_cast<float>(weights[static_cast<size_t>(b)]),
          out_features_);
    }
  }
  weight_.grad.AddInPlace(Matmul(Transpose(scaled), cached_input_));
  if (with_bias_) {
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t o = 0; o < out_features_; ++o) {
        bias_.grad[o] += scaled[b * out_features_ + o];
      }
    }
  }
}

std::vector<Parameter*> Linear::Parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace geodp
