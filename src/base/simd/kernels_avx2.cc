// AVX2/FMA kernel tier. This is the only translation unit compiled with
// -mavx2 -mfma (set per-source in src/CMakeLists.txt), and it is only
// dispatched to after the cpuid probe in dispatch.cc confirms the host
// executes both ISA extensions.
//
// Results may differ from the scalar tier in the last bits: FMA contracts
// multiply-add chains into single roundings, and the transcendental
// kernels use the vector polynomials in avx2_math.h instead of libm. They
// are still pure functions of the inputs, so within this tier output is
// bit-identical at any thread count; tests pin separate goldens per tier.

#if defined(GEODP_SIMD_AVX2_BUILD)

#include <immintrin.h>

#include <array>
#include <cmath>
#include <cstring>

#include "base/simd/avx2_math.h"
#include "base/simd/kernels_impl.h"

namespace geodp {
namespace simd {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

void AddAvx2(float* y, const float* x, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                                          _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void AxpyAvx2(float* y, const float* x, float alpha, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float* x, float factor, int64_t n) {
  const __m256 vf = _mm256_set1_ps(factor);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vf));
  }
  for (; i < n; ++i) x[i] *= factor;
}

void ScaleAssignAvx2(float* dst, const float* src, float scale, int64_t n) {
  const __m256 vf = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(src + i), vf));
  }
  for (; i < n; ++i) dst[i] = src[i] * scale;
}

// Horizontal sum in a fixed association: (l0 + l1) + (l2 + l3).
double HorizontalSum(__m256d v) {
  std::array<double, 4> lanes;
  _mm256_storeu_pd(lanes.data(), v);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double SumSquaresAvx2(const float* x, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc = _mm256_fmadd_pd(v, v, acc);
  }
  double sum = HorizontalSum(acc);
  for (; i < n; ++i) {
    sum += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return sum;
}

double DotAvx2(const float* a, const float* b, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    acc = _mm256_fmadd_pd(va, vb, acc);
  }
  double sum = HorizontalSum(acc);
  for (; i < n; ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

void MatmulRowBlockAvx2(const float* a, const float* b, float* out,
                        int64_t row_begin, int64_t row_end, int64_t k,
                        int64_t n) {
  for (int64_t k0 = 0; k0 < k; k0 += kMatmulKTile) {
    const int64_t k1 = k0 + kMatmulKTile < k ? k0 + kMatmulKTile : k;
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* orow = out + i * n;
      for (int64_t kk = k0; kk < k1; ++kk) {
        const float aik = a[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * n;
        const __m256 va = _mm256_set1_ps(aik);
        int64_t j = 0;
        for (; j + 8 <= n; j += 8) {
          _mm256_storeu_ps(
              orow + j, _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j),
                                        _mm256_loadu_ps(orow + j)));
        }
        for (; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  }
}

// A pure copy with a zeroed border is bit-identical to the scalar tier by
// construction, so im2col output matches across tiers.
void PadCopyRowAvx2(float* dst, const float* src, int64_t out_w,
                    int64_t shift, int64_t width) {
  int64_t lo = shift < 0 ? -shift : 0;
  if (lo > out_w) lo = out_w;
  int64_t hi = width - shift;
  if (hi > out_w) hi = out_w;
  if (hi < lo) hi = lo;
  if (lo > 0) std::memset(dst, 0, static_cast<size_t>(lo) * sizeof(float));
  if (hi > lo) {
    std::memcpy(dst + lo, src + lo + shift,
                static_cast<size_t>(hi - lo) * sizeof(float));
  }
  if (out_w > hi) {
    std::memset(dst + hi, 0, static_cast<size_t>(out_w - hi) * sizeof(float));
  }
}

// _mm256_sqrt_pd is correctly rounded, so this matches std::sqrt (and the
// scalar tier) bit-for-bit.
void SqrtArrayAvx2(const double* x, double* out, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(_mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = std::sqrt(x[i]);
}

void SinCosAvx2(const double* angles, double* sin_out, double* cos_out,
                int64_t n) {
  __m256d vs, vc;
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    avx2::SinCos(_mm256_loadu_pd(angles + i), &vs, &vc);
    _mm256_storeu_pd(sin_out + i, vs);
    _mm256_storeu_pd(cos_out + i, vc);
  }
  if (i < n) {
    // Padded tail: same vector path as the body, so a value's rounding
    // never depends on its position relative to the tail boundary.
    std::array<double, 4> in = {0.0, 0.0, 0.0, 0.0};
    std::array<double, 4> s, c;
    for (int64_t t = i; t < n; ++t) in[t - i] = angles[t];
    avx2::SinCos(_mm256_loadu_pd(in.data()), &vs, &vc);
    _mm256_storeu_pd(s.data(), vs);
    _mm256_storeu_pd(c.data(), vc);
    for (int64_t t = i; t < n; ++t) {
      sin_out[t] = s[t - i];
      cos_out[t] = c[t - i];
    }
  }
}

void Atan2Avx2(const double* y, const double* x, double* out, int64_t n) {
  const __m256d zero = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d vx = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(out + i, avx2::Atan2(vy, vx));
    // x == 0 lanes divide by zero inside the vector path; patch them with
    // libm so signed-zero and half-pi semantics are exact.
    const int zero_lanes =
        _mm256_movemask_pd(_mm256_cmp_pd(vx, zero, _CMP_EQ_OQ));
    if (zero_lanes != 0) {
      for (int lane = 0; lane < 4; ++lane) {
        if (zero_lanes & (1 << lane)) {
          out[i + lane] = std::atan2(y[i + lane], x[i + lane]);
        }
      }
    }
  }
  for (; i < n; ++i) out[i] = std::atan2(y[i], x[i]);
}

// Reflect-wrap four angles into [0, pi] without fmod: t - 2pi*floor(t/2pi)
// range-reduces into [0, 2pi) up to rounding, a clamp pins roundoff
// stragglers back inside the interval (so huge inputs like 1e9*pi still
// land in range), and lanes past pi reflect to 2pi - t. The division
// rounds differently from the scalar tier's fmod, so this kernel carries
// per-tier goldens like SinCos/Atan2.
__m256d WrapReflect4(__m256d t) {
  const __m256d two_pi = _mm256_set1_pd(kTwoPi);
  const __m256d whole_turns = _mm256_floor_pd(_mm256_div_pd(t, two_pi));
  t = _mm256_fnmadd_pd(whole_turns, two_pi, t);
  t = _mm256_min_pd(_mm256_max_pd(t, _mm256_setzero_pd()), two_pi);
  const __m256d reflected = _mm256_sub_pd(two_pi, t);
  const __m256d over_pi = _mm256_cmp_pd(t, _mm256_set1_pd(kPi), _CMP_GT_OQ);
  return _mm256_blendv_pd(t, reflected, over_pi);
}

void WrapReflectAvx2(double* angles, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(angles + i, WrapReflect4(_mm256_loadu_pd(angles + i)));
  }
  if (i < n) {
    // Padded tail: same vector path as the body, so a value's rounding
    // never depends on its position relative to the tail boundary.
    std::array<double, 4> in = {0.0, 0.0, 0.0, 0.0};
    std::array<double, 4> out;
    for (int64_t t = i; t < n; ++t) in[t - i] = angles[t];
    _mm256_storeu_pd(out.data(), WrapReflect4(_mm256_loadu_pd(in.data())));
    for (int64_t t = i; t < n; ++t) angles[t] = out[t - i];
  }
}

// Box-Muller, batched four pairs at a time: the uniforms are drawn from
// the stream scalar-side in exactly the pair order the scalar tier uses
// (u1 with the small-value rejection, then u2), and the sqrt/log/sincos
// math runs vectorized. Outputs per pair keep the scalar ordering:
// radius*cos first, radius*sin second.
void GaussianBatch4(Rng& stream, std::array<double, 8>& out) {
  std::array<double, 4> u1, u2;
  for (int p = 0; p < 4; ++p) {
    double a = stream.Uniform();
    while (a <= 1e-300) a = stream.Uniform();
    u1[p] = a;
    u2[p] = stream.Uniform();
  }
  const __m256d radius = _mm256_sqrt_pd(_mm256_mul_pd(
      _mm256_set1_pd(-2.0), avx2::Log(_mm256_loadu_pd(u1.data()))));
  __m256d vs, vc;
  avx2::SinCos(_mm256_mul_pd(_mm256_loadu_pd(u2.data()),
                             _mm256_set1_pd(kTwoPi)),
               &vs, &vc);
  std::array<double, 4> rc, rs;
  _mm256_storeu_pd(rc.data(), _mm256_mul_pd(radius, vc));
  _mm256_storeu_pd(rs.data(), _mm256_mul_pd(radius, vs));
  for (int p = 0; p < 4; ++p) {
    out[2 * p] = rc[p];
    out[2 * p + 1] = rs[p];
  }
}

void GaussianAddF32Avx2(Rng& stream, double stddev, float* dst, int64_t n) {
  std::array<double, 8> batch;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    GaussianBatch4(stream, batch);
    for (int p = 0; p < 8; ++p) {
      dst[i + p] += static_cast<float>(stddev * batch[p]);
    }
  }
  for (; i < n; ++i) {
    dst[i] += static_cast<float>(stream.Gaussian(0.0, stddev));
  }
}

void GaussianAddF64Avx2(Rng& stream, double stddev, double* dst, int64_t n) {
  std::array<double, 8> batch;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    GaussianBatch4(stream, batch);
    for (int p = 0; p < 8; ++p) dst[i + p] += stddev * batch[p];
  }
  for (; i < n; ++i) dst[i] += stream.Gaussian(0.0, stddev);
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      .add = AddAvx2,
      .axpy = AxpyAvx2,
      .scale = ScaleAvx2,
      .scale_assign = ScaleAssignAvx2,
      .sum_squares = SumSquaresAvx2,
      .dot = DotAvx2,
      .matmul_row_block = MatmulRowBlockAvx2,
      .pad_copy_row = PadCopyRowAvx2,
      .sqrt_array = SqrtArrayAvx2,
      .sincos = SinCosAvx2,
      .atan2 = Atan2Avx2,
      .wrap_reflect = WrapReflectAvx2,
      .gaussian_add_f32 = GaussianAddF32Avx2,
      .gaussian_add_f64 = GaussianAddF64Avx2,
  };
  return table;
}

}  // namespace simd
}  // namespace geodp

#endif  // GEODP_SIMD_AVX2_BUILD
