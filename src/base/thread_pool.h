// Fixed-size worker pool and ParallelFor, the parallel execution substrate
// for every hot path in the library (matmul, im2col, per-sample clipping,
// batched spherical transforms, noise sampling).
//
// Determinism contract: ParallelFor splits [begin, end) into fixed chunks
// of `grain` elements. The chunk decomposition depends only on the range
// and the grain — never on the thread count — and every chunk is executed
// exactly once, so a computation whose floating-point result is a function
// of the chunk structure (e.g. per-chunk partial sums reduced in chunk
// order) is bit-identical whether it runs on 1 thread or 64. With a pool
// of 1 thread ParallelFor degenerates to a plain serial loop over the same
// chunks.

#ifndef GEODP_BASE_THREAD_POOL_H_
#define GEODP_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace geodp {

/// A fixed set of worker threads executing fork-join parallel regions.
/// A pool of size n runs regions on the calling thread plus n-1 workers;
/// size 1 means fully serial execution with no threads spawned.
class ThreadPool {
 public:
  /// Creates a pool of `num_threads` (clamped to >= 1). Spawns
  /// num_threads - 1 workers; the caller of RunParts is the n-th thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(0), ..., fn(num_parts - 1), part 0 on the calling thread and
  /// the rest on the workers. Blocks until every part has finished. If any
  /// part throws, the first exception (preferring the caller's part) is
  /// rethrown here; the remaining parts still run to completion.
  ///
  /// Called from inside a parallel region (a worker, or recursively from a
  /// part), all parts run serially on the current thread — nesting cannot
  /// deadlock.
  void RunParts(int num_parts, const std::function<void(int)>& fn);

  /// True while the current thread is executing inside RunParts.
  static bool InParallelRegion();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> tasks_;  // guarded by mu_
  bool stop_ = false;                        // guarded by mu_
  int num_threads_ = 1;
  std::vector<std::thread> workers_;
};

/// Thread count the global pool uses when nothing overrides it:
/// the GEODP_NUM_THREADS environment variable if set to a positive
/// integer, else std::thread::hardware_concurrency() (else 1).
int DefaultThreadCount();

/// Number of threads the global pool is currently configured with.
int GetGlobalThreadCount();

/// Reconfigures the global pool. `num_threads <= 0` restores the default;
/// 1 forces serial execution. Safe to call between parallel regions, not
/// concurrently with a running ParallelFor.
void SetGlobalThreadCount(int num_threads);

/// Splits [begin, end) into chunks of `grain` elements (the last chunk may
/// be short) and calls fn(chunk_begin, chunk_end) once per chunk, in
/// parallel on the global pool. Chunks are statically partitioned into
/// contiguous blocks, one block per participating thread, and each block's
/// chunks run in increasing order. fn must be safe to call concurrently on
/// disjoint chunks.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Like ParallelFor but also passes the zero-based chunk index, for
/// deterministic reductions into per-chunk slots:
/// fn(chunk_index, chunk_begin, chunk_end).
void ParallelForChunks(int64_t begin, int64_t end, int64_t grain,
                       const std::function<void(int64_t, int64_t, int64_t)>& fn);

/// Telemetry hook for the pool: invoked on the executing thread right
/// after each RunParts part completes, with the part index and its wall
/// time in microseconds. Installed by the tracing layer (obs/trace.h);
/// must be thread-safe and cheap. nullptr (the default) disables it at
/// the cost of one relaxed atomic load per part. Install only while no
/// parallel region is running.
using ThreadPoolPartHook = void (*)(int part, int64_t duration_micros);
void SetThreadPoolPartHook(ThreadPoolPartHook hook);

}  // namespace geodp

#endif  // GEODP_BASE_THREAD_POOL_H_
