// Fixture: cpu feature probe carrying the audited `cpuid-ok` escape. Clean
// only under src/base/simd/; the same annotation elsewhere still fires R1.

namespace geodp {

bool HostHasAvx2() {
  // geodp: cpuid-ok dispatch-time probe, fixed per host
  return __builtin_cpu_supports("avx2") != 0;
}

}  // namespace geodp
