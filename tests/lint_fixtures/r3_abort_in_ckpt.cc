// Fixture: seeded R3 violation — abort() in src/ckpt/.
#include <cstdlib>

namespace geodp {

void GiveUp(bool corrupt) {
  if (corrupt) {
    std::abort();
  }
}

}  // namespace geodp
