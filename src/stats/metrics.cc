#include "stats/metrics.h"

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace geodp {

double DirectionMse(const std::vector<SphericalCoordinates>& original,
                    const std::vector<SphericalCoordinates>& perturbed) {
  GEODP_CHECK_EQ(original.size(), perturbed.size());
  GEODP_CHECK(!original.empty());
  double sum = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    sum += AngleSquaredDistance(original[i].angles, perturbed[i].angles);
  }
  return sum / static_cast<double>(original.size());
}

double GradientMse(const std::vector<Tensor>& original,
                   const std::vector<Tensor>& perturbed) {
  GEODP_CHECK_EQ(original.size(), perturbed.size());
  GEODP_CHECK(!original.empty());
  double sum = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    const Tensor diff = Sub(perturbed[i], original[i]);
    const double norm = diff.L2Norm();
    sum += norm * norm;
  }
  return sum / static_cast<double>(original.size());
}

double ModelEfficiency(const Tensor& model_flat, const Tensor& optimum_flat) {
  const Tensor diff = Sub(model_flat, optimum_flat);
  const double norm = diff.L2Norm();
  return norm * norm;
}

double AccuracyFromLogits(const Tensor& logits,
                          const std::vector<int64_t>& labels) {
  GEODP_CHECK_EQ(logits.ndim(), 2);
  GEODP_CHECK_EQ(static_cast<size_t>(logits.dim(0)), labels.size());
  const std::vector<int64_t> predictions = ArgMaxRows(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace geodp
