// Ablation (extension): noise mechanism inside GeoDP — Gaussian (the
// paper's choice, approximate DP) vs Laplace (pure epsilon-DP). At matched
// per-angle noise spread (Laplace(b) has variance 2b^2), the Gaussian's
// lighter tails should give slightly lower direction MSE; Laplace buys a
// pure-epsilon guarantee instead.

#include <cmath>

#include "common/bench_util.h"
#include "core/perturbation.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Ablation: Gaussian vs Laplace noise inside GeoDP (extension)",
      "(the paper instantiates GeoDP with the Gaussian mechanism only)",
      "harvested gradients d=512, B=256, beta=0.05; Laplace epsilon chosen "
      "so both mechanisms have the same per-angle noise variance");

  const GradientDataset data = HarvestedGradients(512, /*count=*/384);
  const int64_t kBatch = 256;
  const double kClip = 0.1;
  const double kBeta = 0.05;
  const int kTrials = 24;

  TablePrinter table({"sigma (gaussian)", "mechanism", "theta MSE", "g MSE",
                      "guarantee"});
  for (double sigma : {0.5, 2.0, 8.0}) {
    GeoDpOptions gauss_options;
    gauss_options.base.clip_threshold = kClip;
    gauss_options.base.batch_size = kBatch;
    gauss_options.base.noise_multiplier = sigma;
    gauss_options.beta = kBeta;
    const GeoDpPerturber gauss(gauss_options);
    const MseResult gauss_mse =
        MeasurePerturbationMse(data, gauss, kBatch, kClip, kTrials, 61);
    table.AddRow({TablePrinter::Fmt(sigma, 1), "Gaussian",
                  TablePrinter::FmtSci(gauss_mse.direction_mse),
                  TablePrinter::FmtSci(gauss_mse.gradient_mse),
                  "(eps, delta + delta')"});

    // Match per-angle standard deviation: Gaussian stddev is
    // sqrt(d+2)*beta*pi*sigma/B; Laplace(b) has stddev b*sqrt(2), and the
    // GeoLaplace scale is d*beta*pi/(eps*B). Solve for eps.
    const double d = 512.0;
    const double gauss_stddev =
        std::sqrt(d + 2.0) * kBeta * 3.14159265358979 * sigma / kBatch;
    const double laplace_eps = d * kBeta * 3.14159265358979 /
                               (gauss_stddev / std::sqrt(2.0)) / kBatch;
    GeoLaplaceOptions laplace_options;
    laplace_options.clip_threshold = kClip;
    laplace_options.batch_size = kBatch;
    laplace_options.magnitude_epsilon = laplace_eps;
    laplace_options.direction_epsilon = laplace_eps;
    laplace_options.beta = kBeta;
    const GeoLaplacePerturber laplace(laplace_options);
    const MseResult laplace_mse =
        MeasurePerturbationMse(data, laplace, kBatch, kClip, kTrials, 61);
    table.AddRow({TablePrinter::Fmt(sigma, 1), "Laplace",
                  TablePrinter::FmtSci(laplace_mse.direction_mse),
                  TablePrinter::FmtSci(laplace_mse.gradient_mse),
                  "pure eps=" + TablePrinter::Fmt(2.0 * laplace_eps, 1)});
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
