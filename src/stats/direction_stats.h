// Direction-concentration measurements supporting the paper's Theorems 2-3
// and §V-C1: per-sample gradient directions concentrate around a mean
// direction rather than spreading over the whole sphere, which is why
// bounding the privacy region (beta < 1) is sound.

#ifndef GEODP_STATS_DIRECTION_STATS_H_
#define GEODP_STATS_DIRECTION_STATS_H_

#include <cstdint>
#include <vector>

#include "data/gradient_dataset.h"
#include "tensor/tensor.h"

namespace geodp {

/// Concentration summary of a set of gradient directions.
struct DirectionConcentration {
  int64_t count = 0;
  // Mean pairwise cosine similarity to the mean direction; 1 = perfectly
  // aligned, 0 = isotropic.
  double mean_cosine_to_center = 0.0;
  // Per-angle spread: mean and max standard deviation of each angle
  // coordinate across the sample.
  double mean_angle_stddev = 0.0;
  double max_angle_stddev = 0.0;
  // Mean fraction of each angle's full range actually covered by the
  // sample, i.e. the empirical bounding factor beta the privacy region
  // would need on average.
  double empirical_beta = 0.0;
};

/// Analyzes up to `max_gradients` gradients from the dataset.
DirectionConcentration AnalyzeDirectionConcentration(
    const GradientDataset& data, int64_t max_gradients = 256);

/// Angle-coordinate samples of batch-averaged directions: draws `trials`
/// batches of size B (averaging per-sample *angles*, as in Theorem 3) and
/// returns the sampled values of angle coordinate `angle_index`.
std::vector<double> SampleAveragedAngleCoordinate(
    const GradientDataset& data, int64_t batch, int64_t angle_index,
    int64_t trials, uint64_t seed);

}  // namespace geodp

#endif  // GEODP_STATS_DIRECTION_STATS_H_
