// Arch-dispatched numeric microkernels: the single place where the
// library's hot loops (matmul/im2col, clip-accumulate, Box-Muller noise,
// the spherical transforms of Eq. 24-27) touch raw arrays.
//
// Every kernel dispatches through the tier selected in base/simd/dispatch.h
// (scalar reference, or AVX2/FMA when the host supports it) at block
// granularity, so the indirect call is amortized over hundreds of
// elements. The scalar tier reproduces the historical element loops
// bit-for-bit; the AVX2 tier may round differently (FMA contraction,
// polynomial transcendentals) but is equally deterministic — see
// docs/simd.md for the per-tier golden contract.
//
// Callers own all parallelism: kernels are plain serial block functions
// invoked from inside ParallelFor chunks, and they never touch the
// thread pool, the heap, or global state.

#ifndef GEODP_BASE_SIMD_KERNELS_H_
#define GEODP_BASE_SIMD_KERNELS_H_

#include <cstdint>

#include "base/rng.h"

namespace geodp {
namespace simd {

/// y[0..n) += x[0..n).
void Add(float* y, const float* x, int64_t n);

/// y[0..n) += alpha * x[0..n).
void Axpy(float* y, const float* x, float alpha, int64_t n);

/// x[0..n) *= factor.
void Scale(float* x, float factor, int64_t n);

/// dst[0..n) = scale * per_sample_grad[0..n). Seeds a clip-accumulate
/// partial sum from the chunk's first sample without a zero-fill pass;
/// the per-sample input is consumed here under the clip boundary's scale
/// (geodp_lint R2 audit).
// geodp: per-sample scaled transport into the chunk partial, clipped by scale
void ClipScaleAssign(float* dst, const float* per_sample_grad, float scale,
                     int64_t n);

/// acc[0..n) += scale * per_sample_grad[0..n): the fused clip-accumulate
/// step. The scale comes from Clipper::ClipScale, so the contribution's
/// L2 norm is already bounded by the sensitivity threshold.
// geodp: per-sample fused clip-and-accumulate, sensitivity bounded by scale
void ClipAxpy(float* acc, const float* per_sample_grad, float scale,
              int64_t n);

/// Sum of x[i]^2 accumulated in double precision.
double SumSquares(const float* x, int64_t n);

/// Dot product accumulated in double precision.
double Dot(const float* a, const float* b, int64_t n);

/// Rows [row_begin, row_end) of out += a · b for row-major a [m, k] and
/// b [k, n]; out rows must be zero on entry. Tiles the k dimension so the
/// active slice of b stays cache-resident while a row block accumulates,
/// and keeps k in increasing order within a row so the accumulation
/// association is fixed by the tile structure, not the thread count.
void MatmulRowBlock(const float* a, const float* b, float* out,
                    int64_t row_begin, int64_t row_end, int64_t k, int64_t n);

/// One im2col output row: dst[ow] = src[ow + shift] for ow in [0, out_w),
/// with reads outside [0, width) producing 0 (the padding border).
void PadCopyRow(float* dst, const float* src, int64_t out_w, int64_t shift,
                int64_t width);

/// out[i] = sqrt(x[i]). sqrt is correctly rounded on every tier, so this
/// kernel is bit-identical across tiers.
void SqrtArray(const double* x, double* out, int64_t n);

/// sin_out[i] = sin(angles[i]), cos_out[i] = cos(angles[i]).
void SinCos(const double* angles, double* sin_out, double* cos_out,
            int64_t n);

/// out[i] = atan2(y[i], x[i]) with the usual quadrant conventions.
void Atan2(const double* y, const double* x, double* out, int64_t n);

/// Reflect-wraps angles[0..n) in place into [0, pi] — the canonical range
/// of every non-final hyper-spherical angle. The scalar tier keeps the
/// historical fmod loop bit-for-bit; the AVX2 tier range-reduces with a
/// floor-based division instead of fmod and may differ in the last bits,
/// but both tiers guarantee results land inside [0, pi] (per-tier golden
/// contract, like SinCos/Atan2).
void WrapReflect(double* angles, int64_t n);

/// dst[0..n) += N(0, stddev^2) variates drawn from `stream` by the
/// Box-Muller transform. The scalar tier consumes the stream exactly like
/// n calls of Rng::Gaussian(0, stddev) on a fresh stream; the AVX2 tier
/// draws the same uniforms pairwise and batches the sqrt/log/sincos math.
void GaussianAdd(Rng& stream, double stddev, float* dst, int64_t n);
void GaussianAdd(Rng& stream, double stddev, double* dst, int64_t n);

}  // namespace simd
}  // namespace geodp

#endif  // GEODP_BASE_SIMD_KERNELS_H_
