#include "optim/dp_adam.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

FlatAdam::FlatAdam(int64_t flat_dim, AdamOptions options)
    : options_(options), m_({flat_dim}), v_({flat_dim}) {
  GEODP_CHECK_GT(flat_dim, 0);
  GEODP_CHECK_GT(options_.learning_rate, 0.0);
  GEODP_CHECK(options_.beta1 >= 0.0 && options_.beta1 < 1.0);
  GEODP_CHECK(options_.beta2 >= 0.0 && options_.beta2 < 1.0);
  GEODP_CHECK_GT(options_.epsilon, 0.0);
}

FlatAdamState FlatAdam::ExportState() const {
  FlatAdamState state;
  state.m = m_;
  state.v = v_;
  state.step = step_;
  return state;
}

void FlatAdam::ImportState(const FlatAdamState& state) {
  GEODP_CHECK_EQ(state.m.numel(), m_.numel());
  GEODP_CHECK_EQ(state.v.numel(), v_.numel());
  GEODP_CHECK_GE(state.step, 0);
  m_ = state.m;
  v_ = state.v;
  step_ = state.step;
}

void FlatAdam::Step(const std::vector<Parameter*>& params,
                    const Tensor& flat_gradient) {
  GEODP_CHECK_EQ(flat_gradient.numel(), m_.numel());
  ++step_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_));

  Tensor update({flat_gradient.numel()});
  for (int64_t i = 0; i < flat_gradient.numel(); ++i) {
    const double g = flat_gradient[i];
    const double m = b1 * static_cast<double>(m_[i]) + (1.0 - b1) * g;
    const double v = b2 * static_cast<double>(v_[i]) + (1.0 - b2) * g * g;
    m_[i] = static_cast<float>(m);
    v_[i] = static_cast<float>(v);
    const double m_hat = m / bias1;
    const double v_hat = v / bias2;
    update[i] =
        static_cast<float>(m_hat / (std::sqrt(v_hat) + options_.epsilon));
  }
  ApplyFlatUpdate(params, update, options_.learning_rate);
}

}  // namespace geodp
