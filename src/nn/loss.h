// Loss functions. Losses are not Layers: they take logits plus labels and
// expose the gradient with respect to the logits.

#ifndef GEODP_NN_LOSS_H_
#define GEODP_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace geodp {

/// Numerically stable softmax cross-entropy over a batch.
class SoftmaxCrossEntropy {
 public:
  SoftmaxCrossEntropy() = default;

  /// Mean cross-entropy of logits [B, K] against integer labels (size B,
  /// each in [0, K)).
  double Forward(const Tensor& logits, const std::vector<int64_t>& labels);

  /// dL/dlogits for the mean loss from the last Forward: (p - onehot)/B.
  Tensor Backward() const;

  /// dL/dlogits for the SUM of per-sample losses from the last Forward:
  /// (p - onehot), no 1/B factor. Row b is then exactly the gradient of
  /// sample b's own loss — the per-sample semantics ghost clipping needs
  /// from one batched backward pass.
  Tensor BackwardSum() const;

  /// Per-sample losses -log p_true from the last Forward, batch order.
  const std::vector<double>& sample_losses() const { return sample_losses_; }

  /// Softmax probabilities from the last Forward, shape [B, K].
  const Tensor& probabilities() const { return probabilities_; }

 private:
  Tensor probabilities_;
  std::vector<int64_t> labels_;
  std::vector<double> sample_losses_;
};

/// Mean squared error between predictions and targets of equal shape.
class MeanSquaredError {
 public:
  MeanSquaredError() = default;

  /// (1/N) * sum (pred - target)^2 over all elements.
  double Forward(const Tensor& predictions, const Tensor& targets);

  /// dL/dpred = 2 (pred - target) / N.
  Tensor Backward() const;

 private:
  Tensor predictions_;
  Tensor targets_;
};

}  // namespace geodp

#endif  // GEODP_NN_LOSS_H_
