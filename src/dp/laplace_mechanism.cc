#include "dp/laplace_mechanism.h"

#include "base/check.h"

namespace geodp {

LaplaceMechanism::LaplaceMechanism(LaplaceMechanismOptions options)
    : options_(options) {
  GEODP_CHECK_GT(options_.l1_sensitivity, 0.0);  // geodp: check-ok
  GEODP_CHECK_GT(options_.epsilon, 0.0);  // geodp: check-ok
}

double LaplaceMechanism::Scale() const {
  return options_.l1_sensitivity / options_.epsilon;
}

double LaplaceMechanism::Perturb(double value, Rng& rng) const {
  return value + rng.Laplace(Scale());
}

Tensor LaplaceMechanism::Perturb(const Tensor& value, Rng& rng) const {
  Tensor out = value;
  const double scale = Scale();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] += static_cast<float>(rng.Laplace(scale));
  }
  return out;
}

}  // namespace geodp
