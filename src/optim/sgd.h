// Plain (non-private) SGD with optional momentum, used for noise-free
// baselines and for harvesting the synthetic gradient dataset.

#ifndef GEODP_OPTIM_SGD_H_
#define GEODP_OPTIM_SGD_H_

#include <vector>

#include "nn/parameter.h"

namespace geodp {

/// SGD hyperparameters.
struct SgdOptions {
  double learning_rate = 0.1;
  double momentum = 0.0;  // 0 disables the velocity buffer
};

/// Updates parameters from their accumulated gradients.
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdOptions options);

  /// value -= lr * (grad or momentum-filtered grad).
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  const SgdOptions& options() const { return options_; }

 private:
  std::vector<Parameter*> params_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // parallel to params_, lazily sized
};

}  // namespace geodp

#endif  // GEODP_OPTIM_SGD_H_
