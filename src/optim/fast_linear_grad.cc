#include "optim/fast_linear_grad.h"

#include <cmath>

#include "base/check.h"
#include "tensor/tensor_ops.h"

namespace geodp {

PrivateBatchGradient ComputeLinearPerSampleGradients(
    const Tensor& inputs, const std::vector<int64_t>& labels,
    const Tensor& weight, const Tensor& bias, ClipThreshold clip_threshold) {
  const double clip_c = clip_threshold.value();
  GEODP_CHECK_EQ(inputs.ndim(), 2);
  GEODP_CHECK_EQ(weight.ndim(), 2);
  GEODP_CHECK_EQ(bias.ndim(), 1);
  const int64_t batch = inputs.dim(0);
  const int64_t features = inputs.dim(1);
  const int64_t classes = weight.dim(0);
  GEODP_CHECK_EQ(weight.dim(1), features);
  GEODP_CHECK_EQ(bias.dim(0), classes);
  GEODP_CHECK_EQ(static_cast<int64_t>(labels.size()), batch);
  GEODP_CHECK_GT(clip_c, 0.0);

  // Batched forward: logits = X W^T + b.
  Tensor logits = Matmul(inputs, Transpose(weight));
  for (int64_t i = 0; i < batch; ++i) {
    for (int64_t k = 0; k < classes; ++k) logits[i * classes + k] += bias[k];
  }

  PrivateBatchGradient result;
  result.batch_size = batch;
  result.sample_losses.reserve(static_cast<size_t>(batch));

  // Per-sample softmax errors e_i and losses; per-sample clip scales from
  // the factorized norm. `errors_clipped` holds s_i * e_i and
  // `errors_raw` holds e_i; the raw/clipped gradients are then single
  // matmuls e^T X.
  Tensor errors_raw({batch, classes});
  Tensor errors_clipped({batch, classes});
  double total_loss = 0.0;
  for (int64_t i = 0; i < batch; ++i) {
    GEODP_CHECK(labels[static_cast<size_t>(i)] >= 0 &&
                labels[static_cast<size_t>(i)] < classes);
    float row_max = logits[i * classes];
    for (int64_t k = 1; k < classes; ++k) {
      row_max = std::max(row_max, logits[i * classes + k]);
    }
    double denom = 0.0;
    for (int64_t k = 0; k < classes; ++k) {
      denom += std::exp(static_cast<double>(logits[i * classes + k]) -
                        static_cast<double>(row_max));
    }
    double error_sq = 0.0;
    for (int64_t k = 0; k < classes; ++k) {
      const double p =
          std::exp(static_cast<double>(logits[i * classes + k]) -
                   static_cast<double>(row_max)) /
          denom;
      double e = p;
      if (k == labels[static_cast<size_t>(i)]) {
        total_loss -= std::log(std::max(p, 1e-12));
        result.sample_losses.push_back(-std::log(std::max(p, 1e-12)));
        e -= 1.0;
      }
      errors_raw[i * classes + k] = static_cast<float>(e);
      error_sq += e * e;
    }
    double x_sq = 0.0;
    for (int64_t j = 0; j < features; ++j) {
      const double x = inputs[i * features + j];
      x_sq += x * x;
    }
    // ||grad_i||^2 = ||e_i||^2 * (||x_i||^2 + 1)  (weight + bias parts).
    const double norm = std::sqrt(error_sq * (x_sq + 1.0));
    const double scale = 1.0 / std::max(1.0, norm / clip_c);
    for (int64_t k = 0; k < classes; ++k) {
      errors_clipped[i * classes + k] =
          static_cast<float>(scale) * errors_raw[i * classes + k];
    }
  }
  result.mean_loss = total_loss / static_cast<double>(batch);

  // dW = e^T X (summed over the batch), db = column sums of e.
  const Tensor dw_raw = Matmul(Transpose(errors_raw), inputs);
  const Tensor dw_clipped = Matmul(Transpose(errors_clipped), inputs);

  const int64_t flat_dim = classes * features + classes;
  result.averaged_raw = Tensor({flat_dim});
  result.averaged_clipped = Tensor({flat_dim});
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (int64_t p = 0; p < classes * features; ++p) {
    result.averaged_raw[p] = dw_raw[p] * inv_b;
    result.averaged_clipped[p] = dw_clipped[p] * inv_b;
  }
  for (int64_t k = 0; k < classes; ++k) {
    double raw_sum = 0.0, clipped_sum = 0.0;
    for (int64_t i = 0; i < batch; ++i) {
      raw_sum += static_cast<double>(errors_raw[i * classes + k]);
      clipped_sum += static_cast<double>(errors_clipped[i * classes + k]);
    }
    result.averaged_raw[classes * features + k] =
        static_cast<float>(raw_sum) * inv_b;
    result.averaged_clipped[classes * features + k] =
        static_cast<float>(clipped_sum) * inv_b;
  }
  return result;
}

}  // namespace geodp
