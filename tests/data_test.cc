// Tests for the data substrate: datasets, synthetic image generation,
// batch samplers and the synthetic gradient dataset.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/gradient_dataset.h"
#include "data/synthetic_images.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

TEST(InMemoryDatasetTest, AddAndAccess) {
  InMemoryDataset ds;
  ds.Add(Tensor::Full({1, 2, 2}, 1.0f), 3);
  ds.Add(Tensor::Full({1, 2, 2}, 2.0f), 1);
  EXPECT_EQ(ds.size(), 2);
  EXPECT_EQ(ds.label(0), 3);
  EXPECT_EQ(ds.image(1)[0], 2.0f);
  EXPECT_EQ(ds.NumClasses(), 4);
}

TEST(InMemoryDatasetTest, StackImagesShape) {
  InMemoryDataset ds;
  for (int i = 0; i < 3; ++i) {
    ds.Add(Tensor::Full({2, 4, 4}, static_cast<float>(i)), i);
  }
  const Tensor batch = ds.StackImages({2, 0});
  EXPECT_EQ(batch.dim(0), 2);
  EXPECT_EQ(batch.dim(1), 2);
  EXPECT_EQ(batch[0], 2.0f);                 // first stacked image is #2
  EXPECT_EQ(batch[batch.numel() - 1], 0.0f);  // second is #0
}

TEST(InMemoryDatasetTest, GatherLabels) {
  InMemoryDataset ds;
  for (int i = 0; i < 4; ++i) ds.Add(Tensor({1}), i);
  const auto labels = ds.GatherLabels({3, 1});
  EXPECT_EQ(labels, (std::vector<int64_t>{3, 1}));
}

TEST(InMemoryDatasetTest, SplitTail) {
  InMemoryDataset ds;
  for (int i = 0; i < 10; ++i) ds.Add(Tensor({1}), i);
  InMemoryDataset tail = ds.SplitTail(3);
  EXPECT_EQ(ds.size(), 7);
  EXPECT_EQ(tail.size(), 3);
  EXPECT_EQ(tail.label(0), 7);
}

TEST(SyntheticImagesTest, DeterministicForSeed) {
  SyntheticImageOptions options;
  options.num_examples = 20;
  options.seed = 5;
  const InMemoryDataset a = MakeMnistLike(options);
  const InMemoryDataset b = MakeMnistLike(options);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_TRUE(AllClose(a.image(i), b.image(i)));
  }
}

TEST(SyntheticImagesTest, DifferentSeedsDiffer) {
  SyntheticImageOptions options;
  options.num_examples = 5;
  options.seed = 1;
  const InMemoryDataset a = MakeMnistLike(options);
  options.seed = 2;
  const InMemoryDataset b = MakeMnistLike(options);
  EXPECT_FALSE(AllClose(a.image(0), b.image(0)));
}

TEST(SyntheticImagesTest, ShapesAndClassCoverage) {
  SyntheticImageOptions options;
  options.num_examples = 500;
  const InMemoryDataset ds = MakeMnistLike(options);
  EXPECT_EQ(ds.image(0).shape(), (std::vector<int64_t>{1, 14, 14}));
  std::set<int64_t> classes(ds.labels().begin(), ds.labels().end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(SyntheticImagesTest, CifarLikeIsColor16x16) {
  SyntheticImageOptions options;
  options.num_examples = 4;
  const InMemoryDataset ds = MakeCifarLike(options);
  EXPECT_EQ(ds.image(0).shape(), (std::vector<int64_t>{3, 16, 16}));
}

TEST(SyntheticImagesTest, ClassesAreLinearlySeparableEnough) {
  // Prototype separation sanity check: examples correlate more with their
  // own class prototype (approximated by the class mean) than with other
  // class means on average.
  SyntheticImageOptions options;
  options.num_examples = 600;
  options.pixel_noise = 0.15;
  options.max_shift = 1;
  options.label_noise = 0.0;
  const InMemoryDataset ds = MakeMnistLike(options);
  std::vector<Tensor> means(10, Tensor(ds.image(0).shape()));
  std::vector<int> counts(10, 0);
  for (int64_t i = 0; i < ds.size(); ++i) {
    means[static_cast<size_t>(ds.label(i))].AddInPlace(ds.image(i));
    ++counts[static_cast<size_t>(ds.label(i))];
  }
  for (int k = 0; k < 10; ++k) {
    means[static_cast<size_t>(k)].ScaleInPlace(
        1.0f / static_cast<float>(counts[static_cast<size_t>(k)]));
  }
  int own_wins = 0;
  const int64_t probe = std::min<int64_t>(ds.size(), 100);
  for (int64_t i = 0; i < probe; ++i) {
    double best = -2.0;
    int best_class = -1;
    for (int k = 0; k < 10; ++k) {
      const double sim = CosineSimilarity(ds.image(i), means[static_cast<size_t>(k)]);
      if (sim > best) {
        best = sim;
        best_class = k;
      }
    }
    if (best_class == ds.label(i)) ++own_wins;
  }
  EXPECT_GT(own_wins, 60);  // nearest-class-mean accuracy well above chance
}

TEST(BatchSamplerTest, CoversEveryExampleEachEpoch) {
  BatchSampler sampler(10, 5, /*seed=*/1);
  std::set<int64_t> seen;
  for (int b = 0; b < 2; ++b) {
    for (int64_t i : sampler.NextBatch()) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BatchSamplerTest, BatchSizeExact) {
  BatchSampler sampler(7, 3, /*seed=*/2);
  for (int b = 0; b < 10; ++b) {
    EXPECT_EQ(sampler.NextBatch().size(), 3u);
  }
}

TEST(BatchSamplerTest, NoShuffleIsSequential) {
  BatchSampler sampler(6, 2, /*seed=*/3, /*shuffle=*/false);
  EXPECT_EQ(sampler.NextBatch(), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(sampler.NextBatch(), (std::vector<int64_t>{2, 3}));
}

TEST(BatchSamplerTest, NoDuplicatesWhenBatchStraddlesEpochBoundary) {
  // Regression: the sampler used to reshuffle mid-batch when an epoch ran
  // out of indices, so an example drawn from the old permutation's tail
  // could be drawn again from the fresh permutation's head — a duplicate
  // inside one batch, which breaks the sensitivity-C assumption of DP-SGD
  // (a duplicated example contributes its clipped gradient twice). With
  // 10 % 4 != 0 the old code reshuffled inside every third batch.
  for (uint64_t seed = 0; seed < 25; ++seed) {
    BatchSampler sampler(10, 4, seed);
    for (int b = 0; b < 60; ++b) {
      const std::vector<int64_t> batch = sampler.NextBatch();
      ASSERT_EQ(batch.size(), 4u);
      const std::set<int64_t> unique(batch.begin(), batch.end());
      ASSERT_EQ(unique.size(), batch.size())
          << "duplicate index in batch (seed " << seed << ", batch " << b
          << ")";
    }
  }
}

TEST(BatchSamplerTest, DropsShortEpochTailWithoutShuffle) {
  // 5 % 2 != 0: after {0,1} and {2,3} only index 4 remains, which is fewer
  // than a batch — the tail is dropped and the next batch restarts the
  // epoch instead of mixing two permutations.
  BatchSampler sampler(5, 2, /*seed=*/6, /*shuffle=*/false);
  EXPECT_EQ(sampler.NextBatch(), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(sampler.NextBatch(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(sampler.NextBatch(), (std::vector<int64_t>{0, 1}));
}

TEST(BatchSamplerTest, ZeroSizeDatasetYieldsEmptyBatches) {
  BatchSampler sampler(0, 8, 1);
  EXPECT_TRUE(sampler.NextBatch().empty());
  EXPECT_TRUE(sampler.NextBatch().empty());
}

TEST(BatchSamplerTest, ZeroBatchSizeYieldsEmptyBatches) {
  BatchSampler sampler(16, 0, 1);
  EXPECT_TRUE(sampler.NextBatch().empty());
}

TEST(BatchSamplerTest, StateRoundTripContinuesExactSequence) {
  BatchSampler original(50, 8, 33);
  // Advance into the middle of an epoch so the snapshot must carry the
  // permutation and the cursor, not just the generator.
  for (int i = 0; i < 11; ++i) original.NextBatch();
  const BatchSamplerState snapshot = original.ExportState();

  BatchSampler restored(50, 8, 999);  // different seed: state must win
  restored.ImportState(snapshot);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(restored.NextBatch(), original.NextBatch()) << "batch " << i;
  }
}

TEST(PoissonSamplerTest, ZeroSizeDatasetYieldsEmptyBatches) {
  PoissonSampler sampler(0, 0.5, 1);
  EXPECT_TRUE(sampler.NextBatch().empty());
  EXPECT_TRUE(sampler.NextBatch().empty());
}

TEST(PoissonSamplerTest, StateRoundTripContinuesExactSequence) {
  PoissonSampler original(64, 0.2, 33);
  for (int i = 0; i < 7; ++i) original.NextBatch();
  const RngState snapshot = original.ExportState();

  PoissonSampler restored(64, 0.2, 999);
  restored.ImportState(snapshot);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(restored.NextBatch(), original.NextBatch()) << "batch " << i;
  }
}

TEST(PoissonSamplerTest, MeanBatchSizeMatchesRate) {
  PoissonSampler sampler(1000, 0.05, /*seed=*/4);
  double total = 0.0;
  const int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    total += static_cast<double>(sampler.NextBatch().size());
  }
  EXPECT_NEAR(total / rounds, 50.0, 3.0);
}

TEST(GradientDatasetTest, ConcentratedDatasetProperties) {
  const GradientDataset ds =
      MakeConcentratedGradientDataset(100, 32, 0.05, 0.5, /*seed=*/9);
  EXPECT_EQ(ds.size(), 100);
  EXPECT_EQ(ds.dimension(), 32);
  // Directions concentrate: average pairwise cosine similarity is high.
  double sim = 0.0;
  for (int64_t i = 1; i < 20; ++i) {
    sim += CosineSimilarity(ds.gradient(0), ds.gradient(i));
  }
  EXPECT_GT(sim / 19.0, 0.5);
}

TEST(GradientDatasetTest, AverageClippedNormBound) {
  const GradientDataset ds =
      MakeConcentratedGradientDataset(50, 16, 0.2, 2.0, /*seed=*/10);
  Rng rng(11);
  const Tensor avg = ds.AverageClipped(32, /*clip_threshold=*/0.1, rng);
  EXPECT_LE(avg.L2Norm(), 0.1 + 1e-6);
}

TEST(GradientDatasetTest, HarvestProducesRequestedShape) {
  GradientDatasetOptions options;
  options.num_gradients = 8;
  options.dimension = 64;
  options.training_examples = 32;
  const GradientDataset ds = HarvestGradientDataset(options);
  EXPECT_EQ(ds.size(), 8);
  EXPECT_EQ(ds.dimension(), 64);
  // Gradients are non-trivial.
  for (int64_t i = 0; i < ds.size(); ++i) {
    EXPECT_GT(ds.gradient(i).L2Norm(), 0.0);
  }
}

TEST(GradientDatasetTest, HarvestIsDeterministic) {
  GradientDatasetOptions options;
  options.num_gradients = 3;
  options.dimension = 32;
  options.training_examples = 16;
  const GradientDataset a = HarvestGradientDataset(options);
  const GradientDataset b = HarvestGradientDataset(options);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(AllClose(a.gradient(i), b.gradient(i)));
  }
}

}  // namespace
}  // namespace geodp
