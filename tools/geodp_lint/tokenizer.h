// A real C++ tokenizer for geodp_lint. Produces the full token stream —
// identifiers, numeric literals (including hexfloats and digit
// separators), string/char literals (including raw strings), multi-char
// punctuators, and comments — with 1-based line/column spans. Comments are
// preserved as tokens (not stripped) because `// geodp: ...` annotations
// live in them; literals are preserved so rules can ignore their contents
// while the dataflow pass keeps exact source positions.
//
// This replaces the line-oriented strip-and-scan of the original lint.cc:
// the taint pass (dataflow.h) needs statement structure, which only a
// token stream can give, and every rule in rules.cc now matches tokens
// instead of substrings.

#ifndef GEODP_TOOLS_GEODP_LINT_TOKENIZER_H_
#define GEODP_TOOLS_GEODP_LINT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace geodp {
namespace lint {

enum class TokenKind {
  kIdentifier,   // identifiers and keywords (no keyword table needed)
  kNumber,       // pp-numbers: 42, 1'000'000, 0x1.8p3, 1e-9f
  kString,       // "..." and R"delim(...)delim", prefix included
  kCharLiteral,  // 'x', '\n'
  kPunct,        // operators and punctuation, longest-match
  kComment,      // // and /* */ comments, delimiters included
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;  // exact spelling, including delimiters
  int line = 0;      // 1-based line of the first character
  int col = 0;       // 1-based column of the first character

  bool Is(std::string_view spelling) const { return text == spelling; }
  bool IsIdent(std::string_view name) const {
    return kind == TokenKind::kIdentifier && text == name;
  }
};

/// Tokenizes `content`. Never fails: malformed input (unterminated
/// literals, stray bytes) degrades to best-effort tokens so the linter
/// still sees the rest of the file. Line continuations (backslash-newline)
/// are honored inside line comments; other splices are rare enough in this
/// codebase that tokens simply end at the backslash.
std::vector<Token> Tokenize(std::string_view content);

}  // namespace lint
}  // namespace geodp

#endif  // GEODP_TOOLS_GEODP_LINT_TOKENIZER_H_
