#include "ckpt/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "base/crc32.h"
#include "base/fault_injection.h"
#include "base/io/file_io.h"
#include "ckpt/byte_io.h"

namespace geodp {
namespace {

constexpr std::array<char, 4> kMagic = {'G', 'D', 'P', 'K'};
constexpr uint32_t kVersion = 1;
// magic + version + payload_len + crc
constexpr uint64_t kEnvelopeBytes = 4 + 4 + 8 + 4;
// Sanity bound on checkpoint size; models in this repo are a few MB at
// most, so a larger claimed length means a corrupt header.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 30;

constexpr char kFilePrefix[] = "ckpt_";
constexpr char kFileSuffix[] = ".gdpk";

void WriteRngState(ByteWriter& w, const RngState& state) {
  for (const uint64_t word : state.state) w.WriteU64(word);
  w.WriteBool(state.has_cached_gaussian);
  w.WriteDouble(state.cached_gaussian);
}

RngState ReadRngState(ByteReader& r) {
  RngState state;
  for (uint64_t& word : state.state) word = r.ReadU64();
  state.has_cached_gaussian = r.ReadBool();
  state.cached_gaussian = r.ReadDouble();
  return state;
}

void WriteBoolVector(ByteWriter& w, const std::vector<bool>& values) {
  w.WriteU64(values.size());
  for (const bool value : values) w.WriteBool(value);
}

std::vector<bool> ReadBoolVector(ByteReader& r) {
  const uint64_t count = r.ReadU64();
  std::vector<bool> values;
  for (uint64_t i = 0; i < count && !r.failed(); ++i) {
    values.push_back(r.ReadBool());
  }
  return values;
}

std::string EncodePayload(const TrainingCheckpoint& c) {
  ByteWriter w;
  w.WriteI64(c.next_attempt);
  w.WriteI64(c.accepted_updates);

  w.WriteI64Vector(c.loss_iterations);
  w.WriteDoubleVector(c.loss_history);
  w.WriteI64(c.empty_lots);
  w.WriteI64(c.nonfinite_skipped);
  w.WriteI64(c.sur_accepted);
  w.WriteI64(c.sur_rejected);
  w.WriteDouble(c.current_beta);

  w.WriteU64(c.param_names.size());
  for (size_t i = 0; i < c.param_names.size(); ++i) {
    w.WriteString(c.param_names[i]);
    w.WriteTensor(c.param_values[i]);
  }

  WriteRngState(w, c.noise_rng);
  WriteRngState(w, c.uniform_sampler.rng);
  w.WriteI64Vector(c.uniform_sampler.order);
  w.WriteI64(c.uniform_sampler.cursor);
  WriteRngState(w, c.poisson_rng);
  WriteRngState(w, c.importance_sampler.rng);
  w.WriteDoubleVector(c.importance_sampler.weights);
  WriteBoolVector(w, c.importance_sampler.seen);

  w.WriteTensor(c.adam.m);
  w.WriteTensor(c.adam.v);
  w.WriteI64(c.adam.step);

  w.WriteI64Vector(c.accountant_orders);
  w.WriteDoubleVector(c.accountant_rdp);
  w.WriteI64(c.accountant_steps);
  w.WriteU64(c.ledger_events.size());
  for (const PrivacyEvent& event : c.ledger_events) {
    w.WriteU8(static_cast<uint8_t>(event.kind));
    w.WriteDouble(event.noise_multiplier);
    w.WriteDouble(event.sampling_rate);
    w.WriteDouble(event.epsilon);
    w.WriteI64(event.count);
    w.WriteString(event.note);
  }

  w.WriteI64(c.beta_controller.observations);
  w.WriteDoubleVector(c.beta_controller.min_angle);
  w.WriteDoubleVector(c.beta_controller.max_angle);

  w.WriteString(c.options_fingerprint);
  return w.TakeBytes();
}

StatusOr<TrainingCheckpoint> DecodePayload(const std::string& payload) {
  ByteReader r(payload);
  TrainingCheckpoint c;
  c.next_attempt = r.ReadI64();
  c.accepted_updates = r.ReadI64();

  c.loss_iterations = r.ReadI64Vector();
  c.loss_history = r.ReadDoubleVector();
  c.empty_lots = r.ReadI64();
  c.nonfinite_skipped = r.ReadI64();
  c.sur_accepted = r.ReadI64();
  c.sur_rejected = r.ReadI64();
  c.current_beta = r.ReadDouble();

  const uint64_t param_count = r.ReadU64();
  // Each parameter entry is at least a name length and a shape length.
  if (r.failed() || param_count > payload.size() / 16) {
    return Status::InvalidArgument("checkpoint payload is malformed");
  }
  for (uint64_t i = 0; i < param_count && !r.failed(); ++i) {
    c.param_names.push_back(r.ReadString());
    c.param_values.push_back(r.ReadTensor());
  }

  c.noise_rng = ReadRngState(r);
  c.uniform_sampler.rng = ReadRngState(r);
  c.uniform_sampler.order = r.ReadI64Vector();
  c.uniform_sampler.cursor = r.ReadI64();
  c.poisson_rng = ReadRngState(r);
  c.importance_sampler.rng = ReadRngState(r);
  c.importance_sampler.weights = r.ReadDoubleVector();
  c.importance_sampler.seen = ReadBoolVector(r);

  c.adam.m = r.ReadTensor();
  c.adam.v = r.ReadTensor();
  c.adam.step = r.ReadI64();

  c.accountant_orders = r.ReadI64Vector();
  c.accountant_rdp = r.ReadDoubleVector();
  c.accountant_steps = r.ReadI64();
  const uint64_t event_count = r.ReadU64();
  if (r.failed() || event_count > payload.size()) {
    return Status::InvalidArgument("checkpoint payload is malformed");
  }
  for (uint64_t i = 0; i < event_count && !r.failed(); ++i) {
    PrivacyEvent event;
    const uint8_t kind = r.ReadU8();
    if (kind > static_cast<uint8_t>(PrivacyEvent::Kind::kLaplace)) {
      return Status::InvalidArgument(
          "checkpoint ledger event has unknown kind");
    }
    event.kind = static_cast<PrivacyEvent::Kind>(kind);
    event.noise_multiplier = r.ReadDouble();
    event.sampling_rate = r.ReadDouble();
    event.epsilon = r.ReadDouble();
    event.count = r.ReadI64();
    event.note = r.ReadString();
    c.ledger_events.push_back(std::move(event));
  }

  c.beta_controller.observations = r.ReadI64();
  c.beta_controller.min_angle = r.ReadDoubleVector();
  c.beta_controller.max_angle = r.ReadDoubleVector();

  c.options_fingerprint = r.ReadString();

  if (r.failed() || r.remaining() != 0) {
    return Status::InvalidArgument("checkpoint payload is malformed");
  }
  if (c.next_attempt < 0 || c.accepted_updates < 0 ||
      c.accepted_updates > c.next_attempt) {
    return Status::InvalidArgument(
        "checkpoint progress counters are inconsistent");
  }
  return c;
}

// Appends `value` to `out` in little-endian byte order regardless of host
// endianness (the repo targets little-endian hosts; this keeps the format
// well-defined anyway).
template <typename T>
void AppendPod(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

// Parses the attempt number out of "ckpt_000000123.gdpk"; -1 when the name
// does not match the canonical pattern.
int64_t ParseCheckpointAttempt(const std::string& filename) {
  const size_t prefix_len = sizeof(kFilePrefix) - 1;
  const size_t suffix_len = sizeof(kFileSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return -1;
  if (filename.compare(0, prefix_len, kFilePrefix) != 0) return -1;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kFileSuffix) != 0) {
    return -1;
  }
  int64_t attempt = 0;
  for (size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    const char ch = filename[i];
    if (ch < '0' || ch > '9') return -1;
    if (attempt > (INT64_MAX - (ch - '0')) / 10) return -1;
    attempt = attempt * 10 + (ch - '0');
  }
  return attempt;
}

// All canonical checkpoint files in `dir`, newest (highest attempt) first.
std::vector<std::pair<int64_t, std::string>> ListCheckpointFiles(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const int64_t attempt = ParseCheckpointAttempt(name);
    if (attempt >= 0) files.emplace_back(attempt, entry.path().string());
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return files;
}

}  // namespace

std::string CheckpointFileName(int64_t next_attempt) {
  std::array<char, 32> buffer;
  std::snprintf(buffer.data(), buffer.size(), "%s%09lld%s", kFilePrefix,
                static_cast<long long>(next_attempt), kFileSuffix);
  return buffer.data();
}

std::string PostmortemFileName(int64_t step) {
  std::array<char, 32> buffer;
  std::snprintf(buffer.data(), buffer.size(), "postmortem-%09lld.json",
                static_cast<long long>(step));
  return buffer.data();
}

Status SaveTrainingCheckpoint(const TrainingCheckpoint& checkpoint,
                              const std::string& path) {
  FaultInjector& faults = FaultInjector::Global();
  faults.Fire("ckpt.before_write");

  const std::string payload = EncodePayload(checkpoint);
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("checkpoint payload exceeds size bound");
  }
  std::string file_bytes;
  file_bytes.reserve(payload.size() + kEnvelopeBytes);
  file_bytes.append(kMagic.data(), kMagic.size());
  AppendPod<uint32_t>(file_bytes, kVersion);
  AppendPod<uint64_t>(file_bytes, payload.size());
  file_bytes.append(payload);
  AppendPod<uint32_t>(file_bytes, Crc32(payload.data(), payload.size()));

  switch (faults.Fire("ckpt.write")) {
    case FaultInjector::Action::kShortWrite:
      // Torn write: drop the second half of the file.
      file_bytes.resize(file_bytes.size() / 2);
      break;
    case FaultInjector::Action::kBitFlip:
      // Bit rot: flip one bit in the middle of the payload.
      file_bytes[file_bytes.size() / 2] ^= 0x10;
      break;
    default:
      break;
  }

  // The atomic protocol (temp file + fsync + rename + dir fsync) lives in
  // the I/O substrate now; "ckpt.write_io" injects errnos into it and
  // "ckpt.before_rename" preserves the crash window between the durable
  // temp file and the rename.
  return AtomicWriteFile(path, file_bytes, RetryPolicy{}, "ckpt.write_io",
                         "ckpt.before_rename");
}

StatusOr<TrainingCheckpoint> LoadTrainingCheckpoint(const std::string& path) {
  StatusOr<std::string> read =
      ReadFileWithRetry(path, RetryPolicy{}, "ckpt.read");
  if (!read.ok()) {
    if (read.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("cannot open checkpoint file: " + path);
    }
    return read.status();
  }
  const std::string bytes = std::move(read).value();

  if (bytes.size() < kEnvelopeBytes) {
    return Status::InvalidArgument("truncated checkpoint file: " + path);
  }
  if (std::memcmp(bytes.data(), kMagic.data(), kMagic.size()) != 0) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version: " + path);
  }
  uint64_t payload_length = 0;
  std::memcpy(&payload_length, bytes.data() + 8, sizeof(payload_length));
  if (payload_length > kMaxPayloadBytes ||
      payload_length != bytes.size() - kEnvelopeBytes) {
    return Status::InvalidArgument("checkpoint length mismatch: " + path);
  }
  const char* payload_begin = bytes.data() + 16;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, payload_begin + payload_length,
              sizeof(stored_crc));
  if (stored_crc != Crc32(payload_begin, payload_length)) {
    return Status::InvalidArgument("checkpoint checksum mismatch: " + path);
  }

  StatusOr<TrainingCheckpoint> decoded = DecodePayload(
      std::string(payload_begin, static_cast<size_t>(payload_length)));
  if (!decoded.ok()) {
    return Status(decoded.status().code(),
                  decoded.status().message() + ": " + path);
  }
  return decoded;
}

StatusOr<FoundCheckpoint> FindLatestGoodCheckpoint(const std::string& dir) {
  const auto files = ListCheckpointFiles(dir);
  if (files.empty()) {
    return Status::NotFound("no checkpoint files in: " + dir);
  }
  int64_t skipped = 0;
  for (const auto& [attempt, path] : files) {
    StatusOr<TrainingCheckpoint> loaded = LoadTrainingCheckpoint(path);
    if (loaded.ok()) {
      FoundCheckpoint found;
      found.checkpoint = std::move(loaded).value();
      found.path = path;
      found.skipped_corrupt = skipped;
      return found;
    }
    ++skipped;
  }
  return Status::NotFound("no valid checkpoint in: " + dir + " (" +
                          std::to_string(skipped) + " corrupt)");
}

int64_t PruneOldCheckpoints(const std::string& dir, int64_t keep) {
  if (keep < 1) keep = 1;
  const auto files = ListCheckpointFiles(dir);
  int64_t errors = 0;
  for (size_t i = static_cast<size_t>(keep); i < files.size(); ++i) {
    const FaultInjector::Action fired =
        FaultInjector::Global().Fire("ckpt.prune");
    if (FaultInjector::SimulatedErrno(fired) != 0) {
      ++errors;  // simulated unlink failure: leave the file, count it
      continue;
    }
    if (std::remove(files[i].second.c_str()) != 0) ++errors;
  }
  return errors;
}

}  // namespace geodp
