// ASCII table / CSV reporter used by every benchmark binary so the output
// mirrors the paper's tables and figure series.

#ifndef GEODP_STATS_TABLE_H_
#define GEODP_STATS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace geodp {

/// Collects rows of string cells and renders them aligned or as CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for callers).
  static std::string Fmt(double value, int precision = 4);

  /// Scientific notation helper.
  static std::string FmtSci(double value, int precision = 3);

  /// Renders an aligned ASCII table.
  void Print(std::ostream& out) const;

  /// Renders comma-separated values (header row first).
  void PrintCsv(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geodp

#endif  // GEODP_STATS_TABLE_H_
