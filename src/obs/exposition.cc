#include "obs/exposition.h"

#include <array>
#include <cstdio>
#include <sstream>
#include <utility>

#include "base/timer.h"

namespace geodp {
namespace {

// Escapes a string for embedding in a JSON string literal. Metric and
// path names are plain ASCII, but fingerprints embed hexfloats and user
// paths can contain anything.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer;
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendHistogram(std::ostringstream& out, const std::string& source_name,
                     const HistogramSnapshot& histogram) {
  const std::string name = PrometheusMetricName(source_name);
  out << "# HELP " << name << " " << source_name << "\n";
  out << "# TYPE " << name << " histogram\n";
  int64_t cumulative = 0;
  for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
    cumulative += histogram.counts[i];
    out << name << "_bucket{le=\"" << FormatDouble(histogram.upper_bounds[i])
        << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << histogram.count << "\n";
  out << name << "_sum " << FormatDouble(histogram.sum) << "\n";
  out << name << "_count " << histogram.count << "\n";
  const std::pair<const char*, double> quantiles[] = {
      {"p50", histogram.p50}, {"p95", histogram.p95}, {"p99", histogram.p99}};
  for (const auto& [suffix, value] : quantiles) {
    out << "# HELP " << name << "_" << suffix << " " << suffix
        << " of " << source_name << "\n";
    out << "# TYPE " << name << "_" << suffix << " gauge\n";
    out << name << "_" << suffix << " " << FormatDouble(value) << "\n";
  }
}

// The JSON body of a status snapshot without the surrounding braces, so
// VarzJson can reuse it verbatim.
std::string StatusJsonBody(const TrainingStatusSnapshot& s) {
  std::ostringstream out;
  out << "\"run_state\":\"" << JsonEscape(s.run_state) << "\""
      << ",\"options_fingerprint\":\"" << JsonEscape(s.options_fingerprint)
      << "\""
      << ",\"step\":" << s.step << ",\"attempt\":" << s.attempt
      << ",\"iterations\":" << s.iterations << ",\"last_record\":";
  if (s.has_last_record) {
    out << StepRecordToJson(s.last_record);
  } else {
    out << "null";
  }
  out << ",\"epsilon_spent\":" << FormatDouble(s.epsilon_spent)
      << ",\"epsilon_budget\":" << FormatDouble(s.epsilon_budget)
      << ",\"delta\":" << FormatDouble(s.delta) << ",\"degraded\":"
      << (s.degraded ? "true" : "false")
      << ",\"eps_burn_rate\":" << FormatDouble(s.eps_burn_rate)
      << ",\"eps_steps_to_exhaustion\":"
      << FormatDouble(s.eps_steps_to_exhaustion) << ",\"checkpoint_dir\":\""
      << JsonEscape(s.checkpoint_dir) << "\",\"latest_checkpoint\":\""
      << JsonEscape(s.latest_checkpoint) << "\",\"publish_sequence\":"
      << s.publish_sequence << ",\"publish_micros\":" << s.publish_micros;
  return out.str();
}

// Cross-thread total of the top-level "step" phase, the denominator of
// every share_of_step column (0 when no step has completed yet).
int64_t StepTotalMicros(const ProfileSnapshot& snapshot) {
  for (const PhaseStats& phase : snapshot.phases) {
    if (phase.path == "step") return phase.total_micros;
  }
  return 0;
}

double ShareOfStep(const PhaseStats& phase, int64_t step_total) {
  if (step_total <= 0) return 0.0;
  return static_cast<double>(phase.total_micros) /
         static_cast<double>(step_total);
}

}  // namespace

void TrainingStatusPublisher::Publish(TrainingStatusSnapshot snapshot) {
  auto holder =
      std::make_shared<TrainingStatusSnapshot>(std::move(snapshot));
  holder->publish_micros = Timer::ProcessMicros();
  std::lock_guard<std::mutex> lock(mu_);
  holder->publish_sequence = ++publish_count_;
  latest_ = std::move(holder);
}

std::shared_ptr<const TrainingStatusSnapshot> TrainingStatusPublisher::Latest()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

int64_t TrainingStatusPublisher::publish_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return publish_count_;
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "geodp_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out += keep ? c : '_';
  }
  return out;
}

std::string PrometheusText(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [source_name, value] : snapshot.counters) {
    const std::string name = PrometheusMetricName(source_name) + "_total";
    out << "# HELP " << name << " " << source_name << "\n";
    out << "# TYPE " << name << " counter\n";
    out << name << " " << value << "\n";
  }
  for (const auto& [source_name, value] : snapshot.gauges) {
    const std::string name = PrometheusMetricName(source_name);
    out << "# HELP " << name << " " << source_name << "\n";
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << FormatDouble(value) << "\n";
  }
  for (const auto& [source_name, histogram] : snapshot.histograms) {
    AppendHistogram(out, source_name, histogram);
  }
  return out.str();
}

std::string StatuszJson(const TrainingStatusSnapshot& snapshot) {
  std::string out = "{";
  out += StatusJsonBody(snapshot);
  out += "}";
  return out;
}

std::string StatuszHtml(const TrainingStatusSnapshot& s) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><title>geodp /statusz</title></head>\n"
      << "<body>\n<h1>GeoDP training status</h1>\n<table border=\"1\">\n";
  auto row = [&out](const std::string& key, const std::string& value) {
    out << "<tr><td>" << HtmlEscape(key) << "</td><td>" << HtmlEscape(value)
        << "</td></tr>\n";
  };
  row("run_state", s.run_state);
  row("step", std::to_string(s.step) + " / " + std::to_string(s.iterations));
  row("attempt", std::to_string(s.attempt));
  row("epsilon_spent", FormatDouble(s.epsilon_spent));
  row("epsilon_budget",
      s.epsilon_budget > 0.0 ? FormatDouble(s.epsilon_budget) : "unbounded");
  row("delta", FormatDouble(s.delta));
  row("degraded", s.degraded ? "true" : "false");
  row("eps_burn_rate", FormatDouble(s.eps_burn_rate));
  row("eps_steps_to_exhaustion",
      s.eps_steps_to_exhaustion < 0.0
          ? "unknown"
          : FormatDouble(s.eps_steps_to_exhaustion));
  row("checkpoint_dir", s.checkpoint_dir.empty() ? "(off)" : s.checkpoint_dir);
  row("latest_checkpoint",
      s.latest_checkpoint.empty() ? "(none)" : s.latest_checkpoint);
  row("options_fingerprint", s.options_fingerprint);
  out << "</table>\n<h2>raw</h2>\n<pre>" << HtmlEscape(StatuszJson(s))
      << "</pre>\n</body></html>\n";
  return out.str();
}

std::string VarzJson(const RegistrySnapshot& registry,
                     const TrainingStatusSnapshot* status) {
  std::ostringstream out;
  out << "{\"metrics\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << FormatDouble(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << histogram.count
        << ",\"sum\":" << FormatDouble(histogram.sum) << ",\"p50\":"
        << FormatDouble(histogram.p50) << ",\"p95\":"
        << FormatDouble(histogram.p95) << ",\"p99\":"
        << FormatDouble(histogram.p99) << "}";
  }
  out << "}},\"status\":";
  if (status != nullptr) {
    out << "{" << StatusJsonBody(*status) << "}";
  } else {
    out << "null";
  }
  out << "}";
  return out.str();
}

std::string ProfilezJson(const ProfileSnapshot& snapshot, bool enabled) {
  const int64_t step_total = StepTotalMicros(snapshot);
  std::ostringstream out;
  out << "{\"enabled\":" << (enabled ? "true" : "false")
      << ",\"threads\":" << snapshot.threads << ",\"phases\":[";
  bool first = true;
  for (const PhaseStats& phase : snapshot.phases) {
    if (!first) out << ",";
    first = false;
    out << "{\"path\":\"" << JsonEscape(phase.path) << "\",\"name\":\""
        << JsonEscape(phase.name) << "\",\"count\":" << phase.count
        << ",\"total_micros\":" << phase.total_micros
        << ",\"self_micros\":" << phase.self_micros << ",\"share_of_step\":"
        << FormatDouble(ShareOfStep(phase, step_total)) << ",\"p50_micros\":"
        << FormatDouble(phase.p50_micros) << ",\"p95_micros\":"
        << FormatDouble(phase.p95_micros) << ",\"p99_micros\":"
        << FormatDouble(phase.p99_micros) << "}";
  }
  out << "]}";
  return out.str();
}

std::string ProfilezHtml(const ProfileSnapshot& snapshot, bool enabled) {
  const int64_t step_total = StepTotalMicros(snapshot);
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html><head><title>geodp /profilez</title></head>\n"
      << "<body>\n<h1>GeoDP phase profile</h1>\n<p>profiling "
      << (enabled ? "enabled" : "disabled") << ", " << snapshot.threads
      << " thread(s) recorded. <a href=\"/profilez?format=json\">json</a> "
      << "<a href=\"/profilez?format=folded\">folded stacks</a></p>\n"
      << "<table border=\"1\">\n<tr><th>phase</th><th>count</th>"
      << "<th>total us</th><th>self us</th><th>share of step</th>"
      << "<th>p50 us</th><th>p95 us</th><th>p99 us</th></tr>\n";
  for (const PhaseStats& phase : snapshot.phases) {
    out << "<tr><td>" << HtmlEscape(phase.path) << "</td><td>" << phase.count
        << "</td><td>" << phase.total_micros << "</td><td>"
        << phase.self_micros << "</td><td>"
        << FormatDouble(ShareOfStep(phase, step_total)) << "</td><td>"
        << FormatDouble(phase.p50_micros) << "</td><td>"
        << FormatDouble(phase.p95_micros) << "</td><td>"
        << FormatDouble(phase.p99_micros) << "</td></tr>\n";
  }
  out << "</table>\n<h2>raw</h2>\n<pre>"
      << HtmlEscape(ProfilezJson(snapshot, enabled))
      << "</pre>\n</body></html>\n";
  return out.str();
}

namespace {

void AppendFlightEventJson(std::ostringstream& out, const FlightEvent& event) {
  out << "{\"sequence\":" << event.sequence << ",\"micros\":" << event.micros
      << ",\"kind\":\"" << FlightEventKindName(event.kind)
      << "\",\"step\":" << event.step << ",\"tid\":" << event.tid
      << ",\"detail\":\"" << JsonEscape(event.detail.data()) << "\"}";
}

}  // namespace

std::string FlightzJson(const std::vector<FlightEvent>& events, bool enabled,
                        int64_t total_recorded) {
  std::ostringstream out;
  out << "{\"enabled\":" << (enabled ? "true" : "false")
      << ",\"total_recorded\":" << total_recorded << ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    AppendFlightEventJson(out, events[i]);
  }
  out << "]}";
  return out.str();
}

std::string PostmortemJson(const PostmortemInfo& info,
                           const std::vector<FlightEvent>& events) {
  int64_t last_milestone_step = -1;
  for (const FlightEvent& event : events) {
    if (event.kind == FlightEventKind::kStepMilestone) {
      last_milestone_step = event.step;  // events arrive in sequence order
    }
  }
  std::ostringstream out;
  out << "{\"tool\":\"geodp\",\"kind\":\"postmortem\",\"reason\":\""
      << JsonEscape(info.reason) << "\",\"detail\":\""
      << JsonEscape(info.detail) << "\",\"step\":" << info.step
      << ",\"attempt\":" << info.attempt << ",\"epsilon\":"
      << FormatDouble(info.epsilon) << ",\"degraded\":"
      << (info.degraded ? "true" : "false")
      << ",\"last_milestone_step\":" << last_milestone_step
      << ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    AppendFlightEventJson(out, events[i]);
  }
  out << "]}\n";
  return out.str();
}

}  // namespace geodp
