#include "base/crc32.h"

#include <array>

namespace geodp {
namespace {

// Reflected polynomial 0xEDB88320 (IEEE). Table built once at startup.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t state, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Finish(Crc32Update(Crc32Init(), data, size));
}

}  // namespace geodp
