#include "dp/gaussian_mechanism.h"

#include <cmath>

#include "base/check.h"

namespace geodp {

double GaussianSigmaForEpsilonDelta(double epsilon, double delta) {
  GEODP_CHECK_GT(epsilon, 0.0);  // geodp: check-ok
  GEODP_CHECK(delta > 0.0 && delta < 1.0);  // geodp: check-ok
  return std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

double GaussianEpsilonForSigma(double sigma, double delta) {
  GEODP_CHECK_GT(sigma, 0.0);  // geodp: check-ok
  GEODP_CHECK(delta > 0.0 && delta < 1.0);  // geodp: check-ok
  return std::sqrt(2.0 * std::log(1.25 / delta)) / sigma;
}

GaussianMechanism::GaussianMechanism(GaussianMechanismOptions options)
    : options_(options) {
  GEODP_CHECK_GE(options_.l2_sensitivity.value(), 0.0);  // geodp: check-ok
  GEODP_CHECK_GE(options_.noise_multiplier.value(), 0.0);  // geodp: check-ok
}

double GaussianMechanism::NoiseStddev() const {
  return options_.l2_sensitivity.value() * options_.noise_multiplier.value();
}

double GaussianMechanism::Perturb(double value, Rng& rng) const {
  return value + rng.Gaussian(0.0, NoiseStddev());
}

Tensor GaussianMechanism::Perturb(const Tensor& value, Rng& rng) const {
  Tensor out = value;
  const double stddev = NoiseStddev();
  for (int64_t i = 0; i < out.numel(); ++i) {
    out[i] += static_cast<float>(rng.Gaussian(0.0, stddev));
  }
  return out;
}

}  // namespace geodp
