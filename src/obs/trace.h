// RAII trace spans writing chrome://tracing-compatible JSON.
//
// EnableTracing(path) turns collection on; TraceSpan instances then record
// complete ("ph":"X") events with microsecond timestamps relative to
// process start, tagged with a small stable per-thread id. FlushTrace()
// (also registered atexit) serializes the buffer to the configured path —
// load the file via chrome://tracing or https://ui.perfetto.dev.
//
// When tracing is disabled a TraceSpan costs one relaxed atomic load and
// no allocation, so instrumentation can stay on every hot path. Trace
// output contains wall-clock durations and is therefore NOT expected to
// be identical across runs or thread counts — only the metrics/step-record
// outputs carry that guarantee.

#ifndef GEODP_OBS_TRACE_H_
#define GEODP_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "base/status.h"

namespace geodp {

/// Starts collecting trace events; FlushTrace() will write them to
/// `path`. Clears any previously buffered events and installs the
/// thread-pool part hook so RunParts dispatch shows up as "pool.part"
/// slices. Registers an atexit flush the first time it is called.
void EnableTracing(const std::string& path);

/// Flushes buffered events (if tracing was ever enabled) and stops
/// collection.
void DisableTracing();

/// True between EnableTracing and DisableTracing.
bool TracingEnabled();

/// Writes every event buffered so far to the configured path as a JSON
/// object {"traceEvents":[...]} (rewriting the whole file, so repeated
/// flushes only ever grow the persisted trace). Collection stays enabled.
/// No-op returning Ok when tracing was never enabled.
Status FlushTrace();

/// Number of currently buffered events (tests).
int64_t BufferedTraceEventCount();

/// Small dense id of the calling thread, assigned on first use. Event
/// "tid" fields use this instead of the opaque OS thread id so traces are
/// easy to read.
int CurrentTraceThreadId();

/// RAII span: records [construction, destruction) as one complete event.
/// `name` must outlive the span — pass a string literal. When phase
/// profiling (obs/phase_profiler.h) is enabled the same span also feeds
/// the calling thread's phase accumulators; with both tracing and
/// profiling off a span still costs only relaxed atomic loads.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_us_;  // -1 when tracing AND profiling were both off
  bool profiled_;     // this span entered the phase profiler
};

namespace internal {

/// (Re)installs the shared thread-pool part hook while tracing or
/// profiling is enabled and uninstalls it once both are off. Called by
/// EnableTracing/DisableTracing and their profiling counterparts; the
/// single hook slot dispatches to whichever collectors are live.
void UpdatePoolPartHook();

}  // namespace internal

}  // namespace geodp

#endif  // GEODP_OBS_TRACE_H_
