// Runtime SIMD-tier selection for the microkernels in base/simd/kernels.h.
//
// The library ships one binary containing a scalar reference implementation
// of every kernel plus (on x86-64 builds whose compiler supports it) an
// AVX2/FMA implementation compiled into a single translation unit with
// -mavx2 -mfma. The tier is chosen once at startup: cpuid feature detection
// picks the best tier the host supports, the GEODP_SIMD environment
// variable or the --geodp_simd flag can force `scalar`, `avx2` or `auto`.
//
// Determinism contract: within one tier, every kernel is a pure function of
// its inputs and the ParallelFor chunk structure, so results stay
// bit-identical from 1 to N threads. Different tiers may round differently
// (FMA contracts multiply-add into one rounding; vector transcendentals use
// polynomial evaluation instead of libm), so goldens are pinned per tier.
// Resuming a checkpointed run under a different tier than the one that
// wrote it is therefore like resuming on different hardware: correct, but
// not bit-identical to the uninterrupted run.

#ifndef GEODP_BASE_SIMD_DISPATCH_H_
#define GEODP_BASE_SIMD_DISPATCH_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace geodp {

enum class SimdTier {
  kScalar = 0,
  kAvx2 = 1,
};

/// Stable lower-case name used by --geodp_simd and in BENCH_*.json:
/// "scalar" or "avx2".
const char* SimdTierName(SimdTier tier);

/// True when the binary contains `tier` and the host cpu can execute it.
/// kScalar is always available.
bool SimdTierAvailable(SimdTier tier);

/// Every tier available on this binary + host, best last.
std::vector<SimdTier> AvailableSimdTiers();

/// Best available tier according to cpuid feature detection.
SimdTier DetectSimdTier();

/// Tier the kernels currently dispatch to. Initialized on first use from
/// the GEODP_SIMD environment variable ("scalar", "avx2" or "auto";
/// anything else falls back to auto-detection).
SimdTier ActiveSimdTier();

/// Forces the dispatch tier. The tier must be available on this host
/// (checked). Like SetGlobalThreadCount, safe to call between parallel
/// regions, not concurrently with running kernels.
void SetSimdTier(SimdTier tier);

/// Parses "scalar", "avx2" or "auto" (auto = DetectSimdTier()) and applies
/// it. Returns InvalidArgument for unknown names and FailedPrecondition
/// when the named tier is not available on this binary + host.
Status SetSimdTierFromString(const std::string& name);

}  // namespace geodp

#endif  // GEODP_BASE_SIMD_DISPATCH_H_
