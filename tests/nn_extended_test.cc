// Tests for the extended NN layers: GroupNorm, Sigmoid, LeakyReLU, and the
// MLP model factory.

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "models/mlp.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/group_norm.h"
#include "nn/im2col.h"
#include "nn/parameter.h"
#include "tensor/tensor_ops.h"
#include "test_util.h"

namespace geodp {
namespace {

using testing_util::CheckGradients;

TEST(GroupNormTest, NormalizesWithinGroups) {
  GroupNorm norm(4, 2);  // 2 groups of 2 channels
  Rng rng(1);
  const Tensor x = Tensor::Randn({2, 4, 3, 3}, rng, 5.0f);
  const Tensor y = norm.Forward(x);
  // With gamma=1, beta=0 each (sample, group) slab has mean ~0, var ~1.
  const int64_t spatial = 9;
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t g = 0; g < 2; ++g) {
      double mean = 0.0, var = 0.0;
      for (int64_t c = g * 2; c < g * 2 + 2; ++c) {
        for (int64_t i = 0; i < spatial; ++i) {
          mean += static_cast<double>(y[((b * 4 + c) * spatial) + i]);
        }
      }
      mean /= 18.0;
      for (int64_t c = g * 2; c < g * 2 + 2; ++c) {
        for (int64_t i = 0; i < spatial; ++i) {
          const double d =
              static_cast<double>(y[((b * 4 + c) * spatial) + i]) - mean;
          var += d * d;
        }
      }
      var /= 18.0;
      EXPECT_NEAR(mean, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-2);
    }
  }
}

TEST(GroupNormTest, AffineParametersApply) {
  GroupNorm norm(2, 1);
  norm.Parameters()[0]->value = Tensor::Vector({2.0f, 3.0f});  // gamma
  norm.Parameters()[1]->value = Tensor::Vector({1.0f, -1.0f});  // beta
  Rng rng(2);
  const Tensor x = Tensor::Randn({1, 2, 2, 2}, rng);
  const Tensor y = norm.Forward(x);
  // Channel 0 values should center at beta=1, channel 1 at beta=-1.
  double mean0 = 0.0, mean1 = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    mean0 += static_cast<double>(y[i]);
    mean1 += static_cast<double>(y[4 + i]);
  }
  EXPECT_NEAR(mean0 / 4.0 + mean1 / 4.0, 0.0, 1.0);  // loose sanity
}

TEST(GroupNormTest, GradientCheck) {
  Rng rng(3);
  GroupNorm norm(4, 2);
  // Randomize affine parameters so their gradients are exercised.
  norm.Parameters()[0]->value = Tensor::RandUniform({4}, rng, 0.5f, 1.5f);
  norm.Parameters()[1]->value = Tensor::Randn({4}, rng, 0.2f);
  const Tensor x = Tensor::Randn({2, 4, 3, 3}, rng);
  const auto result = CheckGradients(norm, x, rng, /*epsilon=*/1e-3);
  EXPECT_LT(result.max_input_error, 5e-2);
  EXPECT_LT(result.max_param_error, 5e-2);
}

TEST(GroupNormTest, SingleGroupIsLayerNorm) {
  // num_groups=1 normalizes over the whole sample.
  GroupNorm norm(3, 1);
  Rng rng(4);
  const Tensor x = Tensor::Randn({1, 3, 2, 2}, rng, 4.0f);
  const Tensor y = norm.Forward(x);
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i)
    mean += static_cast<double>(y[i]);
  EXPECT_NEAR(mean / static_cast<double>(y.numel()), 0.0, 1e-4);
}

TEST(SigmoidTest, ForwardAnchors) {
  Sigmoid sigmoid;
  const Tensor y = sigmoid.Forward(Tensor::Vector({0.0f, 100.0f, -100.0f}));
  EXPECT_NEAR(y[0], 0.5f, 1e-6);
  EXPECT_NEAR(y[1], 1.0f, 1e-6);
  EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(SigmoidTest, GradientCheck) {
  Rng rng(5);
  Sigmoid sigmoid;
  const Tensor x = Tensor::Randn({3, 5}, rng);
  const auto result = CheckGradients(sigmoid, x, rng);
  EXPECT_LT(result.max_input_error, 1e-2);
}

TEST(LeakyReLUTest, ForwardSlope) {
  LeakyReLU leaky(0.1f);
  const Tensor y = leaky.Forward(Tensor::Vector({-2.0f, 3.0f}));
  EXPECT_NEAR(y[0], -0.2f, 1e-6);
  EXPECT_NEAR(y[1], 3.0f, 1e-6);
}

TEST(LeakyReLUTest, GradientCheck) {
  Rng rng(6);
  LeakyReLU leaky(0.1f);
  Tensor x = Tensor::Randn({4, 4}, rng);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.5f;  // stay off the kink
  }
  const auto result = CheckGradients(leaky, x, rng);
  EXPECT_LT(result.max_input_error, 1e-2);
}

TEST(MlpTest, ShapesAndParameterCount) {
  Rng rng(7);
  MlpConfig config;
  config.input_dim = 36;
  config.hidden_dims = {16, 8};
  config.num_classes = 5;
  auto model = MakeMlp(config, rng);
  const Tensor x = Tensor::Randn({3, 1, 6, 6}, rng);
  const Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), 5);
  const int64_t expected = (36 * 16 + 16) + (16 * 8 + 8) + (8 * 5 + 5);
  EXPECT_EQ(TotalParameterCount(model->Parameters()), expected);
}

TEST(MlpTest, GradientCheck) {
  Rng rng(8);
  MlpConfig config;
  config.input_dim = 9;
  config.hidden_dims = {6};
  config.num_classes = 3;
  auto model = MakeMlp(config, rng);
  const Tensor x = Tensor::Randn({2, 1, 3, 3}, rng);
  const auto result = CheckGradients(*model, x, rng);
  EXPECT_LT(result.max_input_error, 5e-2);
  EXPECT_LT(result.max_param_error, 5e-2);
}

TEST(MlpTest, NoHiddenLayersIsLogisticRegression) {
  Rng rng(9);
  MlpConfig config;
  config.input_dim = 12;
  config.hidden_dims = {};
  config.num_classes = 4;
  auto model = MakeMlp(config, rng);
  EXPECT_EQ(TotalParameterCount(model->Parameters()), 12 * 4 + 4);
}

TEST(Im2ColTest, KnownUnfold) {
  // 1x3x3 image, 2x2 kernel, no padding -> 4 columns of 4 rows.
  const Tensor image =
      Tensor::FromVector({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor columns = Im2Col(image, /*kernel_size=*/2, /*padding=*/0);
  EXPECT_EQ(columns.dim(0), 4);
  EXPECT_EQ(columns.dim(1), 4);
  // First receptive field (top-left): {1, 2, 4, 5} down the rows.
  EXPECT_EQ(columns.at({0, 0}), 1.0f);
  EXPECT_EQ(columns.at({1, 0}), 2.0f);
  EXPECT_EQ(columns.at({2, 0}), 4.0f);
  EXPECT_EQ(columns.at({3, 0}), 5.0f);
  // Last receptive field (bottom-right): {5, 6, 8, 9}.
  EXPECT_EQ(columns.at({0, 3}), 5.0f);
  EXPECT_EQ(columns.at({3, 3}), 9.0f);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  const Tensor image = Tensor::FromVector({1, 1, 1}, {7});
  const Tensor columns = Im2Col(image, /*kernel_size=*/3, /*padding=*/1);
  EXPECT_EQ(columns.dim(0), 9);
  EXPECT_EQ(columns.dim(1), 1);
  // Center tap sees the pixel, all others the zero padding.
  EXPECT_EQ(columns.at({4, 0}), 7.0f);
  EXPECT_NEAR(columns.Sum(), 7.0, 1e-6);
}

TEST(Im2ColTest, Col2ImAccumulatesOverlaps) {
  // All-ones columns folded back: each pixel receives one contribution per
  // receptive field covering it.
  const Tensor ones = Tensor::Full({4, 4}, 1.0f);  // 2x2 kernel on 3x3
  const Tensor image = Col2Im(ones, 1, 3, 3, /*kernel_size=*/2,
                              /*padding=*/0);
  // Corner pixels are covered once, center 4 times.
  EXPECT_EQ(image.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(image.at({0, 1, 1}), 4.0f);
  EXPECT_EQ(image.at({0, 2, 2}), 1.0f);
}

class ConvImplEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ConvImplEquivalenceTest, ForwardAndBackwardMatchDirect) {
  const auto& [kernel, padding] = GetParam();
  Rng rng(42);
  Conv2d direct(2, 3, kernel, rng, padding, /*with_bias=*/true,
                ConvImpl::kDirect);
  Rng rng2(42);  // identical weights
  Conv2d fast(2, 3, kernel, rng2, padding, /*with_bias=*/true,
              ConvImpl::kIm2Col);
  Rng data_rng(7);
  const Tensor x = Tensor::Randn({2, 2, 6, 6}, data_rng);
  const Tensor y_direct = direct.Forward(x);
  const Tensor y_fast = fast.Forward(x);
  ASSERT_TRUE(SameShape(y_direct, y_fast));
  EXPECT_LT(MaxAbsDiff(y_direct, y_fast), 1e-4);

  const Tensor gy = Tensor::Randn(y_direct.shape(), data_rng);
  const Tensor gx_direct = direct.Backward(gy);
  const Tensor gx_fast = fast.Backward(gy);
  EXPECT_LT(MaxAbsDiff(gx_direct, gx_fast), 1e-4);
  EXPECT_LT(MaxAbsDiff(direct.Parameters()[0]->grad,
                       fast.Parameters()[0]->grad),
            1e-3);
  EXPECT_LT(MaxAbsDiff(direct.Parameters()[1]->grad,
                       fast.Parameters()[1]->grad),
            1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndPadding, ConvImplEquivalenceTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 5),
                       ::testing::Values<int64_t>(0, 1, 2)));

}  // namespace
}  // namespace geodp
