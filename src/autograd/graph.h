// Tape-based reverse-mode automatic differentiation over Tensor.
//
// This is an independent gradient substrate: the production layers in
// src/nn implement hand-written backward passes (fast, allocation-light);
// this graph rebuilds the same computations from primitive ops and
// differentiates them mechanically. The test suite cross-checks the two,
// so every analytic backward pass is verified against an implementation
// that cannot share its bugs.
//
// Usage:
//   Graph g;
//   Var x = g.Input(batch);                 // constant w.r.t. grad
//   Var w = g.Parameter(weights);           // gradient is tracked
//   Var logits = AddRowBias(MatmulNT(x, w), b);
//   Var loss = SoftmaxCrossEntropy(logits, labels);
//   g.Backward(loss);
//   Tensor dw = g.grad(w);

#ifndef GEODP_AUTOGRAD_GRAPH_H_
#define GEODP_AUTOGRAD_GRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace geodp {
namespace autograd {

class Graph;

/// Lightweight handle to a node in a Graph tape.
struct Var {
  int32_t index = -1;

  bool valid() const { return index >= 0; }
};

/// Owns the tape: node values, gradients and backward closures.
class Graph {
 public:
  Graph() = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Leaf whose gradient is not needed (e.g. input data).
  Var Input(Tensor value);

  /// Leaf whose gradient is accumulated (trainable parameter).
  Var Parameter(Tensor value);

  /// Node value / accumulated gradient.
  const Tensor& value(Var v) const;
  const Tensor& grad(Var v) const;

  /// Runs reverse-mode differentiation from `output`, which must be a
  /// scalar (numel 1). Gradients of all parameters (and intermediates)
  /// are populated; call once per tape.
  void Backward(Var output);

  /// Number of nodes recorded.
  size_t size() const { return nodes_.size(); }

  // --- Internal API used by the op free functions. ---
  using BackwardFn = std::function<void(Graph&)>;
  Var Emplace(Tensor value, BackwardFn backward, bool needs_grad);
  Tensor& mutable_grad(Var v);
  bool needs_grad(Var v) const;

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    BackwardFn backward;  // null for leaves
    bool needs_grad = false;
  };
  std::vector<Node> nodes_;
  bool backward_ran_ = false;
};

// ---- Primitive ops (each records one tape node) ----

/// Elementwise a + b (same shape).
Var Add(Graph& g, Var a, Var b);

/// Elementwise a - b (same shape).
Var Sub(Graph& g, Var a, Var b);

/// Elementwise a * b (same shape).
Var Mul(Graph& g, Var a, Var b);

/// a * constant.
Var Scale(Graph& g, Var a, float factor);

/// Matrix product [m,k] x [k,n] -> [m,n].
Var Matmul(Graph& g, Var a, Var b);

/// a @ b^T for a [m,k], b [n,k] -> [m,n] (the Linear-layer pattern).
Var MatmulNT(Graph& g, Var a, Var b);

/// Adds a row vector bias [n] to every row of a [m,n] matrix.
Var AddRowBias(Graph& g, Var matrix, Var bias);

/// Elementwise max(x, 0).
Var Relu(Graph& g, Var a);

/// Elementwise tanh.
Var TanhOp(Graph& g, Var a);

/// Elementwise logistic sigmoid.
Var SigmoidOp(Graph& g, Var a);

/// Sum of all elements -> scalar [1].
Var Sum(Graph& g, Var a);

/// Mean of all elements -> scalar [1].
Var MeanOp(Graph& g, Var a);

/// Mean softmax cross-entropy of logits [B,K] against labels -> scalar.
Var SoftmaxCrossEntropyOp(Graph& g, Var logits,
                          const std::vector<int64_t>& labels);

}  // namespace autograd
}  // namespace geodp

#endif  // GEODP_AUTOGRAD_GRAPH_H_
