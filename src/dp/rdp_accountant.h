// Rényi differential privacy accountant for (subsampled) Gaussian
// mechanisms, following Mironov (CSF 2017) and the integer-order subsampled
// bound of Mironov, Talwar & Zhang / Wang et al. used by practical DP-SGD
// implementations. The paper (§II-A) relies on RDP to "more accurately
// estimate the cumulative privacy loss of the whole training process".

#ifndef GEODP_DP_RDP_ACCOUNTANT_H_
#define GEODP_DP_RDP_ACCOUNTANT_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "base/units.h"

namespace geodp {

/// RDP of the (un-subsampled) Gaussian mechanism with noise multiplier
/// sigma at order alpha: alpha / (2 sigma^2).
double GaussianRdp(double noise_multiplier, double alpha);

/// RDP of the Poisson-subsampled Gaussian mechanism at integer order
/// alpha >= 2 with sampling rate q in [0, 1]:
///   (1/(alpha-1)) * log( sum_{i=0}^{alpha} C(alpha,i) q^i (1-q)^{alpha-i}
///                        * exp( i(i-1) / (2 sigma^2) ) )
/// computed in log-space for stability.
double SubsampledGaussianRdp(double noise_multiplier, double sampling_rate,
                             int64_t alpha);

/// Point-in-time view of an accountant: the telemetry layer emits one per
/// training step so epsilon-so-far is visible while a run is in flight.
struct RdpSnapshot {
  double epsilon = 0.0;      // 0 before any release is accounted
  int64_t optimal_order = 0; // order achieving epsilon (0 before any spend)
  int64_t total_steps = 0;   // releases accounted so far
};

/// Tracks cumulative RDP over a set of integer orders and converts to
/// (epsilon, delta)-DP via epsilon = min_alpha rdp(alpha) +
/// log(1/delta)/(alpha-1).
class RdpAccountant {
 public:
  /// Uses DefaultOrders() when `orders` is empty.
  explicit RdpAccountant(std::vector<int64_t> orders = {});

  /// Integer orders 2..64 plus {128, 256, 512, 1024}.
  static std::vector<int64_t> DefaultOrders();

  /// Accounts `steps` releases of a Gaussian mechanism. Sigma, the rate
  /// and delta below are strongly typed (base/units.h): they are all
  /// small positive doubles, and transposing two of them misreports
  /// epsilon without any other symptom.
  void AddGaussianSteps(NoiseMultiplier sigma, int64_t steps);

  /// Accounts `steps` releases of a Poisson-subsampled Gaussian mechanism
  /// with the given sampling rate (batch_size / dataset_size).
  void AddSubsampledGaussianSteps(NoiseMultiplier sigma,
                                  SamplingRate sampling_rate, int64_t steps);

  /// Smallest epsilon over the tracked orders at the given delta.
  double GetEpsilon(Delta delta) const;

  /// The order achieving GetEpsilon().
  int64_t GetOptimalOrder(Delta delta) const;

  /// Epsilon, optimal order, and release count in one call. Unlike
  /// GetEpsilon, an accountant with no releases reports epsilon 0 (and
  /// order 0) instead of the vacuous log(1/delta)/(alpha-1) bound.
  RdpSnapshot Snapshot(Delta delta) const;

  /// Releases accounted so far across both Add methods.
  int64_t total_steps() const { return total_steps_; }

  /// Checkpoint support: restores a snapshot taken from `orders()`,
  /// `cumulative_rdp()` and `total_steps()`. Fails (without mutating the
  /// accountant) when the saved orders do not match this accountant's or
  /// the values are malformed — resuming onto a mismatched accountant
  /// would silently misreport epsilon.
  Status RestoreState(const std::vector<int64_t>& orders,
                      const std::vector<double>& cumulative_rdp,
                      int64_t total_steps);

  const std::vector<int64_t>& orders() const { return orders_; }
  const std::vector<double>& cumulative_rdp() const { return rdp_; }

 private:
  std::vector<int64_t> orders_;
  std::vector<double> rdp_;  // cumulative, parallel to orders_
  int64_t total_steps_ = 0;
};

}  // namespace geodp

#endif  // GEODP_DP_RDP_ACCOUNTANT_H_
