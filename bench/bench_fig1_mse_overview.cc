// Figure 1: MSEs of GeoDP and DP on preserving directions (theta) and raw
// gradients (g) of CNN-training gradients, as the noise multiplier sweeps.
// Expected shape: GeoDP's theta-MSE below DP's theta-MSE, while GeoDP's
// g-MSE sits above DP's g-MSE (GeoDP trades numeric fidelity for direction
// fidelity).

#include <cstdint>

#include "common/bench_util.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Figure 1 (MSE overview: GeoDP vs DP on directions and gradients)",
      "450k gradients of 20k dims from CNN/CIFAR-10 training; sweep sigma",
      "512 gradients of 1024 dims from CNN/synthetic-CIFAR training; "
      "B=256, C=0.1, beta=0.1, 24 trials per point");

  const int64_t kDim = 1024;
  const int64_t kBatch = 256;
  const double kClip = 0.1;
  const double kBeta = 0.1;
  const int kTrials = 24;

  const GradientDataset data = HarvestedGradients(kDim);

  TablePrinter table({"sigma", "GeoDP theta MSE", "DP theta MSE",
                      "GeoDP g MSE", "DP g MSE", "theta winner",
                      "g winner"});
  for (double sigma : {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0}) {
    const auto geo = MakeGeo(kClip, kBatch, sigma, kBeta);
    const auto dp = MakeDp(kClip, kBatch, sigma);
    const MseResult geo_mse =
        MeasurePerturbationMse(data, *geo, kBatch, kClip, kTrials, 11);
    const MseResult dp_mse =
        MeasurePerturbationMse(data, *dp, kBatch, kClip, kTrials, 11);
    table.AddRow({TablePrinter::FmtSci(sigma, 0),
                  TablePrinter::FmtSci(geo_mse.direction_mse),
                  TablePrinter::FmtSci(dp_mse.direction_mse),
                  TablePrinter::FmtSci(geo_mse.gradient_mse),
                  TablePrinter::FmtSci(dp_mse.gradient_mse),
                  geo_mse.direction_mse < dp_mse.direction_mse ? "GeoDP"
                                                               : "DP",
                  geo_mse.gradient_mse < dp_mse.gradient_mse ? "GeoDP"
                                                             : "DP"});
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
