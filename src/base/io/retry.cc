#include "base/io/retry.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "base/timer.h"

namespace geodp {
namespace {

// Substream id reserved for retry jitter; training noise derives its
// substreams from per-chunk ids, so this stream never collides with one
// the trajectory depends on.
constexpr uint64_t kJitterStreamId = 0x10b5ull;

}  // namespace

IoStats& IoStats::Global() {
  static IoStats* stats = new IoStats();
  return *stats;
}

bool IsTransientErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK || err == EIO;
}

Status StatusFromErrno(int err, const std::string& context) {
  const std::string message = context + ": " + std::strerror(err);
  if (IsTransientErrno(err)) return Status::Unavailable(message);
  switch (err) {
    case ENOSPC:
    case EDQUOT:
      return Status::ResourceExhausted(message);
    case EROFS:
    case EACCES:
    case EPERM:
      return Status::FailedPrecondition(message);
    case ENOENT:
      return Status::NotFound(message);
    default:
      return Status::Internal(message);
  }
}

RetryState::RetryState(const RetryPolicy& policy)
    : policy_(policy),
      start_us_(Timer::ProcessMicros()),
      jitter_rng_(Rng::Substream(policy.seed, kJitterStreamId)) {}

bool RetryState::ShouldRetry(int err) {
  ++attempts_;
  const bool out_of_attempts = attempts_ >= policy_.max_attempts;
  const bool past_deadline =
      policy_.deadline_us > 0 &&
      Timer::ProcessMicros() - start_us_ >= policy_.deadline_us;
  if (!IsTransientErrno(err) || out_of_attempts || past_deadline) {
    IoStats::Global().giveups.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  double backoff = static_cast<double>(policy_.initial_backoff_us);
  for (int k = 1; k < attempts_; ++k) backoff *= policy_.backoff_multiplier;
  // Symmetric jitter from the dedicated substream keeps concurrent
  // retriers from thundering in lockstep while staying reproducible.
  backoff += backoff * policy_.jitter_fraction *
             (jitter_rng_.Uniform() * 2.0 - 1.0);
  if (backoff > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(backoff)));
  }
  IoStats::Global().retries.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace geodp
