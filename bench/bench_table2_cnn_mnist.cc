// Table II: CNN test accuracy on the MNIST-like dataset under DP vs GeoDP,
// composed with the optimization techniques IS, SUR, AUTO-S and PSAC, at
// two noise levels and two batch sizes, plus GeoDP's large-beta failure
// case.
//
// Scale-down note (see EXPERIMENTS.md): the paper runs d=21840 parameters
// with B up to 16384 and sigma in {10, 1}. DP's per-step noise-to-signal
// ratio scales as sigma*sqrt(d)/B and GeoDP's per-angle direction noise as
// sqrt(d)*beta*pi*sigma/B, so at this repo's scale (d~3.7k, B<=128) the
// equivalent regime is sigma in {8, 2} with bounding factors beta =
// 0.001 (good) / 0.01 (failure case analogous to the paper's beta=0.5).
// Expected shape: GeoDP(beta good) > every DP variant; each technique adds
// a little on top of either method; GeoDP(beta bad) collapses.

#include <cstdint>
#include <string>

#include "base/rng.h"
#include "common/bench_util.h"
#include "models/cnn.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

struct Config {
  std::string label;
  PerturbationMethod method = PerturbationMethod::kDp;
  int64_t batch = 128;
  double beta = 0.05;
  std::string clipper = "flat";
  bool is = false;
  bool sur = false;
};

constexpr int64_t kIterations = 100;
constexpr double kClip = 0.1;
constexpr double kLr = 3.0;
constexpr double kBetaGood = 0.001;
constexpr double kBetaBad = 0.01;

double RunAccuracy(const SplitDataset& data, const Config& config,
                   double sigma) {
  Rng rng(55);
  CnnConfig cnn;
  auto model = MakeCnn(cnn, rng);
  TrainerOptions options;
  options.method = config.method;
  options.batch_size = config.batch;
  options.iterations = kIterations;
  options.learning_rate = kLr;
  options.clip_threshold = kClip;
  options.noise_multiplier = sigma;
  options.beta = config.beta;
  options.clipper = config.clipper;
  options.importance_sampling = config.is;
  options.selective_update = config.sur;
  options.seed = 99;
  DpTrainer trainer(model.get(), &data.train, &data.test, options);
  return trainer.Train().test_accuracy;
}

void Run() {
  PrintBanner(
      "Table II (CNN on MNIST: test accuracy of DP vs GeoDP x techniques)",
      "sigma in {10, 1}, B in {8192, 16384}, beta in {0.1, 0.5}, 20 epochs",
      "sigma in {8, 2} (iteration-averaged noise-to-signal matched), B in "
      "{64, 128}, beta in {0.001, 0.01}, 100 iterations, 14x14 synthetic "
      "MNIST");

  const SplitDataset data = MnistLikeSplit(1024, 256, /*seed=*/8);

  // Noise-free reference.
  Config noise_free;
  noise_free.label = "noise-free";
  noise_free.method = PerturbationMethod::kNoiseFree;
  const double reference = RunAccuracy(data, noise_free, 0.0);

  const std::vector<Config> configs = {
      {"DP (B=64)", PerturbationMethod::kDp, 64, kBetaGood, "flat", false,
       false},
      {"DP (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "flat", false,
       false},
      {"DP+IS (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "flat",
       true, false},
      {"DP+SUR (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "flat",
       false, true},
      {"DP+AUTO-S (B=128)", PerturbationMethod::kDp, 128, kBetaGood,
       "AUTO-S", false, false},
      {"DP+PSAC (B=128)", PerturbationMethod::kDp, 128, kBetaGood, "PSAC",
       false, false},
      {"DP+SUR+PSAC (B=128)", PerturbationMethod::kDp, 128, kBetaGood,
       "PSAC", false, true},
      {"GeoDP (B=64, beta=0.001)", PerturbationMethod::kGeoDp, 64, kBetaGood,
       "flat", false, false},
      {"GeoDP (B=128, beta=0.001)", PerturbationMethod::kGeoDp, 128,
       kBetaGood, "flat", false, false},
      {"GeoDP (B=64, beta=0.01)", PerturbationMethod::kGeoDp, 64, kBetaBad,
       "flat", false, false},
      {"GeoDP+IS (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "flat", true, false},
      {"GeoDP+SUR (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "flat", false, true},
      {"GeoDP+AUTO-S (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "AUTO-S", false, false},
      {"GeoDP+PSAC (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "PSAC", false, false},
      {"GeoDP+SUR+PSAC (B=128)", PerturbationMethod::kGeoDp, 128, kBetaGood,
       "PSAC", false, true},
  };

  TablePrinter table({"method", "acc @ sigma=8", "acc @ sigma=2"});
  table.AddRow({"noise-free", TablePrinter::Fmt(reference * 100, 2) + "%",
                TablePrinter::Fmt(reference * 100, 2) + "%"});
  for (const Config& config : configs) {
    const double hi = RunAccuracy(data, config, 8.0);
    const double lo = RunAccuracy(data, config, 2.0);
    table.AddRow({config.label, TablePrinter::Fmt(hi * 100, 2) + "%",
                  TablePrinter::Fmt(lo * 100, 2) + "%"});
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
