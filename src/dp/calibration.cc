#include "dp/calibration.h"

#include "base/check.h"
#include "dp/rdp_accountant.h"

namespace geodp {

double TrainingRunEpsilon(double sigma, double sampling_rate, int64_t steps,
                          double delta) {
  RdpAccountant accountant;
  accountant.AddSubsampledGaussianSteps(sigma, sampling_rate, steps);
  return accountant.GetEpsilon(delta);
}

double NoiseMultiplierForTargetEpsilon(double target_epsilon, double delta,
                                       double sampling_rate, int64_t steps,
                                       double precision) {
  GEODP_CHECK_GT(target_epsilon, 0.0);
  GEODP_CHECK(delta > 0.0 && delta < 1.0);
  GEODP_CHECK_GT(steps, 0);
  GEODP_CHECK_GT(precision, 0.0);

  double lo = 1e-3;
  double hi = 1.0;
  // Grow the bracket until hi satisfies the budget.
  while (TrainingRunEpsilon(hi, sampling_rate, steps, delta) >
         target_epsilon) {
    hi *= 2.0;
    GEODP_CHECK_LT(hi, 1e9)
        << "target epsilon unreachable at this q/steps/delta";
  }
  // Shrink lo until it violates the budget (so the root is bracketed).
  while (TrainingRunEpsilon(lo, sampling_rate, steps, delta) <=
         target_epsilon) {
    lo /= 2.0;
    if (lo < 1e-9) return lo;  // effectively no noise needed
  }
  while ((hi - lo) / hi > precision) {
    const double mid = 0.5 * (lo + hi);
    if (TrainingRunEpsilon(mid, sampling_rate, steps, delta) >
        target_epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace geodp
