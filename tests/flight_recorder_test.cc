// Tests for the always-on flight recorder: stable kind names, bounded
// detail copies, per-stripe wraparound that keeps the newest events,
// sequence-ordered snapshots, the disabled no-op, 8-thread concurrent
// recording (exercised under TSan in CI), and the /flightz and
// postmortem JSON golden structure.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/flight_recorder.h"

namespace geodp {
namespace {

TEST(FlightRecorderTest, KindNamesAreStable) {
  // scripts/check_postmortem.py and monitor queries key on these strings.
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kStepMilestone), "step");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kStatusError),
               "status_error");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kIoRetry), "io_retry");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kIoGiveup), "io_giveup");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kDegraded), "degraded");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kCheckpointWrite),
               "checkpoint_write");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kCheckpointMiss),
               "checkpoint_miss");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kCheckpointPrune),
               "checkpoint_prune");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kWatchdogCancel),
               "watchdog_cancel");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kResume), "resume");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kNote), "note");
}

TEST(FlightRecorderTest, RecordsInSequenceOrderWithBoundedDetail) {
  FlightRecorder recorder;
  recorder.Record(FlightEventKind::kStepMilestone, 1, "accepted=1");
  recorder.Record(FlightEventKind::kCheckpointWrite, 2, "ckpt path");
  recorder.Record(FlightEventKind::kNote, -1,
                  std::string(200, 'x'));  // over the detail bound

  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].sequence, 1);
  EXPECT_EQ(events[1].sequence, 2);
  EXPECT_EQ(events[2].sequence, 3);
  EXPECT_EQ(events[0].kind, FlightEventKind::kStepMilestone);
  EXPECT_EQ(events[0].step, 1);
  EXPECT_STREQ(events[0].detail.data(), "accepted=1");
  EXPECT_EQ(events[2].step, -1);
  // Truncated at kDetailBytes - 1 with a terminating NUL.
  EXPECT_EQ(std::string(events[2].detail.data()).size(),
            static_cast<size_t>(FlightEvent::kDetailBytes - 1));
  EXPECT_EQ(recorder.total_recorded(), 3);
}

TEST(FlightRecorderTest, DisabledRecorderIsANoOp) {
  FlightRecorder recorder;
  recorder.set_enabled(false);
  recorder.Record(FlightEventKind::kNote, 0, "dropped");
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_recorded(), 0);
  recorder.set_enabled(true);
  recorder.Record(FlightEventKind::kNote, 0, "kept");
  EXPECT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, WraparoundKeepsTheNewestEvents) {
  // A single thread maps to a single stripe, so its ring holds exactly
  // kSlotsPerStripe events; older ones are overwritten in place.
  FlightRecorder recorder;
  const int total = 3 * FlightRecorder::kSlotsPerStripe;
  for (int i = 1; i <= total; ++i) {
    recorder.Record(FlightEventKind::kStepMilestone, i, "m");
  }
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(FlightRecorder::kSlotsPerStripe));
  EXPECT_EQ(events.front().sequence,
            total - FlightRecorder::kSlotsPerStripe + 1);
  EXPECT_EQ(events.back().sequence, total);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, events[i - 1].sequence + 1);
  }
  EXPECT_EQ(recorder.total_recorded(), total);
}

TEST(FlightRecorderTest, ResetDropsEverythingAndRestartsSequences) {
  FlightRecorder recorder;
  recorder.Record(FlightEventKind::kNote, 0, "old");
  recorder.Reset();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.total_recorded(), 0);
  recorder.Record(FlightEventKind::kNote, 0, "new");
  const std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].sequence, 1);
}

// Eight threads hammer Record concurrently; TSan (CI) checks the stripe
// locking, the assertions here pin the accounting: no sequence is lost
// or duplicated, and the merged snapshot stays sequence-sorted.
TEST(FlightRecorderTest, ConcurrentRecordFromEightThreads) {
  FlightRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(FlightEventKind::kNote, t, "concurrent");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(recorder.total_recorded(), kThreads * kPerThread);
  const std::vector<FlightEvent> events = recorder.Snapshot();
  EXPECT_LE(events.size(),
            static_cast<size_t>(FlightRecorder::kStripes *
                                FlightRecorder::kSlotsPerStripe));
  EXPECT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].sequence, events[i].sequence);
  }
}

TEST(FlightRecorderTest, GlobalRecorderIsOnByDefault) {
  EXPECT_TRUE(FlightRecorder::Global().enabled());
}

TEST(FlightzJsonTest, GoldenBytes) {
  FlightRecorder recorder;
  recorder.Record(FlightEventKind::kStepMilestone, 3, "accepted=3");
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  events[0].micros = 42;  // pin the only nondeterministic field
  events[0].tid = 0;
  EXPECT_EQ(FlightzJson(events, true, recorder.total_recorded()),
            "{\"enabled\":true,\"total_recorded\":1,\"events\":["
            "{\"sequence\":1,\"micros\":42,\"kind\":\"step\",\"step\":3,"
            "\"tid\":0,\"detail\":\"accepted=3\"}]}");
  EXPECT_EQ(FlightzJson({}, false, 0),
            "{\"enabled\":false,\"total_recorded\":0,\"events\":[]}");
}

TEST(PostmortemJsonTest, GoldenBytesAndLastMilestone) {
  FlightRecorder recorder;
  recorder.Record(FlightEventKind::kStepMilestone, 1, "accepted=1");
  recorder.Record(FlightEventKind::kStepMilestone, 2, "accepted=2");
  recorder.Record(FlightEventKind::kCheckpointWrite, 2, "ckpt");
  std::vector<FlightEvent> events = recorder.Snapshot();
  for (FlightEvent& event : events) {
    event.micros = 0;
    event.tid = 0;
  }
  PostmortemInfo info;
  info.reason = "checkpoint";
  info.detail = "dir/ckpt_000000002.gdpk";
  info.step = 2;
  info.attempt = 2;
  info.epsilon = 0.5;
  info.degraded = false;
  const std::string json = PostmortemJson(info, events);
  EXPECT_EQ(json,
            "{\"tool\":\"geodp\",\"kind\":\"postmortem\","
            "\"reason\":\"checkpoint\","
            "\"detail\":\"dir/ckpt_000000002.gdpk\",\"step\":2,"
            "\"attempt\":2,\"epsilon\":0.5,\"degraded\":false,"
            "\"last_milestone_step\":2,\"events\":["
            "{\"sequence\":1,\"micros\":0,\"kind\":\"step\",\"step\":1,"
            "\"tid\":0,\"detail\":\"accepted=1\"},"
            "{\"sequence\":2,\"micros\":0,\"kind\":\"step\",\"step\":2,"
            "\"tid\":0,\"detail\":\"accepted=2\"},"
            "{\"sequence\":3,\"micros\":0,\"kind\":\"checkpoint_write\","
            "\"step\":2,\"tid\":0,\"detail\":\"ckpt\"}]}\n");
  // No milestone events -> -1, matching check_postmortem.py's derivation.
  EXPECT_NE(PostmortemJson(info, {}).find("\"last_milestone_step\":-1"),
            std::string::npos);
}

}  // namespace
}  // namespace geodp
