// Multi-layer perceptron factory: a configurable stack of Linear + ReLU
// (optionally GroupNorm-free dense baseline for quick experiments).

#ifndef GEODP_MODELS_MLP_H_
#define GEODP_MODELS_MLP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/rng.h"
#include "nn/sequential.h"

namespace geodp {

/// MLP architecture description.
struct MlpConfig {
  int64_t input_dim = 196;
  std::vector<int64_t> hidden_dims = {64};
  int64_t num_classes = 10;
};

/// Builds Flatten -> [Linear -> ReLU]* -> Linear.
std::unique_ptr<Sequential> MakeMlp(const MlpConfig& config, Rng& rng);

}  // namespace geodp

#endif  // GEODP_MODELS_MLP_H_
