// Quickstart: train a logistic-regression model with GeoDP-SGD on the
// synthetic MNIST-like dataset and report accuracy plus the accounted
// privacy guarantee.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "base/rng.h"
#include "core/privacy_region.h"
#include "data/synthetic_images.h"
#include "models/logistic_regression.h"
#include "optim/trainer.h"

int main() {
  using namespace geodp;

  // 1. Data: a 14x14 gray, 10-class dataset (stand-in for MNIST).
  SyntheticImageOptions data_options;
  data_options.num_examples = 1200;
  data_options.seed = 1;
  InMemoryDataset train = MakeMnistLike(data_options);
  InMemoryDataset test = train.SplitTail(200);

  // 2. Model: Flatten -> Linear(196, 10).
  Rng rng(2);
  auto model = MakeLogisticRegression(196, 10, rng);

  // 3. Private training with the geometric perturbation (Algorithm 1).
  TrainerOptions options;
  options.method = PerturbationMethod::kGeoDp;
  options.beta = 0.01;             // bounding factor: direction sensitivity
  options.batch_size = 128;
  options.iterations = 150;
  options.learning_rate = 2.0;
  options.clip_threshold = 0.1;    // paper default C
  options.noise_multiplier = 1.0;  // sigma
  options.record_loss_every = 25;
  options.seed = 3;

  DpTrainer trainer(model.get(), &train, &test, options);
  const TrainingResult result = trainer.Train();

  std::printf("GeoDP-SGD quickstart\n");
  std::printf("  iterations        : %lld\n",
              static_cast<long long>(options.iterations));
  std::printf("  final train loss  : %.4f\n", result.final_train_loss);
  std::printf("  test accuracy     : %.2f%%\n", result.test_accuracy * 100);
  std::printf("  epsilon (RDP)     : %.3f at delta=1e-5\n", result.epsilon);

  const GeoDpPrivacyReport report =
      AnalyzeGeoDpPrivacy(options.noise_multiplier, options.delta,
                          options.beta);
  std::printf("  direction delta'  : <= %.3f (Lemma 2, beta=%.2f)\n",
              report.delta_prime_upper_bound, options.beta);

  std::printf("\nloss curve:\n");
  for (size_t i = 0; i < result.loss_history.size(); ++i) {
    std::printf("  iter %4lld  loss %.4f\n",
                static_cast<long long>(result.loss_iterations[i]),
                result.loss_history[i]);
  }
  return 0;
}
