#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

#include "base/io/file_io.h"
#include "base/thread_pool.h"
#include "base/timer.h"
#include "obs/phase_profiler.h"

namespace geodp {
namespace {

struct TraceEvent {
  const char* name;
  int64_t ts_us;
  int64_t dur_us;
  int tid;
};

std::atomic<bool> g_enabled{false};

std::mutex g_mu;
std::vector<TraceEvent> g_events;  // guarded by g_mu
std::string g_path;                // guarded by g_mu

void AppendEvent(const char* name, int64_t ts_us, int64_t dur_us) {
  const int tid = CurrentTraceThreadId();
  std::lock_guard<std::mutex> lock(g_mu);
  g_events.push_back({name, ts_us, dur_us, tid});
}

// Thread-pool dispatch instrumentation: one slice per executed part,
// dispatched to every live collector (trace buffer, phase profiler).
void PoolPartHook(int /*part*/, int64_t duration_us) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    AppendEvent("pool.part", Timer::ProcessMicros() - duration_us,
                duration_us);
  }
  if (ProfilingEnabled()) {
    internal::ProfilerRecordLeaf("pool.part", duration_us);
  }
}

void AtExitFlush() { (void)FlushTrace(); }

}  // namespace

int CurrentTraceThreadId() {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void EnableTracing(const std::string& path) {
  static bool atexit_registered = [] {
    std::atexit(AtExitFlush);
    return true;
  }();
  (void)atexit_registered;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_path = path;
    g_events.clear();
  }
  g_enabled.store(true, std::memory_order_relaxed);
  internal::UpdatePoolPartHook();
}

void DisableTracing() {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  (void)FlushTrace();
  g_enabled.store(false, std::memory_order_relaxed);
  internal::UpdatePoolPartHook();
}

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

Status FlushTrace() {
  std::vector<TraceEvent> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_path.empty()) return Status::Ok();
    // Copy rather than drain: every flush rewrites the full trace, so a
    // later flush (including the atexit one) can never truncate events an
    // earlier flush already persisted.
    events = g_events;
    path = g_path;
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n{\"name\":\"" << events[i].name << "\",\"ph\":\"X\",\"ts\":"
        << events[i].ts_us << ",\"dur\":" << events[i].dur_us
        << ",\"pid\":0,\"tid\":" << events[i].tid << "}";
  }
  out << "\n]}\n";
  return AtomicWriteFile(path, out.str(), RetryPolicy{}, "obs.trace");
}

int64_t BufferedTraceEventCount() {
  std::lock_guard<std::mutex> lock(g_mu);
  return static_cast<int64_t>(g_events.size());
}

TraceSpan::TraceSpan(const char* name)
    : name_(name), start_us_(-1), profiled_(ProfilingEnabled()) {
  if (profiled_ || g_enabled.load(std::memory_order_relaxed)) {
    start_us_ = Timer::ProcessMicros();
  }
  if (profiled_) internal::ProfilerEnterSpan(name_);
}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0) return;
  const int64_t duration_us = Timer::ProcessMicros() - start_us_;
  if (g_enabled.load(std::memory_order_relaxed)) {
    AppendEvent(name_, start_us_, duration_us);
  }
  // Exit is unconditional once entered so the profiler's span stack stays
  // balanced even when profiling is toggled mid-span.
  if (profiled_) internal::ProfilerExitSpan(name_, duration_us);
}

namespace internal {

void UpdatePoolPartHook() {
  if (g_enabled.load(std::memory_order_relaxed) || ProfilingEnabled()) {
    SetThreadPoolPartHook(&PoolPartHook);
  } else {
    SetThreadPoolPartHook(nullptr);
  }
}

}  // namespace internal

}  // namespace geodp
