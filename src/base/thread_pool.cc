#include "base/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "base/check.h"
#include "base/timer.h"

namespace geodp {
namespace {

thread_local int tls_region_depth = 0;

std::atomic<ThreadPoolPartHook> g_part_hook{nullptr};

// Runs one part, timing it for the telemetry hook when one is installed.
// A part that throws reports no timing (the exception propagates).
inline void RunHookedPart(const std::function<void(int)>& fn, int part) {
  const ThreadPoolPartHook hook =
      g_part_hook.load(std::memory_order_relaxed);
  if (hook == nullptr) {
    fn(part);
    return;
  }
  const Timer timer;
  fn(part);
  hook(part, timer.ElapsedMicros());
}

/// Marks the current thread as being inside a parallel region for the
/// lifetime of the guard.
struct RegionGuard {
  RegionGuard() { ++tls_region_depth; }
  ~RegionGuard() { --tls_region_depth; }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InParallelRegion() { return tls_region_depth > 0; }

void ThreadPool::RunParts(int num_parts, const std::function<void(int)>& fn) {
  if (num_parts <= 0) return;
  if (num_parts == 1 || num_threads_ <= 1 || InParallelRegion()) {
    RegionGuard guard;
    for (int part = 0; part < num_parts; ++part) RunHookedPart(fn, part);
    return;
  }

  // Shared completion state for the offloaded parts. Tasks hold it by
  // shared_ptr; `fn` is captured by reference and outlives the tasks
  // because RunParts blocks until remaining == 0.
  struct Sync {
    std::mutex m;
    std::condition_variable done;
    int remaining = 0;
    std::exception_ptr eptr;
  };
  auto sync = std::make_shared<Sync>();
  sync->remaining = num_parts - 1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int part = 1; part < num_parts; ++part) {
      tasks_.push_back([&fn, part, sync] {
        {
          RegionGuard guard;
          try {
            RunHookedPart(fn, part);
          } catch (...) {
            std::lock_guard<std::mutex> sync_lock(sync->m);
            if (!sync->eptr) sync->eptr = std::current_exception();
          }
        }
        std::lock_guard<std::mutex> sync_lock(sync->m);
        if (--sync->remaining == 0) sync->done.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  std::exception_ptr caller_eptr;
  {
    RegionGuard guard;
    try {
      RunHookedPart(fn, 0);
    } catch (...) {
      caller_eptr = std::current_exception();
    }
  }
  {
    std::unique_lock<std::mutex> lock(sync->m);
    sync->done.wait(lock, [&sync] { return sync->remaining == 0; });
  }
  if (caller_eptr) std::rethrow_exception(caller_eptr);
  if (sync->eptr) std::rethrow_exception(sync->eptr);
}

void SetThreadPoolPartHook(ThreadPoolPartHook hook) {
  g_part_hook.store(hook, std::memory_order_relaxed);
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("GEODP_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<int>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu

std::shared_ptr<ThreadPool> GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_shared<ThreadPool>(DefaultThreadCount());
  return g_pool;
}

}  // namespace

int GetGlobalThreadCount() { return GlobalPool()->num_threads(); }

void SetGlobalThreadCount(int num_threads) {
  auto pool = std::make_shared<ThreadPool>(
      num_threads <= 0 ? DefaultThreadCount() : num_threads);
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::move(pool);
}

void ParallelForChunks(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t, int64_t)>& fn) {
  GEODP_CHECK_GE(grain, 1);
  if (begin >= end) return;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;
  auto run_chunks = [&](int64_t chunk_begin, int64_t chunk_end) {
    for (int64_t c = chunk_begin; c < chunk_end; ++c) {
      const int64_t lo = begin + c * grain;
      fn(c, lo, std::min(end, lo + grain));
    }
  };

  std::shared_ptr<ThreadPool> pool = GlobalPool();
  const int num_parts = static_cast<int>(
      std::min<int64_t>(pool->num_threads(), num_chunks));
  if (num_parts <= 1 || ThreadPool::InParallelRegion()) {
    run_chunks(0, num_chunks);
    return;
  }
  // Static partition: part p owns a contiguous block of chunks.
  const int64_t per_part = num_chunks / num_parts;
  const int64_t extra = num_chunks % num_parts;
  pool->RunParts(num_parts, [&](int part) {
    const int64_t lo =
        part * per_part + std::min<int64_t>(part, extra);
    const int64_t hi = lo + per_part + (part < extra ? 1 : 0);
    run_chunks(lo, hi);
  });
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&fn](int64_t /*chunk*/, int64_t lo, int64_t hi) {
                      fn(lo, hi);
                    });
}

}  // namespace geodp
