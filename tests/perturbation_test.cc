// Tests for the DP and GeoDP perturbers (paper Eq. 8 and Algorithm 1) and
// the privacy-region math, including the headline geometric properties:
// GeoDP adds unbiased direction noise tunable via beta (Lemma 1), while
// DP's direction error cannot be reduced by clipping (Corollary 2).

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/perturbation.h"
#include "core/privacy_region.h"
#include "core/spherical.h"
#include "stats/summary.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

PerturbationOptions BaseOptions(double c, int64_t b, double sigma) {
  PerturbationOptions options;
  options.clip_threshold = c;
  options.batch_size = b;
  options.noise_multiplier = sigma;
  return options;
}

TEST(DpPerturberTest, ZeroSigmaIsIdentity) {
  const DpPerturber perturber(BaseOptions(0.1, 4, 0.0));
  Rng rng(1);
  const Tensor g = Tensor::Vector({0.5f, -0.25f, 0.1f});
  EXPECT_TRUE(AllClose(perturber.Perturb(g, rng), g));
}

TEST(DpPerturberTest, CoordinateNoiseStddevFormula) {
  const DpPerturber perturber(BaseOptions(0.2, 8, 4.0));
  EXPECT_DOUBLE_EQ(perturber.CoordinateNoiseStddev(), 0.2 * 4.0 / 8.0);
}

TEST(DpPerturberTest, EmpiricalNoiseVarianceMatches) {
  const DpPerturber perturber(BaseOptions(0.5, 2, 2.0));
  const double expected_stddev = perturber.CoordinateNoiseStddev();
  Rng rng(7);
  const Tensor g({64});
  RunningStat stat;
  for (int trial = 0; trial < 500; ++trial) {
    const Tensor noisy = perturber.Perturb(g, rng);
    for (int64_t i = 0; i < noisy.numel(); ++i) stat.Add(noisy[i]);
  }
  EXPECT_NEAR(stat.mean(), 0.0, expected_stddev * 0.05);
  EXPECT_NEAR(stat.stddev(), expected_stddev, expected_stddev * 0.05);
}

TEST(DpPerturberTest, NoiseIsUnbiasedOnGradient) {
  const DpPerturber perturber(BaseOptions(0.1, 4, 1.0));
  Rng rng(11);
  const Tensor g = Tensor::Vector({0.3f, -0.2f, 0.05f, 0.0f});
  Tensor mean({4});
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    mean.AddInPlace(perturber.Perturb(g, rng));
  }
  mean.ScaleInPlace(1.0f / trials);
  EXPECT_LT(MaxAbsDiff(mean, g), 3.0 * perturber.CoordinateNoiseStddev() /
                                     std::sqrt(static_cast<double>(trials)) *
                                     3.0 +
                                     1e-3);
}

TEST(GeoDpPerturberTest, ZeroSigmaRoundTripsExactly) {
  GeoDpOptions options;
  options.base = BaseOptions(0.1, 4, 0.0);
  options.beta = 0.5;
  const GeoDpPerturber perturber(options);
  Rng rng(3);
  const Tensor g = Tensor::Vector({0.5f, -0.25f, 0.1f, 0.9f});
  EXPECT_LT(MaxAbsDiff(perturber.Perturb(g, rng), g), 1e-5);
}

TEST(GeoDpPerturberTest, NoiseStddevFormulas) {
  GeoDpOptions options;
  options.base = BaseOptions(0.1, 10, 2.0);
  options.beta = 0.25;
  const GeoDpPerturber perturber(options);
  EXPECT_DOUBLE_EQ(perturber.MagnitudeNoiseStddev(), 0.1 * 2.0 / 10.0);
  const int64_t d = 14;
  EXPECT_NEAR(perturber.DirectionNoiseStddev(d),
              std::sqrt(static_cast<double>(d) + 2.0) * 0.25 * kPi * 2.0 /
                  10.0,
              1e-12);
}

TEST(GeoDpPerturberTest, DirectionNoiseIsUnbiasedOnAngles) {
  GeoDpOptions options;
  options.base = BaseOptions(0.1, 64, 1.0);
  options.beta = 0.05;
  const GeoDpPerturber perturber(options);
  Rng rng(13);
  Rng data_rng(17);
  const Tensor g = Tensor::Randn({6}, data_rng);
  const SphericalCoordinates original = ToSpherical(g);
  std::vector<double> mean_angles(original.angles.size(), 0.0);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const SphericalCoordinates noisy =
        perturber.PerturbSpherical(original, rng);
    for (size_t z = 0; z < mean_angles.size(); ++z) {
      mean_angles[z] += noisy.angles[z];
    }
  }
  const double tol = 4.0 * perturber.DirectionNoiseStddev(6) /
                     std::sqrt(static_cast<double>(trials));
  for (size_t z = 0; z < mean_angles.size(); ++z) {
    EXPECT_NEAR(mean_angles[z] / trials, original.angles[z], tol);
  }
}

TEST(GeoDpPerturberTest, SmallerBetaGivesSmallerDirectionError) {
  Rng data_rng(19);
  const Tensor g = Tensor::Randn({32}, data_rng);
  const SphericalCoordinates original = ToSpherical(g);

  auto direction_mse = [&](double beta) {
    GeoDpOptions options;
    options.base = BaseOptions(0.1, 16, 1.0);
    options.beta = beta;
    const GeoDpPerturber perturber(options);
    Rng rng(23);
    double sum = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      const SphericalCoordinates noisy =
          perturber.PerturbSpherical(original, rng);
      sum += AngleSquaredDistance(original.angles, noisy.angles);
    }
    return sum / trials;
  };

  const double mse_small = direction_mse(0.01);
  const double mse_large = direction_mse(1.0);
  EXPECT_LT(mse_small, mse_large);
  // Variance scales with beta^2: expect roughly four orders of magnitude.
  EXPECT_LT(mse_small * 100.0, mse_large);
}

TEST(GeoDpPerturberTest, Lemma1GeoDpBeatsDpOnDirectionForSomeBeta) {
  // For a fixed gradient and noise level, GeoDP with a small enough beta
  // must achieve lower direction MSE than traditional DP (Lemma 1).
  Rng data_rng(29);
  const Tensor g = Scale(Tensor::Randn({24}, data_rng), 0.05f);
  const SphericalCoordinates original = ToSpherical(g);
  const int trials = 300;

  const DpPerturber dp(BaseOptions(0.1, 8, 1.0));
  Rng dp_rng(31);
  double dp_mse = 0.0;
  for (int t = 0; t < trials; ++t) {
    const SphericalCoordinates noisy = ToSpherical(dp.Perturb(g, dp_rng));
    dp_mse += AngleSquaredDistance(original.angles, noisy.angles);
  }
  dp_mse /= trials;

  GeoDpOptions options;
  options.base = BaseOptions(0.1, 8, 1.0);
  options.beta = 0.001;
  const GeoDpPerturber geo(options);
  Rng geo_rng(37);
  double geo_mse = 0.0;
  for (int t = 0; t < trials; ++t) {
    const SphericalCoordinates noisy = ToSpherical(geo.Perturb(g, geo_rng));
    geo_mse += AngleSquaredDistance(original.angles, noisy.angles);
  }
  geo_mse /= trials;

  EXPECT_LT(geo_mse, dp_mse);
}

TEST(GeoDpPerturberTest, Corollary2ClippingDoesNotChangeDpDirectionError) {
  // Scaling the clipped gradient and the noise by the same factor leaves
  // the perturbed direction unchanged (paper Example 1 / Corollary 2).
  Rng data_rng(41);
  const Tensor g = Tensor::Randn({16}, data_rng);

  const double sigma = 1.0;
  Rng rng_a(43), rng_b(43);  // identical noise streams
  const DpPerturber dp_c1(BaseOptions(1.0, 4, sigma));
  const DpPerturber dp_c2(BaseOptions(0.5, 4, sigma));
  // Clip to the two thresholds (g has norm >= both with high probability).
  const double norm = g.L2Norm();
  const Tensor g1 = Scale(g, static_cast<float>(1.0 / std::max(1.0, norm / 1.0)));
  const Tensor g2 = Scale(g, static_cast<float>(1.0 / std::max(1.0, norm / 0.5)));
  const SphericalCoordinates dir1 = ToSpherical(dp_c1.Perturb(g1, rng_a));
  const SphericalCoordinates dir2 = ToSpherical(dp_c2.Perturb(g2, rng_b));
  for (size_t z = 0; z < dir1.angles.size(); ++z) {
    EXPECT_NEAR(dir1.angles[z], dir2.angles[z], 1e-4);
  }
}

TEST(GeoDpPerturberTest, ClampMagnitudeOption) {
  GeoDpOptions options;
  options.base = BaseOptions(0.1, 1, 50.0);  // huge noise
  options.beta = 0.5;
  options.clamp_magnitude = true;
  const GeoDpPerturber perturber(options);
  Rng rng(47);
  SphericalCoordinates c;
  c.magnitude = 0.01;
  c.angles = {0.5, 0.5, 0.5};
  for (int t = 0; t < 100; ++t) {
    EXPECT_GE(perturber.PerturbSpherical(c, rng).magnitude, 0.0);
  }
}

TEST(GeoDpPerturberTest, WrapHandlingKeepsAnglesInRange) {
  GeoDpOptions options;
  options.base = BaseOptions(0.1, 1, 20.0);
  options.beta = 1.0;
  options.angle_handling = AngleHandling::kWrap;
  const GeoDpPerturber perturber(options);
  Rng rng(53);
  SphericalCoordinates c;
  c.magnitude = 1.0;
  c.angles = {1.0, 1.0, 1.0, 0.2};
  for (int t = 0; t < 50; ++t) {
    const SphericalCoordinates noisy = perturber.PerturbSpherical(c, rng);
    for (size_t z = 0; z + 1 < noisy.angles.size(); ++z) {
      EXPECT_GE(noisy.angles[z], 0.0);
      EXPECT_LE(noisy.angles[z], kPi);
    }
    EXPECT_GE(noisy.angles.back(), -kPi);
    EXPECT_LE(noisy.angles.back(), kPi);
  }
}

TEST(GeoDpPerturberTest, PerturbedMagnitudeMatchesSphericalPath) {
  // Perturb() must agree with PerturbSpherical() + ToCartesian() given the
  // same noise stream.
  GeoDpOptions options;
  options.base = BaseOptions(0.1, 4, 1.0);
  options.beta = 0.2;
  const GeoDpPerturber perturber(options);
  Rng rng_a(59), rng_b(59);
  Rng data_rng(61);
  const Tensor g = Tensor::Randn({12}, data_rng);
  const Tensor direct = perturber.Perturb(g, rng_a);
  const Tensor via_spherical =
      ToCartesian(perturber.PerturbSpherical(ToSpherical(g), rng_b));
  EXPECT_LT(MaxAbsDiff(direct, via_spherical), 1e-6);
}

TEST(PrivacyRegionTest, SensitivityFormula) {
  const DirectionSensitivity s = ComputeDirectionSensitivity(100, 0.1);
  EXPECT_DOUBLE_EQ(s.per_angle, 0.1 * kPi);
  EXPECT_DOUBLE_EQ(s.last_angle, 0.2 * kPi);
  EXPECT_NEAR(s.total_l2, std::sqrt(102.0) * 0.1 * kPi, 1e-12);
}

TEST(PrivacyRegionTest, SensitivityDecomposition) {
  // total^2 == (d-2) per_angle^2 + last_angle^2.
  for (int64_t d : {2, 3, 10, 1000}) {
    const DirectionSensitivity s = ComputeDirectionSensitivity(d, 0.3);
    const double composed = std::sqrt(
        static_cast<double>(d - 2) * s.per_angle * s.per_angle +
        s.last_angle * s.last_angle);
    EXPECT_NEAR(s.total_l2, composed, 1e-9) << "d=" << d;
  }
}

TEST(PrivacyRegionTest, GeoDpPrivacyReport) {
  const GeoDpPrivacyReport report = AnalyzeGeoDpPrivacy(2.0, 1e-5, 0.25);
  EXPECT_GT(report.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(report.delta, 1e-5);
  EXPECT_DOUBLE_EQ(report.delta_prime_upper_bound, 0.75);
  EXPECT_DOUBLE_EQ(report.total_delta_upper_bound, 1e-5 + 0.75);
}

TEST(PrivacyRegionTest, BetaOneHasNoExtraDelta) {
  const GeoDpPrivacyReport report = AnalyzeGeoDpPrivacy(1.0, 1e-5, 1.0);
  EXPECT_DOUBLE_EQ(report.delta_prime_upper_bound, 0.0);
}

TEST(GeoLaplacePerturberTest, NoiseScaleFormulas) {
  GeoLaplaceOptions options;
  options.clip_threshold = 0.2;
  options.batch_size = 10;
  options.magnitude_epsilon = 0.5;
  options.direction_epsilon = 2.0;
  options.beta = 0.1;
  const GeoLaplacePerturber perturber(options);
  EXPECT_DOUBLE_EQ(perturber.MagnitudeNoiseScale(), 0.2 / (0.5 * 10.0));
  EXPECT_NEAR(perturber.DirectionNoiseScale(16),
              16.0 * 0.1 * kPi / (2.0 * 10.0), 1e-12);
  EXPECT_DOUBLE_EQ(perturber.TotalEpsilon(), 2.5);
}

TEST(GeoLaplacePerturberTest, UnbiasedOnAngles) {
  GeoLaplaceOptions options;
  options.clip_threshold = 0.1;
  options.batch_size = 64;
  options.magnitude_epsilon = 2.0;
  options.direction_epsilon = 2.0;
  options.beta = 0.01;
  const GeoLaplacePerturber perturber(options);
  Rng data_rng(71);
  const Tensor g = Tensor::Randn({8}, data_rng);
  const SphericalCoordinates original = ToSpherical(g);
  Rng rng(72);
  std::vector<double> mean_angles(original.angles.size(), 0.0);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const SphericalCoordinates noisy = ToSpherical(perturber.Perturb(g, rng));
    for (size_t z = 0; z < mean_angles.size(); ++z) {
      mean_angles[z] += noisy.angles[z];
    }
  }
  for (size_t z = 0; z < mean_angles.size(); ++z) {
    EXPECT_NEAR(mean_angles[z] / trials, original.angles[z], 0.02);
  }
}

TEST(GeoLaplacePerturberTest, HigherEpsilonLessNoise) {
  Rng data_rng(73);
  const Tensor g = Scale(Tensor::Randn({16}, data_rng), 0.05f);
  const SphericalCoordinates original = ToSpherical(g);
  auto direction_mse = [&](double eps) {
    GeoLaplaceOptions options;
    options.clip_threshold = 0.1;
    options.batch_size = 16;
    options.magnitude_epsilon = eps;
    options.direction_epsilon = eps;
    options.beta = 0.05;
    const GeoLaplacePerturber perturber(options);
    Rng rng(74);
    double sum = 0.0;
    for (int t = 0; t < 200; ++t) {
      const SphericalCoordinates noisy =
          ToSpherical(perturber.Perturb(g, rng));
      sum += AngleSquaredDistance(original.angles, noisy.angles);
    }
    return sum / 200.0;
  };
  EXPECT_LT(direction_mse(10.0), direction_mse(0.5));
}

TEST(PerturberFactoryTest, MakersReturnCorrectTypes) {
  auto dp = MakeDpPerturber(BaseOptions(0.1, 2, 1.0));
  EXPECT_EQ(dp->name(), "DP");
  GeoDpOptions geo_options;
  geo_options.base = BaseOptions(0.1, 2, 1.0);
  auto geo = MakeGeoDpPerturber(geo_options);
  EXPECT_EQ(geo->name(), "GeoDP");
}

}  // namespace
}  // namespace geodp
