// Fixture: seeded ANN violation — misspelled geodp annotation tag.

namespace geodp {

inline int Answer() {
  return 42;  // geodp: sensitvity-checked
}

}  // namespace geodp
