#include "base/fault_injection.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace geodp {
namespace {

// Parses one "<site>@<trigger>:<action>" element; returns a descriptive
// error without touching the injector.
Status ParseOneSpec(const std::string& spec, std::string* site,
                    int64_t* target_hit, double* probability,
                    FaultInjector::Action* action, int64_t* stall_ms) {
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument(
        "fail-point spec must be <site>@<hit|p=prob>:<action>, got: " + spec);
  }
  const size_t colon = spec.find(':', at + 1);
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "fail-point spec is missing its ':<action>' part: " + spec);
  }
  *site = spec.substr(0, at);
  if (site->empty()) {
    return Status::InvalidArgument("fail-point site is empty: " + spec);
  }
  const std::string trigger = spec.substr(at + 1, colon - at - 1);
  *target_hit = 0;
  *probability = 0.0;
  if (trigger.rfind("p=", 0) == 0) {
    char* end = nullptr;
    const std::string prob_text = trigger.substr(2);
    const double p = std::strtod(prob_text.c_str(), &end);
    if (end == prob_text.c_str() || *end != '\0' || !(p > 0.0) || p > 1.0) {
      return Status::InvalidArgument(
          "fail-point probability must be in (0, 1]: " + spec);
    }
    *probability = p;
  } else {
    char* end = nullptr;
    const long long hit = std::strtoll(trigger.c_str(), &end, 10);
    if (end == trigger.c_str() || *end != '\0' || hit <= 0) {
      return Status::InvalidArgument(
          "fail-point hit must be a positive integer or p=<prob>: " + spec);
    }
    *target_hit = hit;
  }
  const std::string action_text = spec.substr(colon + 1);
  *stall_ms = 0;
  if (action_text == "crash") {
    *action = FaultInjector::Action::kCrash;
  } else if (action_text == "short_write") {
    *action = FaultInjector::Action::kShortWrite;
  } else if (action_text == "bit_flip") {
    *action = FaultInjector::Action::kBitFlip;
  } else if (action_text == "eio") {
    *action = FaultInjector::Action::kEio;
  } else if (action_text == "eintr") {
    *action = FaultInjector::Action::kEintr;
  } else if (action_text == "enospc") {
    *action = FaultInjector::Action::kEnospc;
  } else if (action_text == "torn_rename") {
    *action = FaultInjector::Action::kTornRename;
  } else if (action_text.rfind("stall:", 0) == 0) {
    char* end = nullptr;
    const std::string ms_text = action_text.substr(6);
    const long long ms = std::strtoll(ms_text.c_str(), &end, 10);
    if (end == ms_text.c_str() || *end != '\0' || ms <= 0) {
      return Status::InvalidArgument(
          "stall duration must be a positive millisecond count: " + spec);
    }
    *action = FaultInjector::Action::kStall;
    *stall_ms = ms;
  } else {
    return Status::InvalidArgument(
        "unknown fail-point action (want crash|short_write|bit_flip|eio|"
        "eintr|enospc|torn_rename|stall:<ms>): " + action_text);
  }
  return Status::Ok();
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, int64_t hit, Action action) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  if (action != Action::kNone) {
    ArmedSite armed;
    armed.site = site;
    armed.target_hit = hit;
    armed.action = action;
    sites_.push_back(std::move(armed));
  }
  armed_sites_.store(static_cast<int64_t>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::AddSite(const std::string& site, int64_t hit,
                            double probability, Action action,
                            int64_t stall_ms) {
  if (action == Action::kNone) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ArmedSite armed;
  armed.site = site;
  armed.target_hit = hit;
  armed.probability = probability;
  armed.action = action;
  armed.stall_ms = stall_ms;
  sites_.push_back(std::move(armed));
  armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

void FaultInjector::SeedRng(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_ = Rng(seed);
  for (ArmedSite& armed : sites_) {
    armed.hits = 0;
    armed.spent = false;
  }
  // Every entry is live again (spent decrements happened in Fire).
  armed_sites_.store(static_cast<int64_t>(sites_.size()),
                     std::memory_order_relaxed);
}

FaultInjector::Action FaultInjector::Fire(const std::string& site) {
  if (!armed()) return Action::kNone;
  Action fired = Action::kNone;
  int64_t stall_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (ArmedSite& armed : sites_) {
      if (armed.site != site) continue;
      ++armed.hits;
      if (armed.spent || fired != Action::kNone) continue;
      const bool triggered =
          armed.target_hit > 0
              ? armed.hits == armed.target_hit
              : rng_.Uniform() < armed.probability;
      if (!triggered) continue;
      fired = armed.action;
      stall_ms = armed.stall_ms;
      // Hit-based non-crash entries are one-shot so the run continues
      // past them (and a retry of the failed operation can succeed);
      // probabilistic entries keep firing.
      if (armed.target_hit > 0 && fired != Action::kCrash) {
        // A spent one-shot is inert; once every entry is, armed() goes
        // false again and Fire is back to its single-atomic fast path.
        armed.spent = true;
        armed_sites_.fetch_sub(1, std::memory_order_relaxed);
      }
      if (fired == Action::kCrash) {
        // Simulated preemption: no destructors, no buffers flushed beyond
        // what the checkpoint protocol already fsynced — like kill -9.
        std::fprintf(stderr, "fault_injection: crash at %s (hit %lld)\n",
                     site.c_str(), static_cast<long long>(armed.hits));
        // geodp: check-ok simulated preemption is this class's contract
        std::_Exit(kCrashExitCode);
      }
    }
  }
  if (fired == Action::kStall && stall_ms > 0) {
    // Sleep outside the lock so other threads' Fire calls stay cheap
    // while this one simulates wedged I/O.
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  return fired;
}

int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  bool any = false;
  for (const ArmedSite& armed : sites_) {
    if (armed.site != site) continue;
    total += armed.hits;
    any = true;
  }
  return any ? total : 0;
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  Global().Disarm();
  if (spec.empty()) return Status::Ok();
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string element = spec.substr(begin, end - begin);
    if (element.empty()) {
      Global().Disarm();
      return Status::InvalidArgument(
          "fail-point spec has an empty element: " + spec);
    }
    std::string site;
    int64_t hit = 0;
    double probability = 0.0;
    Action action = Action::kNone;
    int64_t stall_ms = 0;
    const Status parsed =
        ParseOneSpec(element, &site, &hit, &probability, &action, &stall_ms);
    if (!parsed.ok()) {
      Global().Disarm();
      return parsed;
    }
    Global().AddSite(site, hit, probability, action, stall_ms);
    if (end == spec.size()) break;
    begin = end + 1;
  }
  return Status::Ok();
}

int FaultInjector::SimulatedErrno(Action action) {
  switch (action) {
    case Action::kEio:
      return EIO;
    case Action::kEintr:
      return EINTR;
    case Action::kEnospc:
      return ENOSPC;
    default:
      return 0;
  }
}

}  // namespace geodp
