// Procedural stand-ins for MNIST and CIFAR-10 (see DESIGN.md substitutions).
//
// Each class is defined by a deterministic low-frequency prototype pattern
// plus a class-dependent blob; examples perturb the prototype with random
// spatial shift, amplitude jitter and pixel noise, and a small fraction of
// labels is flipped. The result is a classification task that is learnable
// by logistic regression yet benefits from convolutional models — enough
// structure to reproduce the paper's optimizer comparisons.

#ifndef GEODP_DATA_SYNTHETIC_IMAGES_H_
#define GEODP_DATA_SYNTHETIC_IMAGES_H_

#include <cstdint>

#include "data/dataset.h"

namespace geodp {

/// Generation parameters shared by both datasets.
struct SyntheticImageOptions {
  int64_t num_examples = 1000;
  int64_t num_classes = 10;
  int64_t channels = 1;
  int64_t height = 14;
  int64_t width = 14;
  double pixel_noise = 0.25;   // stddev of additive Gaussian pixel noise
  double label_noise = 0.02;   // fraction of labels flipped uniformly
  int64_t max_shift = 2;       // uniform spatial shift in [-max_shift, max_shift]
  uint64_t seed = 1;
};

/// Gray 14x14 MNIST-like dataset (defaults above).
InMemoryDataset MakeMnistLike(const SyntheticImageOptions& options);

/// Color 16x16 CIFAR-like dataset (channels=3, height=width=16 defaults
/// applied on top of `options`).
InMemoryDataset MakeCifarLike(SyntheticImageOptions options);

/// Fully generic generator; MakeMnistLike / MakeCifarLike delegate here.
InMemoryDataset MakeSyntheticImages(const SyntheticImageOptions& options);

}  // namespace geodp

#endif  // GEODP_DATA_SYNTHETIC_IMAGES_H_
