// Figure 4: effectiveness of the bounding factor. Sweeps beta in
// {0.1..1.0} at three dimensionalities and reports where GeoDP starts to
// beat DP on both direction and gradient MSE.
// Expected shape: for each dimension there is a beta threshold below which
// GeoDP wins on both metrics (paper: beta=0.2 at d=20000, beta=0.4 at
// d=10000); the threshold moves right as d shrinks.

#include <cstdint>

#include "common/bench_util.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Figure 4 (effectiveness of the bounding factor beta)",
      "sigma=8, B=4096, d in {5000, 10000, 20000}, beta in {0.1..1.0}",
      "sigma=8, B=512, d in {512, 1024, 2048}, beta in {0.025..1}, C=0.1, "
      "16 trials");

  const int64_t kBatch = 512;
  const double kClip = 0.1;
  const double kSigma = 8.0;
  const int kTrials = 16;

  TablePrinter table({"d", "beta", "GeoDP theta MSE", "DP theta MSE",
                      "GeoDP g MSE", "DP g MSE", "GeoDP wins both"});
  for (int64_t dim : {512, 1024, 2048}) {
    const GradientDataset data = HarvestedGradients(dim, /*count=*/384);
    const auto dp = MakeDp(kClip, kBatch, kSigma);
    const MseResult dp_mse =
        MeasurePerturbationMse(data, *dp, kBatch, kClip, kTrials, 31);
    for (double beta : {0.025, 0.05, 0.1, 0.2, 0.4, 1.0}) {
      const auto geo = MakeGeo(kClip, kBatch, kSigma, beta);
      const MseResult geo_mse =
          MeasurePerturbationMse(data, *geo, kBatch, kClip, kTrials, 31);
      const bool wins = geo_mse.direction_mse < dp_mse.direction_mse &&
                        geo_mse.gradient_mse < dp_mse.gradient_mse;
      table.AddRow({std::to_string(dim), TablePrinter::Fmt(beta, 3),
                    TablePrinter::FmtSci(geo_mse.direction_mse),
                    TablePrinter::FmtSci(dp_mse.direction_mse),
                    TablePrinter::FmtSci(geo_mse.gradient_mse),
                    TablePrinter::FmtSci(dp_mse.gradient_mse),
                    wins ? "yes" : "no"});
    }
  }
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
