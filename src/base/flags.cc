#include "base/flags.h"

#include <cstdlib>
#include <sstream>

#include "base/check.h"
#include "base/simd/dispatch.h"
#include "base/thread_pool.h"

namespace geodp {

void FlagParser::AddString(const std::string& name, std::string default_value,
                           std::string help) {
  Flag flag;
  flag.type = Type::kString;
  flag.string_value = std::move(default_value);
  flag.help = std::move(help);
  GEODP_CHECK(flags_.emplace(name, std::move(flag)).second)
      << "duplicate flag " << name;
}

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        std::string help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.int_value = default_value;
  flag.help = std::move(help);
  GEODP_CHECK(flags_.emplace(name, std::move(flag)).second)
      << "duplicate flag " << name;
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           std::string help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.double_value = default_value;
  flag.help = std::move(help);
  GEODP_CHECK(flags_.emplace(name, std::move(flag)).second)
      << "duplicate flag " << name;
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.bool_value = default_value;
  flag.help = std::move(help);
  GEODP_CHECK(flags_.emplace(name, std::move(flag)).second)
      << "duplicate flag " << name;
}

Status FlagParser::SetValue(Flag& flag, const std::string& name,
                            const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      flag.string_value = value;
      return Status::Ok();
    case Type::kInt: {
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad integer for --" + name + ": " +
                                       value);
      }
      flag.int_value = parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double for --" + name + ": " +
                                       value);
      }
      flag.double_value = parsed;
      return Status::Ok();
    }
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag.bool_value = true;
      } else if (value == "false" || value == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " +
                                       value);
      }
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;  // bare --flag sets a boolean
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for --" + name);
      }
      value = argv[++i];
    }
    const Status status = SetValue(flag, name, value);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::GetFlag(const std::string& name,
                                            Type type) const {
  auto it = flags_.find(name);
  GEODP_CHECK(it != flags_.end()) << "undeclared flag " << name;
  GEODP_CHECK(it->second.type == type) << "flag type mismatch for " << name;
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetFlag(name, Type::kString).string_value;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return GetFlag(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetFlag(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlag(name, Type::kBool).bool_value;
}

std::string FlagParser::HelpText() const {
  std::ostringstream out;
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag.type) {
      case Type::kString:
        out << " (string, default \"" << flag.string_value << "\")";
        break;
      case Type::kInt:
        out << " (int, default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        out << " (double, default " << flag.double_value << ")";
        break;
      case Type::kBool:
        out << " (bool, default " << (flag.bool_value ? "true" : "false")
            << ")";
        break;
    }
    out << "\n      " << flag.help << "\n";
  }
  return out.str();
}

void AddCommonFlags(FlagParser& parser) {
  parser.AddInt("geodp_num_threads", 0,
                "worker threads for parallel execution (0 = auto-detect "
                "from GEODP_NUM_THREADS / hardware concurrency, 1 = serial)");
  parser.AddString("geodp_metrics_out", "",
                   "write one JSONL record of per-step training telemetry "
                   "to this path (empty = disabled)");
  parser.AddString("geodp_trace_out", "",
                   "write a chrome://tracing-compatible JSON trace of the "
                   "step phases to this path (empty = disabled)");
  parser.AddString("geodp_profile_out", "",
                   "enable the per-phase wall-time profiler and write its "
                   "folded-stack export (flamegraph.pl/speedscope) to this "
                   "path (empty = disabled)");
  parser.AddBool("geodp_flight_recorder", true,
                 "keep the always-on flight recorder recording (/flightz, "
                 "crash postmortems); false disables it");
  parser.AddInt("geodp_http_port", 0,
                "serve live introspection (/metrics /healthz /readyz "
                "/statusz /varz /profilez /flightz) on this 127.0.0.1 port "
                "(0 = disabled)");
  parser.AddInt("geodp_http_linger_ms", 0,
                "keep the introspection server up this many milliseconds "
                "after training finishes (scrape-after-run window)");
  parser.AddDouble("geodp_epsilon_budget", 0.0,
                   "target epsilon budget reported by /statusz; /healthz "
                   "flips to 503 once epsilon-so-far exceeds it (0 = "
                   "unbounded)");
  parser.AddInt("geodp_stall_timeout_ms", 0,
                "stall watchdog: cancel training cooperatively (flushing a "
                "final checkpoint) once no step completes for this many "
                "milliseconds; /readyz also reports 503 past it (0 = "
                "disabled)");
  parser.AddInt("geodp_epsilon_warn_steps", 0,
                "/healthz answers 200 \"warn\" once the projected "
                "steps-to-budget-exhaustion (dp.eps_steps_to_exhaustion) "
                "drops to this horizon or below (0 = disabled)");
  parser.AddString("geodp_simd", "auto",
                   "SIMD kernel tier: scalar, avx2 or auto (cpuid "
                   "detection; also settable via GEODP_SIMD)");
}

void ApplyCommonFlags(const FlagParser& parser) {
  const int64_t num_threads = parser.GetInt("geodp_num_threads");
  if (num_threads > 0) SetGlobalThreadCount(static_cast<int>(num_threads));
  const Status simd_status =
      SetSimdTierFromString(parser.GetString("geodp_simd"));
  GEODP_CHECK(simd_status.ok()) << "--geodp_simd: " << simd_status.message();
}

}  // namespace geodp
