// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for integrity
// checking of serialized artifacts. Checkpoints and tensor files append a
// CRC of their payload so torn writes and bit rot are detected at load
// time instead of silently corrupting training state.

#ifndef GEODP_BASE_CRC32_H_
#define GEODP_BASE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace geodp {

/// CRC-32 of `size` bytes starting at `data`. Equivalent to zlib's
/// crc32(0, data, size).
uint32_t Crc32(const void* data, std::size_t size);

/// Incremental form: feeds another block into a running CRC. Start from
/// `Crc32Init()` and finish with `Crc32Finish()`.
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, const void* data, std::size_t size);
uint32_t Crc32Finish(uint32_t state);

}  // namespace geodp

#endif  // GEODP_BASE_CRC32_H_
