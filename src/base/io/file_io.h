// Status-returning file I/O substrate. Every filesystem boundary in the
// library goes through these helpers (lint rule R5 bans raw
// fopen/std::ofstream/::open elsewhere in src/): they classify errnos,
// retry transient failures under a deterministic RetryPolicy
// (base/io/retry.h), and honor FaultInjector fail points so the chaos
// harness can exercise every error path.
//
// Each helper takes an optional fail-point site name; when armed with an
// errno-emulating action (eio/eintr/enospc) the operation behaves
// exactly as if the syscall failed with that errno — transient ones are
// retried, permanent ones surface as typed Status codes.

#ifndef GEODP_BASE_IO_FILE_IO_H_
#define GEODP_BASE_IO_FILE_IO_H_

#include <string>
#include <string_view>

#include "base/io/retry.h"
#include "base/status.h"

namespace geodp {

/// Reads the whole file at `path` into a string, retrying transient
/// failures per `policy`. `fault_site` (when non-empty) is fired once
/// per attempt.
StatusOr<std::string> ReadFileWithRetry(const std::string& path,
                                        const RetryPolicy& policy = {},
                                        const std::string& fault_site = "");

/// Writes `bytes` to `path` via the atomic protocol (temp file in the
/// same directory, fsync, rename into place, directory fsync), creating
/// parent directories as needed. Each attempt is all-or-nothing:
/// transient failures are retried from scratch per `policy`, and a
/// failed attempt leaves no temp file behind. `fault_site` is fired once
/// per attempt and additionally understands short_write / bit_flip
/// (corrupt the bytes, then succeed — simulated silent corruption) and
/// torn_rename (rename a truncated temp file into place).
/// `pre_rename_site` (when non-empty) fires after the temp file is
/// durable but before the rename — the "crash leaves only the temp
/// file" window the checkpoint crash tests arm.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const RetryPolicy& policy = {},
                       const std::string& fault_site = "",
                       const std::string& pre_rename_site = "");

/// Append-oriented writer with per-append retry: open once (truncating),
/// then every Append writes its bytes completely or reports why not.
/// The first failure of any phase sticks in status(); appends after a
/// sticky failure are counted and dropped, never silently lost, which is
/// what the trainer's degraded mode is built on. Writes are unbuffered
/// (one write(2) per Append), so a crash loses at most the append in
/// flight — the property the telemetry JSONL crash tests rely on.
class RetryingWriter {
 public:
  /// Does not open; call Open(). `fault_site` fires once per physical
  /// write/open attempt.
  explicit RetryingWriter(std::string path, RetryPolicy policy = {},
                          std::string fault_site = "");
  ~RetryingWriter();

  RetryingWriter(const RetryingWriter&) = delete;
  RetryingWriter& operator=(const RetryingWriter&) = delete;

  /// Creates/truncates the file, retrying transient failures.
  Status Open();

  /// Writes all of `bytes`, retrying transient partial/failed writes per
  /// the policy. On give-up the error sticks and the append is counted
  /// as dropped.
  Status Append(std::string_view bytes);

  /// Closes the fd, folding close-time errors into status(). Idempotent;
  /// returns the sticky status.
  const Status& Close();

  bool open() const { return fd_ >= 0; }
  /// First error any phase hit (Ok while everything succeeded).
  const Status& status() const { return status_; }
  const std::string& path() const { return path_; }
  /// Appends lost to an unopened file or exhausted retries.
  int64_t dropped_appends() const { return dropped_appends_; }

 private:
  std::string path_;
  RetryPolicy policy_;
  std::string fault_site_;
  int fd_ = -1;
  Status status_;
  int64_t dropped_appends_ = 0;
};

}  // namespace geodp

#endif  // GEODP_BASE_IO_FILE_IO_H_
