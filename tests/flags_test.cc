// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include "base/flags.h"

namespace geodp {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddInt("count", 7, "an int");
  flags.AddDouble("rate", 0.5, "a double");
  flags.AddBool("verbose", false, "a bool");
  return flags;
}

TEST(FlagParserTest, DefaultsApplyWithoutArguments) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--name=abc", "--count=42", "--rate=1.25",
                        "--verbose=true"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.25);
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count", "13", "--name", "xyz"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetInt("count"), 13);
  EXPECT_EQ(flags.GetString("name"), "xyz");
}

TEST(FlagParserTest, BareBooleanSetsTrue) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "cmd", "--count=1", "extra"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional_arguments().size(), 2u);
  EXPECT_EQ(flags.positional_arguments()[0], "cmd");
  EXPECT_EQ(flags.positional_arguments()[1], "extra");
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--bogus=1"};
  const Status status = flags.Parse(2, argv);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, MalformedValuesFail) {
  {
    FlagParser flags = MakeParser();
    const char* argv[] = {"prog", "--count=abc"};
    EXPECT_FALSE(flags.Parse(2, argv).ok());
  }
  {
    FlagParser flags = MakeParser();
    const char* argv[] = {"prog", "--rate=zz"};
    EXPECT_FALSE(flags.Parse(2, argv).ok());
  }
  {
    FlagParser flags = MakeParser();
    const char* argv[] = {"prog", "--verbose=maybe"};
    EXPECT_FALSE(flags.Parse(2, argv).ok());
  }
}

TEST(FlagParserTest, MissingTrailingValueFails) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, HelpTextListsFlags) {
  FlagParser flags = MakeParser();
  const std::string help = flags.HelpText();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("a double"), std::string::npos);
}

}  // namespace
}  // namespace geodp
