// Fixture: raw fopen excused by an explicit raw-io-ok annotation.
#include <cstdio>

namespace geodp {

bool Exists(const char* path) {
  // geodp: raw-io-ok existence probe only, no data read or written
  std::FILE* file = std::fopen(path, "rb");
  if (file != nullptr) std::fclose(file);
  return file != nullptr;
}

}  // namespace geodp
