#include "core/spherical.h"

#include <cmath>
#include <vector>

#include "base/check.h"
#include "base/simd/kernels.h"
#include "base/thread_pool.h"

namespace geodp {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

SphericalCoordinates ToSpherical(const Tensor& g) {
  GEODP_CHECK_EQ(g.ndim(), 1);
  const int64_t d = g.dim(0);
  GEODP_CHECK_GE(d, 2) << "spherical coordinates need dimension >= 2";

  SphericalCoordinates coords;
  coords.angles.assign(static_cast<size_t>(d - 1), 0.0);

  // Suffix norms: tail[z] = sqrt(g_{z+1}^2 + ... + g_{d-1}^2) in 0-based
  // indexing. The suffix sums of squares accumulate back-to-front (for
  // stability and the historical rounding order); the square roots and the
  // atan2 over (tail[z], g[z]) pairs run through the batched kernels.
  std::vector<double> tail(static_cast<size_t>(d), 0.0);
  double sum_sq = 0.0;
  for (int64_t z = d - 1; z >= 0; --z) {
    tail[static_cast<size_t>(z)] = sum_sq;
    sum_sq += static_cast<double>(g[z]) * static_cast<double>(g[z]);
  }
  simd::SqrtArray(tail.data(), tail.data(), d);
  coords.magnitude = std::sqrt(sum_sq);
  if (coords.magnitude == 0.0) return coords;  // all angles stay 0

  std::vector<double> head(static_cast<size_t>(d - 2));
  for (int64_t z = 0; z < d - 2; ++z) {
    head[static_cast<size_t>(z)] = static_cast<double>(g[z]);
  }
  simd::Atan2(tail.data(), head.data(), coords.angles.data(), d - 2);
  coords.angles[static_cast<size_t>(d - 2)] =
      std::atan2(static_cast<double>(g[d - 1]), static_cast<double>(g[d - 2]));
  return coords;
}

Tensor ToCartesian(const SphericalCoordinates& coords) {
  const int64_t d = coords.CartesianDim();
  GEODP_CHECK_GE(d, 2);
  Tensor g({d});
  // Batched sin/cos of every angle, then the (inherently serial) prefix
  // product of sines in the historical multiplication order.
  std::vector<double> sins(static_cast<size_t>(d - 1));
  std::vector<double> coss(static_cast<size_t>(d - 1));
  simd::SinCos(coords.angles.data(), sins.data(), coss.data(), d - 1);
  double sin_product = 1.0;  // sin(theta_1) * ... * sin(theta_{z-1})
  for (int64_t z = 0; z < d - 1; ++z) {
    g[z] = static_cast<float>(coords.magnitude * sin_product *
                              coss[static_cast<size_t>(z)]);
    sin_product *= sins[static_cast<size_t>(z)];
  }
  g[d - 1] = static_cast<float>(coords.magnitude * sin_product);
  return g;
}

std::vector<SphericalCoordinates> BatchToSpherical(
    const std::vector<Tensor>& gradients) {
  std::vector<SphericalCoordinates> coords(gradients.size());
  ParallelFor(0, static_cast<int64_t>(gradients.size()), /*grain=*/1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  coords[static_cast<size_t>(i)] =
                      ToSpherical(gradients[static_cast<size_t>(i)]);
                }
              });
  return coords;
}

std::vector<Tensor> BatchToCartesian(
    const std::vector<SphericalCoordinates>& coords) {
  std::vector<Tensor> gradients(coords.size());
  ParallelFor(0, static_cast<int64_t>(coords.size()), /*grain=*/1,
              [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                  gradients[static_cast<size_t>(i)] =
                      ToCartesian(coords[static_cast<size_t>(i)]);
                }
              });
  return gradients;
}

double AngleSquaredDistance(const std::vector<double>& a,
                            const std::vector<double>& b) {
  GEODP_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

std::vector<double> WrapAngles(std::vector<double> angles) {
  const size_t n = angles.size();
  if (n == 0) return angles;
  // The first n-1 angles reflect into [0, pi] (half-plane directions)
  // through the dispatched kernel: the scalar tier keeps the historical
  // fmod loop bit-for-bit, the AVX2 tier uses a floor-based reduction.
  simd::WrapReflect(angles.data(), static_cast<int64_t>(n) - 1);
  // The final azimuthal angle wraps into (-pi, pi].
  double theta = std::fmod(angles[n - 1] + kPi, 2.0 * kPi);
  if (theta <= 0) theta += 2.0 * kPi;
  angles[n - 1] = theta - kPi;
  return angles;
}

std::vector<double> ClampAngles(std::vector<double> angles) {
  const size_t n = angles.size();
  for (size_t i = 0; i < n; ++i) {
    const double lo = (i + 1 < n) ? 0.0 : -kPi;
    const double hi = kPi;
    if (angles[i] < lo) angles[i] = lo;
    if (angles[i] > hi) angles[i] = hi;
  }
  return angles;
}

}  // namespace geodp
