// Internal: per-tier kernel implementations and the dispatch table glue
// between kernels.cc (the public API), kernels_scalar.cc and
// kernels_avx2.cc. Not for inclusion outside src/base/simd/.

#ifndef GEODP_BASE_SIMD_KERNELS_IMPL_H_
#define GEODP_BASE_SIMD_KERNELS_IMPL_H_

#include <cstdint>

#include "base/rng.h"

namespace geodp {
namespace simd {

// One function pointer per kernel; kernels.cc selects the table for the
// active tier once per public call and forwards, so adding a tier is one
// new table, not a switch in every kernel.
struct KernelTable {
  void (*add)(float*, const float*, int64_t);
  void (*axpy)(float*, const float*, float, int64_t);
  void (*scale)(float*, float, int64_t);
  void (*scale_assign)(float*, const float*, float, int64_t);
  double (*sum_squares)(const float*, int64_t);
  double (*dot)(const float*, const float*, int64_t);
  void (*matmul_row_block)(const float*, const float*, float*, int64_t,
                           int64_t, int64_t, int64_t);
  void (*pad_copy_row)(float*, const float*, int64_t, int64_t, int64_t);
  void (*sqrt_array)(const double*, double*, int64_t);
  void (*sincos)(const double*, double*, double*, int64_t);
  void (*atan2)(const double*, const double*, double*, int64_t);
  void (*wrap_reflect)(double*, int64_t);
  void (*gaussian_add_f32)(Rng&, double, float*, int64_t);
  void (*gaussian_add_f64)(Rng&, double, double*, int64_t);
};

// k-dimension tile shared by every matmul tier (the historical
// kMatmulKTile from tensor_ops.cc): fixes the accumulation association
// per tier independently of the caller.
inline constexpr int64_t kMatmulKTile = 64;

/// Scalar reference tier (kernels_scalar.cc). Reproduces the historical
/// element loops bit-for-bit.
const KernelTable& ScalarKernels();

#if defined(GEODP_SIMD_AVX2_BUILD)
/// AVX2/FMA tier (kernels_avx2.cc, compiled with -mavx2 -mfma). Only
/// dispatched to after cpuid confirms the host supports it.
const KernelTable& Avx2Kernels();
#endif

}  // namespace simd
}  // namespace geodp

#endif  // GEODP_BASE_SIMD_KERNELS_IMPL_H_
