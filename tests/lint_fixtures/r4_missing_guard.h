// Fixture: seeded R4 violation — header with no include guard and no
// #pragma once.

namespace geodp {

inline int GadgetAnswer() { return 42; }

}  // namespace geodp
