// Membership-inference attack harness (Yeom et al.-style loss threshold
// attack). The paper motivates DP-SGD by such attacks (§I) and argues
// GeoDP keeps them at bay while improving utility (§V-C2); this module
// measures attack success empirically so the privacy/utility trade can be
// evaluated end to end.

#ifndef GEODP_ATTACK_MEMBERSHIP_INFERENCE_H_
#define GEODP_ATTACK_MEMBERSHIP_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace geodp {

/// Outcome of a loss-threshold membership attack.
struct MiaResult {
  // Probability that a random member outscores a random non-member
  // (Mann-Whitney AUC of -loss as the membership score). 0.5 = no leak.
  double auc = 0.5;
  // Best achievable TPR - FPR over all thresholds (Yeom's membership
  // advantage). 0 = no leak.
  double advantage = 0.0;
  double mean_member_loss = 0.0;
  double mean_nonmember_loss = 0.0;
  int64_t members = 0;
  int64_t nonmembers = 0;
};

/// Per-example cross-entropy losses of the model on a dataset.
std::vector<double> PerExampleLosses(Sequential& model,
                                     const InMemoryDataset& dataset,
                                     int64_t max_examples = 0);

/// Runs the attack: members are training examples, non-members held-out
/// examples from the same distribution; the attacker predicts "member"
/// when the loss is below a threshold.
MiaResult RunLossThresholdAttack(Sequential& model,
                                 const InMemoryDataset& members,
                                 const InMemoryDataset& nonmembers,
                                 int64_t max_examples_per_side = 0);

/// AUC of score separation (Mann-Whitney with tie correction): the
/// probability a member's score exceeds a non-member's.
double ComputeAuc(const std::vector<double>& member_scores,
                  const std::vector<double>& nonmember_scores);

/// Max over thresholds of TPR - FPR for the same scores.
double ComputeAdvantage(const std::vector<double>& member_scores,
                        const std::vector<double>& nonmember_scores);

}  // namespace geodp

#endif  // GEODP_ATTACK_MEMBERSHIP_INFERENCE_H_
