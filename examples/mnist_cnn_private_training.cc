// Example: private CNN training on the MNIST-like dataset, comparing
// noise-free SGD, traditional DP-SGD and GeoDP-SGD under the same noise
// multiplier, with the DP-Adam extension thrown in.
//
//   $ ./examples/mnist_cnn_private_training

#include <cstdio>
#include <string>

#include "base/rng.h"
#include "data/synthetic_images.h"
#include "models/cnn.h"
#include "optim/trainer.h"

namespace {

struct RunSpec {
  std::string label;
  geodp::PerturbationMethod method;
  double beta;
  bool use_adam;
};

}  // namespace

int main() {
  using namespace geodp;

  SyntheticImageOptions data_options;
  data_options.num_examples = 900;
  data_options.seed = 21;
  InMemoryDataset train = MakeMnistLike(data_options);
  InMemoryDataset test = train.SplitTail(180);

  const double kSigma = 4.0;
  const RunSpec specs[] = {
      {"noise-free SGD", PerturbationMethod::kNoiseFree, 1.0, false},
      {"DP-SGD", PerturbationMethod::kDp, 1.0, false},
      {"GeoDP-SGD (beta=0.001)", PerturbationMethod::kGeoDp, 0.001, false},
      {"GeoDP-Adam (beta=0.001)", PerturbationMethod::kGeoDp, 0.001, true},
  };

  std::printf("CNN on synthetic MNIST, sigma=%.2f, C=0.1, B=128\n\n", kSigma);
  std::printf("%-24s %12s %12s %10s\n", "method", "train loss", "test acc",
              "epsilon");
  for (const RunSpec& spec : specs) {
    Rng rng(5);  // identical initialization across methods
    CnnConfig config;
    auto model = MakeCnn(config, rng);
    TrainerOptions options;
    options.method = spec.method;
    options.beta = spec.beta;
    options.use_adam = spec.use_adam;
    options.batch_size = 128;
    options.iterations = 100;
    options.learning_rate = spec.use_adam ? 0.02 : 3.0;
    options.clip_threshold = 0.1;
    options.noise_multiplier =
        spec.method == PerturbationMethod::kNoiseFree ? 0.0 : kSigma;
    options.seed = 6;
    DpTrainer trainer(model.get(), &train, &test, options);
    const TrainingResult result = trainer.Train();
    std::printf("%-24s %12.4f %11.2f%% %10.3f\n", spec.label.c_str(),
                result.final_train_loss, result.test_accuracy * 100,
                result.epsilon);
  }
  std::printf(
      "\nExpected ordering: noise-free >= GeoDP > DP at matched sigma.\n");
  return 0;
}
