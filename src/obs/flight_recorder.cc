#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

#include "base/timer.h"
#include "obs/trace.h"

namespace geodp {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kStepMilestone:
      return "step";
    case FlightEventKind::kStatusError:
      return "status_error";
    case FlightEventKind::kIoRetry:
      return "io_retry";
    case FlightEventKind::kIoGiveup:
      return "io_giveup";
    case FlightEventKind::kDegraded:
      return "degraded";
    case FlightEventKind::kCheckpointWrite:
      return "checkpoint_write";
    case FlightEventKind::kCheckpointMiss:
      return "checkpoint_miss";
    case FlightEventKind::kCheckpointPrune:
      return "checkpoint_prune";
    case FlightEventKind::kWatchdogCancel:
      return "watchdog_cancel";
    case FlightEventKind::kResume:
      return "resume";
    case FlightEventKind::kNote:
      return "note";
  }
  return "unknown";
}

void FlightRecorder::Record(FlightEventKind kind, int64_t step,
                            std::string_view detail) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // Timestamp and sequence are taken outside the stripe lock; the
  // sequence (not the slot position) defines the merge order, so a thread
  // briefly descheduled between here and the slot write cannot corrupt
  // anything — its event just lands in its stripe slightly late.
  const int64_t sequence =
      next_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int64_t micros = Timer::ProcessMicros();
  const int tid = CurrentTraceThreadId();
  Stripe& stripe =
      stripes_[static_cast<size_t>(tid) & static_cast<size_t>(kStripes - 1)];

  std::lock_guard<std::mutex> lock(stripe.mu);
  FlightEvent& slot = stripe.slots[static_cast<size_t>(
      stripe.next_slot % kSlotsPerStripe)];
  ++stripe.next_slot;
  slot.sequence = sequence;
  slot.micros = micros;
  slot.kind = kind;
  slot.step = step;
  slot.tid = tid;
  const size_t copied =
      std::min(detail.size(), static_cast<size_t>(FlightEvent::kDetailBytes - 1));
  if (copied > 0) std::memcpy(slot.detail.data(), detail.data(), copied);
  slot.detail[copied] = '\0';
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(kStripes * kSlotsPerStripe);
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const FlightEvent& slot : stripe.slots) {
      if (slot.sequence != 0) events.push_back(slot);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.sequence < b.sequence;
            });
  return events;
}

void FlightRecorder::Reset() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.slots.fill(FlightEvent{});
    stripe.next_slot = 0;
  }
  next_sequence_.store(0, std::memory_order_relaxed);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

}  // namespace geodp
