// Fail-point hooks for resilience and crash-safety testing.
//
// Production code calls FaultInjector::Fire(site) at every filesystem
// boundary (checkpoint write/read/prune, JSONL metrics/trace writers,
// dataset loads, bench JSON out) and at the end of each training step.
// Normally this is a single relaxed atomic load returning kNone. Tests,
// the CLI (--geodp_failpoint) and the geodp_chaos harness can arm any
// number of fail points — "<site>@<hit>:<action>" or, probabilistically,
// "<site>@p=<prob>:<action>" — and the matching Fire calls then return
// the action, letting us prove that kill-at-any-step resume is
// bit-identical, that torn checkpoint writes are never resumed from, and
// that transient errno failures are retried / degraded around instead of
// killing a run mid-privacy-budget.
//
// Actions:
//   crash        _Exit(kCrashExitCode), a simulated kill -9
//   short_write  truncate the bytes being written (torn write)
//   bit_flip     flip one bit in the bytes being written (bit rot)
//   eio          simulate EIO at the I/O substrate (transient, retryable)
//   eintr        simulate EINTR (transient, retryable)
//   enospc       simulate ENOSPC (permanent; disk full)
//   torn_rename  rename an incomplete temp file into place (torn file)
//   stall:<ms>   block the firing thread <ms> milliseconds (wedged I/O)
//
// Hit-based errno/corruption actions are one-shot (the run continues past
// them, which is what lets a retry succeed); probabilistic arms persist
// and draw from a seeded xoshiro stream so a given (spec, seed) pair
// fires identically on every run. kCrash never disarms — the process is
// gone. Fail-point catalog: docs/fault_tolerance.md.

#ifndef GEODP_BASE_FAULT_INJECTION_H_
#define GEODP_BASE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"

namespace geodp {

/// Process-wide fail-point registry. Arm/Disarm/Fire are all thread-safe;
/// any number of sites can be armed at once.
class FaultInjector {
 public:
  enum class Action {
    kNone = 0,     // fail point not armed / not this site / not this hit
    kCrash,        // terminate the process immediately (simulated kill -9)
    kShortWrite,   // truncate the bytes being written (torn write)
    kBitFlip,      // flip one bit in the bytes being written (bit rot)
    kEio,          // simulated EIO (transient read/write error)
    kEintr,        // simulated EINTR (interrupted syscall)
    kEnospc,       // simulated ENOSPC (disk full, permanent)
    kTornRename,   // rename a truncated temp file into place
    kStall,        // Fire() blocked the thread for the armed duration
  };

  static FaultInjector& Global();

  /// Arms `site` to return `action` on its `hit`-th Fire (1-based),
  /// replacing every previously armed fail point (legacy single-site API;
  /// ArmFromSpec layers multi-site arming on AddSite).
  void Arm(const std::string& site, int64_t hit, Action action);

  /// Appends one armed fail point without disturbing the others. Exactly
  /// one of `hit` (> 0, fire on that 1-based call) or `probability`
  /// (in (0, 1], fire on each call with that chance) selects the trigger;
  /// pass hit = 0 for probabilistic arms. `stall_ms` is only read for
  /// kStall.
  void AddSite(const std::string& site, int64_t hit, double probability,
               Action action, int64_t stall_ms = 0);

  /// Disarms everything and resets all hit counters.
  void Disarm();

  /// Re-seeds the stream behind probabilistic arms (deterministic per
  /// (spec, seed) pair). Also resets every armed site's hit counter.
  void SeedRng(uint64_t seed);

  /// True while any fail point can still fire (single relaxed atomic
  /// load; this is all a Fire call costs when fault injection is off).
  /// Spent one-shot entries do not count: once every armed entry has
  /// fired, armed() is false again.
  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Reports this site being reached. Returns the triggered action when
  /// an armed entry for this site fires, kNone otherwise. Hit-based
  /// entries other than kCrash disarm after firing (one-shot);
  /// probabilistic entries persist. kCrash terminates the process via
  /// _Exit(kCrashExitCode) — callers never observe it. kStall sleeps the
  /// armed duration inside Fire (outside the registry lock) and then
  /// reports kStall.
  Action Fire(const std::string& site);

  /// Total Fire calls observed for `site` across all armed entries (0
  /// when the site is not armed). Test introspection.
  int64_t hits(const std::string& site) const;

  /// Exit code used by Action::kCrash, distinguishable from normal failures.
  static constexpr int kCrashExitCode = 87;

  /// Arms the global injector from a comma-separated CLI spec, each
  /// element "<site>@<hit>:<action>" or "<site>@p=<prob>:<action>", e.g.
  /// "trainer.step@25:crash,obs.jsonl@p=0.01:eio" or
  /// "ckpt.write_io@2:stall:40". Replaces everything previously armed.
  /// An empty spec is a no-op; a malformed element returns a descriptive
  /// InvalidArgument and leaves the injector disarmed.
  static Status ArmFromSpec(const std::string& spec);

  /// The simulated errno for an errno-emulating action (EIO, EINTR,
  /// ENOSPC); 0 for every other action.
  static int SimulatedErrno(Action action);

 private:
  struct ArmedSite {
    std::string site;
    int64_t target_hit = 0;    // > 0: fire on this 1-based hit
    double probability = 0.0;  // > 0: fire with this chance per call
    Action action = Action::kNone;
    int64_t stall_ms = 0;
    int64_t hits = 0;
    bool spent = false;  // one-shot entry already fired
  };

  FaultInjector() : rng_(kDefaultSeed) {}

  static constexpr uint64_t kDefaultSeed = 0x67e0d01dull;

  std::atomic<int64_t> armed_sites_{0};
  mutable std::mutex mutex_;
  std::vector<ArmedSite> sites_;
  Rng rng_;  // probabilistic draws; guarded by mutex_
};

}  // namespace geodp

#endif  // GEODP_BASE_FAULT_INJECTION_H_
