// Live introspection server: a dependency-free HTTP/1.1 endpoint over
// POSIX sockets that makes a running training job inspectable without
// touching it. Endpoints:
//
//   /metrics  Prometheus text exposition of the MetricsRegistry
//   /healthz  200 while the privacy budget holds, 503 once epsilon-so-far
//             exceeds the configured budget (a budget watchdog: a
//             miscalibrated run flips its health before the budget is
//             gone, not after)
//   /readyz   healthz plus readiness: 503 until the trainer has published
//             a snapshot, and 503 when a run in state "training" has not
//             published within stall_timeout_ms (stalled-run watchdog)
//   /statusz  human status page (HTML; ?format=json for the JSON object)
//   /varz     raw JSON snapshot of metrics + status
//   /profilez per-phase wall-time profile (HTML; ?format=json for the
//             JSON object, ?format=folded for speedscope/flamegraph.pl
//             folded stacks)
//   /flightz  flight-recorder event buffer as JSON (obs/flight_recorder.h)
//
// The server owns one accept thread, reads bounded requests (431 past
// max_request_bytes, 400 on garbage), serves from immutable
// copy-on-publish snapshots (obs/exposition.h) and shuts down cleanly.
// It never blocks or mutates the trainer: Publish swaps a shared_ptr and
// registry reads copy under the registry mutex, so training output is
// bit-identical with the server on or off at any thread count.

#ifndef GEODP_OBS_HTTP_SERVER_H_
#define GEODP_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "base/flags.h"
#include "base/status.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace geodp {

/// Default cap on one request head; 431 beyond it. Named here (not inline
/// in the struct) so tests and docs reference one constant.
inline constexpr int64_t kDefaultMaxRequestBytes = 8192;

struct IntrospectionServerOptions {
  int port = 0;  // 0 = pick an ephemeral port (see IntrospectionServer::port)
  std::string bind_address = "127.0.0.1";  // loopback only by default
  int64_t max_request_bytes = kDefaultMaxRequestBytes;  // 431 beyond this
  // /readyz reports 503 for a run in state "training" whose latest
  // snapshot is older than this. 0 disables the stall watchdog.
  int64_t stall_timeout_ms = 0;
  // /healthz (and /readyz) answer 200 "warn: ..." once the projected
  // eps_steps_to_exhaustion drops to this horizon or below — the
  // burn-rate early warning ahead of the hard budget flip. 0 disables.
  int64_t epsilon_warn_steps = 0;
};

/// Status code, content type and body of one introspection response.
struct IntrospectionResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Routes one parsed request to a response. Exposed separately from the
/// socket layer so tests cover every endpoint without networking.
/// `registry` may be null (endpoints then serve an empty registry);
/// `publisher` may be null (no training attached).
IntrospectionResponse RouteIntrospectionRequest(
    const std::string& method, const std::string& target,
    const MetricsRegistry* registry, const TrainingStatusPublisher* publisher,
    const IntrospectionServerOptions& options);

/// "HTTP/1.1 200 OK\r\n..." wire bytes for a response.
std::string SerializeHttpResponse(const IntrospectionResponse& response);

/// The server. Construction does not open sockets; Start() binds, listens
/// and spawns the accept thread, Stop() (also run by the destructor)
/// shuts it down and joins. Both borrowed pointers must outlive the
/// server.
class IntrospectionServer {
 public:
  IntrospectionServer(const MetricsRegistry* registry,
                      const TrainingStatusPublisher* publisher,
                      IntrospectionServerOptions options);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  /// Binds and starts serving. Fails (without a thread running) when the
  /// address cannot be bound.
  Status Start();

  /// Stops accepting, closes the listen socket and joins the accept
  /// thread. Idempotent.
  void Stop();

  /// The bound port (the ephemeral pick when options.port was 0); 0
  /// before Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  const MetricsRegistry* registry_;
  const TrainingStatusPublisher* publisher_;
  IntrospectionServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
  std::thread accept_thread_;
};

/// Everything --geodp_http_port turns on, bundled so callers can keep it
/// alive for the duration of a run: the publisher to hand to
/// TrainerOptions::status_publisher and the running server.
struct IntrospectionHandle {
  std::unique_ptr<TrainingStatusPublisher> publisher;
  std::unique_ptr<IntrospectionServer> server;
};

/// Applies the --geodp_http_port flag registered by AddCommonFlags:
/// returns nullptr when the flag is 0 (off), otherwise a started server
/// on that port backed by MetricsRegistry::Global() and a fresh
/// publisher. Fails when the port cannot be bound.
StatusOr<std::unique_ptr<IntrospectionHandle>> ApplyIntrospectionFlags(
    const FlagParser& parser);

}  // namespace geodp

#endif  // GEODP_OBS_HTTP_SERVER_H_
