// Tests for the tensor library and its free-function ops.

#include <cmath>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace geodp {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
}

TEST(TensorTest, VectorFactory) {
  Tensor v = Tensor::Vector({1.0f, -2.0f});
  EXPECT_EQ(v.ndim(), 1);
  EXPECT_EQ(v.dim(0), 2);
  EXPECT_EQ(v[1], -2.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at({2, 1}), 6.0f);
}

TEST(TensorTest, ReshapeInfersExtent) {
  Tensor t({4, 6});
  Tensor r = t.Reshape({2, -1});
  EXPECT_EQ(r.dim(1), 12);
  Tensor r2 = t.Reshape({-1});
  EXPECT_EQ(r2.dim(0), 24);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a = Tensor::Vector({1, 2});
  Tensor b = a;
  b[0] = 9.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a = Tensor::Vector({1, 2, 3});
  Tensor b = Tensor::Vector({4, 5, 6});
  a.AddInPlace(b);
  EXPECT_EQ(a[2], 9.0f);
  a.SubInPlace(b);
  EXPECT_EQ(a[2], 3.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a[0], 2.0f);
  a.AxpyInPlace(0.5f, b);
  EXPECT_EQ(a[1], 4.0f + 2.5f);
}

TEST(TensorTest, L2NormAndSum) {
  Tensor t = Tensor::Vector({3, 4});
  EXPECT_DOUBLE_EQ(t.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(t.Sum(), 7.0);
}

TEST(TensorTest, RandnUsesRng) {
  Rng rng(1);
  Tensor t = Tensor::Randn({1000}, rng, 2.0f);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i)
    sum_sq += static_cast<double>(t[i]) * static_cast<double>(t[i]);
  EXPECT_NEAR(sum_sq / 1000.0, 4.0, 0.6);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(2);
  Tensor t = Tensor::RandUniform({1000}, rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -1.0f);
    EXPECT_LT(t[i], 1.0f);
  }
}

TEST(TensorTest, DebugStringTruncates) {
  Tensor t({10});
  const std::string s = t.DebugString(3);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("[10]"), std::string::npos);
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(SameShape(Tensor({2, 3}), Tensor({2, 3})));
  EXPECT_FALSE(SameShape(Tensor({2, 3}), Tensor({3, 2})));
}

TEST(TensorOpsTest, AddSubMulScale) {
  Tensor a = Tensor::Vector({1, 2});
  Tensor b = Tensor::Vector({3, 5});
  EXPECT_EQ(Add(a, b)[1], 7.0f);
  EXPECT_EQ(Sub(b, a)[0], 2.0f);
  EXPECT_EQ(Mul(a, b)[1], 10.0f);
  EXPECT_EQ(Scale(a, 3.0f)[0], 3.0f);
}

TEST(TensorOpsTest, DotProduct) {
  Tensor a = Tensor::Vector({1, 2, 3});
  Tensor b = Tensor::Vector({4, 5, 6});
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(TensorOpsTest, MatmulKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = Matmul(a, b);
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(TensorOpsTest, MatmulIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, rng);
  Tensor eye({4, 4});
  for (int64_t i = 0; i < 4; ++i) eye.at({i, i}) = 1.0f;
  EXPECT_TRUE(AllClose(Matmul(a, eye), a));
  EXPECT_TRUE(AllClose(Matmul(eye, a), a));
}

TEST(TensorOpsTest, MatVec) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 0, 2, 0, 1, 3});
  Tensor x = Tensor::Vector({1, 2, 3});
  Tensor y = MatVec(a, x);
  EXPECT_EQ(y[0], 7.0f);
  EXPECT_EQ(y[1], 11.0f);
}

TEST(TensorOpsTest, TransposeTwiceIsIdentity) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 5}, rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(TensorOpsTest, TransposeMatchesMatmulIdentity) {
  Rng rng(5);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor at = Transpose(a);
  EXPECT_EQ(at.dim(0), 4);
  EXPECT_EQ(at.dim(1), 3);
  EXPECT_EQ(at.at({2, 1}), a.at({1, 2}));
}

TEST(TensorOpsTest, ArgMaxRows) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = ArgMaxRows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorOpsTest, MeanAndMaxAbsDiff) {
  Tensor a = Tensor::Vector({1, 2, 3});
  Tensor b = Tensor::Vector({1, 2, 7});
  EXPECT_DOUBLE_EQ(Mean(a), 2.0);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 4.0);
}

TEST(TensorOpsTest, AllCloseTolerances) {
  Tensor a = Tensor::Vector({1.0f});
  Tensor b = Tensor::Vector({1.0000001f});
  EXPECT_TRUE(AllClose(a, b));
  Tensor c = Tensor::Vector({1.1f});
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, Tensor::Vector({1.0f, 1.0f})));  // shape mismatch
}

TEST(TensorOpsTest, Concat1D) {
  Tensor a = Tensor::Vector({1, 2});
  Tensor b = Tensor::Vector({3});
  Tensor c = Concat1D({a, b});
  ASSERT_EQ(c.numel(), 3);
  EXPECT_EQ(c[2], 3.0f);
}

TEST(TensorOpsTest, CosineSimilarity) {
  Tensor a = Tensor::Vector({1, 0});
  Tensor b = Tensor::Vector({0, 1});
  Tensor c = Tensor::Vector({2, 0});
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity(a, Scale(a, -1.0f)), -1.0, 1e-6);
  EXPECT_EQ(CosineSimilarity(a, Tensor::Vector({0, 0})), 0.0);
}

}  // namespace
}  // namespace geodp
