#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "base/simd/kernels.h"
#include "base/thread_pool.h"

namespace geodp {
namespace {

// Rows of the output each ParallelFor chunk owns. Every row is computed
// entirely within one chunk, so results are bit-identical to the serial
// loop at any thread count.
constexpr int64_t kMatmulRowGrain = 8;
constexpr int64_t kMatVecRowGrain = 64;

// Samples per chunk when summing a batch of tensors; partial sums are
// reduced in chunk order, fixing the floating-point association
// independently of the thread count.
constexpr int64_t kSumGrain = 4;

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.SubInPlace(b);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  GEODP_CHECK(SameShape(a, b));
  Tensor out = a;
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float factor) {
  Tensor out = a;
  out.ScaleInPlace(factor);
  return out;
}

double Dot(const Tensor& a, const Tensor& b) {
  GEODP_CHECK_EQ(a.numel(), b.numel());
  return simd::Dot(a.data(), b.data(), a.numel());
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  GEODP_CHECK_EQ(a.ndim(), 2);
  GEODP_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  GEODP_CHECK_EQ(k, b.dim(0));
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Rows are independent, so parallelizing over row blocks is exact; the
  // kernel tiles the k dimension internally so the slice of b stays
  // cache-resident while a row block accumulates, and keeps k in
  // increasing order within a row, so the accumulation association is
  // fixed by the tile structure, not the thread count.
  ParallelFor(0, m, kMatmulRowGrain, [&](int64_t row_begin, int64_t row_end) {
    simd::MatmulRowBlock(pa, pb, po, row_begin, row_end, k, n);
  });
  return out;
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  GEODP_CHECK_EQ(a.ndim(), 2);
  GEODP_CHECK_EQ(x.ndim(), 1);
  const int64_t m = a.dim(0), k = a.dim(1);
  GEODP_CHECK_EQ(k, x.dim(0));
  Tensor out({m});
  ParallelFor(0, m, kMatVecRowGrain, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      out[i] =
          static_cast<float>(simd::Dot(a.data() + i * k, x.data(), k));
    }
  });
  return out;
}

Tensor Transpose(const Tensor& a) {
  GEODP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

std::vector<int64_t> ArgMaxRows(const Tensor& a) {
  GEODP_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0), n = a.dim(1);
  std::vector<int64_t> result(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    int64_t best = 0;
    float best_value = a[i * n];
    for (int64_t j = 1; j < n; ++j) {
      if (a[i * n + j] > best_value) {
        best_value = a[i * n + j];
        best = j;
      }
    }
    result[static_cast<size_t>(i)] = best;
  }
  return result;
}

double Mean(const Tensor& a) {
  GEODP_CHECK_GT(a.numel(), 0);
  return a.Sum() / static_cast<double>(a.numel());
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  GEODP_CHECK(SameShape(a, b));
  double max_diff = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(
        max_diff,
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return max_diff;
}

bool AllClose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (!SameShape(a, b)) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double diff =
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (diff > atol + rtol * std::fabs(static_cast<double>(b[i]))) {
      return false;
    }
  }
  return true;
}

Tensor Concat1D(const std::vector<Tensor>& parts) {
  int64_t total = 0;
  for (const Tensor& p : parts) total += p.numel();
  Tensor out({std::max<int64_t>(total, 1)});
  if (total == 0) return Tensor::Vector({});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    for (int64_t i = 0; i < p.numel(); ++i) out[offset + i] = p[i];
    offset += p.numel();
  }
  return out;
}

void AccumulateSum(const std::vector<Tensor>& tensors, Tensor& sum) {
  if (tensors.empty()) return;
  const int64_t count = static_cast<int64_t>(tensors.size());
  const int64_t num_chunks = (count + kSumGrain - 1) / kSumGrain;
  // Per-chunk partial sums, reduced in chunk order: the floating-point
  // association depends only on kSumGrain, not on the thread count.
  std::vector<Tensor> partials(static_cast<size_t>(num_chunks));
  ParallelForChunks(0, count, kSumGrain,
                    [&](int64_t chunk, int64_t lo, int64_t hi) {
                      Tensor partial = tensors[static_cast<size_t>(lo)];
                      for (int64_t i = lo + 1; i < hi; ++i) {
                        partial.AddInPlace(tensors[static_cast<size_t>(i)]);
                      }
                      partials[static_cast<size_t>(chunk)] =
                          std::move(partial);
                    });
  for (const Tensor& partial : partials) sum.AddInPlace(partial);
}

Tensor SumTensors(const std::vector<Tensor>& tensors) {
  GEODP_CHECK(!tensors.empty());
  Tensor sum(tensors.front().shape());
  AccumulateSum(tensors, sum);
  return sum;
}

double CosineSimilarity(const Tensor& a, const Tensor& b) {
  const double na = a.L2Norm();
  const double nb = b.L2Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace geodp
