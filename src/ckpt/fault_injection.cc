#include "ckpt/fault_injection.h"

#include <cstdio>
#include <cstdlib>

namespace geodp {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, int64_t hit, Action action) {
  std::lock_guard<std::mutex> lock(mutex_);
  site_ = site;
  target_hit_ = hit;
  hits_ = 0;
  action_ = action;
  armed_.store(action != Action::kNone, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  site_.clear();
  target_hit_ = 0;
  hits_ = 0;
  action_ = Action::kNone;
  armed_.store(false, std::memory_order_relaxed);
}

FaultInjector::Action FaultInjector::Fire(const std::string& site) {
  if (!armed()) return Action::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  if (action_ == Action::kNone || site != site_) return Action::kNone;
  if (++hits_ != target_hit_) return Action::kNone;
  const Action action = action_;
  if (action == Action::kCrash) {
    // Simulated preemption: no destructors, no buffers flushed beyond what
    // the checkpoint protocol already fsynced — exactly like kill -9.
    std::fprintf(stderr, "fault_injection: crash at %s (hit %lld)\n",
                 site.c_str(), static_cast<long long>(hits_));
    // geodp: check-ok simulated preemption is this class's contract
    std::_Exit(kCrashExitCode);
  }
  // Corrupting actions are one-shot so the run continues past them.
  action_ = Action::kNone;
  armed_.store(false, std::memory_order_relaxed);
  return action;
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  if (spec.empty()) return Status::Ok();
  const size_t at = spec.find('@');
  const size_t colon = spec.rfind(':');
  if (at == std::string::npos || colon == std::string::npos || colon <= at) {
    return Status::InvalidArgument(
        "fail-point spec must be <site>@<hit>:<action>, got: " + spec);
  }
  const std::string site = spec.substr(0, at);
  const std::string hit_text = spec.substr(at + 1, colon - at - 1);
  const std::string action_text = spec.substr(colon + 1);
  if (site.empty()) {
    return Status::InvalidArgument("fail-point site is empty: " + spec);
  }
  char* end = nullptr;
  const long long hit = std::strtoll(hit_text.c_str(), &end, 10);
  if (end == hit_text.c_str() || *end != '\0' || hit <= 0) {
    return Status::InvalidArgument("fail-point hit must be a positive "
                                   "integer: " + spec);
  }
  Action action;
  if (action_text == "crash") {
    action = Action::kCrash;
  } else if (action_text == "short_write") {
    action = Action::kShortWrite;
  } else if (action_text == "bit_flip") {
    action = Action::kBitFlip;
  } else {
    return Status::InvalidArgument(
        "unknown fail-point action (want crash|short_write|bit_flip): " +
        action_text);
  }
  Global().Arm(site, hit, action);
  return Status::Ok();
}

}  // namespace geodp
