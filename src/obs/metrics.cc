#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/check.h"

namespace geodp {

std::string FormatDouble(double value) {
  char buffer[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::ObserveHistogram(const std::string& name,
                                       const std::vector<double>& upper_bounds,
                                       double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& histogram = histograms_[name];
  if (histogram.upper_bounds.empty()) {
    GEODP_CHECK(!upper_bounds.empty()) << "histogram " << name
                                       << " needs at least one bucket bound";
    for (size_t i = 1; i < upper_bounds.size(); ++i) {
      GEODP_CHECK_LT(upper_bounds[i - 1], upper_bounds[i])
          << "histogram bounds must be strictly increasing";
    }
    histogram.upper_bounds = upper_bounds;
    histogram.counts.assign(upper_bounds.size() + 1, 0);
  }
  size_t bucket = histogram.upper_bounds.size();  // overflow by default
  for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
    if (value <= histogram.upper_bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++histogram.counts[bucket];
  ++histogram.count;
  histogram.sum += value;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snapshot;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return snapshot;
  snapshot.upper_bounds = it->second.upper_bounds;
  snapshot.counts = it->second.counts;
  snapshot.count = it->second.count;
  snapshot.sum = it->second.sum;
  return snapshot;
}

std::string MetricsRegistry::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << "{\"type\":\"counter\",\"name\":\"" << name << "\",\"value\":"
        << value << "}\n";
  }
  for (const auto& [name, value] : gauges_) {
    out << "{\"type\":\"gauge\",\"name\":\"" << name << "\",\"value\":"
        << FormatDouble(value) << "}\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "{\"type\":\"histogram\",\"name\":\"" << name << "\",\"bounds\":[";
    for (size_t i = 0; i < histogram.upper_bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << FormatDouble(histogram.upper_bounds[i]);
    }
    out << "],\"counts\":[";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << histogram.counts[i];
    }
    out << "],\"count\":" << histogram.count << ",\"sum\":"
        << FormatDouble(histogram.sum) << "}\n";
  }
  return out.str();
}

Status MetricsRegistry::WriteJsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << ToJsonl();
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace geodp
