#include "optim/ghost_grad.h"

#include "base/check.h"
#include "clip/ghost_clipping.h"
#include "nn/parameter.h"
#include "obs/trace.h"

namespace geodp {

bool GhostClipSupported(Sequential& model) {
  for (size_t i = 0; i < model.size(); ++i) {
    if (!model.layer(i).SupportsGhostClip()) return false;
  }
  return true;
}

PrivateBatchGradient ComputeGhostClippedGradients(
    Sequential& model, SoftmaxCrossEntropy& loss,
    const InMemoryDataset& dataset, const std::vector<int64_t>& indices,
    const Clipper& clipper, bool record_sample_norms) {
  GEODP_CHECK(!indices.empty());
  GEODP_CHECK(GhostClipSupported(model));
  const std::vector<Parameter*> params = model.Parameters();

  PrivateBatchGradient result;
  result.batch_size = static_cast<int64_t>(indices.size());

  // Pass 1: one batched forward, one batched backward of the summed loss
  // (row b of BackwardSum is the gradient of sample b's own loss). Each
  // layer adds its contribution to the per-sample squared norms and
  // caches what the accumulation passes need; no parameter gradient is
  // written yet.
  std::vector<double> ghost_norm_sq(indices.size(), 0.0);  // geodp: per-sample
  {
    const TraceSpan span("step.ghost_forward_backward");
    ZeroGradients(params);
    const Tensor x = dataset.StackImages(indices);
    const std::vector<int64_t> y = dataset.GatherLabels(indices);
    loss.Forward(model.Forward(x), y);
    Tensor grad = loss.BackwardSum();
    for (size_t i = model.size(); i > 0; --i) {
      Layer& layer = model.layer(i - 1);
      grad = layer.GhostBackward(grad, ghost_norm_sq);  // geodp: per-sample
    }
  }

  const GhostClipper ghost(clipper);
  const GhostBatchWeights weights =
      ghost.Weights(ghost_norm_sq, loss.sample_losses());  // geodp: per-sample

  // Pass 2: weighted accumulation, clipped weights first, then the raw
  // 0/1 weights for the noise-free reference sum. Flattening between the
  // passes keeps each sum in its own buffer.
  {
    const TraceSpan span("step.ghost_accumulate");
    for (size_t i = 0; i < model.size(); ++i) {
      // Weights come out of GhostClipper::Weights with the clip threshold
      // already applied (clipped entries) or as 0/1 inclusion indicators
      // (raw entries), so each sample's contribution to the accumulated
      // gradient is sensitivity-bounded from here on.
      // geodp: sensitivity-checked clip scale applied by GhostClipper::Weights
      model.layer(i).GhostAccumulate(weights.clipped);
    }
    result.averaged_clipped = FlattenGradients(params);
    ZeroGradients(params);
    for (size_t i = 0; i < model.size(); ++i) {
      model.layer(i).GhostAccumulate(weights.raw);
    }
    result.averaged_raw = FlattenGradients(params);
    ZeroGradients(params);
  }

  // Same averaging and bookkeeping semantics as the materialized path:
  // divide by the full batch size (excluded samples contribute exactly
  // zero), average the loss over included samples only.
  const float inv_b = 1.0f / static_cast<float>(result.batch_size);
  result.averaged_clipped.ScaleInPlace(inv_b);
  result.averaged_raw.ScaleInPlace(inv_b);
  result.mean_loss =
      weights.included > 0
          ? weights.included_loss_sum / static_cast<double>(weights.included)
          : 0.0;
  result.sample_losses = loss.sample_losses();
  if (record_sample_norms)
    result.sample_grad_norms = weights.norms;  // geodp: per-sample
  result.nonfinite_skipped = weights.nonfinite_skipped;
  return result;
}

}  // namespace geodp
