// Figure 5: training-loss curves of logistic regression under GeoDP vs DP
// on the MNIST-like dataset. Betas/sigmas are the paper's settings
// rescaled for this repo's d and B (see EXPERIMENTS.md).
//  (a) moderate noise: batch size helps GeoDP far more than DP.
//  (b) heavy noise: too-large beta stalls GeoDP; a smaller beta rescues
//      it past DP toward the noise-free curve.
//  (c) small sigma: both methods track the noise-free curve (the paper
//      reports a residual DP gap; below our loss resolution at this
//      scale).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/rng.h"
#include "common/bench_util.h"
#include "models/logistic_regression.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

constexpr int64_t kIterations = 200;
constexpr int64_t kRecordEvery = 20;
constexpr double kClip = 0.1;

std::vector<double> RunCurve(const InMemoryDataset& train,
                             PerturbationMethod method, int64_t batch,
                             double sigma, double beta, double lr) {
  Rng rng(77);  // same init for every curve
  auto model = MakeLogisticRegression(196, 10, rng);
  TrainerOptions options;
  options.method = method;
  options.batch_size = batch;
  options.iterations = kIterations;
  options.learning_rate = lr;
  options.clip_threshold = kClip;
  options.noise_multiplier = sigma;
  options.beta = beta;
  options.record_loss_every = kRecordEvery;
  options.seed = 7;
  AttachObserver(options);
  DpTrainer trainer(model.get(), &train, nullptr, options);
  return trainer.Train().loss_history;
}

void EmitCurves(const std::string& id, const std::string& paper_setup,
                const std::string& repro_setup,
                const std::vector<std::pair<std::string, std::vector<double>>>&
                    curves) {
  PrintBanner(id, paper_setup, repro_setup);
  std::vector<std::string> headers = {"iteration"};
  for (const auto& [name, values] : curves) headers.push_back(name);
  TablePrinter table(headers);
  const size_t points = curves.front().second.size();
  for (size_t p = 0; p < points; ++p) {
    std::vector<std::string> row;
    const int64_t iteration =
        (p + 1 == points) ? (kIterations - 1)
                          : static_cast<int64_t>(p) * kRecordEvery;
    row.push_back(std::to_string(iteration));
    for (const auto& [name, values] : curves) {
      row.push_back(TablePrinter::Fmt(values[p]));
    }
    table.AddRow(std::move(row));
  }
  PrintTable(table);
}

void Run() {
  const SplitDataset data = MnistLikeSplit(2048, 256, /*seed=*/3);
  const InMemoryDataset& train = data.train;

  // (a) sigma=1, beta=1, batch-size effect.
  EmitCurves(
      "Figure 5(a) (LR training loss, moderate noise, batch effect)",
      "d=785, sigma=1, B in {2048, 4096}; DP's curves overlap across B "
      "while GeoDP improves with B",
      "d=1970 params, 14x14 synthetic MNIST, sigma=10, B in {256, 1024}, "
      "lr=2, beta=0.01 (paper's sigma/beta rescaled for d, B; see "
      "EXPERIMENTS.md)",
      {
          {"no-noise", RunCurve(train, PerturbationMethod::kNoiseFree, 256,
                                0.0, 1.0, 2.0)},
          {"GeoDP B=256", RunCurve(train, PerturbationMethod::kGeoDp, 256,
                                   10.0, 0.01, 2.0)},
          {"GeoDP B=1024", RunCurve(train, PerturbationMethod::kGeoDp, 1024,
                                    10.0, 0.01, 2.0)},
          {"DP B=256",
           RunCurve(train, PerturbationMethod::kDp, 256, 10.0, 1.0, 2.0)},
          {"DP B=1024",
           RunCurve(train, PerturbationMethod::kDp, 1024, 10.0, 1.0, 2.0)},
      });

  // (b) large noise: beta tuning rescues GeoDP.
  EmitCurves(
      "Figure 5(b) (LR training loss, sigma=10, beta tuning)",
      "d=785, sigma=10, B=2048; GeoDP(beta=1) below-par, GeoDP(beta=0.5) "
      "overtakes DP",
      "B=512, betas {0.05, 0.01, 0.002} (paper's {1, 0.5} rescaled), lr=2",
      {
          {"no-noise", RunCurve(train, PerturbationMethod::kNoiseFree, 512,
                                0.0, 1.0, 2.0)},
          {"GeoDP beta=0.05", RunCurve(train, PerturbationMethod::kGeoDp,
                                       512, 10.0, 0.05, 2.0)},
          {"GeoDP beta=0.01", RunCurve(train, PerturbationMethod::kGeoDp,
                                       512, 10.0, 0.01, 2.0)},
          {"GeoDP beta=0.002", RunCurve(train, PerturbationMethod::kGeoDp,
                                        512, 10.0, 0.002, 2.0)},
          {"DP", RunCurve(train, PerturbationMethod::kDp, 512, 10.0, 1.0,
                          2.0)},
      });

  // (c) small noise multipliers: DP's direction bias persists.
  EmitCurves(
      "Figure 5(c) (LR training loss, small sigma, beta=1, B=256)",
      "d=785, B=256, sigma in {0.01, 0.1}; DP stays flat while GeoDP "
      "approaches noise-free",
      "same sigma grid, lr=2, beta=0.01",
      {
          {"no-noise", RunCurve(train, PerturbationMethod::kNoiseFree, 256,
                                0.0, 1.0, 2.0)},
          {"GeoDP s=0.01", RunCurve(train, PerturbationMethod::kGeoDp, 256,
                                    0.01, 0.01, 2.0)},
          {"GeoDP s=0.1", RunCurve(train, PerturbationMethod::kGeoDp, 256,
                                   0.1, 0.01, 2.0)},
          {"DP s=0.01",
           RunCurve(train, PerturbationMethod::kDp, 256, 0.01, 1.0, 2.0)},
          {"DP s=0.1",
           RunCurve(train, PerturbationMethod::kDp, 256, 0.1, 1.0, 2.0)},
      });
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main(int argc, char** argv) {
  geodp::bench::InitBenchObservability(argc, argv);
  geodp::bench::Run();
  return 0;
}
