// Ablation (extension): adaptive bounding factor vs fixed beta. The paper
// leaves beta as a hand-tuned hyperparameter; the AdaptiveBetaController
// estimates the smallest beta whose privacy region still covers every
// direction observed so far. Expected shape: adaptive beats badly
// over-sized fixed betas without tuning, but stays above the
// utility-optimal hand-tuned beta — because directions drift during
// training, the covering region (what the privacy argument needs) is
// larger than what pure utility would pick. The gap quantifies how much
// of GeoDP's utility comes from under-covering the direction space
// (i.e. from accepting a larger delta').

#include "base/rng.h"
#include "common/bench_util.h"
#include "models/logistic_regression.h"
#include "stats/table.h"

namespace geodp {
namespace bench {
namespace {

void Run() {
  PrintBanner(
      "Ablation: adaptive beta controller vs fixed beta (extension)",
      "(not a paper experiment; beta in the paper is hand-tuned per task)",
      "LR on 14x14 synthetic MNIST, sigma=8, B=128, 150 iterations");

  const SplitDataset split = MnistLikeSplit(1024, 256, /*seed=*/17);

  auto run = [&](bool adaptive, double beta) {
    Rng rng(21);
    auto model = MakeLogisticRegression(196, 10, rng);
    TrainerOptions options;
    options.method = PerturbationMethod::kGeoDp;
    options.adaptive_beta = adaptive;
    options.adaptive_beta_floor = 1e-4;
    options.beta = beta;
    options.batch_size = 128;
    options.iterations = 150;
    options.learning_rate = 2.0;
    options.noise_multiplier = 8.0;
    options.seed = 23;
    DpTrainer trainer(model.get(), &split.train, &split.test, options);
    return trainer.Train();
  };

  TablePrinter table(
      {"configuration", "final beta", "final train loss", "test acc"});
  for (double beta : {0.1, 0.01, 0.001}) {
    const TrainingResult result = run(false, beta);
    table.AddRow({"fixed beta=" + TablePrinter::Fmt(beta, 3),
                  TablePrinter::Fmt(result.final_beta, 4),
                  TablePrinter::Fmt(result.final_train_loss),
                  TablePrinter::Fmt(result.test_accuracy * 100, 2) + "%"});
  }
  const TrainingResult adaptive = run(true, 1.0);
  table.AddRow({"adaptive", TablePrinter::Fmt(adaptive.final_beta, 4),
                TablePrinter::Fmt(adaptive.final_train_loss),
                TablePrinter::Fmt(adaptive.test_accuracy * 100, 2) + "%"});
  PrintTable(table);
}

}  // namespace
}  // namespace bench
}  // namespace geodp

int main() {
  geodp::bench::Run();
  return 0;
}
