// Layer abstraction: every building block implements an explicit forward
// and backward pass, caching whatever it needs in Forward. Batch-first
// layouts throughout: dense activations are [B, features], image
// activations are [B, C, H, W].

#ifndef GEODP_NN_MODULE_H_
#define GEODP_NN_MODULE_H_

#include <string>
#include <vector>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace geodp {

/// Base class for all network layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch; caches state for Backward.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after a matching Forward.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  virtual std::string name() const = 0;
};

}  // namespace geodp

#endif  // GEODP_NN_MODULE_H_
